/**
 * @file
 * Scale-out study (the paper's motivating claim, Sec. I): because
 * GraphABCD is barrierless and lock-free, the same computation can be
 * distributed across multiple accelerator devices with no extra
 * coordination logic — only the shared task queues.  This bench grows
 * the device count and reports time, aggregate-bandwidth utilization
 * and the epoch inflation caused by the wider staleness window.
 */

#include "bench_common.hh"

namespace graphabcd {
namespace {

using namespace bench;

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declare("graph", "LJ", "dataset key");
    flags.declareInt("block-size", 512, "block size");
    if (!flags.parse(argc, argv))
        return 0;

    Dataset ds = loadDataset(flags.get("graph"), flags);
    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));
    BlockPartition g(ds.graph, block_size);

    Table table({"accelerators", "total PEs", "time (s)", "speedup",
                 "epochs", "MTES", "link util (avg)"});
    double base = 0.0;
    for (std::uint32_t accels : {1u, 2u, 4u, 8u}) {
        EngineOptions opt;
        opt.blockSize = block_size;
        HarpConfig cfg;
        cfg.numAccelerators = accels;
        RunResult r = abcdPagerank(g, opt, cfg);
        if (accels == 1)
            base = r.seconds;
        table.row()
            .add(static_cast<std::uint64_t>(accels))
            .add(static_cast<std::uint64_t>(accels * cfg.numPes))
            .add(r.seconds, 4)
            .add(base / r.seconds, 3)
            .add(r.iterations, 4)
            .add(r.mtes, 4)
            .add(r.sim.busUtilization, 3);
    }
    emitTable(table, flags);
    std::fprintf(stderr,
                 "info: expected shape: near-linear speedup while the "
                 "scheduler/scatter side keeps up; epochs inflate "
                 "mildly as the staleness window widens.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
