/**
 * @file
 * GraphMat-style baseline: a Bulk-Synchronous generalized-SpMV engine
 * (Sundaram et al., VLDB 2015) — the framework the paper compares
 * against (Sec. V, Tables II/III).
 *
 * Every superstep performs one generalized sparse-matrix/vector step:
 * active vertices broadcast a message along their out-edges
 * (SEND_MESSAGE), messages are combined at the destination (REDUCE) and
 * folded into the vertex state (APPLY); vertices whose state changed are
 * active in the next superstep.  Commits are double-buffered, so the
 * semantics are pure Jacobi with a global barrier per iteration — block
 * size |V| in BCD terms.
 *
 * The active-vertex filtering is what the paper calls out for SSSP:
 * only active columns are processed, which "in fact reduces its block
 * size" and is why GraphMat's SSSP converges in fewer effective epochs
 * than block-granular GraphABCD.
 */

#ifndef GRAPHABCD_BASELINES_GRAPHMAT_ENGINE_HH
#define GRAPHABCD_BASELINES_GRAPHMAT_ENGINE_HH

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr.hh"
#include "graph/edge_list.hh"
#include "obs/obs.hh"
#include "support/logging.hh"
#include "support/timer.hh"

namespace graphabcd {
namespace graphmat {

/**
 * Compile-time contract of a GraphMat vertex program, following
 * GraphMat's SEND_MESSAGE / PROCESS_MESSAGE / REDUCE / APPLY API (the
 * PROCESS_MESSAGE stage receives the destination vertex property, which
 * is what lets CF compute per-edge errors):
 *
 *   Value       — per-vertex state;
 *   Message     — the processed per-edge contribution;
 *   processEdge — SEND_MESSAGE + PROCESS_MESSAGE fused: per-edge
 *                 contribution from (dst state, src state, weight);
 *   reduce      — commutative/associative combiner;
 *   apply       — fold the reduced message into the state; returns the
 *                 new state.  A state change (re)activates the vertex.
 */
template <typename P>
concept SpmvProgram = requires(const P p, typename P::Value v,
                               typename P::Message m, VertexId vid,
                               float w, std::uint32_t n) {
    typename P::Value;
    typename P::Message;
    { p.init(vid, n) } -> std::convertible_to<typename P::Value>;
    { p.identity() } -> std::convertible_to<typename P::Message>;
    { p.processEdge(v, v, w) } -> std::convertible_to<typename P::Message>;
    { p.reduce(m, m) } -> std::convertible_to<typename P::Message>;
    { p.apply(vid, m, v) } -> std::convertible_to<typename P::Value>;
    { p.delta(v, v) } -> std::convertible_to<double>;
    { p.usesFiltering() } -> std::convertible_to<bool>;
};

/** Work accounting of one GraphMat run. */
struct GraphMatReport
{
    std::uint32_t iterations = 0;       //!< BSP supersteps
    std::uint64_t edgesProcessed = 0;   //!< SpMV edge traversals
    std::uint64_t vertexUpdates = 0;    //!< active destinations applied
    std::uint64_t messagesSent = 0;
    bool filtered = false;              //!< ran with active-vertex filtering
    bool converged = false;
    double effectiveEpochs = 0.0;       //!< vertexUpdates / |V|
};

/**
 * The BSP engine.  Built once per (graph, program); run() restarts from
 * init() every call.
 */
template <SpmvProgram Program>
class GraphMatEngine
{
  public:
    using Value = typename Program::Value;
    using Message = typename Program::Message;

    /** Per-superstep observer (iteration, values) for RMSE curves. */
    using IterFn =
        std::function<bool(std::uint32_t, const std::vector<Value> &)>;

    GraphMatEngine(const EdgeList &el, Program p)
        : inCsr(el, Csr::Axis::ByDestination),
          outDegrees(el.outDegrees()), program(std::move(p)),
          nVertices(el.numVertices())
    {
    }

    /**
     * Attach a convergence curve sink: run() appends one sample per
     * superstep (residual = L1 state delta of the superstep), so the
     * baseline plots on the same axes as the BCD engines (paper
     * Figs. 9-11).  No-op stub under GRAPHABCD_OBS=OFF.
     */
    void
    setConvergenceSeries(std::shared_ptr<obs::ConvergenceSeries> series)
    {
        convergence = std::move(series);
    }

    /**
     * Run supersteps until no vertex is active or `max_iters`.
     * @param tol state changes <= tol do not reactivate.
     * @param iter_fn optional; return true to stop (objective-based
     *        convergence criterion).
     */
    GraphMatReport
    run(std::vector<Value> &out_values, double tol,
        std::uint32_t max_iters = 10000, const IterFn &iter_fn = nullptr)
    {
        Timer timer;
        GraphMatReport report;
        std::vector<Value> x(nVertices);
        for (VertexId v = 0; v < nVertices; v++)
            x[v] = program.init(v, nVertices);
        std::vector<Value> next(x);

        // Active-vertex filtering is only sound for monotone programs
        // whose APPLY folds the reduced message into the old value
        // (SSSP/BFS/CC): a partial reduce then loses nothing.  PR and
        // CF recompute from *all* in-edges, so GraphMat runs them as
        // full BSP sweeps — exactly the "GraphMat deviates from its BSP
        // model in SSSP" distinction the paper draws (Sec. V-C).
        const bool filtering = program.usesFiltering();
        report.filtered = filtering;

        std::vector<char> active(nVertices, 1);
        std::vector<char> next_active(nVertices, 0);

        std::uint64_t active_count = nVertices;
        while (active_count > 0 && report.iterations < max_iters) {
            std::uint64_t moved = 0;
            double step_l1 = 0.0;
            for (VertexId v = 0; v < nVertices; v++) {
                Message acc = program.identity();
                bool got = false;
                auto nbrs = inCsr.neighbors(v);
                auto wgts = inCsr.weights(v);
                for (std::size_t i = 0; i < nbrs.size(); i++) {
                    if (filtering && !active[nbrs[i]])
                        continue;
                    acc = program.reduce(
                        acc,
                        program.processEdge(x[v], x[nbrs[i]], wgts[i]));
                    got = true;
                    report.edgesProcessed++;
                }
                if (filtering && !got) {
                    next[v] = x[v];
                    continue;
                }
                next[v] = program.apply(v, acc, x[v]);
                report.vertexUpdates++;
                const double d = program.delta(next[v], x[v]);
                if constexpr (obs::kEnabled)
                    step_l1 += d;
                if (d > tol) {
                    next_active[v] = 1;
                    moved++;
                }
            }
            // Message volume = out-edges of the vertices that sent this
            // superstep (what the SpMV streams; drives the cost model).
            for (VertexId v = 0; v < nVertices; v++) {
                if (!filtering || active[v])
                    report.messagesSent += outDegrees[v];
            }

            // Global barrier: commit the double buffer.
            x.swap(next);
            active.swap(next_active);
            std::fill(next_active.begin(), next_active.end(), 0);
            active_count = filtering
                ? std::count(active.begin(), active.end(), char(1))
                : moved;
            report.iterations++;
            if constexpr (obs::kEnabled) {
                if (convergence) {
                    obs::ConvergencePoint pt;
                    pt.epochs =
                        static_cast<double>(report.vertexUpdates) /
                        std::max<double>(nVertices, 1.0);
                    pt.residual = step_l1;
                    pt.activeVertices = moved;
                    pt.vertexUpdates = report.vertexUpdates;
                    pt.edgeTraversals = report.edgesProcessed;
                    pt.wallSeconds = timer.seconds();
                    // The BSP superstep IS the sample window: record
                    // the last one as final so the curve always ends
                    // on the terminating superstep.
                    if (active_count == 0 ||
                        report.iterations >= max_iters)
                        convergence->recordFinal(pt);
                    else
                        convergence->record(pt);
                }
            }
            if (iter_fn && iter_fn(report.iterations, x)) {
                report.converged = true;
                break;
            }
        }
        if (active_count == 0)
            report.converged = true;
        report.effectiveEpochs =
            static_cast<double>(report.vertexUpdates) /
            std::max<double>(nVertices, 1.0);
        out_values = std::move(x);
        return report;
    }

  private:
    Csr inCsr;
    std::vector<std::uint32_t> outDegrees;
    Program program;
    VertexId nVertices;
    std::shared_ptr<obs::ConvergenceSeries> convergence;
};

} // namespace graphmat
} // namespace graphabcd

#endif // GRAPHABCD_BASELINES_GRAPHMAT_ENGINE_HH
