/**
 * @file
 * Edge-list graph representation — the interchange format of the library.
 *
 * GraphABCD's on-device format is the destination-sliced BlockPartition;
 * the EdgeList is what generators and loaders produce and what every other
 * representation is built from (the paper also feeds its prototype
 * edge-list inputs, Sec. V-A).
 */

#ifndef GRAPHABCD_GRAPH_EDGE_LIST_HH
#define GRAPHABCD_GRAPH_EDGE_LIST_HH

#include <cstdint>
#include <vector>

#include "graph/types.hh"

namespace graphabcd {

/**
 * A directed multigraph as a flat list of edges plus a vertex count.
 * Vertices are dense ids in [0, numVertices()).
 */
class EdgeList
{
  public:
    EdgeList() = default;

    /** @param num_vertices fixes the id space; edges added later. */
    explicit EdgeList(VertexId num_vertices) : nVertices(num_vertices) {}

    /** @param num_vertices id space; @param edge_vec takes ownership. */
    EdgeList(VertexId num_vertices, std::vector<Edge> edge_vec);

    /** Append one edge; endpoints must be inside the id space. */
    void addEdge(VertexId src, VertexId dst, float weight = 1.0f);

    /** Grow the id space (never shrinks). */
    void
    ensureVertices(VertexId num_vertices)
    {
        if (num_vertices > nVertices)
            nVertices = num_vertices;
    }

    VertexId numVertices() const { return nVertices; }
    EdgeId numEdges() const { return static_cast<EdgeId>(edges_.size()); }

    const std::vector<Edge> &edges() const { return edges_; }
    std::vector<Edge> &edges() { return edges_; }

    const Edge &edge(EdgeId e) const { return edges_[e]; }

    /**
     * Canonicalise in place: sort by (src, dst) and optionally drop
     * duplicate (src, dst) pairs keeping the first weight.
     */
    void normalize(bool dedup = true);

    /** Remove self loops in place. */
    void removeSelfLoops();

    /** @return a new EdgeList with every edge reversed. */
    EdgeList reversed() const;

    /**
     * @return a new EdgeList with both directions of every edge
     * (used to build undirected views for CC).
     */
    EdgeList symmetrized() const;

    /** @return out-degree of every vertex. */
    std::vector<std::uint32_t> outDegrees() const;

    /** @return in-degree of every vertex. */
    std::vector<std::uint32_t> inDegrees() const;

  private:
    VertexId nVertices = 0;
    std::vector<Edge> edges_;
};

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_EDGE_LIST_HH
