#include "fragment/topology.hh"

#include <algorithm>

#include "support/logging.hh"

namespace graphabcd {

FragmentTopology::FragmentTopology(const BlockPartition &g,
                                   std::uint32_t fragments)
{
    const BlockId nBlocks = g.numBlocks();
    const FragmentId want = std::max<std::uint32_t>(1, fragments);
    const FragmentId n =
        nBlocks == 0 ? 1 : std::min<FragmentId>(want, nBlocks);

    blockCuts.resize(static_cast<std::size_t>(n) + 1);
    blockCuts[0] = 0;
    blockCuts[n] = nBlocks;

    // Edge-balanced greedy cuts: fragment f ends at the first block
    // whose cumulative edge count reaches f/n of the total.  Because
    // block edge slices are contiguous and ascending, the cumulative
    // edge count before block b is exactly g.edgeBegin(b).  Each cut is
    // clamped so every fragment keeps at least one block.
    const EdgeId total = g.numEdges();
    for (FragmentId f = 1; f < n; f++) {
        const EdgeId target =
            static_cast<EdgeId>(static_cast<double>(total) *
                                static_cast<double>(f) /
                                static_cast<double>(n));
        BlockId lo = blockCuts[f - 1] + 1;
        BlockId hi = nBlocks - (n - f);   // leave one block per shard
        BlockId cut = lo;
        while (cut < hi && g.edgeBegin(cut) < target)
            cut++;
        blockCuts[f] = std::clamp(cut, lo, hi);
    }

    vertexCuts.resize(static_cast<std::size_t>(n) + 1);
    edgeCuts.resize(static_cast<std::size_t>(n) + 1);
    for (FragmentId f = 0; f <= n; f++) {
        const BlockId b = blockCuts[f];
        const VertexId v =
            b == nBlocks ? g.numVertices() : g.blockBegin(b);
        vertexCuts[f] = v;
        edgeCuts[f] = b == nBlocks ? g.numEdges() : g.edgeBegin(b);
    }
}

FragmentId
FragmentTopology::fragmentOfBlock(BlockId b) const
{
    auto it = std::upper_bound(blockCuts.begin(), blockCuts.end(), b);
    GRAPHABCD_ASSERT(it != blockCuts.begin() && it != blockCuts.end(),
                     "block out of topology range");
    return static_cast<FragmentId>(it - blockCuts.begin() - 1);
}

FragmentId
FragmentTopology::fragmentOfVertex(VertexId v) const
{
    auto it = std::upper_bound(vertexCuts.begin(), vertexCuts.end(), v);
    GRAPHABCD_ASSERT(it != vertexCuts.begin() && it != vertexCuts.end(),
                     "vertex out of topology range");
    return static_cast<FragmentId>(it - vertexCuts.begin() - 1);
}

FragmentId
FragmentTopology::fragmentOfEdge(EdgeId pos) const
{
    auto it = std::upper_bound(edgeCuts.begin(), edgeCuts.end(), pos);
    GRAPHABCD_ASSERT(it != edgeCuts.begin() && it != edgeCuts.end(),
                     "edge position out of topology range");
    return static_cast<FragmentId>(it - edgeCuts.begin() - 1);
}

} // namespace graphabcd
