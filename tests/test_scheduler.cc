/**
 * @file
 * Tests of the block schedulers: cyclic order, Gauss-Southwell priority
 * order, random coverage, activation/deactivation bookkeeping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/scheduler.hh"
#include "support/random.hh"

namespace graphabcd {
namespace {

TEST(Cyclic, SweepsInIdOrder)
{
    CyclicScheduler s(4);
    for (BlockId b = 0; b < 4; b++)
        s.activate(b, 1.0);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), 1u);
    EXPECT_EQ(s.next(), 2u);
    EXPECT_EQ(s.next(), 3u);
    EXPECT_EQ(s.next(), std::nullopt);
}

TEST(Cyclic, ResumesFromCursorNotFromZero)
{
    CyclicScheduler s(4);
    s.activate(0, 1.0);
    s.activate(1, 1.0);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), 1u);
    s.activate(0, 1.0);
    s.activate(3, 1.0);
    // Cursor sits at 2, so 3 comes before the wrap-around to 0.
    EXPECT_EQ(s.next(), 3u);
    EXPECT_EQ(s.next(), 0u);
}

TEST(Cyclic, DoubleActivationIsIdempotent)
{
    CyclicScheduler s(2);
    s.activate(1, 1.0);
    s.activate(1, 1.0);
    EXPECT_EQ(s.activeCount(), 1u);
    EXPECT_EQ(s.next(), 1u);
    EXPECT_TRUE(s.empty());
}

TEST(Priority, PicksLargestGradientFirst)
{
    PriorityScheduler s(4);
    s.activate(0, 1.0);
    s.activate(1, 5.0);
    s.activate(2, 3.0);
    EXPECT_EQ(s.next(), 1u);
    EXPECT_EQ(s.next(), 2u);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_TRUE(s.empty());
}

TEST(Priority, DeltasAccumulate)
{
    PriorityScheduler s(3);
    s.activate(0, 2.0);
    s.activate(1, 3.0);
    s.activate(0, 2.0);   // 0 now has 4.0 > 3.0
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), 1u);
}

TEST(Priority, ProcessingResetsPriority)
{
    PriorityScheduler s(2);
    s.activate(0, 10.0);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_DOUBLE_EQ(s.priority(0), 0.0);
    s.activate(0, 1.0);
    s.activate(1, 2.0);
    EXPECT_EQ(s.next(), 1u);   // old 10.0 must not linger
}

TEST(Priority, StaleHeapEntriesAreSkipped)
{
    PriorityScheduler s(3);
    for (int round = 0; round < 100; round++) {
        s.activate(0, 1.0);
        s.activate(1, 0.5);
        EXPECT_EQ(s.next(), 0u);
        EXPECT_EQ(s.next(), 1u);
        EXPECT_EQ(s.next(), std::nullopt);
    }
}

TEST(Priority, ZeroDeltaActivationDoesNotChurnTheHeap)
{
    // Regression: blocks are legitimately activated with delta 0 (e.g.
    // a scatter whose values changed below tolerance elsewhere).  With
    // pushedPrio at 0 the 25% growth test `prio > pushed * 1.25`
    // degenerates, so every re-activation must still be throttled.
    PriorityScheduler s(2);
    s.activate(0, 0.0);
    const std::uint64_t pushes = s.counters().heapPushes;
    EXPECT_EQ(pushes, 1u);
    for (int i = 0; i < 1000; i++)
        s.activate(0, 0.0);
    EXPECT_EQ(s.counters().heapPushes, pushes);   // no churn
    EXPECT_EQ(s.next(), 0u);                      // still schedulable
    EXPECT_EQ(s.next(), std::nullopt);
}

TEST(Priority, NegativeDeltaIsClampedAndDoesNotChurn)
{
    // Regression: a negative delta used to drive prio below pushedPrio,
    // making the refresh condition true on every call — one heap entry
    // per activation, exactly the churn the throttle exists to stop.
    PriorityScheduler s(2);
    s.activate(0, 4.0);
    const std::uint64_t pushes = s.counters().heapPushes;
    for (int i = 0; i < 1000; i++)
        s.activate(0, -1.0);
    EXPECT_DOUBLE_EQ(s.priority(0), 4.0);   // clamped, never lowered
    EXPECT_EQ(s.counters().heapPushes, pushes);
    s.activate(1, 1.0);
    EXPECT_EQ(s.next(), 0u);   // gradient order preserved
    EXPECT_EQ(s.next(), 1u);
}

TEST(Priority, ChurnThrottleIsLogarithmicInGrowth)
{
    // 1000 unit-delta activations grow the priority to ~1001; entries
    // are refreshed only on >25% growth, so the push count must be
    // O(log_1.25 1001) ~ 31, not O(1000).
    PriorityScheduler s(1);
    s.activate(0, 1.0);
    for (int i = 0; i < 1000; i++)
        s.activate(0, 1.0);
    EXPECT_LT(s.counters().heapPushes, 40u);
    EXPECT_GT(s.counters().refreshes, 0u);
    EXPECT_EQ(s.next(), 0u);
}

TEST(Priority, CountersTrackActivationsAndStaleDiscards)
{
    PriorityScheduler s(2);
    s.activate(0, 1.0);
    s.activate(0, 2.0);   // >25% growth: refresh, old entry goes stale
    EXPECT_EQ(s.counters().activations, 2u);
    EXPECT_EQ(s.counters().heapPushes, 2u);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), std::nullopt);   // pops the stale leftover
    EXPECT_EQ(s.counters().staleDiscards, 1u);
}

// Satellite audit: PriorityScheduler's lazy deletion against a
// reference model, under its (documented) fully-serialized contract.
// The model maps block -> accumulated priority; every pop must return
// an active block of maximal priority, and a full drain must empty the
// model exactly.  Randomized over activation patterns that produce
// duplicate heap keys, refreshes, and stale entries.
TEST(Priority, RandomizedModelAudit)
{
    constexpr BlockId kBlocks = 16;
    Rng rng(0xab5eedULL);
    for (int round = 0; round < 50; round++) {
        PriorityScheduler s(kBlocks);
        std::map<BlockId, double> model;   // active -> priority
        std::vector<double> prio(kBlocks, 0.0);
        for (int op = 0; op < 400; op++) {
            if (rng.nextBounded(3) != 0) {
                const auto b =
                    static_cast<BlockId>(rng.nextBounded(kBlocks));
                // Mix of equal, zero, and growing deltas so duplicate
                // heap keys and throttled refreshes both occur.
                const double d =
                    static_cast<double>(rng.nextBounded(4));
                if (d > 0.0)
                    prio[b] += d;
                model[b] = prio[b];
                s.activate(b, d);
            } else {
                auto got = s.next();
                if (model.empty()) {
                    EXPECT_EQ(got, std::nullopt);
                    continue;
                }
                ASSERT_TRUE(got.has_value());
                ASSERT_TRUE(model.count(*got)) << "popped inactive "
                                               << *got;
                double best = 0.0;
                for (auto &[b, p] : model)
                    best = std::max(best, p);
                // The scheduler refreshes a heap entry only once a
                // block's priority outgrows its pushed key by 25%
                // (churn throttle), so the pop is approximate
                // Gauss-Southwell: the popped block's true priority is
                // within a 1.25x factor of the maximum, never worse.
                EXPECT_GE(model[*got] * 1.25 + 1e-9, best)
                    << "inversion beyond the 25% refresh-throttle "
                    << "bound: popped " << model[*got] << " best "
                    << best;
                model.erase(*got);
                prio[*got] = 0.0;
            }
            ASSERT_EQ(s.activeCount(), model.size());
        }
        while (auto b = s.next()) {
            ASSERT_TRUE(model.count(*b));
            model.erase(*b);
        }
        EXPECT_TRUE(model.empty()) << "drain lost active blocks";
        EXPECT_TRUE(s.empty());
    }
}

TEST(Random, CoversAllActiveBlocks)
{
    RandomScheduler s(8, /*seed=*/5);
    for (BlockId b = 0; b < 8; b++)
        s.activate(b, 1.0);
    std::set<BlockId> seen;
    while (auto b = s.next())
        seen.insert(*b);
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, DeterministicPerSeed)
{
    RandomScheduler a(16, 7), b(16, 7);
    for (BlockId i = 0; i < 16; i++) {
        a.activate(i, 1.0);
        b.activate(i, 1.0);
    }
    for (int i = 0; i < 16; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, ActivationIdempotent)
{
    RandomScheduler s(4, 1);
    s.activate(2, 1.0);
    s.activate(2, 1.0);
    EXPECT_EQ(s.activeCount(), 1u);
}

TEST(Obim, LevelOfMapsExponentsToLevels)
{
    // Level 0 holds the largest priorities; the seed priority (1e9,
    // exponent 30) must land near the top but below the ceiling so a
    // later astronomically-large delta can still outrank it.
    EXPECT_EQ(ObimScheduler::levelOf(initialActivationPriority()), 1);
    EXPECT_EQ(ObimScheduler::levelOf(4e9), 0);       // >= 2^31 clamps
    EXPECT_EQ(ObimScheduler::levelOf(1.0), 30);      // frexp exp = 1
    EXPECT_EQ(ObimScheduler::levelOf(0.5), 31);
    EXPECT_LT(ObimScheduler::levelOf(1.0), ObimScheduler::levelOf(1e-6));
    EXPECT_EQ(ObimScheduler::levelOf(0.0), 63);      // weakest level
    EXPECT_EQ(ObimScheduler::levelOf(-1.0), 63);
    // Monotone: bigger priority never maps to a weaker (higher) level.
    double prev = 1e300;
    for (double p = 1e300; p > 1e-300; p /= 7.3) {
        EXPECT_LE(ObimScheduler::levelOf(prev), ObimScheduler::levelOf(p));
        prev = p;
    }
}

TEST(Obim, PopsHigherMagnitudeLevelsFirst)
{
    ObimScheduler s(8, 1);
    s.activate(0, 1e-6);
    s.activate(2, 1.0);
    s.activate(1, 100.0);
    // A 4th activation at a fresh level flushes block 1 out of the
    // producer's open chunk, so the first three pops are level-exact.
    s.activate(3, 1e-9);
    EXPECT_EQ(s.next(), 1u);
    EXPECT_EQ(s.next(), 2u);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), 3u);
    EXPECT_EQ(s.next(), std::nullopt);
    EXPECT_TRUE(s.empty());
}

TEST(Obim, FifoWithinOneLevel)
{
    ObimScheduler s(8, 1);
    for (BlockId b = 0; b < 8; b++)
        s.activate(b, 3.0);   // same level for all
    for (BlockId b = 0; b < 8; b++)
        EXPECT_EQ(s.next(), b);
}

TEST(Obim, DoubleActivationIsDeduped)
{
    ObimScheduler s(4, 1);
    s.activate(2, 1.0);
    s.activate(2, 0.0);    // same level: no duplicate entry
    s.activate(2, 0.25);   // 1.25 stays within level [1, 2): deduped
    EXPECT_EQ(s.activeCount(), 1u);
    EXPECT_EQ(s.next(), 2u);
    EXPECT_EQ(s.next(), std::nullopt);
    EXPECT_EQ(s.counters().staleDiscards, 0u);
    EXPECT_EQ(s.counters().heapPushes, 1u);
}

TEST(Obim, UpgradeReordersAndDiscardsStaleEntry)
{
    ObimScheduler s(4, 1);
    s.activate(1, 1.0);
    // Block 1 accumulates enough to jump a level: a duplicate entry is
    // pushed at the better level, the old one goes stale.  (The jump
    // also flushes the worker's open chunk, publishing the stale entry.)
    s.activate(1, 1000.0);
    s.activate(0, 1.0);
    EXPECT_EQ(s.activeCount(), 2u);
    EXPECT_EQ(s.next(), 1u);   // upgraded entry wins over block 0
    EXPECT_EQ(s.next(), 0u);
    EXPECT_EQ(s.next(), std::nullopt);   // consumes the stale leftover
    EXPECT_EQ(s.counters().staleDiscards, 1u);
    EXPECT_GT(s.counters().refreshes, 0u);
}

TEST(Obim, ProcessingResetsPriority)
{
    ObimScheduler s(2, 1);
    s.activate(0, 64.0);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_DOUBLE_EQ(s.priority(0), 0.0);   // consumed, not lingering
    s.activate(1, 32.0);
    s.activate(0, 1.0);
    EXPECT_EQ(s.next(), 1u);
    EXPECT_EQ(s.next(), 0u);
    EXPECT_DOUBLE_EQ(s.priority(0), 0.0);
}

TEST(Obim, DrainsOpenSlotChunksOnEmptyLevels)
{
    // More blocks than kChunkSize at one level: some sit in published
    // chunks, the remainder in the pushing thread's open slot chunk.
    // next() must find the ones still parked in the slot.
    constexpr BlockId kBlocks = 100;
    ObimScheduler s(kBlocks, 4);
    for (BlockId b = 0; b < kBlocks; b++)
        s.activate(b, 2.0);
    std::set<BlockId> seen;
    while (auto b = s.next())
        seen.insert(*b);
    EXPECT_EQ(seen.size(), kBlocks);
    EXPECT_TRUE(s.empty());
}

TEST(Obim, ConcurrentPushesAreNeitherLostNorDuplicated)
{
    // 4 producers activate disjoint block ranges while one consumer
    // drains; every block must be returned exactly once.  (activate()
    // is thread-safe; next() stays single-consumer per the contract.)
    constexpr BlockId kPerProducer = 512;
    constexpr int kProducers = 4;
    constexpr BlockId kBlocks = kPerProducer * kProducers;
    ObimScheduler s(kBlocks, kProducers);
    std::atomic<int> running{kProducers};
    std::vector<std::thread> producers;
    for (int t = 0; t < kProducers; t++) {
        producers.emplace_back([&, t] {
            Rng rng(1000 + static_cast<std::uint64_t>(t));
            for (BlockId i = 0; i < kPerProducer; i++) {
                const auto b = static_cast<BlockId>(t * kPerProducer + i);
                s.activate(b, rng.nextDouble() * 1e4 + 1e-7);
            }
            running.fetch_sub(1);
        });
    }
    std::vector<BlockId> popped;
    for (;;) {
        if (auto b = s.next()) {
            popped.push_back(*b);
            continue;
        }
        // Empty while producers are mid-flight is allowed (documented
        // missed-push window); only quiescent empty is final.
        if (running.load() == 0)
            break;
        std::this_thread::yield();
    }
    for (auto &p : producers)
        p.join();
    while (auto b = s.next())   // anything pushed after the last check
        popped.push_back(*b);
    EXPECT_TRUE(s.empty());
    std::sort(popped.begin(), popped.end());
    ASSERT_EQ(popped.size(), kBlocks);
    for (BlockId b = 0; b < kBlocks; b++)
        EXPECT_EQ(popped[b], b);
    EXPECT_EQ(s.counters().activations, kBlocks);
}

TEST(Factory, BuildsTheRequestedKind)
{
    EXPECT_EQ(makeScheduler(Schedule::Cyclic, 4, 1)->kind(),
              Schedule::Cyclic);
    EXPECT_EQ(makeScheduler(Schedule::Priority, 4, 1)->kind(),
              Schedule::Priority);
    EXPECT_EQ(makeScheduler(Schedule::Random, 4, 1)->kind(),
              Schedule::Random);
    auto obim = makeScheduler(Schedule::Obim, 4, 1, /*num_workers=*/2);
    EXPECT_EQ(obim->kind(), Schedule::Obim);
    EXPECT_TRUE(obim->concurrentPush());
    EXPECT_FALSE(makeScheduler(Schedule::Priority, 4, 1)->concurrentPush());
}

TEST(Factory, NamesRoundTrip)
{
    EXPECT_STREQ(to_string(Schedule::Cyclic), "cyclic");
    EXPECT_STREQ(to_string(Schedule::Priority), "priority");
    EXPECT_STREQ(to_string(Schedule::Obim), "obim");
    EXPECT_STREQ(to_string(ExecMode::Async), "async");
    EXPECT_STREQ(to_string(ExecMode::Bsp), "bsp");
}

} // namespace
} // namespace graphabcd
