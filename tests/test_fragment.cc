/**
 * @file
 * Tests of the fragment scale-out subsystem: topology cuts, the sharded
 * engine's equivalence with the exact references across fragment and
 * thread counts (including counts that do not divide |V| and the
 * 1-fragment degenerate case), termination accounting, cancellation,
 * and a cancel-storm stress aimed at the TSan build.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "algorithms/sssp.hh"
#include "core/stop_token.hh"
#include "fragment/engine.hh"
#include "fragment/topology.hh"
#include "graph/generators.hh"

namespace graphabcd {
namespace {

// ---------------------------------------------------------- topology

TEST(FragmentTopology, CutsAreContiguousAndCoverEverything)
{
    Rng rng(61);
    EdgeList el = generateRmat(1013, 8000, rng);
    BlockPartition g(el, 32);
    FragmentTopology topo(g, 4);

    ASSERT_EQ(topo.numFragments(), 4u);
    EXPECT_EQ(topo.blockBegin(0), 0u);
    EXPECT_EQ(topo.blockEnd(3), g.numBlocks());
    EXPECT_EQ(topo.vertexBegin(0), 0u);
    EXPECT_EQ(topo.vertexEnd(3), g.numVertices());
    EXPECT_EQ(topo.edgeBegin(0), 0u);
    EXPECT_EQ(topo.edgeEnd(3), g.numEdges());
    for (FragmentId f = 0; f < 4; f++) {
        EXPECT_GE(topo.blockCount(f), 1u) << "fragment " << f;
        if (f > 0) {
            EXPECT_EQ(topo.blockBegin(f), topo.blockEnd(f - 1));
            EXPECT_EQ(topo.vertexBegin(f), topo.vertexEnd(f - 1));
            EXPECT_EQ(topo.edgeBegin(f), topo.edgeEnd(f - 1));
        }
        // Fragment boundaries sit on block boundaries.
        EXPECT_EQ(topo.vertexBegin(f), g.blockBegin(topo.blockBegin(f)));
    }
}

TEST(FragmentTopology, OwnershipLookupsRoundTrip)
{
    Rng rng(62);
    EdgeList el = generateRmat(500, 4000, rng);
    BlockPartition g(el, 16);
    FragmentTopology topo(g, 8);

    for (BlockId b = 0; b < g.numBlocks(); b++) {
        const FragmentId f = topo.fragmentOfBlock(b);
        EXPECT_GE(b, topo.blockBegin(f));
        EXPECT_LT(b, topo.blockEnd(f));
    }
    for (VertexId v = 0; v < g.numVertices(); v += 7) {
        const FragmentId f = topo.fragmentOfVertex(v);
        EXPECT_GE(v, topo.vertexBegin(f));
        EXPECT_LT(v, topo.vertexEnd(f));
        // A vertex and its block agree on ownership.
        EXPECT_EQ(f, topo.fragmentOfBlock(g.blockOf(v)));
    }
    for (EdgeId e = 0; e < g.numEdges(); e += 13) {
        const FragmentId f = topo.fragmentOfEdge(e);
        EXPECT_GE(e, topo.edgeBegin(f));
        EXPECT_LT(e, topo.edgeEnd(f));
    }
}

TEST(FragmentTopology, RequestClampsToBlockCount)
{
    Rng rng(63);
    EdgeList el = generateRmat(64, 512, rng);
    BlockPartition g(el, 16);   // only a handful of blocks
    FragmentTopology topo(g, 1000);
    EXPECT_EQ(topo.numFragments(), g.numBlocks());
    for (FragmentId f = 0; f < topo.numFragments(); f++)
        EXPECT_EQ(topo.blockCount(f), 1u);
}

// ------------------------------------------- engine equivalence sweep

struct FragCase
{
    std::uint32_t fragments;
    std::uint32_t threads;
};

std::string
caseName(const testing::TestParamInfo<FragCase> &info)
{
    return std::string("f") + std::to_string(info.param.fragments) +
           "_t" + std::to_string(info.param.threads);
}

class FragmentSweep : public testing::TestWithParam<FragCase>
{
  protected:
    EngineOptions
    options() const
    {
        EngineOptions opt;
        opt.blockSize = 32;
        opt.fragments = GetParam().fragments;
        opt.numThreads = GetParam().threads;
        opt.tolerance = 1e-12;
        return opt;
    }
};

TEST_P(FragmentSweep, PageRankMatchesReference)
{
    Rng rng(64);
    // 1013 vertices: prime, so no fragment count divides it evenly.
    EdgeList el = generateRmat(1013, 8000, rng);
    EngineOptions opt = options();
    BlockPartition g(el, opt.blockSize);

    FragmentEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                           opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_P(FragmentSweep, SsspMatchesDijkstra)
{
    Rng rng(65);
    EdgeList el = generateRmat(600, 4800, rng, {.weighted = true});
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);

    FragmentEngine<SsspProgram> engine(g, SsspProgram(0), opt);
    std::vector<double> dist;
    EngineReport report = engine.run(dist);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = dijkstraReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(dist[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_P(FragmentSweep, BfsMatchesReference)
{
    Rng rng(66);
    EdgeList el = generateRmat(600, 4800, rng);
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);

    FragmentEngine<BfsProgram> engine(g, BfsProgram(0), opt);
    std::vector<double> depth;
    EngineReport report = engine.run(depth);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = bfsReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(depth[v], ref[v]) << "vertex " << v;
}

TEST_P(FragmentSweep, ConnectedComponentsMatchUnionFind)
{
    Rng rng(67);
    EdgeList el = generateErdosRenyi(400, 330, rng);
    EdgeList sym = el.symmetrized();
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(sym, opt.blockSize);

    FragmentEngine<CcProgram> engine(g, CcProgram(), opt);
    std::vector<double> labels;
    EngineReport report = engine.run(labels);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = ccReference(el);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(labels[v], ref[v]) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(
    FragmentsAndThreads, FragmentSweep,
    testing::Values(FragCase{1, 1}, FragCase{2, 1}, FragCase{2, 2},
                    FragCase{4, 2}, FragCase{4, 4}, FragCase{8, 4},
                    FragCase{8, 8}),
    caseName);

// -------------------------------------------- accounting and control

TEST(FragmentEngine, SingleFragmentSendsNoMessages)
{
    Rng rng(68);
    EdgeList el = generateRmat(300, 2400, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.fragments = 1;
    opt.numThreads = 4;
    opt.tolerance = 1e-10;
    BlockPartition g(el, opt.blockSize);

    FragmentEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                           opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);
    ASSERT_EQ(engine.fragmentStats().size(), 1u);
    EXPECT_EQ(engine.fragmentStats()[0].messagesSent, 0u);
    EXPECT_EQ(engine.fragmentStats()[0].messagesReceived, 0u);
}

TEST(FragmentEngine, MessageCountsBalanceAtQuiescence)
{
    Rng rng(69);
    EdgeList el = generateRmat(800, 6400, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.fragments = 4;
    opt.numThreads = 4;
    opt.tolerance = 1e-10;
    BlockPartition g(el, opt.blockSize);

    FragmentEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                           opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    std::uint64_t sent = 0, received = 0, blocks = 0;
    for (const FragmentRunStats &s : engine.fragmentStats()) {
        sent += s.messagesSent;
        received += s.messagesReceived;
        blocks += s.blockUpdates;
    }
    EXPECT_GT(sent, 0u) << "4 fragments must exchange deltas";
    EXPECT_EQ(sent, received) << "quiescence requires drained rings";
    EXPECT_EQ(blocks, report.blockUpdates);
}

TEST(FragmentEngine, BudgetHaltNeverClaimsConvergence)
{
    Rng rng(70);
    EdgeList el = generateRmat(500, 4000, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.fragments = 4;
    opt.numThreads = 2;
    opt.tolerance = 1e-14;
    opt.maxEpochs = 0.25;   // far below what PR needs
    BlockPartition g(el, opt.blockSize);

    FragmentEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                           opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_FALSE(report.converged);
    EXPECT_FALSE(report.stopped);
}

TEST(FragmentEngine, StopTokenEndsTheRun)
{
    Rng rng(71);
    EdgeList el = generateRmat(500, 4000, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.fragments = 4;
    opt.numThreads = 2;
    opt.tolerance = 1e-14;
    BlockPartition g(el, opt.blockSize);

    StopSource stop;
    stop.requestStop();
    opt.stop = stop.token();

    FragmentEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                           opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.stopped);
    EXPECT_FALSE(report.converged);
}

// ------------------------------------------------------ cancel storm

/**
 * The TSan target: 8 fragments under concurrent ring traffic, with a
 * stop token fired at staggered points — from before the run starts to
 * mid-flight — so claim handoff, drain/flush, the termination detector
 * and cancellation all race.  GRAPHABCD_FRAGMENT_STRESS_ITERS scales
 * the iteration count (tools/ci.sh raises it on the TSan leg).
 */
TEST(FragmentStress, CancelStormUnderTraffic)
{
    int iters = 6;
    if (const char *env =
            std::getenv("GRAPHABCD_FRAGMENT_STRESS_ITERS")) {
        iters = std::max(1, std::atoi(env));
    }

    Rng rng(72);
    EdgeList el = generateRmat(1500, 12000, rng);
    BlockPartition g(el, 32);
    std::vector<double> ref = pagerankReference(el, 0.85);

    for (int it = 0; it < iters; it++) {
        EngineOptions opt;
        opt.blockSize = 32;
        opt.fragments = 8;
        opt.numThreads = 4;
        opt.tolerance = 1e-10;

        StopSource stop;
        opt.stop = stop.token();

        FragmentEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                               opt);
        // Stagger the trigger across iterations: 0 fires before any
        // block is processed, larger delays land mid-run or after
        // quiescence.
        std::atomic<bool> fired{false};
        std::thread trigger([&] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(it * 400));
            stop.requestStop();
            fired.store(true);
        });

        std::vector<double> x;
        EngineReport report = engine.run(x);
        trigger.join();
        ASSERT_TRUE(fired.load());

        if (report.converged) {
            // A run that beat the trigger must be a correct fixpoint.
            for (VertexId v = 0; v < el.numVertices(); v++)
                ASSERT_NEAR(x[v], ref[v], 1e-5) << "vertex " << v;
        }
    }
}

} // namespace
} // namespace graphabcd
