file(REMOVE_RECURSE
  "CMakeFiles/abcd_harp.dir/graphicionado.cc.o"
  "CMakeFiles/abcd_harp.dir/graphicionado.cc.o.d"
  "libabcd_harp.a"
  "libabcd_harp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcd_harp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
