/**
 * @file
 * StallWatchdog — detects jobs whose progress counters have gone flat.
 *
 * The asynchronous execution models this repo reproduces (GraphABCD's
 * barrier-free block scheduling, Maiter-style delta accumulation, the
 * fragment engine's four-counter quiescence detector) share a failure
 * mode: a bug does not crash, it simply stops making progress — a lost
 * wakeup, a termination detector that never fires, a ring that nobody
 * drains.  Metrics alone cannot distinguish "slow" from "wedged"; a
 * watchdog that samples a job's monotone progress counters can.
 *
 * One background thread polls every watched task each checkSeconds.
 * A task whose progress value has not moved for windowSeconds while
 * watched is *flagged*: the on-stall callback fires once (outside the
 * watchdog mutex), a structured WARN is emitted, the
 * `serve.jobs.stalled` gauge rises, and — if a FlightRecorder is armed
 * — the black box is dumped with the stall as the reason.  A flagged
 * task whose counter moves again is unflagged (recovery), and may be
 * flagged again later; the callback refires per episode.
 *
 * The progress callback must be lock-free (it is invoked under the
 * watchdog mutex): summing relaxed atomics, reading a gauge.  The
 * JobManager registers each Running job with a closure over its
 * Progress sink and unregisters on completion, so only Running jobs
 * are ever inspected.
 *
 * Built only with GRAPHABCD_OBS_ENABLED=1; the OFF build gets an empty
 * stub with the same surface so `if constexpr (obs::kEnabled)` call
 * sites still parse.
 */

#ifndef GRAPHABCD_OBS_WATCHDOG_HH
#define GRAPHABCD_OBS_WATCHDOG_HH

#include <cstddef>
#include <cstdint>
#include <string>

#ifndef GRAPHABCD_OBS_ENABLED
#define GRAPHABCD_OBS_ENABLED 1
#endif

#if GRAPHABCD_OBS_ENABLED

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace graphabcd {
namespace obs {

/** Background flat-progress detector (see file comment). */
class StallWatchdog
{
  public:
    struct Config
    {
        /** Flat-progress window before a task is flagged. */
        double windowSeconds = 5.0;
        /** Poll period of the background thread. */
        double checkSeconds = 0.25;
        /** Gauge holding the number of currently flagged tasks. */
        const char *stalledGaugeName = "serve.jobs.stalled";
        /** Counter of stall episodes (monotonic). */
        const char *eventsCounterName = "serve.jobs.stall_events";
        /** Dump the armed FlightRecorder on each stall episode. */
        bool dumpFlightOnStall = true;
    };

    /** Snapshot of the watched progress value; must be lock-free. */
    using ProgressFn = std::function<std::uint64_t()>;
    /** Fired once per stall episode, outside the watchdog mutex. */
    using StallFn = std::function<void(const std::string &diagnosis)>;

    /** Default-configured watchdog (defined out of line: a nested
     *  aggregate's member initializers are not usable as an in-class
     *  default argument). */
    StallWatchdog();

    explicit StallWatchdog(Config config);

    /** Stops and joins the poll thread. */
    ~StallWatchdog();

    StallWatchdog(const StallWatchdog &) = delete;
    StallWatchdog &operator=(const StallWatchdog &) = delete;

    /** Start the background poll thread (idempotent). */
    void start();

    /** Stop and join the poll thread (idempotent). */
    void stop();

    /**
     * Begin watching a task.  The window starts now: a task that never
     * moves its counter is flagged after windowSeconds.
     * @param id caller-chosen key (the serve JobId); re-watching an id
     *        replaces the previous entry.
     * @param label human-readable name carried into the diagnosis.
     */
    void watch(std::uint64_t id, std::string label, ProgressFn progress,
               StallFn on_stall);

    /** Stop watching (no-op for unknown ids). */
    void unwatch(std::uint64_t id);

    /** Run one poll pass synchronously (tests; thread need not run). */
    void pollNow();

    /** @return stall episodes fired over the watchdog's lifetime. */
    std::uint64_t stallEvents() const;

    /** @return tasks currently flagged as stalled. */
    std::size_t flaggedCount() const;

    /** @return whether a specific task is currently flagged. */
    bool isFlagged(std::uint64_t id) const;

  private:
    struct Entry
    {
        std::string label;
        ProgressFn progress;
        StallFn onStall;
        std::uint64_t lastValue = 0;
        double lastChangeAt = 0.0;   //!< monotonicSeconds()
        bool flagged = false;
    };

    void loop();
    void checkOnce();

    const Config cfg_;

    mutable std::mutex mtx_;
    std::condition_variable cv_;
    std::map<std::uint64_t, Entry> tasks_;
    std::uint64_t events_ = 0;
    std::size_t flagged_ = 0;
    bool running_ = false;        //!< poll thread alive
    bool stopRequested_ = false;
    std::thread thread_;
};

} // namespace obs
} // namespace graphabcd

#else // !GRAPHABCD_OBS_ENABLED

namespace graphabcd {
namespace obs {

/** No-op stub: same surface, empty bodies, nothing compiled in. */
class StallWatchdog
{
  public:
    struct Config
    {
        double windowSeconds = 5.0;
        double checkSeconds = 0.25;
        const char *stalledGaugeName = "";
        const char *eventsCounterName = "";
        bool dumpFlightOnStall = true;
    };

    StallWatchdog() {}
    explicit StallWatchdog(Config) {}

    void start() {}
    void stop() {}

    template <typename ProgressFn, typename StallFn>
    void
    watch(std::uint64_t, std::string, ProgressFn &&, StallFn &&)
    {
    }

    void unwatch(std::uint64_t) {}
    void pollNow() {}
    std::uint64_t stallEvents() const { return 0; }
    std::size_t flaggedCount() const { return 0; }
    bool isFlagged(std::uint64_t) const { return false; }
};

} // namespace obs
} // namespace graphabcd

#endif // GRAPHABCD_OBS_ENABLED

#endif // GRAPHABCD_OBS_WATCHDOG_HH
