/**
 * @file
 * Small fixed-size worker pool used by the threaded asynchronous engine.
 */

#ifndef GRAPHABCD_RUNTIME_THREAD_POOL_HH
#define GRAPHABCD_RUNTIME_THREAD_POOL_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/task_queue.hh"

namespace graphabcd {

/**
 * Fire-and-forget thread pool: submit() enqueues closures, drain() blocks
 * until every submitted closure has finished.  Destruction joins.
 */
class ThreadPool
{
  public:
    /** @param num_threads worker count; must be > 0. */
    explicit ThreadPool(std::size_t num_threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a closure for execution on some worker. */
    void submit(std::function<void()> fn);

    /** Block until all submitted closures have completed. */
    void drain();

    /** @return worker count. */
    std::size_t size() const { return workers.size(); }

  private:
    void workerLoop();

    TaskQueue<std::function<void()>> queue;
    std::vector<std::thread> workers;
    std::atomic<std::size_t> inflight{0};
    std::mutex idleMtx;
    std::condition_variable idleCv;
};

/**
 * Reusable spinning barrier for a fixed set of participants; models the
 * global memory barrier of the BSP baseline.
 */
class SpinBarrier
{
  public:
    /** @param num_threads participants per round; must be > 0. */
    explicit SpinBarrier(std::size_t num_threads)
        : count(num_threads), waiting(0), generation(0)
    {
        GRAPHABCD_ASSERT(num_threads > 0, "empty barrier");
    }

    /** Block until all participants of this round have arrived. */
    void
    arriveAndWait()
    {
        const std::size_t gen = generation.load(std::memory_order_acquire);
        if (waiting.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
            waiting.store(0, std::memory_order_relaxed);
            generation.fetch_add(1, std::memory_order_release);
        } else {
            while (generation.load(std::memory_order_acquire) == gen)
                std::this_thread::yield();
        }
    }

  private:
    const std::size_t count;
    std::atomic<std::size_t> waiting;
    std::atomic<std::size_t> generation;
};

} // namespace graphabcd

#endif // GRAPHABCD_RUNTIME_THREAD_POOL_HH
