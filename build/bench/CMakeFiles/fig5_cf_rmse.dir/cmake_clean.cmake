file(REMOVE_RECURSE
  "CMakeFiles/fig5_cf_rmse.dir/fig5_cf_rmse.cc.o"
  "CMakeFiles/fig5_cf_rmse.dir/fig5_cf_rmse.cc.o.d"
  "fig5_cf_rmse"
  "fig5_cf_rmse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cf_rmse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
