#include "serve/qos.hh"

#include <cstddef>
#include <string>
#include <vector>

namespace graphabcd {

namespace {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

bool
parseDouble(const std::string &s, double *out)
{
    if (s.empty())
        return false;
    std::size_t consumed = 0;
    try {
        *out = std::stod(s, &consumed);
    } catch (...) {
        return false;
    }
    return consumed == s.size();
}

bool
parseSize(const std::string &s, std::size_t *out)
{
    if (s.empty() || s[0] == '-')
        return false;
    std::size_t consumed = 0;
    try {
        *out = static_cast<std::size_t>(std::stoull(s, &consumed));
    } catch (...) {
        return false;
    }
    return consumed == s.size();
}

void
fail(std::string *error, const std::string &clause, const char *why)
{
    if (error)
        *error = "bad tenant spec '" + clause + "': " + why;
}

} // namespace

bool
parseTenantQosSpecs(const std::string &spec,
                    std::map<std::string, TenantQos> *out,
                    std::string *error)
{
    std::map<std::string, TenantQos> parsed;
    for (const std::string &clause : split(spec, ',')) {
        if (clause.empty())
            continue;   // tolerate stray commas
        const std::vector<std::string> fields = split(clause, ':');
        if (fields[0].empty()) {
            fail(error, clause, "empty tenant name");
            return false;
        }
        if (fields.size() < 2 || fields.size() > 4) {
            fail(error, clause,
                 "want name:weight[:maxInFlight[:maxQueued]]");
            return false;
        }
        TenantQos qos;
        if (!parseDouble(fields[1], &qos.weight) || qos.weight <= 0.0) {
            fail(error, clause, "weight must be a positive number");
            return false;
        }
        if (fields.size() >= 3 &&
            !parseSize(fields[2], &qos.maxInFlight)) {
            fail(error, clause, "maxInFlight must be a non-negative int");
            return false;
        }
        if (fields.size() >= 4 && !parseSize(fields[3], &qos.maxQueued)) {
            fail(error, clause, "maxQueued must be a non-negative int");
            return false;
        }
        parsed[fields[0]] = qos;
    }
    for (auto &entry : parsed)
        (*out)[entry.first] = entry.second;
    return true;
}

} // namespace graphabcd
