# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(abcd_tests "/root/repo/build/tests/abcd_tests")
set_tests_properties(abcd_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;20;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;23;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_route_planner "/root/repo/build/examples/route_planner" "--rows" "40" "--cols" "40")
set_tests_properties(example_route_planner PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;24;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_recommender "/root/repo/build/examples/recommender" "--users" "300" "--movies" "80" "--ratings" "9000" "--epochs" "10")
set_tests_properties(example_recommender PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;25;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_community_detection "/root/repo/build/examples/community_detection")
set_tests_properties(example_community_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;27;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(example_web_ranking "/root/repo/build/examples/web_ranking" "--scale" "0.2")
set_tests_properties(example_web_ranking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_pagerank "/root/repo/build/tools/abcd_cli" "--algo" "pr" "--dataset" "WT" "--scale" "0.1" "--engine" "sim")
set_tests_properties(cli_pagerank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;29;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_sssp_async "/root/repo/build/tools/abcd_cli" "--algo" "sssp" "--dataset" "PS" "--scale" "0.1" "--engine" "async")
set_tests_properties(cli_sssp_async PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;31;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_kcore "/root/repo/build/tools/abcd_cli" "--algo" "kcore" "--dataset" "WT" "--scale" "0.1" "--k" "4")
set_tests_properties(cli_kcore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
