/**
 * @file
 * Minimal command-line flag parser shared by benches and examples.
 *
 * Supports "--name value" and "--name=value" forms plus boolean switches.
 * Unknown flags are fatal so typos in experiment scripts fail loudly.
 */

#ifndef GRAPHABCD_SUPPORT_FLAGS_HH
#define GRAPHABCD_SUPPORT_FLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace graphabcd {

/**
 * Declarative flag set: declare the flags with defaults, then parse().
 */
class Flags
{
  public:
    /** Declare a string flag. */
    void declare(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /** Declare an integer flag. */
    void declareInt(const std::string &name, std::int64_t default_value,
                    const std::string &help);

    /** Declare a floating-point flag. */
    void declareDouble(const std::string &name, double default_value,
                       const std::string &help);

    /** Declare a boolean switch (present => true, or --name=false). */
    void declareBool(const std::string &name, bool default_value,
                     const std::string &help);

    /**
     * Parse argv.  "--help" prints usage and returns false (caller should
     * exit 0).  Unknown flags call fatal().
     * @return true when the program should continue.
     */
    bool parse(int argc, char **argv);

    /** Accessors; fatal() on undeclared names. */
    const std::string &get(const std::string &name) const;
    std::int64_t getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** Print the usage text to stderr. */
    void usage(const std::string &program) const;

  private:
    enum class Kind { String, Int, Double, Bool };

    struct Entry
    {
        Kind kind;
        std::string value;
        std::string help;
    };

    const Entry &lookup(const std::string &name, Kind kind) const;

    std::map<std::string, Entry> entries;
    std::vector<std::string> order;
};

} // namespace graphabcd

#endif // GRAPHABCD_SUPPORT_FLAGS_HH
