/**
 * @file
 * Correctness of the serial BCD engine across the full design-option
 * spectrum: every (block size x schedule x execution mode) combination
 * must reach the same fixed point as the exact references, for PageRank,
 * SSSP, BFS and Connected Components.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "algorithms/sssp.hh"
#include "core/engine.hh"
#include "graph/generators.hh"

namespace graphabcd {
namespace {

struct EngineCase
{
    VertexId blockSize;
    Schedule schedule;
    ExecMode mode;
};

std::string
caseName(const testing::TestParamInfo<EngineCase> &info)
{
    const EngineCase &c = info.param;
    return std::string("bs") + std::to_string(c.blockSize) + "_" +
           to_string(c.schedule) + "_" + to_string(c.mode);
}

std::vector<EngineCase>
allCases()
{
    std::vector<EngineCase> cases;
    for (VertexId bs : {1u, 7u, 32u, 100000u}) {
        for (Schedule sched : {Schedule::Cyclic, Schedule::Priority,
                               Schedule::Random}) {
            for (ExecMode mode : {ExecMode::Async, ExecMode::Bsp})
                cases.push_back({bs, sched, mode});
        }
    }
    return cases;
}

class EngineSweep : public testing::TestWithParam<EngineCase>
{
  protected:
    EngineOptions
    options() const
    {
        EngineOptions opt;
        opt.blockSize = GetParam().blockSize;
        opt.schedule = GetParam().schedule;
        opt.mode = GetParam().mode;
        opt.seed = 3;
        return opt;
    }
};

TEST_P(EngineSweep, PageRankMatchesPowerIteration)
{
    Rng rng(31);
    EdgeList el = generateRmat(300, 2400, rng);
    EngineOptions opt = options();
    opt.tolerance = 1e-12;
    BlockPartition g(el, opt.blockSize);

    SerialEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-7) << "vertex " << v;
    // At the fixed point the Eq. (3) gradient must be ~0.
    EXPECT_LT(pagerankResidual(g, x, 0.85), 1e-7);
}

TEST_P(EngineSweep, SsspMatchesDijkstra)
{
    Rng rng(32);
    EdgeList el = generateRmat(300, 2400, rng,
                               {.weighted = true});
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);

    SerialEngine<SsspProgram> engine(g, SsspProgram(0), opt);
    std::vector<double> dist;
    EngineReport report = engine.run(dist);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = dijkstraReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(dist[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_P(EngineSweep, BfsMatchesReference)
{
    Rng rng(33);
    EdgeList el = generateRmat(256, 1500, rng);
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);

    SerialEngine<BfsProgram> engine(g, BfsProgram(0), opt);
    std::vector<double> depth;
    EngineReport report = engine.run(depth);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = bfsReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(depth[v], ref[v]) << "vertex " << v;
}

TEST_P(EngineSweep, ConnectedComponentsMatchUnionFind)
{
    Rng rng(34);
    // Sparse so several components exist.
    EdgeList el = generateErdosRenyi(400, 300, rng);
    EdgeList sym = el.symmetrized();
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(sym, opt.blockSize);

    SerialEngine<CcProgram> engine(g, CcProgram(), opt);
    std::vector<double> labels;
    EngineReport report = engine.run(labels);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = ccReference(el);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(labels[v], ref[v]) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(DesignSpectrum, EngineSweep,
                         testing::ValuesIn(allCases()), caseName);

// ------------------------------------------------------------ reporting

TEST(EngineReport, AccountsWorkConsistently)
{
    Rng rng(35);
    EdgeList el = generateRmat(200, 1600, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.tolerance = 1e-10;
    BlockPartition g(el, opt.blockSize);
    SerialEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);

    EXPECT_GT(report.blockUpdates, 0u);
    EXPECT_GT(report.vertexUpdates, 0u);
    EXPECT_GT(report.edgeTraversals, 0u);
    EXPECT_NEAR(report.epochs,
                static_cast<double>(report.vertexUpdates) /
                    el.numVertices(),
                1e-9);
    // Every block update touches at most blockSize vertices.
    EXPECT_LE(report.vertexUpdates,
              report.blockUpdates * static_cast<std::uint64_t>(32));
}

TEST(EngineReport, MaxEpochsStopsDivergentRuns)
{
    // On a chain the uniform start is far from the PR fixed point and
    // deltas shrink only geometrically, so tolerance 0 cannot quiesce
    // within 2 epochs.
    EdgeList el = generateChain(64);
    EngineOptions opt;
    opt.blockSize = 8;
    opt.tolerance = 0.0;
    opt.maxEpochs = 2.0;
    BlockPartition g(el, opt.blockSize);
    SerialEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_FALSE(report.converged);
    EXPECT_LE(report.epochs, 2.0 + 8.0 / 64.0 + 1e-9);
}

TEST(EngineTrace, SamplesAtRequestedInterval)
{
    Rng rng(36);
    EdgeList el = generateRmat(128, 1024, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.tolerance = 1e-10;
    opt.traceInterval = 1.0;
    BlockPartition g(el, opt.blockSize);
    SerialEngine<PageRankProgram> engine(g, PageRankProgram(), opt);

    int callbacks = 0;
    std::vector<double> x;
    EngineReport report = engine.run(
        x, [&callbacks](double, const std::vector<double> &) {
            callbacks++;
        });
    EXPECT_EQ(static_cast<int>(report.trace.size()), callbacks);
    EXPECT_GT(callbacks, 0);
    // Trace epochs are monotone.
    for (std::size_t i = 1; i < report.trace.size(); i++)
        EXPECT_GT(report.trace[i].epochs, report.trace[i - 1].epochs);
}

// --------------------------------------------- convergence-rate shapes

double
pagerankEpochs(const EdgeList &el, VertexId block_size, Schedule sched)
{
    EngineOptions opt;
    opt.blockSize = block_size;
    opt.schedule = sched;
    opt.tolerance = 1e-9;
    opt.mode = block_size >= el.numVertices() ? ExecMode::Bsp
                                              : ExecMode::Async;
    BlockPartition g(el, opt.blockSize);
    SerialEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    return engine.run(x).epochs;
}

TEST(ConvergenceShape, SmallerBlocksConvergeInFewerEpochs)
{
    // The paper's Fig. 4 monotonicity: Gauss-Seidel with smaller blocks
    // commits updates earlier, so fewer |V|-normalised updates are
    // needed than BSP (block size |V|).
    Rng rng(37);
    EdgeList el = generateRmat(1024, 8192, rng);
    double bsp = pagerankEpochs(el, el.numVertices(), Schedule::Cyclic);
    double big = pagerankEpochs(el, 256, Schedule::Cyclic);
    double small = pagerankEpochs(el, 16, Schedule::Cyclic);
    EXPECT_LT(big, bsp);
    EXPECT_LT(small, big * 1.05);   // allow slight noise, expect <=
    EXPECT_LT(small, bsp);
}

double
pagerankEpochsToResidual(const EdgeList &el, VertexId block_size,
                         Schedule sched, double eps)
{
    EngineOptions opt;
    opt.blockSize = block_size;
    opt.schedule = sched;
    opt.tolerance = 1e-12;
    opt.maxEpochs = 200.0;
    opt.traceInterval = 0.5;
    BlockPartition g(el, opt.blockSize);
    SerialEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(
        x, nullptr,
        [&g, eps](double, const std::vector<double> &values) {
            return pagerankResidual(g, values, 0.85) < eps;
        });
    EXPECT_TRUE(report.converged);
    return report.epochs;
}

TEST(ConvergenceShape, PriorityBeatsCyclicUnderObjectiveStop)
{
    // The paper's convergence criterion is objective discrepancy, not
    // active-list quiescence; under it, Gauss-Southwell priority
    // front-loads the objective decrease and crosses the threshold in
    // fewer epochs, most visibly at small block sizes (Sec. V-B).
    Rng rng(38);
    EdgeList el = generateRmat(16384, 131072, rng);
    double cyclic =
        pagerankEpochsToResidual(el, 8, Schedule::Cyclic, 1e-9);
    double priority =
        pagerankEpochsToResidual(el, 8, Schedule::Priority, 1e-9);
    EXPECT_LT(priority, cyclic);
}

TEST(ConvergenceShape, AsyncGsAndJacobiReachTheSameFixedPoint)
{
    Rng rng(39);
    EdgeList el = generateRmat(512, 4096, rng);
    EngineOptions gs;
    gs.blockSize = 64;
    gs.tolerance = 1e-12;
    EngineOptions bsp = gs;
    bsp.mode = ExecMode::Bsp;

    BlockPartition g(el, 64);
    std::vector<double> a, b;
    SerialEngine<PageRankProgram>(g, PageRankProgram(), gs).run(a);
    SerialEngine<PageRankProgram>(g, PageRankProgram(), bsp).run(b);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(a[v], b[v], 1e-8);
}

} // namespace
} // namespace graphabcd
