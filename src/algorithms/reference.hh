/**
 * @file
 * Exact reference implementations used to validate the BCD engines and
 * the baselines: textbook power iteration, Dijkstra, BFS and union-find.
 */

#ifndef GRAPHABCD_ALGORITHMS_REFERENCE_HH
#define GRAPHABCD_ALGORITHMS_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "graph/edge_list.hh"
#include "graph/types.hh"

namespace graphabcd {

/**
 * Jacobi power iteration for PageRank with the same dangling-mass
 * convention as PageRankProgram (dangling rank leaks).
 * @param tol iterate until max per-vertex change < tol.
 * @return converged rank vector.
 */
std::vector<double> pagerankReference(const EdgeList &el, double alpha,
                                      double tol = 1e-12,
                                      std::uint32_t max_iters = 10000);

/**
 * Dijkstra from `source` using a binary heap.
 * @return distances; SsspProgram::unreachable-compatible 1e18 when
 *         unreachable.
 */
std::vector<double> dijkstraReference(const EdgeList &el, VertexId source);

/** Level-synchronous BFS depth; 1e18 when unreachable. */
std::vector<double> bfsReference(const EdgeList &el, VertexId source);

/**
 * Connected components on the *undirected* view of `el` via union-find;
 * every vertex is labelled with the smallest vertex id in its component
 * (matching CcProgram's fixed point).
 */
std::vector<double> ccReference(const EdgeList &el);

} // namespace graphabcd

#endif // GRAPHABCD_ALGORITHMS_REFERENCE_HH
