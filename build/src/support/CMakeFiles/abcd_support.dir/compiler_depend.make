# Empty compiler generated dependencies file for abcd_support.
# This may be replaced when dependencies are built.
