/**
 * @file
 * JobManager — the serve layer's execution core.
 *
 * Threading model (documented in DESIGN.md "Serve layer"):
 *
 *  - submit() runs on the client thread: it resolves the graph handle,
 *    consults the ResultCache (an exact hit completes the job without
 *    ever queueing), and admits the job to a bounded priority queue.
 *    A saturated queue rejects with QueueFull instead of blocking —
 *    admission control, not buffering.
 *
 *  - A fixed pool of service workers pops jobs in priority order and
 *    runs the engine synchronously.  Engines are handed a StopToken
 *    (cancel() + per-job deadline) they poll at block granularity, and
 *    a Progress sink of relaxed atomics they publish into, so
 *    status() snapshots never touch an engine lock.
 *
 *  - One mutex guards the job table, stats, and the warm-start index;
 *    it is never held across an engine run, a partition build, or a
 *    queue wait.  The ResultCache and AdmissionQueue have their own
 *    locks, always acquired after (never while holding) the manager
 *    lock held only for map/stat updates — no lock-order cycles.
 *
 * Cancellation is cooperative and race-free: cancel() atomically
 * claims a Queued job (the popping worker then skips it) or requests a
 * stop on a Running one; the engine returns with report.stopped and
 * the worker records Cancelled.  Deadlines ride the same token.
 */

#ifndef GRAPHABCD_SERVE_JOB_MANAGER_HH
#define GRAPHABCD_SERVE_JOB_MANAGER_HH

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/stop_token.hh"
#include "runtime/admission_queue.hh"
#include "runtime/executor.hh"
#include "serve/graph_registry.hh"
#include "serve/job.hh"
#include "serve/result_cache.hh"

namespace graphabcd {

/** Embedded analytics job service over a GraphRegistry. */
class JobManager
{
  public:
    /** Outcome of submit(): a JobId, or the rejection reason. */
    struct Submitted
    {
        JobId id = 0;
        SubmitError error = SubmitError::None;

        bool ok() const { return id != 0; }
    };

    /**
     * @param registry shared graph store (not owned; must outlive the
     *        manager).
     */
    explicit JobManager(GraphRegistry &registry, ServeConfig config = {});

    /** Stops workers and cancels outstanding jobs. */
    ~JobManager();

    JobManager(const JobManager &) = delete;
    JobManager &operator=(const JobManager &) = delete;

    /**
     * Submit a job.  May complete it immediately (cache hit) or reject
     * it (QueueFull / UnknownGraph / BadRequest / ShuttingDown).
     */
    Submitted submit(JobRequest req);

    /**
     * Request cancellation.  Queued jobs are cancelled immediately;
     * running jobs stop at the engine's next token poll.
     * @return false when the job is unknown or already terminal.
     */
    bool cancel(JobId id);

    /** @return a point-in-time snapshot, or nullopt for unknown ids. */
    std::optional<JobStatus> status(JobId id) const;

    /** @return the result once Done, nullptr otherwise. */
    std::shared_ptr<const JobResult> result(JobId id) const;

    /**
     * Block until the job reaches a terminal state.
     * @param timeout_seconds negative = wait forever.
     * @return whether the job is terminal on return.
     */
    bool wait(JobId id, double timeout_seconds = -1.0) const;

    /** Service counters and gauges. */
    ServeStats stats() const;

    /**
     * The job's convergence curve (one sample per trace interval),
     * recorded while the engine runs and retained with the job record.
     * Null for unknown ids, cache-hit jobs (nothing ran), and always
     * under GRAPHABCD_OBS=OFF.
     */
    std::shared_ptr<const obs::ConvergenceSeries>
    convergence(JobId id) const;

    /** The result cache (hit counters, capacity). */
    ResultCache &cache() { return cache_; }
    const ResultCache &cache() const { return cache_; }

    /** Reject new work, cancel outstanding jobs, join workers. */
    void shutdown();

  private:
    /** Internal job record; shared by the table and the queue. */
    struct Job
    {
        JobId id = 0;
        JobRequest req;
        std::shared_ptr<const BlockPartition> graph;
        std::uint64_t key = 0;         //!< exact cache fingerprint
        std::uint64_t familyKey = 0;   //!< warm-start fingerprint

        StopSource stop;
        std::shared_ptr<Progress> progress;
        std::shared_ptr<obs::ConvergenceSeries> series;

        std::atomic<JobState> state{JobState::Queued};
        double submittedAt = 0.0;   //!< monotonicSeconds()
        double startedAt = 0.0;
        double finishedAt = 0.0;

        std::shared_ptr<const JobResult> result;
        std::string error;
        bool cacheHit = false;
        bool warmStarted = false;
    };

    void workerLoop();
    void runJob(const std::shared_ptr<Job> &job);

    /**
     * Terminalise a job with CAS `from -> to` under mtx_.  The CAS is
     * what makes finishing race-free: cancel() and a worker can both
     * try to terminalise the same Queued job, and exactly one of them
     * wins and does the bookkeeping (stats, error, timestamps).
     * @return whether this caller won the transition.
     */
    bool finishJob(const std::shared_ptr<Job> &job, JobState from,
                   JobState to, std::string error);

    GraphRegistry &registry_;
    const ServeConfig cfg_;
    ResultCache cache_;
    AdmissionQueue<std::shared_ptr<Job>> queue_;
    std::shared_ptr<Executor> executor_;   //!< engine worker pool

    mutable std::mutex mtx_;   //!< jobs_, warm-start index, stats_
    mutable std::condition_variable doneCv_;
    std::map<JobId, std::shared_ptr<Job>> jobs_;
    std::unordered_map<std::uint64_t, std::weak_ptr<const JobResult>>
        lastFixpoint_;   //!< familyKey -> most recent converged result
    ServeStats stats_;

    std::atomic<JobId> nextId_{1};
    std::atomic<std::size_t> running_{0};
    std::atomic<bool> shutdown_{false};
    std::vector<std::thread> workers_;
};

} // namespace graphabcd

#endif // GRAPHABCD_SERVE_JOB_MANAGER_HH
