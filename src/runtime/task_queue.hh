/**
 * @file
 * Bounded multi-producer multi-consumer task queue.
 *
 * This is the *only* control-flow link between the CPU-side scheduler and
 * the accelerator PEs in GraphABCD (paper Fig. 2): the scheduler pushes
 * block ids into the accelerator task queue, PEs pull; finished block ids
 * flow back through the CPU task queue to the SCATTER threads.  The queue
 * therefore bounds the update-propagation delay, which is exactly the
 * bounded-staleness condition asynchronous BCD needs for convergence
 * (paper Sec. III-D).
 */

#ifndef GRAPHABCD_RUNTIME_TASK_QUEUE_HH
#define GRAPHABCD_RUNTIME_TASK_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "support/logging.hh"

namespace graphabcd {

/**
 * Blocking bounded MPMC queue with close() semantics: after close(),
 * producers fail and consumers drain the remaining items, then see
 * std::nullopt.
 */
template <typename T>
class TaskQueue
{
  public:
    /** @param capacity maximum queued items; 0 means unbounded. */
    explicit TaskQueue(std::size_t capacity = 0) : cap(capacity) {}

    TaskQueue(const TaskQueue &) = delete;
    TaskQueue &operator=(const TaskQueue &) = delete;

    /**
     * Block until there is room, then enqueue.
     * @return false if the queue was closed before the item was accepted.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mtx);
        notFull.wait(lock, [this] {
            return closed || cap == 0 || items.size() < cap;
        });
        if (closed)
            return false;
        items.push_back(std::move(item));
        lock.unlock();
        notEmpty.notify_one();
        return true;
    }

    /**
     * Non-blocking enqueue.
     * @return false when full or closed.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (closed || (cap != 0 && items.size() >= cap))
                return false;
            items.push_back(std::move(item));
        }
        notEmpty.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is closed and empty.
     * @return the item, or std::nullopt on shutdown.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mtx);
        notEmpty.wait(lock, [this] { return closed || !items.empty(); });
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        lock.unlock();
        notFull.notify_one();
        return item;
    }

    /** Non-blocking dequeue; std::nullopt when currently empty. */
    std::optional<T>
    tryPop()
    {
        std::unique_lock<std::mutex> lock(mtx);
        if (items.empty())
            return std::nullopt;
        T item = std::move(items.front());
        items.pop_front();
        lock.unlock();
        notFull.notify_one();
        return item;
    }

    /** Wake all waiters; subsequent pushes fail, pops drain then end. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            closed = true;
        }
        notEmpty.notify_all();
        notFull.notify_all();
    }

    /** @return current queue length (racy, for stats only). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return items.size();
    }

    /** @return whether close() has been called. */
    bool
    isClosed() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return closed;
    }

    /** @return configured capacity (0 = unbounded). */
    std::size_t capacity() const { return cap; }

  private:
    const std::size_t cap;
    mutable std::mutex mtx;
    std::condition_variable notEmpty;
    std::condition_variable notFull;
    std::deque<T> items;
    bool closed = false;
};

} // namespace graphabcd

#endif // GRAPHABCD_RUNTIME_TASK_QUEUE_HH
