
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/extras.cc" "src/algorithms/CMakeFiles/abcd_algorithms.dir/extras.cc.o" "gcc" "src/algorithms/CMakeFiles/abcd_algorithms.dir/extras.cc.o.d"
  "/root/repo/src/algorithms/pagerank.cc" "src/algorithms/CMakeFiles/abcd_algorithms.dir/pagerank.cc.o" "gcc" "src/algorithms/CMakeFiles/abcd_algorithms.dir/pagerank.cc.o.d"
  "/root/repo/src/algorithms/reference.cc" "src/algorithms/CMakeFiles/abcd_algorithms.dir/reference.cc.o" "gcc" "src/algorithms/CMakeFiles/abcd_algorithms.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/abcd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/abcd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/abcd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/abcd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
