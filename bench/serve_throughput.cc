/**
 * @file
 * Closed-loop throughput benchmark for the serve layer.
 *
 * N client threads each submit-and-wait jobs against two registered
 * graphs, drawing algorithm and parameters from a small pool so the
 * ResultCache sees a realistic mix of repeats (hits) and fresh work
 * (misses).  QueueFull rejections back off and retry — that is the
 * admission control doing its job, and the rejection count is part of
 * the result.
 *
 * Prints per-config: jobs/sec, cache hit rate, rejection count.
 */

#include <atomic>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "graph/datasets.hh"
#include "serve/graph_registry.hh"
#include "serve/job_manager.hh"
#include "support/flags.hh"
#include "support/timer.hh"

using namespace graphabcd;

namespace {

struct WorkloadItem
{
    const char *graph;
    const char *algo;
    VertexId source;
};

/** Mixed PR/SSSP pool: 8 distinct jobs over 2 graphs. */
const WorkloadItem kPool[] = {
    {"web", "pr", 0},    {"web", "sssp", 0},  {"web", "sssp", 7},
    {"road", "pr", 0},   {"road", "sssp", 0}, {"road", "sssp", 3},
    {"web", "bfs", 0},   {"road", "cc", 0},
};

struct ClientResult
{
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
};

ClientResult
runClient(JobManager &manager, std::uint32_t seed, std::uint64_t jobs,
          bool cached)
{
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(
        0, std::size(kPool) - 1);
    ClientResult out;
    for (std::uint64_t i = 0; i < jobs; i++) {
        const WorkloadItem &item = kPool[pick(rng)];
        JobRequest req;
        req.graph = item.graph;
        req.algo = item.algo;
        req.engine = "serial";
        req.source = item.source;
        req.allowCached = cached;
        req.allowWarmStart = cached;
        req.options.tolerance = 1e-6;
        JobManager::Submitted sub;
        // Closed loop with retry: a QueueFull rejection is backpressure,
        // not failure — count it and resubmit after a short pause.
        while (!(sub = manager.submit(req)).ok()) {
            if (sub.error != SubmitError::QueueFull)
                return out;
            out.rejected++;
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        manager.wait(sub.id);
        out.completed++;
    }
    return out;
}

void
runConfig(GraphRegistry &registry, std::uint32_t clients,
          std::uint32_t workers, std::uint64_t jobs_per_client,
          bool cached)
{
    ServeConfig cfg;
    cfg.workers = workers;
    cfg.queueCapacity = 2 * clients;
    JobManager manager(registry, cfg);

    std::vector<std::thread> threads;
    std::vector<ClientResult> results(clients);
    Timer timer;
    for (std::uint32_t c = 0; c < clients; c++) {
        threads.emplace_back([&, c] {
            results[c] =
                runClient(manager, 1000 + c, jobs_per_client, cached);
        });
    }
    for (auto &t : threads)
        t.join();
    const double elapsed = timer.seconds();

    std::uint64_t completed = 0, rejected = 0;
    for (const auto &r : results) {
        completed += r.completed;
        rejected += r.rejected;
    }
    const ResultCache::Stats cs = manager.cache().stats();
    const ServeStats ss = manager.stats();
    std::printf(
        "clients=%2u workers=%2u cached=%d | jobs=%llu  %8.1f jobs/s  "
        "hitrate=%.2f  warmstarts=%llu  rejected=%llu\n",
        clients, workers, cached ? 1 : 0,
        static_cast<unsigned long long>(completed), completed / elapsed,
        cs.hitRate(), static_cast<unsigned long long>(ss.warmStarts),
        static_cast<unsigned long long>(rejected));
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declareDouble("scale", 0.1, "dataset scale factor");
    flags.declareInt("jobs", 40, "jobs per client");
    flags.declareInt("max-clients", 8, "largest client count");
    if (!flags.parse(argc, argv))
        return 0;
    const double scale = flags.getDouble("scale");
    const auto jobs =
        static_cast<std::uint64_t>(flags.getInt("jobs"));
    const auto max_clients =
        static_cast<std::uint32_t>(flags.getInt("max-clients"));

    GraphRegistry registry;
    registry.add("web", makeDataset("WT", scale).graph, 512);
    registry.add("road", makeDataset("PS", scale).graph, 512);
    std::printf("serve_throughput: scale=%.2f jobs/client=%llu\n",
                scale, static_cast<unsigned long long>(jobs));

    // Cache disabled: every job runs the engine (pure service overhead
    // + engine throughput).  Cache enabled: the 8-job pool repeats, so
    // the steady state is mostly hits.
    for (const bool cached : {false, true})
        for (std::uint32_t clients = 1; clients <= max_clients;
             clients *= 2)
            runConfig(registry, clients, /*workers=*/4, jobs, cached);
    return 0;
}
