#include "serve/result_cache.hh"

#include "support/timer.hh"

namespace graphabcd {

ResultCache::ResultCache(std::size_t capacity, double ttl_seconds,
                         NowFn now_fn)
    : cap(capacity), ttl(ttl_seconds),
      now(now_fn ? std::move(now_fn) : NowFn(&monotonicSeconds))
{
}

bool
ResultCache::expired(const Entry &entry, double t) const
{
    return ttl > 0.0 && t - entry.insertedAt >= ttl;
}

std::shared_ptr<const JobResult>
ResultCache::get(std::uint64_t key)
{
    const double t = now();
    std::lock_guard<std::mutex> lock(mtx);
    auto it = map.find(key);
    if (it == map.end()) {
        counters.misses++;
        return nullptr;
    }
    if (expired(it->second, t)) {
        lru.erase(it->second.lruIt);
        map.erase(it);
        counters.expirations++;
        counters.misses++;
        return nullptr;
    }
    lru.splice(lru.begin(), lru, it->second.lruIt);
    counters.hits++;
    return it->second.result;
}

void
ResultCache::put(std::uint64_t key,
                 std::shared_ptr<const JobResult> result)
{
    if (cap == 0 || !result)
        return;
    const double t = now();
    std::lock_guard<std::mutex> lock(mtx);
    auto it = map.find(key);
    if (it != map.end()) {
        // Replace in place and refresh both LRU position and TTL.
        it->second.result = std::move(result);
        it->second.insertedAt = t;
        lru.splice(lru.begin(), lru, it->second.lruIt);
        counters.insertions++;
        return;
    }
    if (map.size() >= cap) {
        const std::uint64_t victim = lru.back();
        lru.pop_back();
        map.erase(victim);
        counters.evictions++;
    }
    lru.push_front(key);
    Entry entry;
    entry.result = std::move(result);
    entry.insertedAt = t;
    entry.lruIt = lru.begin();
    map.emplace(key, std::move(entry));
    counters.insertions++;
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return counters;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return map.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    lru.clear();
    map.clear();
}

} // namespace graphabcd
