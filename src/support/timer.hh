/**
 * @file
 * Wall-clock timing helpers for benchmarks and examples.
 */

#ifndef GRAPHABCD_SUPPORT_TIMER_HH
#define GRAPHABCD_SUPPORT_TIMER_HH

#include <chrono>

namespace graphabcd {

/**
 * Monotonic stopwatch.  start() (or construction) begins a measurement;
 * seconds()/millis() read the elapsed time without stopping it.
 */
class Timer
{
  public:
    Timer() { start(); }

    /** (Re)start the measurement from now. */
    void start() { begin = Clock::now(); }

    /** @return elapsed seconds since start(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - begin).count();
    }

    /** @return elapsed milliseconds since start(). */
    double millis() const { return seconds() * 1e3; }

    /** @return elapsed microseconds since start(). */
    double micros() const { return seconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;

    // Every duration this library reports (EngineReport::seconds,
    // SimReport::hostSeconds, serve-layer job accounting) flows through
    // this class, so pinning the clock here keeps them all immune to
    // wall-clock adjustments (NTP slew, DST, manual changes).
    static_assert(Clock::is_steady,
                  "timing must use a monotonic clock so elapsed "
                  "measurements can never go negative");

    Clock::time_point begin;
};

/**
 * Monotonic timestamp in seconds since an arbitrary process-local
 * epoch.  Use for cross-thread event timestamps (e.g. job queued /
 * started / finished instants) where two readings must subtract to a
 * non-negative duration regardless of wall-clock adjustments.
 */
inline double
monotonicSeconds()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration<double>(Clock::now() - epoch).count();
}

} // namespace graphabcd

#endif // GRAPHABCD_SUPPORT_TIMER_HH
