#include "obs/sampler.hh"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <sstream>

#include "obs/metrics.hh"
#include "support/timer.hh"

namespace graphabcd {

// --------------------------------------------------------- SampleSeries

SampleSeries::SampleSeries(std::string key, std::size_t capacity)
    : key_(std::move(key)), capacity_(std::max<std::size_t>(2, capacity))
{
}

void
SampleSeries::record(double t_seconds, double value)
{
    std::lock_guard<std::mutex> lock(mtx_);
    if (tick_++ % stride_ != 0)
        return;
    if (points_.size() == capacity_) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < points_.size(); i += 2)
            points_[keep++] = points_[i];
        points_.resize(keep);
        stride_ *= 2;
    }
    points_.push_back(SamplePoint{t_seconds, value});
}

std::vector<SamplePoint>
SampleSeries::points() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return points_;
}

std::size_t
SampleSeries::size() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return points_.size();
}

SamplePoint
SampleSeries::back() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return points_.empty() ? SamplePoint{} : points_.back();
}

// -------------------------------------------------------------- Sampler

Sampler &
Sampler::global()
{
    static Sampler instance(MetricsRegistry::global());
    return instance;
}

Sampler::Sampler(MetricsRegistry &registry, std::size_t capacity)
    : registry_(registry), capacity_(std::max<std::size_t>(2, capacity))
{
}

Sampler::~Sampler()
{
    stop();
}

void
Sampler::start(double interval_seconds)
{
    stop();
    std::lock_guard<std::mutex> lock(mtx_);
    intervalSeconds_ = std::max(interval_seconds, 1e-3);
    if (epochSeconds_ < 0.0)
        epochSeconds_ = monotonicSeconds();
    stopRequested_ = false;
    running_ = true;
    thread_ = std::thread([this] { loop(); });
}

void
Sampler::stop()
{
    std::thread joinable;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (!running_)
            return;
        {
            std::lock_guard<std::mutex> wake(wakeMtx_);
            stopRequested_ = true;
        }
        wakeCv_.notify_all();
        joinable = std::move(thread_);
        running_ = false;
    }
    if (joinable.joinable())
        joinable.join();
}

bool
Sampler::running() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return running_;
}

double
Sampler::intervalSeconds() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return intervalSeconds_;
}

SampleSeries &
Sampler::seriesFor(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto &slot = series_[key];
    if (!slot)
        slot = std::make_shared<SampleSeries>(key, capacity_);
    return *slot;
}

void
Sampler::sampleOnce()
{
    double epoch;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (epochSeconds_ < 0.0)
            epochSeconds_ = monotonicSeconds();
        epoch = epochSeconds_;
    }
    const double t = monotonicSeconds() - epoch;
    const MetricsSnapshot snap = registry_.snapshotAll();
    for (const auto &[name, value] : snap.counters)
        seriesFor("counter:" + name)
            .record(t, static_cast<double>(value));
    for (const auto &[name, value] : snap.gauges)
        seriesFor("gauge:" + name).record(t, value);
}

void
Sampler::loop()
{
    const auto interval = std::chrono::duration<double>(
        [this] {
            std::lock_guard<std::mutex> lock(mtx_);
            return intervalSeconds_;
        }());
    for (;;) {
        sampleOnce();
        std::unique_lock<std::mutex> wake(wakeMtx_);
        if (wakeCv_.wait_for(wake, interval,
                             [this] { return stopRequested_; }))
            return;
    }
}

std::vector<std::shared_ptr<const SampleSeries>>
Sampler::series() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    std::vector<std::shared_ptr<const SampleSeries>> out;
    out.reserve(series_.size());
    for (const auto &[key, s] : series_)
        out.push_back(s);
    return out;
}

std::size_t
Sampler::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return series_.size();
}

void
Sampler::clear()
{
    std::lock_guard<std::mutex> lock(mtx_);
    series_.clear();
}

std::string
Sampler::csv() const
{
    std::ostringstream os;
    os << std::setprecision(12) << "key,t_seconds,value\n";
    for (const auto &s : series()) {
        for (const SamplePoint &p : s->points())
            os << s->key() << ',' << p.tSeconds << ',' << p.value
               << '\n';
    }
    return os.str();
}

} // namespace graphabcd
