#include "graph/csr.hh"

#include "support/logging.hh"

namespace graphabcd {

Csr::Csr(const EdgeList &el, Axis axis)
    : nVertices(el.numVertices())
{
    const EdgeId m = el.numEdges();
    offsets.assign(static_cast<std::size_t>(nVertices) + 1, 0);
    adj.resize(m);
    wgt.resize(m);

    // Counting sort by the row endpoint: one pass to count, prefix sum,
    // one pass to place.  Keeps construction O(V + E) even for the
    // billion-edge-scale stand-ins.
    for (const Edge &e : el.edges()) {
        VertexId row = axis == Axis::BySource ? e.src : e.dst;
        offsets[row + 1]++;
    }
    for (VertexId v = 0; v < nVertices; v++)
        offsets[v + 1] += offsets[v];

    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge &e : el.edges()) {
        VertexId row = axis == Axis::BySource ? e.src : e.dst;
        VertexId col = axis == Axis::BySource ? e.dst : e.src;
        EdgeId pos = cursor[row]++;
        adj[pos] = col;
        wgt[pos] = e.weight;
    }
}

} // namespace graphabcd
