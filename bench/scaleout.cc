/**
 * @file
 * Scale-out study (the paper's motivating claim, Sec. I): because
 * GraphABCD is barrierless and lock-free, the same computation can be
 * distributed with no extra coordination logic beyond the task queues
 * and, for the software fragments, the delta-message rings.
 *
 * Two grids on the same graph and the same block partitioning:
 *
 *  1. Software fragments: FragmentEngine PageRank over --fragments
 *     shard counts at a fixed total thread budget.  Speedup is
 *     measured against the 1-fragment run at the same thread count,
 *     so it isolates what sharding itself buys (locality, private
 *     schedulers) and costs (mirror staleness, message traffic).
 *
 *  2. Simulated accelerators: the HARP system over --accels device
 *     counts with fragment affinity on, so the devices home the same
 *     contiguous fragments the software engine uses.
 *
 * Every row is also written to BENCH_scaleout.json so later changes
 * can be compared against the committed numbers.
 */

#include <chrono>
#include <fstream>
#include <vector>

#include "bench_common.hh"
#include "fragment/engine.hh"

namespace graphabcd {
namespace {

using namespace bench;

/** One row of either grid, flattened for the JSON dump. */
struct GridRow
{
    std::string kind;           //!< "fragment" or "sim"
    std::uint32_t shards = 1;   //!< fragments or accelerators
    std::uint32_t threads = 0;  //!< software threads (0 for sim rows)
    double seconds = 0.0;
    double speedup = 1.0;
    double epochs = 0.0;
    double mtes = 0.0;          //!< millions of traversed edges / s
    bool converged = false;
    std::uint64_t messages = 0; //!< cross-fragment delta messages
};

std::vector<std::uint32_t>
parseList(const std::string &spec)
{
    std::vector<std::uint32_t> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        out.push_back(static_cast<std::uint32_t>(
            std::max(1L, std::atol(spec.substr(pos, comma - pos).c_str()))));
        pos = comma + 1;
    }
    if (out.empty())
        out.push_back(1);
    return out;
}

void
writeJson(const std::vector<GridRow> &rows, const std::string &path)
{
    std::ofstream ofs(path);
    ofs << "{\n  \"benchmark\": \"scaleout\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); i++) {
        const GridRow &r = rows[i];
        ofs << "    {\"kind\": \"" << r.kind
            << "\", \"shards\": " << r.shards
            << ", \"threads\": " << r.threads
            << ", \"seconds\": " << r.seconds
            << ", \"speedup\": " << r.speedup
            << ", \"epochs\": " << r.epochs
            << ", \"mtes\": " << r.mtes
            << ", \"converged\": " << (r.converged ? 1 : 0)
            << ", \"messages\": " << r.messages << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    ofs << "  ]\n}\n";
    std::fprintf(stderr, "info: wrote %s (%zu rows)\n", path.c_str(),
                 rows.size());
}

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declare("graph", "LJ", "dataset key");
    flags.declareInt("block-size", 512, "block size");
    flags.declare("fragments", "1,2,4,8",
                  "software shard counts to sweep (comma list)");
    flags.declareInt("threads", 8, "total software threads per run");
    flags.declare("accels", "1,2,4,8",
                  "simulated accelerator counts to sweep (comma list)");
    flags.declare("json", "BENCH_scaleout.json",
                  "machine-readable dump of every row");
    if (!flags.parse(argc, argv))
        return 0;

    Dataset ds = loadDataset(flags.get("graph"), flags);
    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));
    BlockPartition g(ds.graph, block_size);
    const double tol = prTolerance(g.numVertices());
    const auto threads = static_cast<std::uint32_t>(
        std::max<std::int64_t>(1, flags.getInt("threads")));
    std::vector<GridRow> rows;

    // ---------------------------------------------- software fragments
    Table frag_table({"fragments", "threads", "time (s)", "speedup",
                      "epochs", "MTES", "messages", "converged"});
    double frag_base = 0.0;
    for (std::uint32_t f : parseList(flags.get("fragments"))) {
        EngineOptions opt;
        opt.blockSize = block_size;
        opt.tolerance = tol;
        opt.numThreads = threads;
        opt.fragments = f;
        FragmentEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                               opt);
        std::vector<double> x;
        EngineReport rep = engine.run(x);
        std::uint64_t messages = 0;
        for (const FragmentRunStats &s : engine.fragmentStats())
            messages += s.messagesSent;
        if (frag_base == 0.0)
            frag_base = rep.seconds;
        GridRow row{"fragment",
                    f,
                    threads,
                    rep.seconds,
                    frag_base / rep.seconds,
                    rep.epochs,
                    static_cast<double>(rep.edgeTraversals) /
                        rep.seconds / 1e6,
                    rep.converged,
                    messages};
        rows.push_back(row);
        frag_table.row()
            .add(static_cast<std::uint64_t>(f))
            .add(static_cast<std::uint64_t>(threads))
            .add(row.seconds, 4)
            .add(row.speedup, 3)
            .add(row.epochs, 4)
            .add(row.mtes, 4)
            .add(messages)
            .add(std::string(rep.converged ? "yes" : "no"));
    }
    std::printf("software fragments (FragmentEngine, %u threads):\n",
                threads);
    emitTable(frag_table, flags);

    // ------------------------------------------- simulated accelerators
    Table sim_table({"accelerators", "total PEs", "time (s)", "speedup",
                     "epochs", "MTES", "link util (avg)"});
    double sim_base = 0.0;
    for (std::uint32_t accels : parseList(flags.get("accels"))) {
        EngineOptions opt;
        opt.blockSize = block_size;
        HarpConfig cfg;
        cfg.numAccelerators = accels;
        cfg.fragmentAffinity = true;
        RunResult r = abcdPagerank(g, opt, cfg);
        if (sim_base == 0.0)
            sim_base = r.seconds;
        rows.push_back(GridRow{"sim", accels, 0, r.seconds,
                               sim_base / r.seconds, r.iterations,
                               r.mtes, r.converged, 0});
        sim_table.row()
            .add(static_cast<std::uint64_t>(accels))
            .add(static_cast<std::uint64_t>(accels * cfg.numPes))
            .add(r.seconds, 4)
            .add(sim_base / r.seconds, 3)
            .add(r.iterations, 4)
            .add(r.mtes, 4)
            .add(r.sim.busUtilization, 3);
    }
    std::printf("\nsimulated accelerators (HARP, fragment affinity):\n");
    emitTable(sim_table, flags);
    writeJson(rows, flags.get("json"));
    std::fprintf(stderr,
                 "info: expected shape: near-linear speedup while the "
                 "scheduler/scatter side keeps up; epochs inflate "
                 "mildly as the staleness window widens.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
