/**
 * @file
 * TraceRecorder — begin/end spans and instant events in per-thread ring
 * buffers, exported as Chrome/Perfetto `trace_event` JSON.
 *
 * Each recording thread owns one fixed-capacity ring buffer (acquired
 * on first use and kept alive by the recorder even after the thread
 * exits, since engine workers are per-run).  A ring is written only by
 * its owner and read only during export, guarded by a per-ring mutex
 * that is uncontended in steady state — recording costs one relaxed
 * enabled-check, two steady_clock reads and one uncontended lock, all
 * at block granularity, never per edge.
 *
 * Spans are stored as Chrome "X" complete events (timestamp + duration
 * recorded at span end), so a wrapped ring never leaves an unmatched
 * begin behind; instant events use phase "i".  The exported file loads
 * directly in chrome://tracing and ui.perfetto.dev.
 *
 * Event names must be string literals (the recorder stores the
 * pointer, not a copy).
 */

#ifndef GRAPHABCD_OBS_TRACE_HH
#define GRAPHABCD_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/timer.hh"

namespace graphabcd {

/** One recorded event. */
struct TraceEvent
{
    const char *name = nullptr; //!< static string
    double tsMicros = 0.0;      //!< start time, process-relative
    double durMicros = 0.0;     //!< span length; 0 for instants
    char phase = 'X';           //!< 'X' complete span, 'i' instant
    // Causal span ids (obs/span.hh); all 0 for anonymous events.
    // Exported as Chrome event args {"job","span","parent"} so a
    // viewer can reassemble one tree per serve job.
    std::uint64_t job = 0;      //!< owning serve JobId
    std::uint64_t span = 0;     //!< span id; 0 = no span attached
    std::uint64_t parent = 0;   //!< parent span id; 0 = tree root
};

/** Per-thread ring buffers + Chrome trace_event JSON export. */
class TraceRecorder
{
  public:
    /** The process-wide recorder (what the TRACE verb exports). */
    static TraceRecorder &global();

    /** @param events_per_thread ring capacity; oldest events overwritten. */
    explicit TraceRecorder(std::size_t events_per_thread = 1 << 14);

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /** Recording is off until enabled; a disabled record() is one
     *  relaxed load and no clock read. */
    void
    setEnabled(bool on)
    {
        enabled_.store(on, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** @return microseconds since the process-local monotonic epoch. */
    static double nowMicros() { return monotonicSeconds() * 1e6; }

    /** Record a finished span (no-op while disabled). */
    void
    complete(const char *name, double start_us, double dur_us)
    {
        if (enabled())
            push(TraceEvent{name, start_us, dur_us, 'X'});
    }

    /** Record a finished span carrying causal ids (obs/span.hh). */
    void
    complete(const char *name, double start_us, double dur_us,
             std::uint64_t job, std::uint64_t span, std::uint64_t parent)
    {
        if (enabled())
            push(TraceEvent{name, start_us, dur_us, 'X', job, span,
                            parent});
    }

    /** Record an instant event (no-op while disabled). */
    void
    instant(const char *name)
    {
        if (enabled())
            push(TraceEvent{name, nowMicros(), 0.0, 'i'});
    }

    /** Record an instant event carrying causal ids. */
    void
    instant(const char *name, std::uint64_t job, std::uint64_t span,
            std::uint64_t parent)
    {
        if (enabled())
            push(TraceEvent{name, nowMicros(), 0.0, 'i', job, span,
                            parent});
    }

    /**
     * Virtual-track tids start here; real thread rings count up from 0
     * and never reach this range.
     */
    static constexpr std::uint32_t kTrackBase = 1u << 16;

    /**
     * Record a finished span on a virtual track instead of the calling
     * thread's ring.  Tracks carry timelines that belong to no host
     * thread — e.g. per-PE busy intervals from the HARP simulator,
     * where the timestamps are simulated microseconds.  The caller owns
     * timestamp semantics; mixing simulated and wall tracks in one
     * export is fine because Perfetto renders tids independently.
     * Unlike thread rings, any thread may write any track (mutex per
     * track, cold paths only).
     */
    void
    completeOnTrack(std::uint32_t track, const char *name,
                    double start_us, double dur_us)
    {
        if (enabled())
            pushOnTrack(track, TraceEvent{name, start_us, dur_us, 'X'});
    }

    /** @return retained events across all thread rings. */
    std::size_t eventCount() const;

    /**
     * Events lost to ring overwrite since construction (or the last
     * clear()).  A wrapped ring silently replaces its oldest event on
     * every push; this counter makes that loss visible — the global
     * recorder also mirrors it into the `obs.trace.dropped` counter so
     * /metrics shows when a trace window was too small.
     */
    std::uint64_t droppedCount() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Drop all retained events (rings stay registered). */
    void clear();

    /** Write `{"traceEvents": [...]}` JSON, sorted by timestamp. */
    void writeChromeTrace(std::ostream &os) const;

    /** @return whether the file could be opened and written. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    struct Ring
    {
        explicit Ring(std::size_t capacity, std::uint32_t tid_)
            : events(capacity), tid(tid_)
        {
        }

        mutable std::mutex mtx;   //!< owner-vs-export only
        std::vector<TraceEvent> events;
        std::size_t next = 0;
        bool wrapped = false;
        std::uint32_t tid;
    };

    Ring &threadRing();
    Ring &trackRing(std::uint32_t track);
    void pushInto(Ring &ring, const TraceEvent &event);
    void push(const TraceEvent &event);
    void pushOnTrack(std::uint32_t track, const TraceEvent &event);
    void noteDropped();

    const std::size_t ringCapacity_;
    std::atomic<bool> enabled_{false};
    std::atomic<std::uint64_t> dropped_{0};
    mutable std::mutex registerMtx_;   //!< rings_/tracks_ growth only
    std::vector<std::shared_ptr<Ring>> rings_;
    std::vector<std::shared_ptr<Ring>> tracks_;  //!< index = track id
};

/**
 * RAII span: stamps the start on construction, records one complete
 * event on destruction.  Cheap no-op while the recorder is disabled.
 */
class TraceSpan
{
  public:
    TraceSpan(TraceRecorder &recorder, const char *name)
    {
        if (recorder.enabled()) {
            recorder_ = &recorder;
            name_ = name;
            startMicros_ = TraceRecorder::nowMicros();
        }
    }

    ~TraceSpan()
    {
        if (recorder_) {
            recorder_->complete(name_, startMicros_,
                                TraceRecorder::nowMicros() -
                                    startMicros_);
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    TraceRecorder *recorder_ = nullptr;
    const char *name_ = nullptr;
    double startMicros_ = 0.0;
};

} // namespace graphabcd

#endif // GRAPHABCD_OBS_TRACE_HH
