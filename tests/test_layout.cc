/**
 * @file
 * Tests of the compressed / reordered graph layouts (DESIGN.md §11):
 * the varint/delta codec (round trips and adversarial inputs), the
 * packed "ABCZ" loader's corrupt-input contract, equivalence of every
 * engine across the layout x reorder grid, the permutation boundary at
 * the serve layer, fingerprint non-aliasing, and the bytes-moved
 * accounting that feeds the HARP bandwidth model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "core/engine.hh"
#include "graph/codec.hh"
#include "graph/csr.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "graph/partition.hh"
#include "graph/permutation.hh"
#include "serve/graph_registry.hh"
#include "serve/runner.hh"
#include "support/logging.hh"
#include "support/random.hh"

namespace graphabcd {
namespace {

// ---------------------------------------------------------------------
// Codec: round trips

TEST(Codec, Varint32RoundTrip)
{
    const std::uint32_t values[] = {
        0,      1,        127,        128,       129,
        16383,  16384,    2097151,    2097152,   268435455,
        268435456, 0x7fffffff, 0x80000000, std::numeric_limits<std::uint32_t>::max()};
    for (std::uint32_t x : values) {
        std::vector<std::uint8_t> buf;
        codec::putVarint32(buf, x);
        ASSERT_LE(buf.size(), codec::kMaxVarint32Bytes);

        std::uint32_t fast = 0;
        const std::uint8_t *p = codec::decodeVarint32(buf.data(), fast);
        EXPECT_EQ(fast, x);
        EXPECT_EQ(p, buf.data() + buf.size());

        std::uint32_t checked = 0;
        const auto r = codec::getVarint32(
            buf.data(), buf.data() + buf.size(), checked);
        ASSERT_TRUE(r.ok()) << codec::to_string(r.status);
        EXPECT_EQ(checked, x);
        EXPECT_EQ(r.bytes, buf.size());
    }
}

TEST(Codec, Varint64RoundTrip)
{
    const std::uint64_t values[] = {
        0, 1, 127, 128, (1ull << 32) - 1, 1ull << 32, 1ull << 56,
        std::numeric_limits<std::uint64_t>::max()};
    for (std::uint64_t x : values) {
        std::vector<std::uint8_t> buf;
        codec::putVarint64(buf, x);
        ASSERT_LE(buf.size(), codec::kMaxVarint64Bytes);

        std::uint64_t fast = 0;
        const std::uint8_t *p = codec::decodeVarint64(buf.data(), fast);
        EXPECT_EQ(fast, x);
        EXPECT_EQ(p, buf.data() + buf.size());

        std::uint64_t checked = 0;
        const auto r = codec::getVarint64(
            buf.data(), buf.data() + buf.size(), checked);
        ASSERT_TRUE(r.ok()) << codec::to_string(r.status);
        EXPECT_EQ(checked, x);
        EXPECT_EQ(r.bytes, buf.size());
    }
}

TEST(Codec, MaxValuesUseMaxLengthEncodings)
{
    std::vector<std::uint8_t> buf;
    codec::putVarint32(buf, std::numeric_limits<std::uint32_t>::max());
    EXPECT_EQ(buf.size(), codec::kMaxVarint32Bytes);
    buf.clear();
    codec::putVarint64(buf, std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(buf.size(), codec::kMaxVarint64Bytes);
}

// ---------------------------------------------------------------------
// Codec: adversarial inputs — must error, never over-read

TEST(Codec, TruncatedStreamsError)
{
    std::vector<std::uint8_t> buf;
    codec::putVarint32(buf, std::numeric_limits<std::uint32_t>::max());
    for (std::size_t len = 0; len < buf.size(); len++) {
        std::uint32_t out = 0;
        const auto r =
            codec::getVarint32(buf.data(), buf.data() + len, out);
        EXPECT_EQ(r.status, codec::VarintStatus::Truncated)
            << "prefix length " << len;
        EXPECT_EQ(r.bytes, 0u);
    }
    std::vector<std::uint8_t> buf64;
    codec::putVarint64(buf64, std::numeric_limits<std::uint64_t>::max());
    for (std::size_t len = 0; len < buf64.size(); len++) {
        std::uint64_t out = 0;
        const auto r =
            codec::getVarint64(buf64.data(), buf64.data() + len, out);
        EXPECT_EQ(r.status, codec::VarintStatus::Truncated)
            << "prefix length " << len;
    }
}

TEST(Codec, OverlongEncodingsRejected)
{
    // 0 padded to two bytes: non-canonical.
    const std::uint8_t padded_zero[] = {0x80, 0x00};
    std::uint32_t out = 0;
    auto r = codec::getVarint32(padded_zero, padded_zero + 2, out);
    EXPECT_EQ(r.status, codec::VarintStatus::Overlong);

    // Six continuation bytes: longer than any legal 32-bit encoding.
    const std::uint8_t too_long[] = {0xff, 0xff, 0xff, 0xff, 0xff, 0x01};
    r = codec::getVarint32(too_long, too_long + 6, out);
    EXPECT_NE(r.status, codec::VarintStatus::Ok);

    // Eleven bytes for 64-bit.
    const std::uint8_t too_long64[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                       0xff, 0xff, 0xff, 0xff, 0xff,
                                       0x01};
    std::uint64_t out64 = 0;
    const auto r64 =
        codec::getVarint64(too_long64, too_long64 + 11, out64);
    EXPECT_NE(r64.status, codec::VarintStatus::Ok);
}

TEST(Codec, OverflowingFinalBytesRejected)
{
    // Five bytes whose fifth carries more than 4 payload bits.
    const std::uint8_t wide32[] = {0xff, 0xff, 0xff, 0xff, 0x10};
    std::uint32_t out = 0;
    const auto r = codec::getVarint32(wide32, wide32 + 5, out);
    EXPECT_EQ(r.status, codec::VarintStatus::Overflow);

    // Ten bytes whose tenth carries more than 1 payload bit.
    const std::uint8_t wide64[] = {0xff, 0xff, 0xff, 0xff, 0xff,
                                   0xff, 0xff, 0xff, 0xff, 0x02};
    std::uint64_t out64 = 0;
    const auto r64 = codec::getVarint64(wide64, wide64 + 10, out64);
    EXPECT_EQ(r64.status, codec::VarintStatus::Overflow);
}

TEST(Codec, DeltaListRoundTripIncludingEmpty)
{
    const std::vector<std::vector<std::uint32_t>> lists = {
        {},                     // zero-degree vertex: zero bytes
        {0},
        {7, 7, 7},              // duplicates (multi-edges) survive
        {0, 1, 2, 1000000, std::numeric_limits<std::uint32_t>::max()},
    };
    for (const auto &list : lists) {
        std::vector<std::uint8_t> buf;
        codec::encodeDeltaList32(
            std::span<const std::uint32_t>(list), buf);
        if (list.empty()) {
            EXPECT_TRUE(buf.empty());
        }
        std::vector<std::uint32_t> out;
        const auto r = codec::decodeDeltaList32(
            buf.data(), buf.data() + buf.size(), list.size(), out);
        ASSERT_TRUE(r.ok()) << codec::to_string(r.status);
        EXPECT_EQ(out, list);
        EXPECT_EQ(r.bytes, buf.size());
    }
}

TEST(Codec, DeltaChainWrapRejected)
{
    // First id UINT32_MAX then delta 1 would wrap the id space.
    std::vector<std::uint8_t> buf;
    codec::putVarint32(buf, std::numeric_limits<std::uint32_t>::max());
    codec::putVarint32(buf, 1);
    std::vector<std::uint32_t> out;
    const auto r = codec::decodeDeltaList32(
        buf.data(), buf.data() + buf.size(), 2, out);
    EXPECT_EQ(r.status, codec::VarintStatus::Overflow);
}

/**
 * Randomized round trips plus garbage decoding.  The default count
 * keeps plain ctest fast; CI's asan leg reruns with
 * GRAPHABCD_CODEC_FUZZ_ITERS cranked up so the sanitizer sees many
 * random streams per run.
 */
TEST(CodecFuzz, RandomRoundTripsAndGarbageNeverOverread)
{
    std::uint64_t iters = 200;
    if (const char *env = std::getenv("GRAPHABCD_CODEC_FUZZ_ITERS"))
        iters = std::strtoull(env, nullptr, 10);
    Rng rng(0xc0dec);
    for (std::uint64_t it = 0; it < iters; it++) {
        // Sorted random list round trip.
        const std::size_t len = rng.nextBounded(64);
        std::vector<std::uint32_t> list(len);
        std::uint32_t cur = 0;
        for (std::size_t i = 0; i < len; i++) {
            cur += static_cast<std::uint32_t>(rng.nextBounded(1 << 20));
            list[i] = cur;
        }
        std::vector<std::uint8_t> buf;
        codec::encodeDeltaList32(
            std::span<const std::uint32_t>(list), buf);
        std::vector<std::uint32_t> out;
        const auto r = codec::decodeDeltaList32(
            buf.data(), buf.data() + buf.size(), len, out);
        ASSERT_TRUE(r.ok());
        ASSERT_EQ(out, list);

        // Garbage bytes: the checked decoder must consume within
        // bounds whatever the content.
        std::vector<std::uint8_t> junk(1 + rng.nextBounded(12));
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.nextBounded(256));
        std::uint32_t v32 = 0;
        const auto g = codec::getVarint32(
            junk.data(), junk.data() + junk.size(), v32);
        if (g.ok()) {
            ASSERT_LE(g.bytes, junk.size());
        }
        std::uint64_t v64 = 0;
        const auto g64 = codec::getVarint64(
            junk.data(), junk.data() + junk.size(), v64);
        if (g64.ok()) {
            ASSERT_LE(g64.bytes, junk.size());
        }
    }
}

// ---------------------------------------------------------------------
// Packed "ABCZ" loader

std::string
tmpPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

/** Canonical (src, dst, weight) triples for order-independent compare. */
std::vector<std::tuple<VertexId, VertexId, float>>
canonical(const EdgeList &el)
{
    std::vector<std::tuple<VertexId, VertexId, float>> out;
    out.reserve(el.numEdges());
    for (const Edge &e : el.edges())
        out.emplace_back(e.src, e.dst, e.weight);
    std::sort(out.begin(), out.end());
    return out;
}

/** RMAT with uniform random weights in [1, 16]. */
EdgeList
weightedRmat(VertexId n, EdgeId m, Rng &rng)
{
    RmatOptions opts;
    opts.weighted = true;
    return generateRmat(n, m, rng, opts);
}

TEST(PackedIo, RoundTripsUnitAndWeightedGraphs)
{
    Rng rng(31);
    EdgeList unit = generateRmat(300, 1200, rng);
    EdgeList weighted = weightedRmat(300, 1200, rng);
    for (const EdgeList *el : {&unit, &weighted}) {
        const std::string path = tmpPath("roundtrip.abcz");
        saveEdgeListPacked(*el, path);
        const EdgeList back = loadEdgeListPacked(path);
        EXPECT_EQ(back.numVertices(), el->numVertices());
        ASSERT_EQ(back.numEdges(), el->numEdges());
        EXPECT_EQ(canonical(back), canonical(*el));
        std::remove(path.c_str());
    }
}

TEST(PackedIo, PackedIsSmallerThanRawBinary)
{
    Rng rng(33);
    const EdgeList el = generateRmat(1 << 12, 1 << 15, rng);
    const std::string packed = tmpPath("size.abcz");
    const std::string raw = tmpPath("size.bin");
    saveEdgeListPacked(el, packed);
    saveEdgeListBinary(el, raw);
    const auto size = [](const std::string &p) {
        std::ifstream f(p, std::ios::binary | std::ios::ate);
        return static_cast<std::uint64_t>(f.tellg());
    };
    EXPECT_LT(size(packed) * 2, size(raw));
    std::remove(packed.c_str());
    std::remove(raw.c_str());
}

TEST(PackedIo, CorruptEdgeCountHeaderFailsWithOffsets)
{
    Rng rng(35);
    const EdgeList el = generateRmat(128, 512, rng);
    const std::string path = tmpPath("corrupt.abcz");
    saveEdgeListPacked(el, path);
    {
        // The edge-count field sits after magic (4) + version (4);
        // inflate it far past what the payload can hold.
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(12);
        const std::uint64_t bogus = 1ull << 40;
        f.write(reinterpret_cast<const char *>(&bogus), sizeof(bogus));
    }
    try {
        loadEdgeListPacked(path);
        FAIL() << "corrupt header must not load";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
        EXPECT_NE(msg.find("header claims"), std::string::npos) << msg;
    }
    std::remove(path.c_str());
}

TEST(PackedIo, TruncatedStreamFailsNotOverreads)
{
    Rng rng(37);
    const EdgeList el = generateRmat(128, 512, rng);
    const std::string path = tmpPath("truncated.abcz");
    saveEdgeListPacked(el, path);
    std::vector<char> bytes;
    {
        std::ifstream f(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
    }
    {
        // Drop the last 40% of the file (keeps the header intact).
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        f.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() * 3 / 5));
    }
    EXPECT_THROW(loadEdgeListPacked(path), FatalError);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Permutation

TEST(Permutation, HubClusterIsIdentityOnUniformDegreeGraph)
{
    // Every cycle vertex has total degree 2 — one bucket, stable sort
    // moves nothing, and the permutation must detect it.
    const EdgeList cycle = generateCycle(64);
    EXPECT_TRUE(VertexPermutation::hubCluster(cycle).isIdentity());
    LayoutOptions lo;
    lo.reorder = VertexReorder::Hub;
    const BlockPartition g(cycle, 16, lo);
    EXPECT_TRUE(g.permutation().isIdentity());
}

TEST(Permutation, HubClusterFrontLoadsHubsAndRoundTrips)
{
    // Star graph: vertex 0 is the hub only after the leaves; give the
    // high degree to a late id so the reorder must move it forward.
    EdgeList el(100);
    for (VertexId v = 0; v < 99; v++)
        el.addEdge(v, 99, 1.0f);
    const VertexPermutation perm = VertexPermutation::hubCluster(el);
    ASSERT_FALSE(perm.isIdentity());
    EXPECT_EQ(perm.toInternal(99), 0u);   // the hub leads the layout
    for (VertexId v = 0; v < 100; v++)
        EXPECT_EQ(perm.toOriginal(perm.toInternal(v)), v);

    // valuesToInternal / valuesToOriginal invert each other.
    std::vector<double> original(100);
    for (VertexId v = 0; v < 100; v++)
        original[v] = v * 1.5;
    const auto internal = perm.valuesToInternal(original);
    EXPECT_EQ(internal[0], 99 * 1.5);
    EXPECT_EQ(perm.valuesToOriginal(internal), original);
}

// ---------------------------------------------------------------------
// Csr layouts

TEST(CsrLayout, CompressedRowsMatchPlainSorted)
{
    Rng rng(41);
    const EdgeList el = weightedRmat(200, 1000, rng);
    const Csr plain(el, Csr::Axis::BySource);
    const Csr packed(el, Csr::Axis::BySource, GraphLayout::Compressed);
    ASSERT_EQ(packed.numEdges(), plain.numEdges());
    EXPECT_LT(packed.bytesPerEdge(), plain.bytesPerEdge());
    Csr::RowScratch scratch;
    for (VertexId v = 0; v < el.numVertices(); v++) {
        ASSERT_EQ(packed.degree(v), plain.degree(v));
        // Plain row sorted by neighbor, weights carried along.
        std::vector<std::pair<VertexId, float>> want;
        auto nbrs = plain.neighbors(v);
        auto wgts = plain.weights(v);
        for (std::size_t i = 0; i < nbrs.size(); i++)
            want.emplace_back(nbrs[i], wgts[i]);
        std::stable_sort(want.begin(), want.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        const Csr::RowView row = packed.row(v, scratch);
        ASSERT_EQ(row.size(), want.size());
        std::size_t i = 0;
        for (; i < want.size(); i++) {
            EXPECT_EQ(row.nbr[i], want[i].first);
            EXPECT_FLOAT_EQ(row.wgt[i], want[i].second);
        }
        i = 0;
        packed.forEachNeighbor(v, [&](VertexId nbr, float w) {
            EXPECT_EQ(nbr, want[i].first);
            EXPECT_FLOAT_EQ(w, want[i].second);
            i++;
        });
        EXPECT_EQ(i, want.size());
    }
}

// ---------------------------------------------------------------------
// Engine equivalence across the layout x reorder grid

struct GridCase
{
    const char *engine;
    std::uint32_t threads;
    std::uint32_t fragments;
};

const GridCase kEngines[] = {
    {"serial", 1, 1},
    {"async", 1, 1},
    {"async", 4, 1},
    {"accum", 1, 1},
    {"fragment", 2, 2},
};

const LayoutOptions kLayouts[] = {
    {GraphLayout::Plain, VertexReorder::None},
    {GraphLayout::Plain, VertexReorder::Hub},
    {GraphLayout::Compressed, VertexReorder::None},
    {GraphLayout::Compressed, VertexReorder::Hub},
};

/** Run one algo on one layout/engine cell through the serve runner. */
std::vector<double>
runCell(const BlockPartition &g, const char *algo, VertexId source,
        const GridCase &e)
{
    JobRequest req;
    req.algo = algo;
    req.engine = e.engine;
    req.source = source;
    req.options.blockSize = g.blockSize();
    req.options.tolerance = 1e-12;
    req.options.numThreads = e.threads;
    req.options.fragments = e.fragments;
    const RunOutcome out = runAnalyticsJob(g, req);
    EXPECT_TRUE(out.ok()) << out.error;
    EXPECT_TRUE(out.report.converged);
    return out.values;
}

/**
 * Every engine x layout x reorder cell must land on the same fixpoint
 * as the exact references, with results keyed by ORIGINAL vertex ids.
 * |V| = 97 (prime) so block boundaries never align with any structure
 * of the generator.
 */
TEST(Layout, AllEnginesMatchReferencesAcrossGrid)
{
    Rng rng(43);
    const VertexId n = 97;
    const EdgeList el = weightedRmat(n, 700, rng);
    const EdgeList sym = el.symmetrized();
    const VertexId source = 5;

    const std::vector<double> pr_ref = pagerankReference(el, 0.85);
    const std::vector<double> sssp_ref = dijkstraReference(el, source);
    const std::vector<double> bfs_ref = bfsReference(el, source);
    const std::vector<double> cc_ref = ccReference(sym);

    for (const LayoutOptions &lo : kLayouts) {
        const BlockPartition g(el, 16, lo);
        const BlockPartition gs(sym, 16, lo);
        for (const GridCase &e : kEngines) {
            SCOPED_TRACE(std::string(e.engine) + " t" +
                         std::to_string(e.threads) + " " +
                         to_string(lo.layout) + "/" +
                         to_string(lo.reorder));
            const auto pr = runCell(g, "pr", 0, e);
            ASSERT_EQ(pr.size(), n);
            for (VertexId v = 0; v < n; v++)
                ASSERT_NEAR(pr[v], pr_ref[v], 1e-6) << "vertex " << v;
            const auto sssp = runCell(g, "sssp", source, e);
            for (VertexId v = 0; v < n; v++)
                ASSERT_NEAR(sssp[v], sssp_ref[v], 1e-6)
                    << "vertex " << v;
            const auto bfs = runCell(g, "bfs", source, e);
            for (VertexId v = 0; v < n; v++)
                ASSERT_NEAR(bfs[v], bfs_ref[v], 1e-6) << "vertex " << v;
            const auto cc = runCell(gs, "cc", 0, e);
            ASSERT_EQ(cc.size(), n);
            if (lo.reorder == VertexReorder::None) {
                // Without a reorder the representative is exactly the
                // minimum vertex id in each component.
                for (VertexId v = 0; v < n; v++)
                    ASSERT_NEAR(cc[v], cc_ref[v], 1e-9)
                        << "vertex " << v;
            } else {
                // Under a reorder the representative is whichever
                // member the permutation placed first — still an
                // original id inside the component, and the labeling
                // must induce exactly the reference partition.
                std::map<double, double> label_to_ref;
                for (VertexId v = 0; v < n; v++) {
                    const auto label = static_cast<VertexId>(cc[v]);
                    ASSERT_LT(label, n) << "vertex " << v;
                    ASSERT_EQ(cc_ref[label], cc_ref[v])
                        << "label " << label
                        << " is outside vertex " << v
                        << "'s component";
                    const auto [it, fresh] =
                        label_to_ref.emplace(cc[v], cc_ref[v]);
                    ASSERT_EQ(it->second, cc_ref[v])
                        << "label " << cc[v]
                        << " spans two reference components";
                    (void)fresh;
                }
                const std::set<double> ref_labels(cc_ref.begin(),
                                                  cc_ref.end());
                ASSERT_EQ(label_to_ref.size(), ref_labels.size())
                    << "labeling is finer than the reference partition";
            }
        }
    }
}

// ---------------------------------------------------------------------
// Serve integration: original-id contract and fingerprints

TEST(LayoutServe, HubReorderedResultsKeyedByOriginalIds)
{
    Rng rng(47);
    const EdgeList el = weightedRmat(150, 900, rng);
    GraphRegistry registry;
    LayoutOptions lo;
    lo.layout = GraphLayout::Compressed;
    lo.reorder = VertexReorder::Hub;
    auto g = registry.add("g", el, 32, lo);
    ASSERT_FALSE(g->permutation().isIdentity());

    // SSSP source is an original id; distances come back original-keyed.
    const VertexId source = 3;
    JobRequest req;
    req.algo = "sssp";
    req.engine = "serial";
    req.source = source;
    req.options.blockSize = 32;
    req.options.tolerance = 1e-12;
    const RunOutcome out = runAnalyticsJob(*g, req);
    ASSERT_TRUE(out.ok()) << out.error;
    const std::vector<double> ref = dijkstraReference(el, source);
    ASSERT_EQ(out.values.size(), ref.size());
    for (VertexId v = 0; v < el.numVertices(); v++)
        ASSERT_NEAR(out.values[v], ref[v], 1e-6) << "vertex " << v;

    // A warm start expressed in original ids must be accepted as-is
    // (the boundary translates it) and land on the same fixpoint.
    JobRequest warm = req;
    warm.options.warmStart =
        std::make_shared<const std::vector<double>>(out.values);
    const RunOutcome warmed = runAnalyticsJob(*g, warm);
    ASSERT_TRUE(warmed.ok()) << warmed.error;
    for (VertexId v = 0; v < el.numVertices(); v++)
        ASSERT_NEAR(warmed.values[v], ref[v], 1e-6) << "vertex " << v;
    EXPECT_LE(warmed.report.epochs, out.report.epochs);
}

TEST(LayoutServe, FingerprintsNeverAliasAcrossLayouts)
{
    Rng rng(53);
    const EdgeList el = generateRmat(100, 500, rng);
    GraphRegistry registry;
    std::vector<std::uint64_t> fps;
    for (const LayoutOptions &lo : kLayouts) {
        registry.add("same-name", el, 32, lo);
        fps.push_back(registry.fingerprint("same-name"));
    }
    for (std::size_t i = 0; i < fps.size(); i++)
        for (std::size_t j = i + 1; j < fps.size(); j++)
            EXPECT_NE(fps[i], fps[j]) << "cells " << i << "," << j;

    // And the job-family fingerprint (the warm-start key) inherits the
    // distinction: same request on different layouts never aliases.
    JobRequest req;
    req.algo = "pr";
    req.engine = "serial";
    EXPECT_NE(jobFamilyFingerprint(fps[0], req),
              jobFamilyFingerprint(fps[3], req));
}

// ---------------------------------------------------------------------
// Bytes-moved accounting

TEST(Layout, CompressedMovesAtLeastQuarterFewerBytes)
{
    Rng rng(59);
    const EdgeList el = generateRmat(1 << 11, 1 << 14, rng);
    LayoutOptions plain;
    LayoutOptions comp;
    comp.layout = GraphLayout::Compressed;
    const BlockPartition gp(el, 128, plain);
    const BlockPartition gc(el, 128, comp);

    // Static stored topology bytes per edge: the acceptance ratio the
    // HARP Bus model consumes via HarpConfig::layoutBytesPerEdge.
    EXPECT_LE(gc.gatherBytesPerEdge(),
              0.75 * gp.gatherBytesPerEdge());

    const auto sweep = [](const BlockPartition &g) {
        PageRankProgram prog;
        EngineOptions opt;
        opt.blockSize = g.blockSize();
        opt.tolerance = 1e-8;
        SerialEngine<PageRankProgram> engine(g, prog, opt);
        std::vector<double> values;
        g.resetBytesMoved();
        engine.run(values);
        return g.bytesMoved();
    };
    const BytesMoved mp = sweep(gp);
    const BytesMoved mc = sweep(gc);
    ASSERT_GT(mp.gather, 0u);
    ASSERT_GT(mc.gather, 0u);
    // Moved-byte tallies must mirror the static ratio on the gather
    // stream (the run lengths are identical: same fixpoint problem).
    EXPECT_LE(static_cast<double>(mc.total()),
              0.75 * static_cast<double>(mp.total()));
}

} // namespace
} // namespace graphabcd
