#include "graph/csr.hh"

#include <algorithm>
#include <numeric>

#include "support/logging.hh"

namespace graphabcd {

Csr::Csr(const EdgeList &el, Axis axis, GraphLayout layout)
    : nVertices(el.numVertices()), nEdges(el.numEdges()), layout_(layout)
{
    const EdgeId m = nEdges;
    offsets.assign(static_cast<std::size_t>(nVertices) + 1, 0);
    adj.resize(m);
    wgt.resize(m);

    // Counting sort by the row endpoint: one pass to count, prefix sum,
    // one pass to place.  Keeps construction O(V + E) even for the
    // billion-edge-scale stand-ins.
    for (const Edge &e : el.edges()) {
        VertexId row = axis == Axis::BySource ? e.src : e.dst;
        offsets[row + 1]++;
    }
    for (VertexId v = 0; v < nVertices; v++)
        offsets[v + 1] += offsets[v];

    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge &e : el.edges()) {
        VertexId row = axis == Axis::BySource ? e.src : e.dst;
        VertexId col = axis == Axis::BySource ? e.dst : e.src;
        EdgeId pos = cursor[row]++;
        adj[pos] = col;
        wgt[pos] = e.weight;
    }

    if (compressed())
        pack();
}

void
Csr::pack()
{
    const EdgeId m = nEdges;

    // Delta encoding needs sorted rows; keep weights paired with their
    // neighbor through the sort.
    std::vector<EdgeId> order(m);
    for (VertexId v = 0; v < nVertices; v++) {
        const EdgeId begin = offsets[v], end = offsets[v + 1];
        if (end - begin < 2)
            continue;
        std::iota(order.begin() + begin, order.begin() + end, begin);
        std::stable_sort(order.begin() + begin, order.begin() + end,
                         [&](EdgeId a, EdgeId b) {
                             return adj[a] < adj[b];
                         });
        std::vector<VertexId> na(end - begin);
        std::vector<float> nw(end - begin);
        for (EdgeId i = begin; i < end; i++) {
            na[i - begin] = adj[order[i]];
            nw[i - begin] = wgt[order[i]];
        }
        std::copy(na.begin(), na.end(), adj.begin() + begin);
        std::copy(nw.begin(), nw.end(), wgt.begin() + begin);
    }

    // Narrowest weight sidecar that preserves every value exactly.
    weightMode_ = WeightMode::Unit;
    for (EdgeId e = 0; e < m && weightMode_ != WeightMode::Float32; e++) {
        const float w = wgt[e];
        if (w == 1.0f)
            continue;
        if (w >= 0.0f && w <= 255.0f &&
            w == static_cast<float>(static_cast<std::uint8_t>(w)))
            weightMode_ = WeightMode::U8;
        else
            weightMode_ = WeightMode::Float32;
    }
    if (weightMode_ == WeightMode::U8) {
        wgt8_.resize(m);
        for (EdgeId e = 0; e < m; e++)
            wgt8_[e] = static_cast<std::uint8_t>(wgt[e]);
    }
    if (weightMode_ != WeightMode::Float32) {
        wgt.clear();
        wgt.shrink_to_fit();
    }

    byteOffsets_.resize(static_cast<std::size_t>(nVertices) + 1);
    for (VertexId v = 0; v < nVertices; v++) {
        byteOffsets_[v] = stream_.size();
        codec::encodeDeltaList32(
            std::span<const VertexId>(adj.data() + offsets[v],
                                      adj.data() + offsets[v + 1]),
            stream_);
    }
    byteOffsets_[nVertices] = stream_.size();

    adj.clear();
    adj.shrink_to_fit();
}

Csr::RowView
Csr::row(VertexId row, RowScratch &scratch) const
{
    if (!compressed()) {
        return {neighbors(row), weights(row)};
    }
    const std::uint32_t deg = degree(row);
    scratch.nbr.resize(deg);
    scratch.wgt.resize(deg);
    const std::uint8_t *p = stream_.data() + byteOffsets_[row];
    VertexId prev = 0;
    for (std::uint32_t i = 0; i < deg; i++) {
        std::uint32_t d;
        p = codec::decodeVarint32(p, d);
        prev = i == 0 ? d : prev + d;
        scratch.nbr[i] = prev;
        scratch.wgt[i] = weightAt(offsets[row] + i);
    }
    return {std::span<const VertexId>(scratch.nbr),
            std::span<const float>(scratch.wgt)};
}

double
Csr::bytesPerEdge() const
{
    if (nEdges == 0)
        return 0.0;
    if (!compressed())
        return static_cast<double>(sizeof(VertexId) + sizeof(float));
    std::size_t sidecar = 0;
    switch (weightMode_) {
      case WeightMode::Unit:
        sidecar = 0;
        break;
      case WeightMode::U8:
        sidecar = nEdges;
        break;
      case WeightMode::Float32:
        sidecar = static_cast<std::size_t>(nEdges) * sizeof(float);
        break;
    }
    return static_cast<double>(stream_.size() + sidecar) /
           static_cast<double>(nEdges);
}

} // namespace graphabcd
