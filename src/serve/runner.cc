#include "serve/runner.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "algorithms/extras.hh"
#include "algorithms/label_propagation.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/sssp.hh"
#include "core/accum_engine.hh"
#include "core/async_engine.hh"
#include "core/engine.hh"
#include "fragment/engine.hh"
#include "harp/system.hh"
#include "runtime/executor.hh"
#include "support/fingerprint.hh"

namespace graphabcd {

namespace {

/** Translate a simulator report into the common EngineReport shape. */
EngineReport
fromSimReport(const SimReport &sim)
{
    EngineReport report;
    report.epochs = sim.epochs;
    report.blockUpdates = sim.blockUpdates;
    report.vertexUpdates = sim.vertexUpdates;
    report.edgeTraversals = sim.edgeTraversals;
    report.scatterWrites = sim.scatterWrites;
    report.converged = sim.converged;
    report.stopped = sim.stopped;
    report.seconds = sim.hostSeconds;
    return report;
}

template <typename Program>
RunOutcome
runWith(const BlockPartition &g, Program program, const JobRequest &req)
{
    RunOutcome out;
    if (req.engine == "serial") {
        SerialEngine<Program> engine(g, program, req.options);
        out.report = engine.run(out.values);
    } else if (req.engine == "async") {
        if constexpr (std::atomic<
                          typename Program::Value>::is_always_lock_free) {
            AsyncEngine<Program> engine(g, program, req.options);
            out.report = engine.run(out.values);
        } else {
            out.error = "algorithm '" + req.algo +
                        "' is not lock-free atomic; use engine=serial";
        }
    } else if (req.engine == "fragment") {
        FragmentEngine<Program> engine(g, program, req.options);
        out.report = engine.run(out.values);
    } else if (req.engine == "sim") {
        HarpConfig cfg;
        // Simulated DMA traffic tracks the real layout: a compressed
        // partition streams measurably fewer topology bytes per edge
        // than the plain 8-byte CSC record.
        cfg.layoutBytesPerEdge = g.gatherBytesPerEdge();
        HarpSystem<Program> system(g, program, req.options, cfg);
        out.report = fromSimReport(system.run(out.values));
    } else {
        out.error = "unknown engine '" + req.engine + "'";
    }
    return out;
}

/** engine=accum: the accumulative programs are separate types, so the
 *  algo dispatch is separate from runWith's. */
template <typename Program>
RunOutcome
runAccum(const BlockPartition &g, Program program, const JobRequest &req)
{
    RunOutcome out;
    AccumEngine<Program> engine(g, std::move(program), req.options);
    out.report = engine.run(out.values);
    return out;
}

RunOutcome
runAccumJob(const BlockPartition &g, const JobRequest &req)
{
    if (req.algo == "pr")
        return runAccum(g, PageRankAccumProgram(), req);
    if (req.algo == "sssp")
        return runAccum(g, SsspAccumProgram(req.source), req);
    if (req.algo == "bfs")
        return runAccum(g, BfsAccumProgram(req.source), req);
    if (req.algo == "cc")
        return runAccum(g, CcAccumProgram(), req);
    RunOutcome out;
    out.error = "algorithm '" + req.algo +
                "' has no accumulative (delta) form; use another engine";
    return out;
}

/**
 * The wedge engine: deliberately makes no progress, for exercising the
 * stall watchdog end to end (tests, the ci.sh stall drill).  Hidden
 * behind an environment gate so production clients cannot reach it by
 * mistyping an engine name.
 */
bool
wedgeEngineEnabled()
{
    const char *env = std::getenv("GRAPHABCD_ENABLE_WEDGE_ENGINE");
    return env != nullptr && *env != '\0';
}

RunOutcome
runWedgeJob(const BlockPartition &g, const JobRequest &req)
{
    // Poll the stop token without ever touching the Progress sink:
    // from the watchdog's point of view this job is perfectly wedged,
    // yet it still cancels cooperatively.  The time cap is a safety
    // net for misconfigured drills, not part of the contract.
    RunOutcome out;
    const auto start = std::chrono::steady_clock::now();
    bool stopped = false;
    while (std::chrono::steady_clock::now() - start <
           std::chrono::seconds(30)) {
        if (req.options.stop.stopRequested()) {
            stopped = true;
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    out.values.assign(g.numVertices(), 0.0);
    out.report.stopped = stopped;
    out.report.converged = false;
    out.report.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    return out;
}

/** Algorithms whose fixpoint depends on JobRequest::source. */
bool
algoUsesSource(const std::string &algo)
{
    return algo == "sssp" || algo == "bfs" || algo == "ppr";
}

/**
 * Algorithms whose per-vertex values are themselves vertex ids (cc
 * component representatives, lp community labels).  Under a reorder
 * the engine computes labels in internal ids; the boundary translates
 * them so callers see original ids end to end.
 */
bool
algoValuesAreVertexIds(const std::string &algo)
{
    return algo == "cc" || algo == "lp";
}

} // namespace

RunOutcome
runAnalyticsJob(const BlockPartition &g, const JobRequest &req,
                std::shared_ptr<Executor> executor)
{
    // The pool is an execution resource, not a semantic option, so it
    // is injected here (per call) rather than fingerprinted.
    const JobRequest *effective = &req;
    JobRequest adjusted;
    auto mutableReq = [&]() -> JobRequest & {
        if (effective != &adjusted) {
            adjusted = req;
            effective = &adjusted;
        }
        return adjusted;
    };
    if (executor && !req.options.executor)
        mutableReq().options.executor = std::move(executor);

    // Permutation boundary (DESIGN.md §11): engines run in the
    // reordered internal id space, while requests and results speak
    // original ids.  Translate the source vertex and warm-start vector
    // on the way in and un-permute the values on the way out, so the
    // reorder is invisible to every caller (and to the ResultCache,
    // which stores original-id vectors).
    const VertexPermutation &perm = g.permutation();
    if (!perm.isIdentity()) {
        if (algoUsesSource(req.algo) && req.source < g.numVertices())
            mutableReq().source = perm.toInternal(req.source);
        if (req.options.warmStart &&
            req.options.warmStart->size() == g.numVertices()) {
            std::vector<double> warm =
                perm.valuesToInternal(*req.options.warmStart);
            // Id-valued warm starts carry original-id labels; the
            // engine expects internal ones.
            if (algoValuesAreVertexIds(req.algo)) {
                for (double &x : warm) {
                    const auto label = static_cast<VertexId>(x);
                    if (label < g.numVertices())
                        x = static_cast<double>(perm.toInternal(label));
                }
            }
            mutableReq().options.warmStart =
                std::make_shared<const std::vector<double>>(
                    std::move(warm));
        }
    }

    const JobRequest &r = *effective;
    RunOutcome out;
    if (r.engine == "wedge")
        out = runWedgeJob(g, r);
    else if (r.engine == "accum")
        out = runAccumJob(g, r);
    else if (r.algo == "pr")
        out = runWith(g, PageRankProgram(), r);
    else if (r.algo == "ppr")
        out = runWith(g, PersonalizedPageRankProgram(r.source), r);
    else if (r.algo == "sssp")
        out = runWith(g, SsspProgram(r.source), r);
    else if (r.algo == "bfs")
        out = runWith(g, BfsProgram(r.source), r);
    else if (r.algo == "cc")
        out = runWith(g, CcProgram(), r);
    else if (r.algo == "lp")
        out = runWith(g, LabelPropagationProgram(), r);
    else
        out.error = "unknown algorithm '" + r.algo + "'";

    if (!perm.isIdentity() && out.values.size() == g.numVertices()) {
        out.values = perm.valuesToOriginal(out.values);
        // cc/lp labels are vertex ids themselves, so the *values* need
        // the same translation as the positions.  The representative a
        // component gets is whichever member the reorder placed first —
        // consistent within a run, but not necessarily the minimum
        // original id.
        if (algoValuesAreVertexIds(req.algo)) {
            for (double &x : out.values) {
                const auto label = static_cast<VertexId>(x);
                if (label < g.numVertices())
                    x = static_cast<double>(perm.toOriginal(label));
            }
        }
    }
    return out;
}

bool
isRunnable(const JobRequest &req, std::string *why)
{
    static const char *const algos[] = {"pr",  "ppr", "sssp",
                                        "bfs", "cc",  "lp"};
    static const char *const engines[] = {"serial", "async", "fragment",
                                          "sim", "accum"};
    static const char *const accum_algos[] = {"pr", "sssp", "bfs", "cc"};
    bool algo_ok = false;
    for (const char *a : algos)
        algo_ok = algo_ok || req.algo == a;
    bool engine_ok = false;
    for (const char *e : engines)
        engine_ok = engine_ok || req.engine == e;
    // The watchdog drill engine exists only when explicitly enabled.
    if (req.engine == "wedge" && wedgeEngineEnabled())
        engine_ok = true;
    bool combo_ok = true;
    if (algo_ok && engine_ok && req.engine == "accum") {
        combo_ok = false;
        for (const char *a : accum_algos)
            combo_ok = combo_ok || req.algo == a;
    }
    if (!algo_ok && why)
        *why = "unknown algorithm '" + req.algo + "'";
    else if (!engine_ok && why)
        *why = "unknown engine '" + req.engine + "'";
    else if (!combo_ok && why)
        *why = "algorithm '" + req.algo +
               "' has no accumulative (delta) form";
    return algo_ok && engine_ok && combo_ok;
}

std::uint64_t
jobFamilyFingerprint(std::uint64_t graph_fingerprint,
                     const JobRequest &req)
{
    Fingerprint fp;
    fp.mix(graph_fingerprint);
    fp.mix(std::string_view(req.algo));
    // The source vertex is part of the fixpoint only for sssp/bfs/ppr.
    // For source-less algorithms it is normalized to a sentinel:
    // mixing a stray source there is never a *wrong* hit, but it
    // splits one result family across cache entries, so equivalent
    // pagerank/cc/lp requests with different stray sources would miss
    // the ResultCache (and its warm-start path) for no reason.  The
    // sentinel cannot collide with a real source: VertexId is 32-bit.
    constexpr std::uint64_t kNoSource = ~std::uint64_t{0};
    fp.mix(algoUsesSource(req.algo)
               ? static_cast<std::uint64_t>(req.source)
               : kNoSource);
    return fp.value();
}

std::uint64_t
jobFingerprint(std::uint64_t graph_fingerprint, const JobRequest &req)
{
    Fingerprint fp;
    fp.mix(jobFamilyFingerprint(graph_fingerprint, req));
    fp.mix(std::string_view(req.engine));
    const EngineOptions &opt = req.options;
    fp.mix(static_cast<std::uint64_t>(opt.blockSize));
    fp.mix(static_cast<std::uint64_t>(opt.schedule));
    fp.mix(static_cast<std::uint64_t>(opt.mode));
    fp.mix(opt.tolerance);
    fp.mix(opt.maxEpochs);
    fp.mix(opt.seed);
    fp.mix(static_cast<std::uint64_t>(opt.numThreads));
    // The fragment cut changes the update schedule (hence the exact
    // floating-point trajectory), so it is part of the result identity.
    fp.mix(static_cast<std::uint64_t>(opt.fragments));
    return fp.value();
}

} // namespace graphabcd
