file(REMOVE_RECURSE
  "libabcd_harp.a"
)
