#include "obs/watchdog.hh"

#if GRAPHABCD_OBS_ENABLED

#include <chrono>
#include <sstream>
#include <utility>

#include "obs/flight.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "support/timer.hh"

namespace graphabcd {
namespace obs {

StallWatchdog::StallWatchdog() : StallWatchdog(Config()) {}

StallWatchdog::StallWatchdog(Config config) : cfg_(config) {}

StallWatchdog::~StallWatchdog()
{
    stop();
}

void
StallWatchdog::start()
{
    std::lock_guard<std::mutex> lock(mtx_);
    if (running_)
        return;
    running_ = true;
    stopRequested_ = false;
    thread_ = std::thread([this] { loop(); });
}

void
StallWatchdog::stop()
{
    std::thread joinable;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        if (!running_)
            return;
        running_ = false;
        stopRequested_ = true;
        joinable = std::move(thread_);
    }
    cv_.notify_all();
    if (joinable.joinable())
        joinable.join();
}

void
StallWatchdog::watch(std::uint64_t id, std::string label,
                     ProgressFn progress, StallFn on_stall)
{
    Entry entry;
    entry.label = std::move(label);
    entry.progress = std::move(progress);
    entry.onStall = std::move(on_stall);
    entry.lastValue = entry.progress ? entry.progress() : 0;
    entry.lastChangeAt = monotonicSeconds();
    std::lock_guard<std::mutex> lock(mtx_);
    auto [it, inserted] = tasks_.insert_or_assign(id, std::move(entry));
    (void)it;
    (void)inserted;
}

void
StallWatchdog::unwatch(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = tasks_.find(id);
    if (it == tasks_.end())
        return;
    if (it->second.flagged && flagged_ > 0)
        flagged_--;
    tasks_.erase(it);
    MetricsRegistry::global()
        .gauge(cfg_.stalledGaugeName)
        .set(static_cast<double>(flagged_));
}

void
StallWatchdog::pollNow()
{
    checkOnce();
}

std::uint64_t
StallWatchdog::stallEvents() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return events_;
}

std::size_t
StallWatchdog::flaggedCount() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return flagged_;
}

bool
StallWatchdog::isFlagged(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = tasks_.find(id);
    return it != tasks_.end() && it->second.flagged;
}

void
StallWatchdog::loop()
{
    std::unique_lock<std::mutex> lock(mtx_);
    for (;;) {
        cv_.wait_for(lock,
                     std::chrono::duration<double>(
                         cfg_.checkSeconds > 0.0 ? cfg_.checkSeconds
                                                 : 0.25),
                     [this] { return stopRequested_; });
        if (stopRequested_)
            return;
        lock.unlock();
        checkOnce();
        lock.lock();
    }
}

void
StallWatchdog::checkOnce()
{
    struct Fired
    {
        std::uint64_t id;
        std::string label;
        std::string diagnosis;
        StallFn onStall;
    };
    std::vector<Fired> fired;
    std::vector<std::pair<std::uint64_t, std::string>> recovered;
    std::size_t flagged_now = 0;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        const double now = monotonicSeconds();
        for (auto &[id, entry] : tasks_) {
            const std::uint64_t cur =
                entry.progress ? entry.progress() : 0;
            if (cur != entry.lastValue) {
                entry.lastValue = cur;
                entry.lastChangeAt = now;
                if (entry.flagged) {
                    entry.flagged = false;
                    if (flagged_ > 0)
                        flagged_--;
                    recovered.emplace_back(id, entry.label);
                }
                continue;
            }
            const double flat = now - entry.lastChangeAt;
            if (!entry.flagged && flat >= cfg_.windowSeconds) {
                entry.flagged = true;
                flagged_++;
                events_++;
                std::ostringstream diag;
                diag << "no progress for " << flat << " s (window "
                     << cfg_.windowSeconds << " s, counter stuck at "
                     << cur << ")";
                fired.push_back(
                    Fired{id, entry.label, diag.str(), entry.onStall});
            }
        }
        flagged_now = flagged_;
    }

    MetricsRegistry::global()
        .gauge(cfg_.stalledGaugeName)
        .set(static_cast<double>(flagged_now));

    for (const auto &[id, label] : recovered) {
        GRAPHABCD_LOG_INFO("watchdog", "task recovered", LOGF("id", id),
                           LOGF("label", label));
    }
    for (Fired &f : fired) {
        MetricsRegistry::global().counter(cfg_.eventsCounterName).add(1);
        GRAPHABCD_LOG_WARN("watchdog", "task stalled", LOGF("id", f.id),
                           LOGF("label", f.label),
                           LOGF("diagnosis", f.diagnosis));
        if (f.onStall)
            f.onStall(f.diagnosis);
        if (cfg_.dumpFlightOnStall) {
            FlightRecorder::global().dumpIfArmed(
                "stall: " + f.label + ": " + f.diagnosis);
        }
    }
}

} // namespace obs
} // namespace graphabcd

#endif // GRAPHABCD_OBS_ENABLED
