/**
 * @file
 * JobManager — the serve layer's execution core.
 *
 * Threading model (documented in DESIGN.md "Serve layer"):
 *
 *  - submit() runs on the client thread: it resolves the graph handle,
 *    consults the ResultCache (an exact hit completes the job without
 *    ever queueing), and admits the job to the tenant-aware
 *    FairShareQueue (serve/qos.hh).  A saturated queue backpressures
 *    the most over-share tenant with QueueFull, displaces the newest
 *    queued job of an over-share tenant (terminal state Shed) to admit
 *    under-share work, and sheds deadline-infeasible submissions
 *    outright (SubmitError::Shed) so doomed clients fail fast.
 *
 *  - A fixed pool of service workers pops jobs in weighted-fair lane
 *    order (priority order within a tenant) and runs the engine
 *    synchronously.  Engines are handed a StopToken (cancel() +
 *    per-job deadline) they poll at block granularity, and a Progress
 *    sink of relaxed atomics they publish into, so status() snapshots
 *    never touch an engine lock.
 *
 *  - One mutex guards the job table, stats (global and per-tenant),
 *    and the warm-start index; it is never held across an engine run,
 *    a partition build, or a queue wait.  The ResultCache and
 *    FairShareQueue have their own locks, always acquired after
 *    (never while holding) the manager lock held only for map/stat
 *    updates — no lock-order cycles.
 *
 * Cancellation is cooperative and race-free: cancel() atomically
 * claims a Queued job (the popping worker then skips it) or requests a
 * stop on a Running one; the engine returns with report.stopped and
 * the worker records Cancelled.  Deadlines ride the same token, and
 * the halt cause is attributed by instant (first requestStop() vs the
 * token deadline), not by guessing from the flag.  All writes to a
 * job's result/bookkeeping happen *after* the terminal CAS is won
 * (finishJob's on_win hook), so a losing finisher never leaves state
 * behind on a job someone else terminalised.
 */

#ifndef GRAPHABCD_SERVE_JOB_MANAGER_HH
#define GRAPHABCD_SERVE_JOB_MANAGER_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/stop_token.hh"
#include "obs/span.hh"
#include "obs/watchdog.hh"
#include "runtime/executor.hh"
#include "serve/graph_registry.hh"
#include "serve/job.hh"
#include "serve/qos.hh"
#include "serve/result_cache.hh"

namespace graphabcd {

/** Embedded analytics job service over a GraphRegistry. */
class JobManager
{
  public:
    /** Outcome of submit(): a JobId, or the rejection reason. */
    struct Submitted
    {
        JobId id = 0;
        SubmitError error = SubmitError::None;

        bool ok() const { return id != 0; }
    };

    /**
     * @param registry shared graph store (not owned; must outlive the
     *        manager).
     */
    explicit JobManager(GraphRegistry &registry, ServeConfig config = {});

    /** Stops workers and cancels outstanding jobs. */
    ~JobManager();

    JobManager(const JobManager &) = delete;
    JobManager &operator=(const JobManager &) = delete;

    /**
     * Submit a job.  May complete it immediately (cache hit) or reject
     * it (QueueFull / UnknownGraph / BadRequest / ShuttingDown).
     */
    Submitted submit(JobRequest req);

    /**
     * Request cancellation.  Queued jobs are cancelled immediately;
     * running jobs stop at the engine's next token poll.
     * @return false when the job is unknown or already terminal.
     */
    bool cancel(JobId id);

    /** @return a point-in-time snapshot, or nullopt for unknown ids. */
    std::optional<JobStatus> status(JobId id) const;

    /** @return the result once Done, nullptr otherwise. */
    std::shared_ptr<const JobResult> result(JobId id) const;

    /**
     * Block until the job reaches a terminal state.
     * @param timeout_seconds negative = wait forever.
     * @return whether the job is terminal on return.
     */
    bool wait(JobId id, double timeout_seconds = -1.0) const;

    /** Service counters and gauges. */
    ServeStats stats() const;

    /**
     * Per-tenant counters/gauges, one entry per tenant ever seen
     * (including rejected-only tenants).  Gauges (queued/running) are
     * point-in-time; counters are monotonic.
     */
    std::map<std::string, TenantServeStats> tenantStats() const;

    /**
     * The job's convergence curve (one sample per trace interval),
     * recorded while the engine runs and retained with the job record.
     * Null for unknown ids, cache-hit jobs (nothing ran), and always
     * under GRAPHABCD_OBS=OFF.
     */
    std::shared_ptr<const obs::ConvergenceSeries>
    convergence(JobId id) const;

    /** The result cache (hit counters, capacity). */
    ResultCache &cache() { return cache_; }
    const ResultCache &cache() const { return cache_; }

    /** Reject new work, cancel outstanding jobs, join workers. */
    void shutdown();

  private:
    /** Internal job record; shared by the table and the queue. */
    struct Job
    {
        JobId id = 0;
        JobRequest req;
        std::shared_ptr<const BlockPartition> graph;
        std::uint64_t key = 0;         //!< exact cache fingerprint
        std::uint64_t familyKey = 0;   //!< warm-start fingerprint

        StopSource stop;
        std::shared_ptr<Progress> progress;
        std::shared_ptr<obs::ConvergenceSeries> series;

        /** Root of the job's causal span tree, allocated at submit();
         *  every engine/executor span of this job descends from it. */
        obs::SpanContext traceRoot;

        /** Stall flag, published by the watchdog thread (the single
         *  writer) with release order; stallDiagnosis is written before
         *  the store and is read-only once `stalled` reads true. */
        std::atomic<bool> stalled{false};
        std::string stallDiagnosis;

        std::atomic<JobState> state{JobState::Queued};
        double submittedAt = 0.0;   //!< monotonicSeconds()
        double startedAt = 0.0;
        double finishedAt = 0.0;

        std::shared_ptr<const JobResult> result;
        std::string error;
        bool cacheHit = false;
        bool warmStarted = false;
    };

    /** Per-tenant accounting plus lazily resolved obs instruments
     *  (serve.tenant.<name>.{queued,running,completed,shed,wait_us}). */
    struct TenantEntry
    {
        TenantServeStats stats;
        obs::Gauge *queuedGauge = nullptr;
        obs::Gauge *runningGauge = nullptr;
        obs::Counter *completedCounter = nullptr;
        obs::Counter *shedCounter = nullptr;
        obs::Histogram *waitHist = nullptr;
    };

    void workerLoop();
    void runJob(const std::shared_ptr<Job> &job);

    /**
     * Terminalise a job with CAS `from -> to` under mtx_.  The CAS is
     * what makes finishing race-free: cancel() and a worker can both
     * try to terminalise the same Queued job, and exactly one of them
     * wins and does the bookkeeping (stats, error, timestamps).
     * @param on_win runs under mtx_ only after the CAS is won — the
     *        single place a finisher may write job->result and other
     *        outcome fields, so the losing side leaves no trace.
     * @return whether this caller won the transition.
     */
    bool finishJob(const std::shared_ptr<Job> &job, JobState from,
                   JobState to, std::string error,
                   const std::function<void()> &on_win = nullptr);

    /** The tenant's accounting entry, created on first sight (mtx_). */
    TenantEntry &tenantEntryLocked(const std::string &tenant);

    /**
     * Watchdog verdict for one job: publish the diagnosis (single
     * writer, release store), log a structured warning, and — when
     * cancelOnStall — request a cooperative stop so the run
     * terminalises Cancelled with a "stalled: ..." cause.
     */
    void onJobStalled(const std::shared_ptr<Job> &job,
                      const std::string &diagnosis);

    /** Flight-recorder provider: the job table + queue as JSON. */
    std::string flightJson() const;

    /** Push the tenant's queued/running gauges to obs (mtx_ held). */
    void publishTenantGauges(const TenantEntry &entry);

    /**
     * The true halt cause: "deadline exceeded" when the token deadline
     * fired at or before the first requestStop() (or no cancel ever
     * arrived), else "cancelled" — with a " while queued" suffix for
     * jobs that never started.
     */
    static std::string stopCauseError(const Job &job, bool queued);

    GraphRegistry &registry_;
    const ServeConfig cfg_;
    ResultCache cache_;
    FairShareQueue<std::shared_ptr<Job>> queue_;
    std::shared_ptr<Executor> executor_;   //!< engine worker pool

    mutable std::mutex mtx_;   //!< jobs_, warm-start index, stats_
    mutable std::condition_variable doneCv_;
    std::map<JobId, std::shared_ptr<Job>> jobs_;
    std::unordered_map<std::uint64_t, std::weak_ptr<const JobResult>>
        lastFixpoint_;   //!< familyKey -> most recent converged result
    ServeStats stats_;
    std::map<std::string, TenantEntry> tenants_;   //!< under mtx_

    std::atomic<JobId> nextId_{1};
    std::atomic<std::size_t> running_{0};
    std::atomic<bool> shutdown_{false};
    std::vector<std::thread> workers_;

    /** Stall watchdog (null unless cfg_.stallWindowSeconds > 0 and obs
     *  is compiled in); jobs are watched for the span of their run. */
    std::unique_ptr<obs::StallWatchdog> watchdog_;
    std::uint64_t flightProviderToken_ = 0;
};

} // namespace graphabcd

#endif // GRAPHABCD_SERVE_JOB_MANAGER_HH
