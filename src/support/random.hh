/**
 * @file
 * Deterministic, seedable pseudo-random number generation.
 *
 * All stochastic pieces of the library (graph generators, random
 * schedulers, workload synthesis) draw from these generators so that every
 * experiment is reproducible from a single seed.  SplitMix64 is used for
 * seeding; Xoshiro256** is the workhorse generator.
 */

#ifndef GRAPHABCD_SUPPORT_RANDOM_HH
#define GRAPHABCD_SUPPORT_RANDOM_HH

#include <array>
#include <cstdint>

#include "support/logging.hh"

namespace graphabcd {

/**
 * SplitMix64: tiny generator used to expand a 64-bit seed into the state
 * of larger generators.  Passes BigCrush when used directly as well.
 */
class SplitMix64
{
  public:
    /** @param seed any 64-bit value; equal seeds give equal streams. */
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** @return the next 64 pseudo-random bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Xoshiro256**: fast, high-quality 64-bit generator
 * (Blackman & Vigna, 2018).  Satisfies the C++ UniformRandomBitGenerator
 * requirements so it can feed std::shuffle and friends.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a single seed via SplitMix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        SplitMix64 sm(seed);
        for (auto &word : s)
            word = sm.next();
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** @return the next 64 pseudo-random bits. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** @return uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /**
     * @param bound exclusive upper bound, must be > 0.
     * @return uniform integer in [0, bound) using Lemire's method.
     */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        GRAPHABCD_ASSERT(bound > 0, "nextBounded needs a positive bound");
        // Multiply-shift rejection-free approximation is fine here; use
        // the classic widening multiply which is unbiased enough for
        // workload synthesis while staying branch-light.
        unsigned __int128 m =
            static_cast<unsigned __int128>((*this)()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** @return uniform integer in [lo, hi], inclusive; requires lo <= hi. */
    std::int64_t
    nextRange(std::int64_t lo, std::int64_t hi)
    {
        GRAPHABCD_ASSERT(lo <= hi, "empty range");
        return lo + static_cast<std::int64_t>(
            nextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** @return true with probability p (clamped to [0,1]). */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /** @return standard normal deviate (Box-Muller, polar form). */
    double nextGaussian();

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> s;
};

/**
 * Zipf-distributed integer sampler over [0, n) with exponent `theta`.
 * Used to synthesise skewed item popularity in bipartite rating graphs.
 * Uses the standard rejection-inversion-free CDF table for small n and
 * falls back to Gray's approximation above the table limit.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of distinct items, must be > 0.
     * @param theta skew exponent; 0 gives the uniform distribution.
     */
    ZipfSampler(std::uint64_t n, double theta);

    /** @return a Zipf-distributed index in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    /** @return the number of items. */
    std::uint64_t size() const { return n; }

  private:
    std::uint64_t n;
    double theta;
    double alpha;
    double zetan;
    double eta;
};

} // namespace graphabcd

#endif // GRAPHABCD_SUPPORT_RANDOM_HH
