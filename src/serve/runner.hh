/**
 * @file
 * Job runner — maps a JobRequest onto a concrete (vertex program x
 * engine) instantiation and runs it to completion, plus the
 * fingerprints that key the ResultCache.
 *
 * Two fingerprints per job:
 *
 *  - jobFingerprint: graph identity + algorithm + parameters + every
 *    semantic EngineOptions field.  Exact-match cache key: equal
 *    fingerprints mean the runs are interchangeable.  Serve-layer
 *    hooks (stop token, progress sink, warm start) are deliberately
 *    excluded — they change how a run is observed, not what it
 *    converges to.
 *
 *  - jobFamilyFingerprint: graph identity + algorithm + parameters
 *    only.  All members of a family share a fixpoint, so a cached
 *    result from one member is a valid warm start for another run
 *    with different engine options.
 */

#ifndef GRAPHABCD_SERVE_RUNNER_HH
#define GRAPHABCD_SERVE_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/partition.hh"
#include "serve/job.hh"

namespace graphabcd {

class Executor;

/** Outcome of one dispatched run. */
struct RunOutcome
{
    std::vector<double> values;
    EngineReport report;
    std::string error;   //!< non-empty when the request was unrunnable

    bool ok() const { return error.empty(); }
};

/**
 * Execute `req` against `g` synchronously on the calling thread.  The
 * engine honours req.options.stop / progress / warmStart.  Unsupported
 * algo/engine combinations return an error outcome (never throw).
 * When `g` was built with a vertex reorder, req.source / warmStart and
 * the returned values are translated at this boundary: callers always
 * speak original vertex ids (DESIGN.md §11).
 * @param executor pool the threaded engine draws workers from; null
 *        keeps req.options.executor (itself defaulting to the
 *        process-wide pool).
 */
RunOutcome runAnalyticsJob(const BlockPartition &g, const JobRequest &req,
                           std::shared_ptr<Executor> executor = nullptr);

/** @return whether runAnalyticsJob recognises req.algo and req.engine. */
bool isRunnable(const JobRequest &req, std::string *why = nullptr);

/** Exact-match ResultCache key (see file comment). */
std::uint64_t jobFingerprint(std::uint64_t graph_fingerprint,
                             const JobRequest &req);

/** Fixpoint-family key for warm starting (see file comment). */
std::uint64_t jobFamilyFingerprint(std::uint64_t graph_fingerprint,
                                   const JobRequest &req);

} // namespace graphabcd

#endif // GRAPHABCD_SERVE_RUNNER_HH
