# Empty compiler generated dependencies file for abcd_tests.
# This may be replaced when dependencies are built.
