/**
 * @file
 * Tests of the observability layer: histogram bucket/aggregation math,
 * registry behaviour, trace ring buffers and Chrome JSON export, and
 * the engine-level staleness measurement the bounded task queue is
 * supposed to guarantee (paper Sec. III-D).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/pagerank.hh"
#include "baselines/graphmat/engine.hh"
#include "baselines/graphmat/programs.hh"
#include "core/async_engine.hh"
#include "core/engine.hh"
#include "graph/generators.hh"
#include "obs/convergence.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/flight.hh"
#include "obs/metrics_server.hh"
#include "obs/obs.hh"
#include "obs/span.hh"
#include "obs/watchdog.hh"
#include "obs/prometheus.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "runtime/executor.hh"
#include "serve/graph_registry.hh"
#include "serve/job_manager.hh"
#include "support/logging.hh"

namespace graphabcd {
namespace {

// --------------------------------------------------------------- metrics

TEST(Histogram, BucketBoundariesAreUpperInclusive)
{
    // Bucket i counts bounds[i-1] < x <= bounds[i]; one implicit
    // overflow bucket catches everything above the last bound.
    Histogram h({1.0, 2.0, 4.0});
    for (double x : {0.5, 1.0, 1.5, 3.0, 100.0})
        h.record(x);

    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 2u);   // 0.5 and 1.0 (<= 1)
    EXPECT_EQ(snap.counts[1], 1u);   // 1.5
    EXPECT_EQ(snap.counts[2], 1u);   // 3.0
    EXPECT_EQ(snap.counts[3], 1u);   // 100.0 overflows
    EXPECT_EQ(snap.count, 5u);
    EXPECT_DOUBLE_EQ(snap.sum, 106.0);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 100.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 106.0 / 5.0);
}

TEST(Histogram, QuantileReturnsBucketUpperBoundOrMax)
{
    Histogram h({1.0, 2.0, 4.0});
    for (double x : {0.5, 1.0, 1.5, 3.0, 100.0})
        h.record(x);

    const Histogram::Snapshot snap = h.snapshot();
    // rank = q * (count - 1): ranks 0-1 land in bucket <=1, rank 2 in
    // bucket <=2, rank 3 in bucket <=4, rank 4 in the overflow bucket.
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.75), 4.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);   // overflow -> max
}

TEST(Histogram, QuantileEdgeCases)
{
    // Empty: every quantile is the defined zero, not UB.
    {
        Histogram h({1.0, 2.0});
        const Histogram::Snapshot snap = h.snapshot();
        EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
        EXPECT_DOUBLE_EQ(snap.quantile(1.0), 0.0);
    }
    // Single bucket holding every sample: all quantiles report its
    // upper bound (the estimate is bucket-granular by design).
    {
        Histogram h({10.0});
        for (double x : {1.0, 2.0, 3.0})
            h.record(x);
        const Histogram::Snapshot snap = h.snapshot();
        EXPECT_DOUBLE_EQ(snap.quantile(0.0), 10.0);
        EXPECT_DOUBLE_EQ(snap.quantile(0.5), 10.0);
        EXPECT_DOUBLE_EQ(snap.quantile(1.0), 10.0);
    }
    // Every sample beyond the last bound: the overflow bucket has no
    // upper bound, so quantiles fall back to the observed max.
    {
        Histogram h({1.0});
        h.record(5.0);
        h.record(7.0);
        const Histogram::Snapshot snap = h.snapshot();
        EXPECT_DOUBLE_EQ(snap.quantile(0.0), 7.0);
        EXPECT_DOUBLE_EQ(snap.quantile(1.0), 7.0);
    }
    // Exactly one sample: q=0 and q=1 agree on its bucket.
    {
        Histogram h({1.0, 2.0});
        h.record(1.5);
        const Histogram::Snapshot snap = h.snapshot();
        EXPECT_DOUBLE_EQ(snap.quantile(0.0), 2.0);
        EXPECT_DOUBLE_EQ(snap.quantile(1.0), 2.0);
    }
}

TEST(Histogram, EmptySnapshotIsWellDefined)
{
    Histogram h({1.0, 10.0});
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max, 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, ResetZeroesEverythingAndStaysUsable)
{
    Histogram h({1.0});
    h.record(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    h.record(0.5);
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 0.5);
}

TEST(Metrics, ConcurrentRecordingLosesNothing)
{
    Counter c;
    Histogram h({10.0, 100.0, 1000.0});
    constexpr int threads = 4, per_thread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; t++) {
        pool.emplace_back([&, t] {
            for (int i = 0; i < per_thread; i++) {
                c.add(1);
                h.record(static_cast<double>(t * per_thread + i));
            }
        });
    }
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(threads) * per_thread);
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<std::uint64_t>(threads) * per_thread);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t n : snap.counts)
        bucket_total += n;
    EXPECT_EQ(bucket_total, snap.count);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max,
                     static_cast<double>(threads * per_thread - 1));
}

TEST(MetricsRegistry, SameNameReturnsSameInstance)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("x");
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    // Second registration keeps the original bucket layout.
    Histogram &h1 = reg.histogram("h", {1.0, 2.0});
    Histogram &h2 = reg.histogram("h", {99.0});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h1.snapshot().bounds.size(), 2u);
}

TEST(MetricsRegistry, DumpListsEveryMetricAndResetZeroes)
{
    MetricsRegistry reg;
    reg.counter("jobs.done").add(3);
    reg.gauge("queue.depth").set(7.0);
    reg.histogram("lat", {1.0, 10.0}).record(5.0);

    const std::string dump = reg.dump();
    EXPECT_NE(dump.find("counter jobs.done 3"), std::string::npos);
    EXPECT_NE(dump.find("gauge queue.depth 7"), std::string::npos);
    EXPECT_NE(dump.find("hist lat count=1"), std::string::npos);

    reg.reset();
    EXPECT_EQ(reg.counter("jobs.done").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("queue.depth").value(), 0.0);
    EXPECT_EQ(reg.histogram("lat", {}).count(), 0u);
}

// ----------------------------------------------------------------- trace

TEST(TraceRecorder, DisabledRecorderRetainsNothing)
{
    TraceRecorder rec(8);
    rec.complete("x", 0.0, 1.0);
    rec.instant("y");
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceRecorder, RingWrapKeepsCapacityNewestEvents)
{
    TraceRecorder rec(8);
    rec.setEnabled(true);
    for (int i = 0; i < 20; i++)
        rec.complete("span", static_cast<double>(i), 1.0);
    EXPECT_EQ(rec.eventCount(), 8u);
    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceRecorder, ChromeJsonExportIsLoadable)
{
    TraceRecorder rec(64);
    rec.setEnabled(true);
    rec.complete("gas", 10.0, 5.0);
    rec.instant("activated");
    {
        TraceSpan span(rec, "scoped");
    }
    EXPECT_EQ(rec.eventCount(), 3u);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"gas\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
    // Instant events need a scope to load in Perfetto.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
    // Balanced braces and closing bracket: crude well-formedness.
    EXPECT_NE(json.find("\n]}"), std::string::npos);
}

TEST(TraceRecorder, ThreadsGetDistinctRings)
{
    TraceRecorder rec(16);
    rec.setEnabled(true);
    std::thread t1([&] { rec.instant("a"); });
    std::thread t2([&] { rec.instant("b"); });
    t1.join();
    t2.join();
    EXPECT_EQ(rec.eventCount(), 2u);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"b\""), std::string::npos);
}

TEST(TraceRecorder, VirtualTracksGetHighTidsAnyThreadMayWrite)
{
    TraceRecorder rec(8);
    rec.setEnabled(true);
    rec.completeOnTrack(0, "pe.task", 0.0, 5.0);
    std::thread t([&] { rec.completeOnTrack(2, "pe.task", 5.0, 5.0); });
    t.join();
    EXPECT_EQ(rec.eventCount(), 2u);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    const std::string json = os.str();
    // Tracks 0 and 2 render as tids kTrackBase + index, far above any
    // real thread ring's tid.
    const auto base = TraceRecorder::kTrackBase;
    EXPECT_NE(json.find("\"tid\":" + std::to_string(base)),
              std::string::npos);
    EXPECT_NE(json.find("\"tid\":" + std::to_string(base + 2)),
              std::string::npos);

    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
}

// ----------------------------------------------------------- convergence

TEST(Convergence, StrideDownsamplingBoundsMemoryKeepsOrderAndFinal)
{
    ConvergenceSeries series(1, "unit", 16);
    for (int i = 0; i < 1000; i++) {
        ConvergencePoint p;
        p.epochs = static_cast<double>(i);
        p.residual = 1000.0 - i;
        series.record(p);
    }
    EXPECT_LE(series.size(), 16u);
    const auto pts = series.points();
    ASSERT_GE(pts.size(), 2u);
    for (std::size_t i = 1; i < pts.size(); i++)
        EXPECT_LT(pts[i - 1].epochs, pts[i].epochs);

    // The run's last sample always lands, whatever the stride is.
    ConvergencePoint last;
    last.epochs = 5000.0;
    series.recordFinal(last);
    EXPECT_DOUBLE_EQ(series.back().epochs, 5000.0);
    EXPECT_LE(series.size(), 16u);
}

TEST(Convergence, RecorderRetainsBoundedSeriesAndRendersCsvJson)
{
    ConvergenceRecorder rec(2);
    auto a = rec.begin("a");
    {
        ConvergencePoint p;
        p.epochs = 1.0;
        p.residual = 0.5;
        p.activeVertices = 7;
        a->record(p);
    }
    rec.begin("b");
    rec.begin("c");
    EXPECT_EQ(rec.seriesCount(), 2u);
    EXPECT_EQ(rec.find("a"), nullptr);   // oldest evicted
    EXPECT_NE(rec.find("c"), nullptr);

    const std::string csv = ConvergenceRecorder::csv(*a);
    EXPECT_EQ(csv.rfind("series,label,epochs,residual,active_vertices,"
                        "vertex_updates,edge_traversals,wall_seconds,"
                        "sim_seconds\n",
                        0),
              0u);
    EXPECT_NE(csv.find(",a,1,"), std::string::npos);

    EXPECT_NE(rec.csv().find("series,label"), std::string::npos);
    const std::string json = rec.json();
    EXPECT_EQ(json.rfind("{\"series\":[", 0), 0u);
    EXPECT_NE(json.find("\"label\":\"b\""), std::string::npos);
}

// --------------------------------------------------------------- sampler

TEST(Sampler, SampleOnceSnapshotsCountersAndGauges)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(5);
    registry.gauge("depth").set(2.5);
    Sampler sampler(registry, 64);

    sampler.sampleOnce();
    registry.counter("jobs").add(1);
    sampler.sampleOnce();

    EXPECT_EQ(sampler.seriesCount(), 2u);
    bool saw_counter = false, saw_gauge = false;
    for (const auto &series : sampler.series()) {
        if (series->key() == "counter:jobs") {
            saw_counter = true;
            ASSERT_EQ(series->size(), 2u);
            EXPECT_DOUBLE_EQ(series->points()[0].value, 5.0);
            EXPECT_DOUBLE_EQ(series->back().value, 6.0);
        } else if (series->key() == "gauge:depth") {
            saw_gauge = true;
            EXPECT_DOUBLE_EQ(series->back().value, 2.5);
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_gauge);

    const std::string csv = sampler.csv();
    EXPECT_EQ(csv.rfind("key,t_seconds,value\n", 0), 0u);
    EXPECT_NE(csv.find("counter:jobs,"), std::string::npos);
}

TEST(Sampler, BackgroundThreadRecordsOverTimeAndStops)
{
    MetricsRegistry registry;
    registry.gauge("load").set(1.0);
    Sampler sampler(registry, 64);
    sampler.start(0.001);
    EXPECT_TRUE(sampler.running());
    // Wait for at least a couple of ticks, bounded to stay robust on a
    // loaded CI machine.
    for (int i = 0; i < 200; i++) {
        if (sampler.seriesCount() > 0 &&
            sampler.series()[0]->size() >= 2)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    ASSERT_EQ(sampler.seriesCount(), 1u);
    EXPECT_GE(sampler.series()[0]->size(), 2u);
    // Series stay readable after stop, and restart keeps the time axis.
    const std::size_t before = sampler.series()[0]->size();
    sampler.start(0.001);
    sampler.stop();
    EXPECT_GE(sampler.series()[0]->size(), before);
}

// ------------------------------------------------------------ prometheus

namespace prom {

bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    auto ok_first = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
               c == ':';
    };
    auto ok_rest = [&](char c) {
        return ok_first(c) || std::isdigit(static_cast<unsigned char>(c));
    };
    if (!ok_first(name[0]))
        return false;
    for (char c : name.substr(1)) {
        if (!ok_rest(c))
            return false;
    }
    return true;
}

/**
 * Line-format validator for text exposition 0.0.4: every line is
 * either `# TYPE <name> <kind>` or `<name>[{labels}] <value>`.
 * @return true when the whole document parses; *why names the first
 * offending line otherwise.
 */
bool
validate(const std::string &text, std::string *why)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            *why = "document does not end in a newline";
            return false;
        }
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty()) {
            *why = "empty line";
            return false;
        }
        if (line[0] == '#') {
            std::istringstream iss(line);
            std::string hash, keyword, name, kind;
            iss >> hash >> keyword >> name >> kind;
            if (hash != "#" || keyword != "TYPE" || !validName(name) ||
                (kind != "counter" && kind != "gauge" &&
                 kind != "histogram")) {
                *why = "bad comment line: " + line;
                return false;
            }
            continue;
        }
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos) {
            *why = "sample line without a value: " + line;
            return false;
        }
        std::string series = line.substr(0, sp);
        const std::string value = line.substr(sp + 1);
        char *end = nullptr;
        std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
            *why = "unparsable value: " + line;
            return false;
        }
        const std::size_t brace = series.find('{');
        if (brace != std::string::npos) {
            if (series.back() != '}') {
                *why = "unterminated label set: " + line;
                return false;
            }
            series = series.substr(0, brace);
        }
        if (!validName(series)) {
            *why = "bad metric name: " + line;
            return false;
        }
    }
    return true;
}

} // namespace prom

TEST(Prometheus, NamesArePrefixedAndSanitised)
{
    EXPECT_EQ(prometheusName("engine.async.block_gas_us"),
              "graphabcd_engine_async_block_gas_us");
    EXPECT_EQ(prometheusName("harp.pe_utilization"),
              "graphabcd_harp_pe_utilization");
    EXPECT_TRUE(prom::validName(prometheusName("weird name!/7")));
}

TEST(Prometheus, TextExpositionIsWellFormed)
{
    MetricsSnapshot snap;
    snap.counters.emplace_back("serve.jobs", 3);
    snap.gauges.emplace_back("harp.pe_utilization", 0.5);
    Histogram h({1.0, 2.0});
    h.record(0.5);
    h.record(5.0);
    snap.histograms.emplace_back("lat.us", h.snapshot());

    const std::string text = prometheusText(snap);
    std::string why;
    EXPECT_TRUE(prom::validate(text, &why)) << why;

    EXPECT_NE(text.find("# TYPE graphabcd_serve_jobs_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("graphabcd_serve_jobs_total 3"),
              std::string::npos);
    EXPECT_NE(text.find("graphabcd_harp_pe_utilization 0.5"),
              std::string::npos);
    // Histogram buckets are cumulative and end at le="+Inf" == count.
    EXPECT_NE(text.find("graphabcd_lat_us_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("graphabcd_lat_us_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("graphabcd_lat_us_count 2"), std::string::npos);
}

TEST(Prometheus, GlobalRegistryExpositionValidates)
{
    MetricsRegistry::global().counter("test.prom_exposition").add(2);
    const std::string text = prometheusText();
    std::string why;
    EXPECT_TRUE(prom::validate(text, &why)) << why;
    EXPECT_NE(
        text.find("graphabcd_test_prom_exposition_total"),
        std::string::npos);
}

// -------------------------------------------------------- metrics server

TEST(MetricsServer, HandlePathRoutes)
{
    std::string body, content_type;
    EXPECT_TRUE(MetricsServer::handlePath("/metrics", &body,
                                          &content_type));
    EXPECT_NE(content_type.find("text/plain"), std::string::npos);
    EXPECT_TRUE(MetricsServer::handlePath("/series", &body,
                                          &content_type));
    EXPECT_TRUE(MetricsServer::handlePath("/convergence", &body,
                                          &content_type));
    EXPECT_TRUE(MetricsServer::handlePath("/convergence.json", &body,
                                          &content_type));
    EXPECT_NE(content_type.find("application/json"), std::string::npos);
    EXPECT_FALSE(MetricsServer::handlePath("/nope", &body,
                                           &content_type));
}

namespace {

/** One blocking HTTP/1.0 GET against loopback; returns the raw reply. */
std::string
httpGet(std::uint16_t port, const std::string &target)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string req =
        "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    (void)!::send(fd, req.data(), req.size(), 0);
    std::string reply;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

} // namespace

TEST(MetricsServer, ServesPrometheusTextOverLoopback)
{
    MetricsRegistry::global().counter("test.server_metric").add(1);

    MetricsServer server;
    std::string error;
    ASSERT_TRUE(server.start(0, &error)) << error;
    ASSERT_GT(server.port(), 0);

    const std::string reply = httpGet(server.port(), "/metrics");
    ASSERT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos);
    ASSERT_NE(reply.find("\r\n\r\n"), std::string::npos);
    const std::string body =
        reply.substr(reply.find("\r\n\r\n") + 4);
    std::string why;
    EXPECT_TRUE(prom::validate(body, &why)) << why;
    EXPECT_NE(body.find("graphabcd_test_server_metric_total"),
              std::string::npos);

    EXPECT_NE(httpGet(server.port(), "/nope").find("404"),
              std::string::npos);

    server.stop();
    EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------- logger

TEST(Logger, PlainAndJsonFormatsAndLevelFilter)
{
    obs::Logger &logger = obs::Logger::global();
    const obs::LogLevel old_level = logger.level();
    const bool old_json = logger.json();

    std::vector<std::string> lines;
    logger.setSink([&lines](const std::string &line) {
        lines.push_back(line);
    });
    logger.setLevel(obs::LogLevel::Info);
    logger.setJson(false);

    obs::logAt(obs::LogLevel::Debug, "test", "filtered out");
    obs::logAt(obs::LogLevel::Info, "test", "job finished",
               obs::LogField("job", 3), obs::LogField("state", "done"),
               obs::LogField("ok", true));
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("INFO test: job finished job=3 state=done "
                            "ok=true"),
              std::string::npos);

    logger.setJson(true);
    obs::logAt(obs::LogLevel::Warn, "test", "queue \"full\"",
               obs::LogField("depth", 1.5));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1].rfind("{\"ts\":\"", 0), 0u);
    EXPECT_NE(lines[1].find("\"level\":\"warn\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"msg\":\"queue \\\"full\\\"\""),
              std::string::npos);
    // Numbers stay unquoted so `jq` sees them as numbers.
    EXPECT_NE(lines[1].find("\"depth\":1.5"), std::string::npos);

    logger.setSink(nullptr);
    logger.setLevel(old_level);
    logger.setJson(old_json);
}

TEST(Logger, ParseLevelNamesAndFallback)
{
    EXPECT_EQ(obs::parseLogLevel("debug"), obs::LogLevel::Debug);
    EXPECT_EQ(obs::parseLogLevel("error"), obs::LogLevel::Error);
    EXPECT_EQ(obs::parseLogLevel("off"), obs::LogLevel::Off);
    EXPECT_EQ(obs::parseLogLevel("nonsense", obs::LogLevel::Warn),
              obs::LogLevel::Warn);
    EXPECT_EQ(obs::parseLogLevel(nullptr, obs::LogLevel::Debug),
              obs::LogLevel::Debug);
}

// ----------------------------------------------- engine instrumentation

#if GRAPHABCD_OBS_ENABLED

TEST(EngineObs, AsyncStalenessIsBoundedByQueueAndThreads)
{
    // The engine's dispatch FIFO holds participation * 4 stamped
    // items; an item's measured staleness (block updates committed
    // between FIFO entry and claim) can only come from items claimed
    // before it — at most a FIFO's worth plus the blocks in flight on
    // the participants.  This is the bounded-staleness condition of
    // paper Sec. III-D, measured rather than assumed.
    constexpr std::uint32_t threads = 4;
    obs::Histogram &stale = obs::histogram(
        "engine.async.staleness_blocks", obs::stalenessBuckets());
    stale.reset();

    Rng rng(61);
    EdgeList el = generateRmat(400, 3200, rng);
    EngineOptions opt;
    opt.blockSize = 16;   // plenty of blocks to keep the queue full
    opt.numThreads = threads;
    opt.tolerance = 1e-10;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);

    EXPECT_TRUE(report.converged);
    EXPECT_GT(stale.count(), 0u);
    EXPECT_LE(stale.max(), static_cast<double>(threads * 4 + threads));
}

TEST(EngineObs, AsyncRunRecordsLatencyFanoutAndSchedulerCounters)
{
    obs::Histogram &gas = obs::histogram("engine.async.block_gas_us",
                                         obs::latencyBucketsUs());
    obs::Histogram &fanout = obs::histogram(
        "engine.async.scatter_fanout", obs::fanoutBuckets());
    obs::Counter &activations = obs::counter("scheduler.activations");
    gas.reset();
    fanout.reset();
    activations.reset();

    Rng rng(62);
    EdgeList el = generateRmat(200, 1600, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 2;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);

    EXPECT_EQ(gas.count(), report.blockUpdates);
    EXPECT_EQ(fanout.count(), report.blockUpdates);
    EXPECT_GT(activations.value(), 0u);
}

TEST(EngineObs, SerialPageRankConvergenceCurveIsMonotone)
{
    Rng rng(63);
    EdgeList el = generateRmat(300, 2400, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    auto series = std::make_shared<ConvergenceSeries>(1, "pr-serial");
    opt.convergence = series;
    BlockPartition g(el, opt.blockSize);
    SerialEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    // This is the paper's Fig. 9-11 claim in miniature: the residual
    // (window L1 delta) of a PageRank run decays monotonically.
    const auto pts = series->points();
    ASSERT_GE(pts.size(), 2u);
    for (std::size_t i = 1; i < pts.size(); i++) {
        EXPECT_LE(pts[i].residual, pts[i - 1].residual + 1e-12)
            << "residual rose at sample " << i;
        EXPECT_LT(pts[i - 1].epochs, pts[i].epochs);
    }
    // The final CSV row is the report's residual, by construction.
    EXPECT_DOUBLE_EQ(pts.back().residual, report.residual);
    EXPECT_EQ(pts.back().vertexUpdates, report.vertexUpdates);

    const std::string csv = ConvergenceRecorder::csv(*series);
    EXPECT_EQ(csv.rfind("series,label,epochs,residual,", 0), 0u);
}

TEST(EngineObs, AsyncEngineRecordsConvergenceAndFinalResidual)
{
    Rng rng(64);
    EdgeList el = generateRmat(200, 1600, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 2;
    auto series = std::make_shared<ConvergenceSeries>(2, "pr-async");
    opt.convergence = series;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    ASSERT_GE(series->size(), 1u);
    EXPECT_DOUBLE_EQ(series->back().residual, report.residual);
    EXPECT_EQ(series->back().vertexUpdates, report.vertexUpdates);
}

TEST(EngineObs, GraphMatBaselineRecordsOneSamplePerSuperstep)
{
    Rng rng(65);
    EdgeList el = generateRmat(200, 1600, rng);
    const auto degs = el.outDegrees();
    graphmat::GraphMatEngine<graphmat::PageRankSpmv> engine(
        el, graphmat::PageRankSpmv(0.85, degs));
    auto series = std::make_shared<ConvergenceSeries>(3, "pr-graphmat");
    engine.setConvergenceSeries(series);

    std::vector<graphmat::PageRankSpmv::Value> values;
    const graphmat::GraphMatReport report =
        engine.run(values, 1e-9, 200);

    EXPECT_EQ(series->size(), report.iterations);
    const auto pts = series->points();
    for (std::size_t i = 1; i < pts.size(); i++)
        EXPECT_LE(pts[i].residual, pts[i - 1].residual + 1e-12);
    EXPECT_EQ(pts.back().vertexUpdates, report.vertexUpdates);
}

// ------------------------------------------- causal tracing / health

// A tiny recursive-descent JSON parser — just enough to *prove* the
// Chrome-trace exporter and the flight recorder emit well-formed JSON
// (the acceptance bar is "chrome://tracing and jq can load it", not
// substring containment).  Not general: \u escapes decode to '?'.
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> members;

    const JsonValue *
    find(const std::string &key) const
    {
        auto it = members.find(key);
        return it == members.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &in) : in_(in) {}

    bool
    parse(JsonValue *out, std::string *why)
    {
        skipWs();
        if (!parseValue(out)) {
            *why = error_.empty() ? "parse error" : error_;
            return false;
        }
        skipWs();
        if (pos_ != in_.size()) {
            *why = "trailing garbage at byte " + std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = what + " at byte " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < in_.size() &&
               std::isspace(static_cast<unsigned char>(in_[pos_])))
            pos_++;
    }

    bool
    consume(char c)
    {
        if (pos_ < in_.size() && in_[pos_] == c) {
            pos_++;
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue *out)
    {
        if (pos_ >= in_.size())
            return fail("unexpected end of input");
        const char c = in_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out->kind = JsonValue::Kind::String;
            return parseString(&out->text);
        }
        if (c == 't' || c == 'f' || c == 'n')
            return parseLiteral(out);
        return parseNumber(out);
    }

    bool
    parseLiteral(JsonValue *out)
    {
        auto match = [&](const char *word) {
            const std::size_t n = std::strlen(word);
            if (in_.compare(pos_, n, word) != 0)
                return false;
            pos_ += n;
            return true;
        };
        if (match("true")) {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return true;
        }
        if (match("false")) {
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return true;
        }
        if (match("null")) {
            out->kind = JsonValue::Kind::Null;
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseNumber(JsonValue *out)
    {
        const char *start = in_.c_str() + pos_;
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start)
            return fail("bad number");
        pos_ += static_cast<std::size_t>(end - start);
        out->kind = JsonValue::Kind::Number;
        out->number = v;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out->clear();
        while (pos_ < in_.size()) {
            const char c = in_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= in_.size())
                return fail("dangling escape");
            const char e = in_[pos_++];
            switch (e) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u':
                if (pos_ + 4 > in_.size())
                    return fail("short \\u escape");
                pos_ += 4;
                out->push_back('?');
                break;
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue *out)
    {
        consume('[');
        out->kind = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            JsonValue item;
            skipWs();
            if (!parseValue(&item))
                return false;
            out->items.push_back(std::move(item));
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue *out)
    {
        consume('{');
        out->kind = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            skipWs();
            JsonValue value;
            if (!parseValue(&value))
                return false;
            out->members.emplace(std::move(key), std::move(value));
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    const std::string &in_;
    std::size_t pos_ = 0;
    std::string error_;
};

bool
parseJson(const std::string &text, JsonValue *out, std::string *why)
{
    return JsonParser(text).parse(out, why);
}

struct SpanNode
{
    std::string name;
    std::uint64_t parent = 0;
};

/** span id -> {name, parent} for every event of `job` in a parsed
 *  Chrome trace (the serve.submit instant shares the root's span id,
 *  so root still maps to a single node). */
std::map<std::uint64_t, SpanNode>
spanTreeOf(const JsonValue &doc, std::uint64_t job)
{
    std::map<std::uint64_t, SpanNode> tree;
    const JsonValue *events = doc.find("traceEvents");
    if (!events)
        return tree;
    for (const JsonValue &e : events->items) {
        const JsonValue *args = e.find("args");
        const JsonValue *name = e.find("name");
        if (!args || !name)
            continue;
        const JsonValue *j = args->find("job");
        const JsonValue *s = args->find("span");
        const JsonValue *p = args->find("parent");
        if (!j || !s || !p ||
            static_cast<std::uint64_t>(j->number) != job)
            continue;
        tree[static_cast<std::uint64_t>(s->number)] =
            SpanNode{name->text, static_cast<std::uint64_t>(p->number)};
    }
    return tree;
}

TEST(TraceRecorder, RingOverwriteCountsDrops)
{
    const std::uint64_t before =
        MetricsRegistry::global().counter("obs.trace.dropped").value();

    TraceRecorder rec(4);
    rec.setEnabled(true);
    for (int i = 0; i < 10; i++)
        rec.complete("e", static_cast<double>(i), 1.0);

    EXPECT_EQ(rec.eventCount(), 4u);    // ring keeps the newest 4
    EXPECT_EQ(rec.droppedCount(), 6u);  // ...and owns up to the rest
    EXPECT_EQ(MetricsRegistry::global().counter("obs.trace.dropped")
                  .value() - before,
              6u);

    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
    EXPECT_EQ(rec.droppedCount(), 0u);
}

TEST(TraceRecorder, ChromeExportWithSpanArgsIsWellFormedJson)
{
    TraceRecorder rec(64);
    rec.setEnabled(true);
    rec.complete("root", 10.0, 5.0, /*job=*/7, /*span=*/100,
                 /*parent=*/0);
    rec.complete("child", 11.0, 1.0, 7, 101, 100);
    rec.instant("na\"me\nwith\\escapes");  // exporter must escape these

    std::ostringstream os;
    rec.writeChromeTrace(os);

    JsonValue doc;
    std::string why;
    ASSERT_TRUE(parseJson(os.str(), &doc, &why)) << why;
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Kind::Array);
    EXPECT_EQ(events->items.size(), 3u);

    bool found_child = false;
    for (const JsonValue &e : events->items) {
        const JsonValue *name = e.find("name");
        ASSERT_NE(name, nullptr);
        if (name->text != "child")
            continue;
        found_child = true;
        const JsonValue *args = e.find("args");
        ASSERT_NE(args, nullptr);
        EXPECT_EQ(args->find("job")->number, 7.0);
        EXPECT_EQ(args->find("span")->number, 101.0);
        EXPECT_EQ(args->find("parent")->number, 100.0);
    }
    EXPECT_TRUE(found_child);
}

TEST(CausalSpan, ExecutorTasksInheritTheSubmittersSpanTree)
{
    TraceRecorder &rec = TraceRecorder::global();
    rec.clear();
    rec.setEnabled(true);

    const obs::SpanContext root{/*job=*/7, obs::nextSpanId(),
                                /*parent=*/0};
    {
        Executor exec(2);
        // participation 2 < 4 submits: the last two ride the backlog,
        // which must carry the captured context just like the fast path.
        auto job = exec.createJob(2);
        {
            obs::SpanScope adopt(root);
            for (int i = 0; i < 4; i++)
                job->submit([] { obs::Span inner("test.inner"); });
        }
        job->wait();
    }
    rec.setEnabled(false);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    rec.clear();

    JsonValue doc;
    std::string why;
    ASSERT_TRUE(parseJson(os.str(), &doc, &why)) << why;
    const auto tree = spanTreeOf(doc, 7);

    std::size_t tasks = 0;
    std::size_t inners = 0;
    for (const auto &[span, node] : tree) {
        (void)span;
        if (node.name == "executor.task") {
            tasks++;
            EXPECT_EQ(node.parent, root.span);
        } else if (node.name == "test.inner") {
            inners++;
            const auto parent = tree.find(node.parent);
            ASSERT_NE(parent, tree.end());
            EXPECT_EQ(parent->second.name, "executor.task");
        }
    }
    EXPECT_EQ(tasks, 4u);
    EXPECT_EQ(inners, 4u);
}

TEST(ServeObs, FragmentServeJobFormsOneCausalSpanTree)
{
    TraceRecorder &rec = TraceRecorder::global();
    rec.clear();
    rec.setEnabled(true);

    Rng rng(91);
    GraphRegistry registry;
    registry.add("g", generateRmat(300, 2400, rng), 32);
    ServeConfig cfg;
    cfg.workers = 1;
    JobManager manager(registry, cfg);

    JobRequest req;
    req.graph = "g";
    req.algo = "pr";
    req.engine = "fragment";
    req.options.fragments = 4;
    req.options.numThreads = 2;
    req.allowCached = false;
    req.allowWarmStart = false;
    const auto sub = manager.submit(req);
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(manager.wait(sub.id, 60.0));
    manager.shutdown();
    rec.setEnabled(false);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    rec.clear();

    JsonValue doc;
    std::string why;
    ASSERT_TRUE(parseJson(os.str(), &doc, &why)) << why;
    const auto tree = spanTreeOf(doc, sub.id);
    ASSERT_FALSE(tree.empty());

    // Exactly one root (parent == 0): the serve.job span.
    std::uint64_t root = 0;
    std::size_t roots = 0;
    for (const auto &[span, node] : tree) {
        if (node.parent == 0) {
            root = span;
            roots++;
        }
    }
    EXPECT_EQ(roots, 1u);

    // Every span reaches the root through recorded parents: one
    // causally connected tree, no orphans.
    for (const auto &[span, node] : tree) {
        (void)node;
        std::uint64_t cur = span;
        int steps = 0;
        while (cur != root) {
            const auto it = tree.find(cur);
            ASSERT_NE(it, tree.end())
                << "span " << span << " orphaned at " << cur;
            cur = it->second.parent;
            ASSERT_LT(++steps, 64);
        }
    }

    // The tree contains each layer of the job's execution.
    std::map<std::string, std::size_t> names;
    for (const auto &[span, node] : tree) {
        (void)span;
        names[node.name]++;
    }
    EXPECT_GE(names["serve.queue_wait"], 1u);
    EXPECT_GE(names["serve.run"], 1u);
    EXPECT_GE(names["engine.fragment.run"], 1u);
    EXPECT_GE(names["fragment.pump"], 1u);
    EXPECT_GE(names["executor.task"], 1u);
}

TEST(Histogram, ExemplarLinksASampleToItsSpan)
{
    obs::Histogram h({1.0, 10.0});
    h.recordExemplar(5.0, /*job=*/42, /*span=*/99);
    h.record(0.5);   // plain samples do not disturb the exemplar

    const auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 2u);
    ASSERT_TRUE(snap.hasExemplar);
    EXPECT_DOUBLE_EQ(snap.exemplarValue, 5.0);
    EXPECT_EQ(snap.exemplarJob, 42u);
    EXPECT_EQ(snap.exemplarSpan, 99u);

    h.reset();
    EXPECT_FALSE(h.snapshot().hasExemplar);

    obs::histogram("test.exemplar_us", {1.0, 10.0})
        .recordExemplar(7.0, 11, 12);
    const std::string dump = obs::dumpMetrics();
    EXPECT_NE(dump.find("ex_job=11"), std::string::npos) << dump;
    EXPECT_NE(dump.find("ex_span=12"), std::string::npos) << dump;
}

TEST(ServeObs, TenantMetricKeysAreSanitized)
{
    EXPECT_EQ(obs::sanitizeMetricComponent("bad tenant\"name"),
              "bad_tenant_name");
    EXPECT_EQ(obs::sanitizeMetricComponent(""), "_");

    Rng rng(17);
    GraphRegistry registry;
    registry.add("g", generateRmat(120, 700, rng), 32);
    ServeConfig cfg;
    cfg.workers = 1;
    JobManager manager(registry, cfg);

    JobRequest req;
    req.graph = "g";
    req.algo = "pr";
    req.engine = "serial";
    req.tenant = "bad tenant\"name";
    req.allowCached = false;
    req.allowWarmStart = false;
    const auto sub = manager.submit(req);
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(manager.wait(sub.id, 30.0));

    // The QoS lane keeps the raw name; only metric keys are sanitized.
    EXPECT_EQ(manager.tenantStats().count("bad tenant\"name"), 1u);
    const std::string dump = obs::dumpMetrics();
    EXPECT_NE(dump.find("serve.tenant.bad_tenant_name."),
              std::string::npos);
    EXPECT_EQ(dump.find("tenant\"name"), std::string::npos);

    std::string why;
    EXPECT_TRUE(prom::validate(obs::prometheusText(), &why)) << why;
    manager.shutdown();
}

TEST(StallWatchdog, FlagsFlatProgressAndRecoversPerEpisode)
{
    obs::StallWatchdog::Config cfg;
    cfg.windowSeconds = 0.05;
    cfg.checkSeconds = 3600.0;   // pollNow() drives every check
    cfg.dumpFlightOnStall = false;
    obs::StallWatchdog dog(cfg);  // no start(): fully deterministic

    std::atomic<std::uint64_t> counter{0};
    std::string diagnosis;       // written by pollNow() on this thread
    dog.watch(1, "unit-task", [&] { return counter.load(); },
              [&](const std::string &d) { diagnosis = d; });

    dog.pollNow();
    EXPECT_FALSE(dog.isFlagged(1));   // window not yet elapsed

    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    dog.pollNow();
    EXPECT_TRUE(dog.isFlagged(1));
    EXPECT_EQ(dog.stallEvents(), 1u);
    EXPECT_EQ(dog.flaggedCount(), 1u);
    EXPECT_NE(diagnosis.find("no progress"), std::string::npos)
        << diagnosis;

    counter++;                        // progress resumes...
    dog.pollNow();
    EXPECT_FALSE(dog.isFlagged(1));   // ...task recovers
    EXPECT_EQ(dog.flaggedCount(), 0u);
    EXPECT_EQ(dog.stallEvents(), 1u);

    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    dog.pollNow();                    // flat again: a second episode
    EXPECT_TRUE(dog.isFlagged(1));
    EXPECT_EQ(dog.stallEvents(), 2u);

    dog.unwatch(1);
    EXPECT_EQ(dog.flaggedCount(), 0u);
    EXPECT_EQ(MetricsRegistry::global().gauge("serve.jobs.stalled")
                  .value(),
              0.0);
}

TEST(ServeObs, WatchdogCancelsWedgedJobWithStallDiagnosis)
{
    ::setenv("GRAPHABCD_ENABLE_WEDGE_ENGINE", "1", 1);
    const std::uint64_t events_before =
        MetricsRegistry::global()
            .counter("serve.jobs.stall_events")
            .value();

    Rng rng(23);
    GraphRegistry registry;
    registry.add("g", generateRmat(60, 300, rng), 32);
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.stallWindowSeconds = 0.1;
    cfg.stallCheckSeconds = 0.02;
    cfg.cancelOnStall = true;
    JobManager manager(registry, cfg);

    JobRequest req;
    req.graph = "g";
    req.algo = "pr";
    req.engine = "wedge";   // burns wall-clock, never touches Progress
    req.allowCached = false;
    req.allowWarmStart = false;
    const auto sub = manager.submit(req);
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(manager.wait(sub.id, 20.0));

    const auto status = manager.status(sub.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, JobState::Cancelled);
    EXPECT_EQ(status->error.rfind("stalled:", 0), 0u) << status->error;
    EXPECT_GE(MetricsRegistry::global()
                  .counter("serve.jobs.stall_events")
                  .value(),
              events_before + 1);
    manager.shutdown();
    ::unsetenv("GRAPHABCD_ENABLE_WEDGE_ENGINE");
}

TEST(FlightRecorder, FatalDumpWritesParseableBlackBox)
{
    Rng rng(29);
    GraphRegistry registry;
    registry.add("g", generateRmat(60, 300, rng), 32);
    ServeConfig cfg;
    cfg.workers = 1;
    JobManager manager(registry, cfg);   // registers the serve provider

    const std::string path =
        testing::TempDir() + "graphabcd_flight_test.json";
    std::remove(path.c_str());
    obs::flightArm(path);
    obs::flightNote("test", "before the crash");
    EXPECT_THROW(fatal("obs-test: deliberate fatal"), FatalError);
    obs::flightDisarm();

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no flight dump at " << path;
    std::stringstream buf;
    buf << in.rdbuf();

    JsonValue doc;
    std::string why;
    ASSERT_TRUE(parseJson(buf.str(), &doc, &why)) << why;

    const JsonValue *reason = doc.find("reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_EQ(reason->text.rfind("fatal:", 0), 0u) << reason->text;
    EXPECT_NE(reason->text.find("obs-test"), std::string::npos);

    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_NE(metrics->find("counters"), nullptr);
    EXPECT_NE(metrics->find("gauges"), nullptr);
    EXPECT_NE(metrics->find("histograms"), nullptr);

    const JsonValue *trace = doc.find("trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_NE(trace->find("traceEvents"), nullptr);

    const JsonValue *providers = doc.find("providers");
    ASSERT_NE(providers, nullptr);
    EXPECT_NE(providers->find("serve"), nullptr);

    const JsonValue *notes = doc.find("notes");
    ASSERT_NE(notes, nullptr);
    bool noted = false;
    for (const JsonValue &n : notes->items) {
        const JsonValue *text = n.find("text");
        if (text &&
            text->text.find("before the crash") != std::string::npos)
            noted = true;
    }
    EXPECT_TRUE(noted);

    manager.shutdown();
    std::remove(path.c_str());
}

// Named its own suite so the tsan CI leg can select it by filter.
TEST(MetricsServerStress, ConcurrentScrapesGetCompleteBodies)
{
    MetricsRegistry::global().counter("test.stress_sentinel").add(1);

    MetricsServer server;
    std::string error;
    ASSERT_TRUE(server.start(0, &error)) << error;
    ASSERT_GT(server.port(), 0);

    std::atomic<bool> stop{false};
    std::thread recorder([&] {
        obs::Histogram &h = obs::histogram("test.stress_hist_us",
                                           obs::latencyBucketsUs());
        std::uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            i++;
            h.recordExemplar(static_cast<double>(i % 1000), i, i);
        }
    });

    std::atomic<int> failures{0};
    std::vector<std::thread> scrapers;
    for (int t = 0; t < 4; t++) {
        scrapers.emplace_back([&] {
            for (int i = 0; i < 25; i++) {
                const std::string reply =
                    httpGet(server.port(), "/metrics");
                if (reply.find("HTTP/1.0 200 OK") ==
                        std::string::npos ||
                    reply.find("\r\n\r\n") == std::string::npos ||
                    reply.find("test_stress_sentinel") ==
                        std::string::npos)
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread &t : scrapers)
        t.join();
    stop.store(true);
    recorder.join();

    EXPECT_EQ(failures.load(), 0);
    server.stop();
}

#endif // GRAPHABCD_OBS_ENABLED

} // namespace
} // namespace graphabcd
