/**
 * @file
 * Tests of the accumulative (Maiter-style) delta engine: equivalence
 * with the exact references across schedulers and thread counts,
 * conservation of value mass by construction, survival of the
 * interleaving that breaks the operation-based DeltaState, and a
 * cancel-storm stress for the sanitizer legs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>
#include <vector>

#include "algorithms/reference.hh"
#include "core/accum_engine.hh"
#include "core/stop_token.hh"
#include "graph/generators.hh"

namespace graphabcd {
namespace {

/** Ring + random chords: out-degree >= 1 everywhere, so no PageRank
 *  mass drains through dangling vertices and conservation is exact. */
EdgeList
ringWithChords(VertexId n, EdgeId chords, Rng &rng)
{
    EdgeList el = generateCycle(n);
    for (EdgeId i = 0; i < chords; i++) {
        const auto src = static_cast<VertexId>(rng.nextBounded(n));
        const auto dst = static_cast<VertexId>(rng.nextBounded(n));
        el.addEdge(src, dst);
    }
    return el;
}

// --------------------------------------------- scheduler/thread sweep

struct AccumCase
{
    std::uint32_t threads;
    Schedule schedule;
};

std::string
caseName(const testing::TestParamInfo<AccumCase> &info)
{
    return std::string("t") + std::to_string(info.param.threads) + "_" +
           to_string(info.param.schedule);
}

class AccumSweep : public testing::TestWithParam<AccumCase>
{
  protected:
    EngineOptions
    options() const
    {
        EngineOptions opt;
        opt.blockSize = 16;
        opt.numThreads = GetParam().threads;
        opt.schedule = GetParam().schedule;
        opt.tolerance = 1e-12;
        return opt;
    }
};

TEST_P(AccumSweep, PageRankMatchesReference)
{
    Rng rng(81);
    // Prime |V|: the last block is ragged, catching begin/end mix-ups.
    EdgeList el = generateRmat(211, 1700, rng);
    EngineOptions opt = options();
    BlockPartition g(el, opt.blockSize);

    AccumEngine<PageRankAccumProgram> engine(
        g, PageRankAccumProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);
    EXPECT_GT(report.vertexUpdates, 0u);

    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_P(AccumSweep, SsspMatchesDijkstra)
{
    Rng rng(82);
    EdgeList el = generateRmat(211, 1700, rng, {.weighted = true});
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);

    AccumEngine<SsspAccumProgram> engine(g, SsspAccumProgram(0), opt);
    std::vector<double> dist;
    EngineReport report = engine.run(dist);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = dijkstraReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(dist[v], ref[v], 1e-6) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(
    SchedulersAndThreads, AccumSweep,
    testing::Values(AccumCase{1, Schedule::Cyclic},
                    AccumCase{1, Schedule::Priority},
                    AccumCase{1, Schedule::Obim},
                    AccumCase{2, Schedule::Cyclic},
                    AccumCase{2, Schedule::Obim},
                    AccumCase{4, Schedule::Priority},
                    AccumCase{4, Schedule::Obim},
                    AccumCase{8, Schedule::Cyclic},
                    AccumCase{8, Schedule::Obim}),
    caseName);

TEST(AccumEngine, BfsMatchesReference)
{
    Rng rng(83);
    EdgeList el = generateRmat(300, 2400, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.numThreads = 4;
    opt.schedule = Schedule::Obim;
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);

    AccumEngine<BfsAccumProgram> engine(g, BfsAccumProgram(0), opt);
    std::vector<double> depth;
    EngineReport report = engine.run(depth);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = bfsReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(depth[v], ref[v]) << "vertex " << v;
}

TEST(AccumEngine, ConnectedComponentsMatchUnionFind)
{
    Rng rng(84);
    EdgeList el = generateErdosRenyi(300, 250, rng);
    EdgeList sym = el.symmetrized();
    EngineOptions opt;
    opt.blockSize = 32;
    opt.numThreads = 4;
    opt.schedule = Schedule::Obim;
    opt.tolerance = 1e-9;
    BlockPartition g(sym, opt.blockSize);

    AccumEngine<CcAccumProgram> engine(g, CcAccumProgram(), opt);
    std::vector<double> labels;
    EngineReport report = engine.run(labels);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = ccReference(el);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(labels[v], ref[v]) << "vertex " << v;
}

TEST(AccumEngine, RepeatedThreadedRunsAreStable)
{
    Rng rng(85);
    EdgeList el = generateRmat(200, 1500, rng);
    EngineOptions opt;
    opt.blockSize = 8;
    opt.numThreads = 4;
    opt.schedule = Schedule::Obim;
    opt.tolerance = 1e-12;
    BlockPartition g(el, opt.blockSize);
    std::vector<double> ref = pagerankReference(el, 0.85);

    for (int run = 0; run < 5; run++) {
        AccumEngine<PageRankAccumProgram> engine(
            g, PageRankAccumProgram(0.85), opt);
        std::vector<double> x;
        engine.run(x);
        for (VertexId v = 0; v < el.numVertices(); v++)
            ASSERT_NEAR(x[v], ref[v], 1e-6) << "run " << run;
    }
}

// -------------------------------------------------------- conservation

/** sum(values) + sum(pending)/(1-alpha) over the engine's final state. */
double
conservedMass(const std::vector<double> &values,
              const std::vector<double> &pending, double alpha)
{
    double v = 0.0, p = 0.0;
    for (double x : values)
        v += x;
    for (double d : pending)
        p += d;
    return v + p / (1.0 - alpha);
}

TEST(AccumConservation, ConvergedRunKeepsAllRankMass)
{
    const double alpha = 0.85;
    Rng rng(86);
    EdgeList el = ringWithChords(127, 400, rng);   // prime |V|
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 4;
    opt.schedule = Schedule::Obim;
    opt.tolerance = 1e-12;
    BlockPartition g(el, opt.blockSize);

    AccumEngine<PageRankAccumProgram> engine(
        g, PageRankAccumProgram(alpha), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    // The invariant holds including the sub-tolerance mass folded back
    // into the accumulators, and the folded remainder is so small that
    // the values alone carry ~all of the mass.
    EXPECT_NEAR(conservedMass(x, engine.pendingSnapshot(), alpha), 1.0,
                1e-9);
    double mass = 0.0;
    for (double v : x)
        mass += v;
    EXPECT_NEAR(mass, 1.0, 1e-8);
}

TEST(AccumConservation, BudgetHaltedRunStillConserves)
{
    // Mid-flight state is conserved too: halt long before convergence
    // and audit values + accumulators.  (This is the property the
    // dropped-residual bug violated: mass left the system silently.)
    const double alpha = 0.85;
    Rng rng(87);
    EdgeList el = ringWithChords(127, 400, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 2;
    opt.tolerance = 1e-12;
    opt.maxEpochs = 2.0;   // nowhere near the fixpoint
    BlockPartition g(el, opt.blockSize);

    AccumEngine<PageRankAccumProgram> engine(
        g, PageRankAccumProgram(alpha), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_FALSE(report.converged);
    EXPECT_FALSE(report.stopped);   // budget, not token

    EXPECT_NEAR(conservedMass(x, engine.pendingSnapshot(), alpha), 1.0,
                1e-9);
}

// ------------------------------------------- adversarial interleaving

TEST(AccumState, SurvivesTheInterleavingThatBreaksDeltaState)
{
    // DeltaState's lost-update anomaly (test_delta_lp.cc): block A
    // gathers, block B scatters into A's slice, A's commit consumes the
    // slice and destroys B's increments.  AccumState has no gather/
    // consume window — extraction is one exchange, scatter is one
    // combine — so the equivalent schedule (process A, process B which
    // scatters into A, in any order and with re-processing) conserves
    // mass after EVERY step and still reaches the exact fixpoint.
    const double alpha = 0.85;
    Rng rng(113);   // the DeltaState anomaly test's graph scale; ring
                    // base keeps every vertex non-dangling so the
                    // conservation check is exact
    EdgeList el = ringWithChords(64, 448, rng);
    BlockPartition g(el, 8);
    PageRankAccumProgram p(alpha);
    AccumState<PageRankAccumProgram> state(g, p);

    auto conserved = [&] {
        return conservedMass(state.valuesSnapshot(),
                             state.pendingSnapshot(), alpha);
    };
    ASSERT_NEAR(conserved(), 1.0, 1e-12);

    // Adversarial order: random vertices, re-processed arbitrarily
    // often, checked after every single extract-apply-scatter.
    for (int step = 0; step < 4000; step++) {
        const auto v = static_cast<VertexId>(
            rng.nextBounded(el.numVertices()));
        state.processVertex(p, v, 1e-13, [](VertexId, double) {});
        ASSERT_NEAR(conserved(), 1.0, 1e-10) << "step " << step;
    }

    // Drive the remainder to quiescence with a worklist sweep.
    bool moved = true;
    int sweeps = 0;
    while (moved && sweeps++ < 10000) {
        moved = false;
        for (VertexId v = 0; v < el.numVertices(); v++) {
            auto r = state.processVertex(p, v, 1e-13,
                                         [](VertexId, double) {});
            moved = moved || r.outcome == AccumOutcome::Applied;
        }
    }
    ASSERT_LT(sweeps, 10000);

    std::vector<double> ref = pagerankReference(el, alpha);
    std::vector<double> x = state.valuesSnapshot();
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-7) << "vertex " << v;
    EXPECT_NEAR(conserved(), 1.0, 1e-10);
}

TEST(AccumState, SubToleranceResidualIsFoldedBackNotDropped)
{
    // Directly pin the fold-back: a pending delta too small to apply
    // must return to the accumulator (Folded), not vanish.
    EdgeList el = generateCycle(8);
    BlockPartition g(el, 4);
    PageRankAccumProgram p(0.85);
    AccumState<PageRankAccumProgram> state(g, p);

    const VertexId v = 3;
    const double before = state.pendingAt(v);
    ASSERT_GT(before, 0.0);
    auto r = state.processVertex(p, v, /*tol=*/1.0,
                                 [](VertexId, double) {});
    EXPECT_EQ(r.outcome, AccumOutcome::Folded);
    EXPECT_EQ(r.scatters, 0u);                    // no downstream noise
    EXPECT_DOUBLE_EQ(state.pendingAt(v), before); // mass still there
    EXPECT_DOUBLE_EQ(state.value(v), 0.0);        // value untouched

    // An idle accumulator reports Idle and does nothing.
    auto r2 = state.processVertex(p, v, /*tol=*/0.0,
                                  [](VertexId, double) {});
    EXPECT_EQ(r2.outcome, AccumOutcome::Applied);
    auto r3 = state.processVertex(p, v, /*tol=*/0.0,
                                  [](VertexId, double) {});
    EXPECT_EQ(r3.outcome, AccumOutcome::Idle);
}

// --------------------------------------------------- halts and budget

TEST(AccumEngineStop, StopTokenHaltsWithoutClaimingConvergence)
{
    Rng rng(88);
    EdgeList el = generateRmat(300, 2400, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 4;
    opt.schedule = Schedule::Obim;
    opt.tolerance = -1.0;   // magnitudes >= 0 never beat this: endless
    opt.maxEpochs = 1e9;
    StopSource source;
    opt.stop = source.token();
    BlockPartition g(el, opt.blockSize);
    AccumEngine<PageRankAccumProgram> engine(g, PageRankAccumProgram(),
                                             opt);

    std::thread canceller([&source] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        source.requestStop();
    });
    std::vector<double> x;
    EngineReport report = engine.run(x);
    canceller.join();
    EXPECT_TRUE(report.stopped);
    EXPECT_FALSE(report.converged);
    ASSERT_EQ(x.size(), el.numVertices());
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_TRUE(std::isfinite(x[v])) << "vertex " << v;
}

TEST(AccumEngineStop, UpdateBudgetHaltsTheRun)
{
    Rng rng(89);
    EdgeList el = generateRmat(256, 2048, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 2;
    opt.tolerance = -1.0;   // endless without the budget
    opt.maxEpochs = 3.0;
    BlockPartition g(el, opt.blockSize);
    AccumEngine<PageRankAccumProgram> engine(g, PageRankAccumProgram(),
                                             opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_FALSE(report.converged);
    EXPECT_FALSE(report.stopped);
    // Overshoot is bounded by the in-flight quantum, not unbounded.
    EXPECT_LT(report.epochs, 3.0 + 2.0);
}

// -------------------------------------------------------- cancel storm

/**
 * The TSan target: 8 threads, concurrent OBIM pushes from scatter
 * hooks, and a stop token fired at staggered points from before the
 * run to past quiescence.  GRAPHABCD_ACCUM_STRESS_ITERS scales the
 * iteration count (tools/ci.sh raises it on the TSan leg).
 */
TEST(AccumStress, CancelStorm8Threads)
{
    int iters = 4;
    if (const char *env = std::getenv("GRAPHABCD_ACCUM_STRESS_ITERS"))
        iters = std::max(1, std::atoi(env));

    Rng rng(90);
    EdgeList el = generateRmat(1024, 8192, rng);
    BlockPartition g(el, 32);
    std::vector<double> ref = pagerankReference(el, 0.85);

    for (int it = 0; it < iters; it++) {
        EngineOptions opt;
        opt.blockSize = 32;
        opt.numThreads = 8;
        opt.schedule = Schedule::Obim;
        opt.tolerance = 1e-10;

        StopSource stop;
        opt.stop = stop.token();

        AccumEngine<PageRankAccumProgram> engine(
            g, PageRankAccumProgram(0.85), opt);
        // 0 fires before any block is claimed; larger delays land
        // mid-run or after quiescence.
        std::atomic<bool> fired{false};
        std::thread trigger([&] {
            std::this_thread::sleep_for(
                std::chrono::microseconds(it * 400));
            stop.requestStop();
            fired.store(true);
        });

        std::vector<double> x;
        EngineReport report = engine.run(x);
        trigger.join();
        ASSERT_TRUE(fired.load());

        if (report.converged) {
            // A run that beat the trigger must be a correct fixpoint.
            for (VertexId v = 0; v < el.numVertices(); v++)
                ASSERT_NEAR(x[v], ref[v], 1e-5) << "vertex " << v;
        }
    }
}

} // namespace
} // namespace graphabcd
