file(REMOVE_RECURSE
  "CMakeFiles/abcd_cli.dir/abcd_cli.cc.o"
  "CMakeFiles/abcd_cli.dir/abcd_cli.cc.o.d"
  "abcd_cli"
  "abcd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
