/**
 * @file
 * Wait-free single-producer single-consumer ring buffer.
 *
 * Models the point-to-point FIFOs inside the accelerator (PE input/output
 * buffers, DMA request channels) where exactly one producer and one
 * consumer exist and the paper's design is lock-free.
 */

#ifndef GRAPHABCD_RUNTIME_SPSC_RING_HH
#define GRAPHABCD_RUNTIME_SPSC_RING_HH

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "support/logging.hh"

namespace graphabcd {

/**
 * Fixed-capacity SPSC ring.  push/pop are wait-free; one slot is kept
 * empty to distinguish full from empty.
 */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity usable slots; must be > 0. */
    explicit SpscRing(std::size_t capacity)
        : buffer(capacity + 1), mask(capacity + 1)
    {
        GRAPHABCD_ASSERT(capacity > 0, "ring needs at least one slot");
    }

    SpscRing(const SpscRing &) = delete;
    SpscRing &operator=(const SpscRing &) = delete;

    /** Producer side.  @return false when full. */
    bool
    tryPush(T item)
    {
        const std::size_t h = head.load(std::memory_order_relaxed);
        const std::size_t next = inc(h);
        if (next == tail.load(std::memory_order_acquire))
            return false;   // full
        buffer[h] = std::move(item);
        head.store(next, std::memory_order_release);
        return true;
    }

    /** Consumer side.  @return std::nullopt when empty. */
    std::optional<T>
    tryPop()
    {
        const std::size_t t = tail.load(std::memory_order_relaxed);
        if (t == head.load(std::memory_order_acquire))
            return std::nullopt;   // empty
        T item = std::move(buffer[t]);
        tail.store(inc(t), std::memory_order_release);
        return item;
    }

    /**
     * Producer side, batched: push up to `n` items from `src` with one
     * index update.  Used by the fragment message plane to flush an
     * outbox in one publish instead of n.
     * @return items actually pushed (0 when full; may be < n).
     */
    std::size_t
    pushN(const T *src, std::size_t n)
    {
        const std::size_t h = head.load(std::memory_order_relaxed);
        const std::size_t t = tail.load(std::memory_order_acquire);
        // One slot stays empty, so the writable run is capacity - size.
        const std::size_t used = h >= t ? h - t : h + mask - t;
        const std::size_t room = (mask - 1) - used;
        const std::size_t k = std::min(n, room);
        std::size_t w = h;
        for (std::size_t i = 0; i < k; i++) {
            buffer[w] = src[i];
            w = inc(w);
        }
        if (k > 0)
            head.store(w, std::memory_order_release);
        return k;
    }

    /**
     * Consumer side, batched: pop up to `n` items into `dst` with one
     * index update.
     * @return items actually popped (0 when empty; may be < n).
     */
    std::size_t
    popN(T *dst, std::size_t n)
    {
        const std::size_t t = tail.load(std::memory_order_relaxed);
        const std::size_t h = head.load(std::memory_order_acquire);
        const std::size_t avail = h >= t ? h - t : h + mask - t;
        const std::size_t k = std::min(n, avail);
        std::size_t r = t;
        for (std::size_t i = 0; i < k; i++) {
            dst[i] = std::move(buffer[r]);
            r = inc(r);
        }
        if (k > 0)
            tail.store(r, std::memory_order_release);
        return k;
    }

    /** @return number of items currently queued (racy, stats only). */
    std::size_t
    size() const
    {
        const std::size_t h = head.load(std::memory_order_acquire);
        const std::size_t t = tail.load(std::memory_order_acquire);
        return h >= t ? h - t : h + mask - t;
    }

    /** @return true when no items are queued (racy, stats only). */
    bool empty() const { return size() == 0; }

    /** @return usable capacity. */
    std::size_t capacity() const { return mask - 1; }

  private:
    std::size_t inc(std::size_t i) const { return (i + 1) % mask; }

    std::vector<T> buffer;
    const std::size_t mask;   //!< buffer length (capacity + 1)
    alignas(64) std::atomic<std::size_t> head{0};
    alignas(64) std::atomic<std::size_t> tail{0};
};

} // namespace graphabcd

#endif // GRAPHABCD_RUNTIME_SPSC_RING_HH
