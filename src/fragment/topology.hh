/**
 * @file
 * Fragment topology — the contiguous shard layout of a BlockPartition.
 *
 * A fragment owns a contiguous run of blocks, hence a contiguous vertex
 * range and (because the partition is destination-sliced) a contiguous
 * in-edge slice.  Cuts are placed on block boundaries and balanced by
 * edge count, so each fragment streams roughly the same number of edges
 * per sweep — the load-balance rule GraphScale applies to its
 * vertex-range shards.  The same topology drives both the software
 * FragmentEngine (src/fragment/engine.hh) and the HARP simulator's
 * multi-accelerator affinity (HarpConfig::fragmentAffinity), so the
 * scale-out story is one partitioning, not two.
 *
 * The requested fragment count is clamped to the block count: every
 * realised fragment owns at least one block (a 1-block graph degenerates
 * to one fragment no matter what was asked for).
 */

#ifndef GRAPHABCD_FRAGMENT_TOPOLOGY_HH
#define GRAPHABCD_FRAGMENT_TOPOLOGY_HH

#include <cstdint>
#include <vector>

#include "graph/partition.hh"
#include "graph/types.hh"

namespace graphabcd {

/** Identifier of a fragment within a topology. */
using FragmentId = std::uint32_t;

/**
 * Immutable shard layout over a BlockPartition.  Cheap to copy; holds
 * only the cut arrays, never graph data.
 */
class FragmentTopology
{
  public:
    FragmentTopology() = default;

    /**
     * Cut `g` into at most `fragments` contiguous, edge-balanced shards.
     * @param fragments requested shard count; clamped to [1, numBlocks]
     *        (and to 1 when the graph has no blocks at all).
     */
    FragmentTopology(const BlockPartition &g, std::uint32_t fragments);

    /** @return realised fragment count (after clamping). */
    FragmentId
    numFragments() const
    {
        return static_cast<FragmentId>(
            blockCuts.empty() ? 1 : blockCuts.size() - 1);
    }

    /** @return first block of fragment f. */
    BlockId blockBegin(FragmentId f) const { return blockCuts[f]; }

    /** @return one-past-last block of fragment f. */
    BlockId blockEnd(FragmentId f) const { return blockCuts[f + 1]; }

    /** @return number of blocks fragment f owns. */
    BlockId
    blockCount(FragmentId f) const
    {
        return blockEnd(f) - blockBegin(f);
    }

    /** @return first vertex of fragment f. */
    VertexId vertexBegin(FragmentId f) const { return vertexCuts[f]; }

    /** @return one-past-last vertex of fragment f. */
    VertexId vertexEnd(FragmentId f) const { return vertexCuts[f + 1]; }

    /** @return first in-edge position of fragment f's slice. */
    EdgeId edgeBegin(FragmentId f) const { return edgeCuts[f]; }

    /** @return one-past-last in-edge position of fragment f's slice. */
    EdgeId edgeEnd(FragmentId f) const { return edgeCuts[f + 1]; }

    /** @return in-edges landing in fragment f. */
    EdgeId
    edgeCount(FragmentId f) const
    {
        return edgeEnd(f) - edgeBegin(f);
    }

    /** @return the fragment owning block b. */
    FragmentId fragmentOfBlock(BlockId b) const;

    /** @return the fragment owning vertex v. */
    FragmentId fragmentOfVertex(VertexId v) const;

    /**
     * @return the fragment whose in-edge slice contains CSC position
     * `pos` — i.e. the shard SCATTER must reach to update that edge's
     * carried value.
     */
    FragmentId fragmentOfEdge(EdgeId pos) const;

  private:
    std::vector<BlockId> blockCuts;    //!< size numFragments+1
    std::vector<VertexId> vertexCuts;  //!< size numFragments+1
    std::vector<EdgeId> edgeCuts;      //!< size numFragments+1
};

} // namespace graphabcd

#endif // GRAPHABCD_FRAGMENT_TOPOLOGY_HH
