file(REMOVE_RECURSE
  "CMakeFiles/abcd_support.dir/flags.cc.o"
  "CMakeFiles/abcd_support.dir/flags.cc.o.d"
  "CMakeFiles/abcd_support.dir/logging.cc.o"
  "CMakeFiles/abcd_support.dir/logging.cc.o.d"
  "CMakeFiles/abcd_support.dir/random.cc.o"
  "CMakeFiles/abcd_support.dir/random.cc.o.d"
  "CMakeFiles/abcd_support.dir/stats.cc.o"
  "CMakeFiles/abcd_support.dir/stats.cc.o.d"
  "CMakeFiles/abcd_support.dir/table.cc.o"
  "CMakeFiles/abcd_support.dir/table.cc.o.d"
  "CMakeFiles/abcd_support.dir/units.cc.o"
  "CMakeFiles/abcd_support.dir/units.cc.o.d"
  "libabcd_support.a"
  "libabcd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
