/**
 * @file
 * Collaborative Filtering (matrix factorization) as a BCD vertex program
 * (paper Sec. III-A1).
 *
 * Objective: F(xp, xq) = sum_{(u,i) in ratings} (r_ui - xp_u . xq_i)^2
 *            + lambda (|xp_u|^2 + |xq_i|^2),
 * minimised by coordinate gradient descent with learning rate `alpha`:
 *     x_u += alpha * sum_i (err_ui * x_i - lambda * x_u).
 *
 * Users and items share one vertex id space (bipartite graph, ratings
 * symmetrized so both sides update); the per-vertex value is the latent
 * feature vector, carried whole on the edges — this is the wide-value
 * case that stresses the pull-push memory layout.
 */

#ifndef GRAPHABCD_ALGORITHMS_CF_HH
#define GRAPHABCD_ALGORITHMS_CF_HH

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/vertex_program.hh"
#include "graph/partition.hh"
#include "support/random.hh"

namespace graphabcd {

/** Fixed-width latent feature vector. */
template <std::uint32_t H>
using FeatureVec = std::array<float, H>;

/**
 * CF vertex program with H latent dimensions.
 * @tparam H compile-time latent dimensionality (the paper uses small
 *         fixed H; 16 by default in our benches).
 */
template <std::uint32_t H = 16>
struct CfProgram
{
    using Value = FeatureVec<H>;
    using Accum = std::array<double, H>;

    double alpha = 0.002;    //!< learning rate
    double lambda = 0.05;    //!< L2 regularisation
    std::uint64_t seed = 7;  //!< feature initialisation seed

    CfProgram() = default;
    CfProgram(double learning_rate, double regularization,
              std::uint64_t init_seed = 7)
        : alpha(learning_rate), lambda(regularization), seed(init_seed)
    {}

    Value
    init(VertexId v, const BlockPartition &) const
    {
        // Deterministic per-vertex pseudo-random features in
        // [-0.5, 0.5] / sqrt(H).
        SplitMix64 sm(seed ^ (0x9E3779B97F4A7C15ULL * (v + 1)));
        Value out;
        const float scale = 1.0f / std::sqrt(static_cast<float>(H));
        for (std::uint32_t k = 0; k < H; k++) {
            auto bits = sm.next();
            float u = static_cast<float>(bits >> 11) * 0x1.0p-53f - 0.5f;
            out[k] = u * scale;
        }
        return out;
    }

    Accum
    identity() const
    {
        Accum a{};
        return a;
    }

    Accum
    edgeTerm(const Value &dst_old, const Value &edge_value,
             float rating) const
    {
        double dot = 0.0;
        for (std::uint32_t k = 0; k < H; k++)
            dot += static_cast<double>(dst_old[k]) * edge_value[k];
        const double err = static_cast<double>(rating) - dot;
        Accum term;
        for (std::uint32_t k = 0; k < H; k++) {
            term[k] = err * edge_value[k] -
                      lambda * static_cast<double>(dst_old[k]);
        }
        return term;
    }

    Accum
    combine(Accum a, const Accum &b) const
    {
        for (std::uint32_t k = 0; k < H; k++)
            a[k] += b[k];
        return a;
    }

    Value
    apply(VertexId v, const Accum &acc, const Value &old,
          const BlockPartition &g) const
    {
        // Degree-normalised step: dividing the accumulated gradient by
        // the rating count makes the effective step size independent of
        // vertex degree (a 1/L step), so one learning rate is stable
        // across the heavy-tailed rating distributions of the datasets.
        const double norm =
            1.0 / std::max<double>(g.inDegree(v), 1.0);
        Value next;
        for (std::uint32_t k = 0; k < H; k++) {
            next[k] = static_cast<float>(
                static_cast<double>(old[k]) + alpha * norm * acc[k]);
        }
        return next;
    }

    Value
    edgeValue(VertexId, const Value &value, const BlockPartition &) const
    {
        return value;
    }

    double
    delta(const Value &a, const Value &b) const
    {
        double l1 = 0.0;
        for (std::uint32_t k = 0; k < H; k++)
            l1 += std::abs(static_cast<double>(a[k]) -
                           static_cast<double>(b[k]));
        return l1;
    }
};

/**
 * Root-mean-square rating error over every edge of the (symmetrized)
 * rating graph — the paper's Fig. 5 convergence metric.
 */
template <std::uint32_t H>
double
cfRmse(const BlockPartition &g, const std::vector<FeatureVec<H>> &x)
{
    double sq = 0.0;
    EdgeId m = 0;
    for (VertexId v = 0; v < g.numVertices(); v++) {
        g.forEachInEdge(v, [&](EdgeId, VertexId u, float w) {
            double dot = 0.0;
            for (std::uint32_t k = 0; k < H; k++)
                dot += static_cast<double>(x[u][k]) * x[v][k];
            const double err = static_cast<double>(w) - dot;
            sq += err * err;
            m++;
        });
    }
    return m ? std::sqrt(sq / static_cast<double>(m)) : 0.0;
}

} // namespace graphabcd

#endif // GRAPHABCD_ALGORITHMS_CF_HH
