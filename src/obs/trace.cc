#include "obs/trace.hh"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "obs/metrics.hh"

namespace graphabcd {

TraceRecorder &
TraceRecorder::global()
{
    static TraceRecorder instance;
    return instance;
}

TraceRecorder::TraceRecorder(std::size_t events_per_thread)
    : ringCapacity_(events_per_thread == 0 ? 1 : events_per_thread)
{
}

TraceRecorder::Ring &
TraceRecorder::threadRing()
{
    // One cached ring per (thread, recorder) pair; a thread that talks
    // to several recorders re-registers on each switch, which only
    // happens in tests.
    struct Cache
    {
        TraceRecorder *owner = nullptr;
        std::shared_ptr<Ring> ring;
    };
    thread_local Cache cache;
    if (cache.owner != this) {
        std::lock_guard<std::mutex> lock(registerMtx_);
        auto ring = std::make_shared<Ring>(
            ringCapacity_, static_cast<std::uint32_t>(rings_.size()));
        rings_.push_back(ring);
        cache.owner = this;
        cache.ring = std::move(ring);
    }
    return *cache.ring;
}

TraceRecorder::Ring &
TraceRecorder::trackRing(std::uint32_t track)
{
    std::lock_guard<std::mutex> lock(registerMtx_);
    while (tracks_.size() <= track) {
        tracks_.push_back(std::make_shared<Ring>(
            ringCapacity_,
            kTrackBase + static_cast<std::uint32_t>(tracks_.size())));
    }
    return *tracks_[track];
}

void
TraceRecorder::pushInto(Ring &ring, const TraceEvent &event)
{
    bool overwrote = false;
    {
        std::lock_guard<std::mutex> lock(ring.mtx);
        overwrote = ring.wrapped;   // this push replaces the oldest
        ring.events[ring.next] = event;
        ring.next++;
        if (ring.next == ring.events.size()) {
            ring.next = 0;
            ring.wrapped = true;
        }
    }
    if (overwrote)
        noteDropped();
}

void
TraceRecorder::noteDropped()
{
    dropped_.fetch_add(1, std::memory_order_relaxed);
    // Mirror into the registry so drop pressure shows up on /metrics.
    // Resolved once (registration takes a mutex); test recorders share
    // the same process-wide counter, which is fine for a loss signal.
    static Counter &counter =
        MetricsRegistry::global().counter("obs.trace.dropped");
    counter.add(1);
}

void
TraceRecorder::push(const TraceEvent &event)
{
    pushInto(threadRing(), event);
}

void
TraceRecorder::pushOnTrack(std::uint32_t track, const TraceEvent &event)
{
    pushInto(trackRing(track), event);
}

std::size_t
TraceRecorder::eventCount() const
{
    std::size_t total = 0;
    std::lock_guard<std::mutex> reg(registerMtx_);
    for (const auto &rings : {&rings_, &tracks_}) {
        for (const auto &ring : *rings) {
            std::lock_guard<std::mutex> lock(ring->mtx);
            total += ring->wrapped ? ring->events.size() : ring->next;
        }
    }
    return total;
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> reg(registerMtx_);
    for (const auto &rings : {&rings_, &tracks_}) {
        for (const auto &ring : *rings) {
            std::lock_guard<std::mutex> lock(ring->mtx);
            ring->next = 0;
            ring->wrapped = false;
        }
    }
    dropped_.store(0, std::memory_order_relaxed);
}

namespace {

/** Event names are library-controlled literals, but escape defensively
 *  so a stray quote can never produce unloadable JSON. */
void
writeJsonString(std::ostream &os, const char *s)
{
    os << '"';
    for (; *s; s++) {
        if (*s == '"' || *s == '\\')
            os << '\\';
        os << *s;
    }
    os << '"';
}

struct FlatEvent
{
    TraceEvent event;
    std::uint32_t tid;
};

} // namespace

void
TraceRecorder::writeChromeTrace(std::ostream &os) const
{
    std::vector<FlatEvent> all;
    {
        std::lock_guard<std::mutex> reg(registerMtx_);
        for (const auto &rings : {&rings_, &tracks_}) {
            for (const auto &ring : *rings) {
                std::lock_guard<std::mutex> lock(ring->mtx);
                const std::size_t n =
                    ring->wrapped ? ring->events.size() : ring->next;
                for (std::size_t i = 0; i < n; i++)
                    all.push_back(FlatEvent{ring->events[i], ring->tid});
            }
        }
    }
    std::sort(all.begin(), all.end(),
              [](const FlatEvent &a, const FlatEvent &b) {
                  return a.event.tsMicros < b.event.tsMicros;
              });

    os << "{\"traceEvents\":[";
    bool first = true;
    for (const FlatEvent &fe : all) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":";
        writeJsonString(os, fe.event.name);
        os << ",\"ph\":\"" << fe.event.phase << "\"";
        os << ",\"ts\":" << fe.event.tsMicros;
        if (fe.event.phase == 'X')
            os << ",\"dur\":" << fe.event.durMicros;
        else if (fe.event.phase == 'i')
            os << ",\"s\":\"t\"";
        if (fe.event.span != 0) {
            os << ",\"args\":{\"job\":" << fe.event.job
               << ",\"span\":" << fe.event.span
               << ",\"parent\":" << fe.event.parent << "}";
        }
        os << ",\"pid\":0,\"tid\":" << fe.tid << "}";
    }
    os << "\n]}\n";
}

bool
TraceRecorder::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out);
    return static_cast<bool>(out);
}

} // namespace graphabcd
