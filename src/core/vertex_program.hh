/**
 * @file
 * The GAS vertex-program contract used by every GraphABCD engine.
 *
 * GraphABCD executes the *pull-push* variant of Gather-Apply-Scatter
 * (paper Fig. 3(c)): vertex values are copied onto out-going edges, so
 * GATHER streams a block's in-edge slice sequentially and never touches
 * the vertex array at random.  A vertex program supplies:
 *
 *   Value      — the per-vertex (and edge-carried) state;
 *   Accum      — the GATHER accumulator;
 *   init       — initial vertex value;
 *   identity   — GATHER identity element;
 *   edgeTerm   — maps one in-edge to an Accum (may read the destination's
 *                current value, which the PE holds in its input buffer);
 *   combine    — associative & commutative reduction of two Accums (this
 *                is what the tagged dataflow reduction unit evaluates
 *                out of order, paper Sec. IV-C);
 *   apply      — new vertex value from old value + reduced accumulator;
 *   edgeValue  — the value SCATTER copies onto out-edges (e.g. rank/deg
 *                for PageRank);
 *   delta      — scalar magnitude of a value change, used for the
 *                activation threshold and the Gauss-Southwell priority
 *                estimate (paper Sec. IV-B).
 *
 * Programs must be cheap to copy; engines pass them by value.
 */

#ifndef GRAPHABCD_CORE_VERTEX_PROGRAM_HH
#define GRAPHABCD_CORE_VERTEX_PROGRAM_HH

#include <concepts>
#include <type_traits>

#include "graph/partition.hh"
#include "graph/types.hh"

namespace graphabcd {

/**
 * Compile-time check of the vertex-program contract.  Violations produce
 * a readable diagnostic at the engine instantiation site.
 */
template <typename P>
concept VertexProgram = requires(const P p, typename P::Value v,
                                 typename P::Accum a, VertexId vid,
                                 const BlockPartition &g, float w) {
    typename P::Value;
    typename P::Accum;
    { p.init(vid, g) } -> std::convertible_to<typename P::Value>;
    { p.identity() } -> std::convertible_to<typename P::Accum>;
    { p.edgeTerm(v, v, w) } -> std::convertible_to<typename P::Accum>;
    { p.combine(a, a) } -> std::convertible_to<typename P::Accum>;
    { p.apply(vid, a, v, g) } -> std::convertible_to<typename P::Value>;
    { p.edgeValue(vid, v, g) } -> std::convertible_to<typename P::Value>;
    { p.delta(v, v) } -> std::convertible_to<double>;
};

} // namespace graphabcd

#endif // GRAPHABCD_CORE_VERTEX_PROGRAM_HH
