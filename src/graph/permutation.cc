#include "graph/permutation.hh"

#include <algorithm>
#include <bit>
#include <numeric>

namespace graphabcd {

VertexPermutation::VertexPermutation(std::vector<VertexId> to_internal)
    : toInternal_(std::move(to_internal))
{
    identity_ = true;
    for (VertexId v = 0; v < toInternal_.size(); v++) {
        if (toInternal_[v] != v) {
            identity_ = false;
            break;
        }
    }
    if (identity_) {
        toInternal_.clear();
        return;
    }
    toOriginal_.assign(toInternal_.size(), invalidVertex);
    for (VertexId v = 0; v < toInternal_.size(); v++) {
        assert(toInternal_[v] < toOriginal_.size());
        assert(toOriginal_[toInternal_[v]] == invalidVertex &&
               "permutation is not a bijection");
        toOriginal_[toInternal_[v]] = v;
    }
}

VertexPermutation
VertexPermutation::hubCluster(const EdgeList &el)
{
    const VertexId n = el.numVertices();
    const auto out_deg = el.outDegrees();
    const auto in_deg = el.inDegrees();

    // Bucket by the log2 of the total degree so hubs of similar weight
    // cluster together while the stable sort preserves input order
    // within a bucket (keeps locality the input already had).
    std::vector<std::uint32_t> bucket(n);
    for (VertexId v = 0; v < n; v++) {
        const std::uint64_t deg =
            static_cast<std::uint64_t>(out_deg[v]) + in_deg[v];
        bucket[v] = std::bit_width(deg + 1);
    }

    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), VertexId{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) {
                         return bucket[a] > bucket[b];
                     });

    // order[i] is the original id placed at internal slot i; invert to
    // the original -> internal direction the ctor expects.
    std::vector<VertexId> to_internal(n);
    for (VertexId i = 0; i < n; i++)
        to_internal[order[i]] = i;
    return VertexPermutation(std::move(to_internal));
}

EdgeList
VertexPermutation::apply(const EdgeList &el) const
{
    if (identity_)
        return el;
    assert(el.numVertices() == toInternal_.size());
    EdgeList out(el.numVertices());
    for (const Edge &e : el.edges())
        out.addEdge(toInternal_[e.src], toInternal_[e.dst], e.weight);
    return out;
}

} // namespace graphabcd
