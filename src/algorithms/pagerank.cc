#include "algorithms/pagerank.hh"

namespace graphabcd {

double
pagerankResidual(const BlockPartition &g, const std::vector<double> &x,
                 double alpha)
{
    const double n = std::max<double>(g.numVertices(), 1.0);
    double sq = 0.0;
    for (VertexId v = 0; v < g.numVertices(); v++) {
        double acc = 0.0;
        g.forEachInEdge(v, [&](EdgeId, VertexId u, float) {
            const std::uint32_t d = g.outDegree(u);
            if (d)
                acc += x[u] / d;
        });
        double r = (1.0 - alpha) / n + alpha * acc - x[v];
        sq += r * r;
    }
    return std::sqrt(sq);
}

double
pagerankMass(const std::vector<double> &x)
{
    double sum = 0.0;
    for (double v : x)
        sum += v;
    return sum;
}

} // namespace graphabcd
