/**
 * @file
 * Size and rate formatting plus common unit constants.
 */

#ifndef GRAPHABCD_SUPPORT_UNITS_HH
#define GRAPHABCD_SUPPORT_UNITS_HH

#include <cstdint>
#include <string>

namespace graphabcd {

constexpr std::uint64_t KiB = 1024ULL;
constexpr std::uint64_t MiB = 1024ULL * KiB;
constexpr std::uint64_t GiB = 1024ULL * MiB;

constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;

/** Format a byte count with a binary suffix, e.g. "2.69 MiB". */
std::string formatBytes(double bytes);

/** Format a rate in bytes/second with a decimal suffix, e.g. "12.8 GB/s". */
std::string formatBandwidth(double bytes_per_second);

/** Format a plain count with thousands separators, e.g. "1,470,000,000". */
std::string formatCount(std::uint64_t value);

/** Format seconds adaptively (ns/us/ms/s), e.g. "1.577 s", "34 ms". */
std::string formatSeconds(double seconds);

} // namespace graphabcd

#endif // GRAPHABCD_SUPPORT_UNITS_HH
