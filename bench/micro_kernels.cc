/**
 * @file
 * Microarchitecture kernel benchmarks (google-benchmark): the runtime
 * queues, the tagged dataflow reduction versus a serial accumulator,
 * the GATHER-APPLY block kernel and partition construction.
 *
 * With `--layout_grid=PATH` the binary instead measures bytes moved per
 * edge for every (algorithm x layout x reorder) cell on the RMAT
 * stand-in and writes the grid as JSON (the committed BENCH_layout.json
 * is produced this way) — the honest-accounting side of the compressed
 * layout work: the HARP Bus model consumes the same measured ratio.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "algorithms/pagerank.hh"
#include "algorithms/sssp.hh"
#include "core/engine.hh"
#include "core/state.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "harp/reduction.hh"
#include "runtime/spsc_ring.hh"
#include "runtime/task_queue.hh"
#include "support/logging.hh"

namespace graphabcd {
namespace {

void
BM_TaskQueuePushPop(benchmark::State &state)
{
    TaskQueue<int> q(1024);
    for (auto _ : state) {
        q.tryPush(1);
        benchmark::DoNotOptimize(q.tryPop());
    }
}
BENCHMARK(BM_TaskQueuePushPop);

void
BM_SpscRingPushPop(benchmark::State &state)
{
    SpscRing<int> ring(1024);
    for (auto _ : state) {
        ring.tryPush(1);
        benchmark::DoNotOptimize(ring.tryPop());
    }
}
BENCHMARK(BM_SpscRingPushPop);

void
BM_TaggedReduction(benchmark::State &state)
{
    const auto tags = static_cast<std::uint32_t>(state.range(0));
    Rng rng(7);
    std::vector<std::pair<std::uint32_t, double>> stream;
    std::unordered_map<std::uint32_t, std::uint32_t> expected;
    for (int i = 0; i < 4096; i++) {
        auto tag = static_cast<std::uint32_t>(rng.nextBounded(tags));
        stream.emplace_back(tag, rng.nextDouble());
        expected[tag]++;
    }
    TaggedReductionUnit<double> unit(
        [](const double &a, const double &b) { return a + b; });
    for (auto _ : state) {
        auto result = unit.reduce(stream, expected);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TaggedReduction)->Arg(16)->Arg(256);

void
BM_SerialReduction(benchmark::State &state)
{
    const auto tags = static_cast<std::uint32_t>(state.range(0));
    Rng rng(7);
    std::vector<std::pair<std::uint32_t, double>> stream;
    for (int i = 0; i < 4096; i++) {
        stream.emplace_back(
            static_cast<std::uint32_t>(rng.nextBounded(tags)),
            rng.nextDouble());
    }
    for (auto _ : state) {
        std::vector<double> acc(tags, 0.0);
        for (const auto &[tag, value] : stream)
            acc[tag] += value;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SerialReduction)->Arg(16)->Arg(256);

void
BM_PartitionBuild(benchmark::State &state)
{
    Rng rng(9);
    EdgeList el = generateRmat(1 << 14, 1 << 17, rng);
    for (auto _ : state) {
        BlockPartition g(el, 512);
        benchmark::DoNotOptimize(g.numBlocks());
    }
    state.SetItemsProcessed(state.iterations() * el.numEdges());
}
BENCHMARK(BM_PartitionBuild);

/** Arg 0: plain layout; arg 1: compressed (varint decode in the loop). */
void
BM_GatherApplyBlock(benchmark::State &state)
{
    Rng rng(11);
    EdgeList el = generateRmat(1 << 14, 1 << 17, rng);
    LayoutOptions lo;
    lo.layout = state.range(0) ? GraphLayout::Compressed
                               : GraphLayout::Plain;
    BlockPartition g(el, 512, lo);
    PageRankProgram prog;
    BcdState<PageRankProgram> st(g, prog);
    BlockId b = 0;
    for (auto _ : state) {
        auto update = st.processBlock(g, prog, b, 1e-9);
        benchmark::DoNotOptimize(update.l1Delta);
        b = (b + 1) % g.numBlocks();
    }
    state.SetLabel(to_string(g.layout()));
}
BENCHMARK(BM_GatherApplyBlock)->Arg(0)->Arg(1);

void
BM_ScatterCommitBlock(benchmark::State &state)
{
    Rng rng(13);
    EdgeList el = generateRmat(1 << 14, 1 << 17, rng);
    BlockPartition g(el, 512);
    PageRankProgram prog;
    BcdState<PageRankProgram> st(g, prog);
    BlockId b = 0;
    for (auto _ : state) {
        auto update = st.processBlock(g, prog, b, 1e-9);
        benchmark::DoNotOptimize(
            st.commitBlock(g, prog, update, 1e-9));
        b = (b + 1) % g.numBlocks();
    }
}
BENCHMARK(BM_ScatterCommitBlock);

// ----------------------------------------------------- layout grid

/** One (algorithm x layout x reorder) measurement. */
struct LayoutCell
{
    std::string algo;
    GraphLayout layout = GraphLayout::Plain;
    VertexReorder reorder = VertexReorder::None;
    double gatherBytesPerEdge = 0.0;   //!< measured, moved/traversed
    double scatterBytesPerEdge = 0.0;  //!< measured, moved/traversed
    double bytesPerEdge = 0.0;         //!< gather + scatter
    double staticBytesPerEdge = 0.0;   //!< stored topology B/edge
    double epochs = 0.0;
};

/** Run `prog` to convergence and record the bytes-moved tallies. */
template <typename Program>
LayoutCell
measureCell(const char *algo, const EdgeList &el, Program prog,
            LayoutOptions lo)
{
    BlockPartition g(el, 512, lo);
    EngineOptions opt;
    opt.blockSize = 512;
    opt.tolerance = 1e-7;
    SerialEngine<Program> engine(g, prog, opt);
    std::vector<typename Program::Value> values;
    g.resetBytesMoved();
    const EngineReport report = engine.run(values);
    const BytesMoved moved = g.bytesMoved();
    LayoutCell cell;
    cell.algo = algo;
    cell.layout = lo.layout;
    cell.reorder = lo.reorder;
    const double edges =
        static_cast<double>(std::max<std::uint64_t>(
            report.edgeTraversals, 1));
    cell.gatherBytesPerEdge = static_cast<double>(moved.gather) / edges;
    cell.scatterBytesPerEdge =
        static_cast<double>(moved.scatter) / edges;
    cell.bytesPerEdge =
        cell.gatherBytesPerEdge + cell.scatterBytesPerEdge;
    cell.staticBytesPerEdge = g.gatherBytesPerEdge();
    cell.epochs = report.epochs;
    return cell;
}

/**
 * Measure every cell of the grid on the RMAT stand-in and write the
 * JSON report.  @return process exit code.
 */
int
runLayoutGrid(const std::string &path)
{
    Rng rng(11);
    const EdgeList el = generateRmat(1 << 14, 1 << 17, rng);
    const EdgeList sym = el.symmetrized();

    // SSSP from the max-out-degree hub, in original ids: the builder
    // applies any reorder internally, so the bench (like any caller)
    // must translate at the boundary.
    VertexId hub = 0;
    {
        const auto deg = el.outDegrees();
        for (VertexId v = 0; v < el.numVertices(); v++)
            hub = deg[v] > deg[hub] ? v : hub;
    }

    const LayoutOptions grid[] = {
        {GraphLayout::Plain, VertexReorder::None},
        {GraphLayout::Plain, VertexReorder::Hub},
        {GraphLayout::Compressed, VertexReorder::None},
        {GraphLayout::Compressed, VertexReorder::Hub},
    };
    std::vector<LayoutCell> cells;
    for (const LayoutOptions &lo : grid) {
        cells.push_back(measureCell("pr", el, PageRankProgram(), lo));
        VertexId src = hub;
        {
            BlockPartition probe(el, 512, lo);
            src = probe.permutation().toInternal(hub);
        }
        cells.push_back(measureCell("sssp", el, SsspProgram(src), lo));
        cells.push_back(measureCell("cc", sym, CcProgram(), lo));
    }

    // Reduction of each cell against the plain/none cell of its algo.
    auto plainOf = [&](const std::string &algo) -> const LayoutCell & {
        for (const LayoutCell &c : cells) {
            if (c.algo == algo && c.layout == GraphLayout::Plain &&
                c.reorder == VertexReorder::None)
                return c;
        }
        return cells.front();
    };

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    std::fprintf(out,
                 "  \"dataset\": \"rmat v=%u e=%llu\",\n"
                 "  \"block_size\": 512,\n  \"engine\": \"serial\",\n",
                 el.numVertices(),
                 static_cast<unsigned long long>(el.numEdges()));
    std::fprintf(out, "  \"cells\": [\n");
    for (std::size_t i = 0; i < cells.size(); i++) {
        const LayoutCell &c = cells[i];
        const double reduction =
            1.0 - c.bytesPerEdge / plainOf(c.algo).bytesPerEdge;
        std::fprintf(
            out,
            "    {\"algo\": \"%s\", \"layout\": \"%s\", "
            "\"reorder\": \"%s\", \"gather_bytes_per_edge\": %.3f, "
            "\"scatter_bytes_per_edge\": %.3f, "
            "\"bytes_per_edge\": %.3f, "
            "\"static_topology_bytes_per_edge\": %.3f, "
            "\"reduction_vs_plain\": %.3f, \"epochs\": %.2f}%s\n",
            c.algo.c_str(), to_string(c.layout), to_string(c.reorder),
            c.gatherBytesPerEdge, c.scatterBytesPerEdge, c.bytesPerEdge,
            c.staticBytesPerEdge, reduction, c.epochs,
            i + 1 < cells.size() ? "," : "");
        std::printf("%-4s %-10s %-4s  %7.3f B/edge  (%.1f%% vs plain)\n",
                    c.algo.c_str(), to_string(c.layout),
                    to_string(c.reorder), c.bytesPerEdge,
                    reduction * 100.0);
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        const std::string_view arg(argv[i]);
        constexpr std::string_view kGrid = "--layout_grid=";
        if (arg.substr(0, kGrid.size()) == kGrid) {
            return graphabcd::runLayoutGrid(
                std::string(arg.substr(kGrid.size())));
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
