/**
 * @file
 * ConvergenceRecorder — per-run residual-vs-epoch time series.
 *
 * GraphABCD's headline claim is convergence *rate*: fewer epochs to a
 * fixed residual thanks to block size, Gauss-Southwell selection, and
 * bounded asynchrony (paper Figs. 9-11).  End-of-run totals cannot show
 * that; this recorder holds the curve.  Every engine (serial, async,
 * HARP simulator, GraphMat baseline) appends one ConvergencePoint per
 * trace interval — residual, active vertices, work counters, wall and
 * simulated time — into a ConvergenceSeries owned by the run (the serve
 * layer opens one per job).  Series are retained by the process-wide
 * recorder and dumpable as CSV/JSON, so the paper's convergence figures
 * are reproducible from one service run.
 *
 * Recording happens at trace-interval granularity (roughly once per
 * epoch), never per block, and each series caps its footprint by stride
 * downsampling: when the point buffer fills, every other point is
 * dropped and the recording stride doubles, so an unexpectedly long run
 * degrades resolution instead of growing without bound.
 *
 * Instrumentation sites go through the obs:: facade (obs/obs.hh), which
 * compiles the hooks out under GRAPHABCD_OBS=OFF.
 */

#ifndef GRAPHABCD_OBS_CONVERGENCE_HH
#define GRAPHABCD_OBS_CONVERGENCE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace graphabcd {

/** One sample of a convergence curve. */
struct ConvergencePoint
{
    double epochs = 0.0;      //!< |V|-normalised vertex updates so far
    double residual = 0.0;    //!< L1 value delta over the sample window
    std::uint64_t activeVertices = 0;  //!< vertices moved > tol in window
    std::uint64_t vertexUpdates = 0;   //!< cumulative vertex updates
    std::uint64_t edgeTraversals = 0;  //!< cumulative edge traversals
    double wallSeconds = 0.0;  //!< host time since the run began
    double simSeconds = 0.0;   //!< simulated time (0 for real engines)
};

/**
 * The curve of one run.  record() is mutex-append (trace-interval
 * cadence, cold next to any engine's block loop); points() copies under
 * the same lock so readers never see a partial sample.
 */
class ConvergenceSeries
{
  public:
    ConvergenceSeries(std::uint64_t id, std::string label,
                      std::size_t capacity = 4096);

    ConvergenceSeries(const ConvergenceSeries &) = delete;
    ConvergenceSeries &operator=(const ConvergenceSeries &) = delete;

    /** Append one sample (downsampled once the series is full). */
    void record(const ConvergencePoint &point);

    /** Append the run's last sample, bypassing the stride filter. */
    void recordFinal(const ConvergencePoint &point);

    std::uint64_t id() const { return id_; }
    const std::string &label() const { return label_; }

    /** @return a consistent copy of the recorded points. */
    std::vector<ConvergencePoint> points() const;

    std::size_t size() const;

    /** @return the last recorded point (all-zero when empty). */
    ConvergencePoint back() const;

  private:
    void appendLocked(const ConvergencePoint &point);

    const std::uint64_t id_;
    const std::string label_;
    const std::size_t capacity_;

    mutable std::mutex mtx_;
    std::vector<ConvergencePoint> points_;
    std::uint64_t tick_ = 0;    //!< record() calls seen
    std::uint64_t stride_ = 1;  //!< keep every stride_-th call
};

/**
 * Process-wide store of convergence series, bounded to the most recent
 * `max_series` runs.  begin() hands a run its series; the recorder
 * keeps a reference for later retrieval (per job id / label) and for
 * the CSV/JSON dumps behind the CONV verb and the /convergence HTTP
 * endpoint.
 */
class ConvergenceRecorder
{
  public:
    /** The process-wide recorder (what CONV and /convergence dump). */
    static ConvergenceRecorder &global();

    explicit ConvergenceRecorder(std::size_t max_series = 64);

    ConvergenceRecorder(const ConvergenceRecorder &) = delete;
    ConvergenceRecorder &operator=(const ConvergenceRecorder &) = delete;

    /** Open (and retain) a new series for one run. */
    std::shared_ptr<ConvergenceSeries> begin(std::string label);

    /** @return retained series, oldest first. */
    std::vector<std::shared_ptr<const ConvergenceSeries>> list() const;

    /** @return the most recent series with this label, or null. */
    std::shared_ptr<const ConvergenceSeries>
    find(const std::string &label) const;

    /** Drop every retained series (live handles stay valid). */
    void clear();

    std::size_t seriesCount() const;

    /**
     * One series as CSV with a header row:
     *   series,label,epochs,residual,active_vertices,vertex_updates,
     *   edge_traversals,wall_seconds,sim_seconds
     */
    static std::string csv(const ConvergenceSeries &series);

    /** Every retained series, one shared header, rows concatenated. */
    std::string csv() const;

    /** Every retained series as one JSON document. */
    std::string json() const;

  private:
    const std::size_t maxSeries_;

    mutable std::mutex mtx_;
    std::deque<std::shared_ptr<ConvergenceSeries>> series_;
    std::uint64_t nextId_ = 1;
};

} // namespace graphabcd

#endif // GRAPHABCD_OBS_CONVERGENCE_HH
