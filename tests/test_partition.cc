/**
 * @file
 * Tests of the destination-sliced BlockPartition — the layout invariants
 * GraphABCD's sequential-access claim rests on.
 */

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hh"
#include "graph/partition.hh"

namespace graphabcd {
namespace {

EdgeList
smallGraph()
{
    // 6 vertices, hand-checkable.
    EdgeList el(6);
    el.addEdge(0, 1, 1.0f);
    el.addEdge(0, 2, 2.0f);
    el.addEdge(1, 2, 3.0f);
    el.addEdge(2, 3, 4.0f);
    el.addEdge(3, 4, 5.0f);
    el.addEdge(4, 5, 6.0f);
    el.addEdge(5, 0, 7.0f);
    el.addEdge(1, 4, 8.0f);
    return el;
}

TEST(Partition, BlockRangesTileTheVertexSpace)
{
    BlockPartition g(smallGraph(), 4);
    EXPECT_EQ(g.numBlocks(), 2u);
    EXPECT_EQ(g.blockBegin(0), 0u);
    EXPECT_EQ(g.blockEnd(0), 4u);
    EXPECT_EQ(g.blockBegin(1), 4u);
    EXPECT_EQ(g.blockEnd(1), 6u);   // ragged tail
    EXPECT_EQ(g.blockVertexCount(1), 2u);
}

TEST(Partition, BlockOfIsConsistentWithRanges)
{
    BlockPartition g(smallGraph(), 4);
    for (VertexId v = 0; v < g.numVertices(); v++) {
        BlockId b = g.blockOf(v);
        EXPECT_GE(v, g.blockBegin(b));
        EXPECT_LT(v, g.blockEnd(b));
    }
}

TEST(Partition, InEdgesOfAVertexAreContiguousAndComplete)
{
    EdgeList el = smallGraph();
    BlockPartition g(el, 2);
    // Vertex 2 has in-edges from 0 (w=2) and 1 (w=3).
    std::multiset<VertexId> srcs;
    for (EdgeId e = g.inEdgeBegin(2); e < g.inEdgeEnd(2); e++) {
        EXPECT_EQ(g.edgeDst(e), 2u);
        srcs.insert(g.edgeSrc(e));
    }
    EXPECT_EQ(srcs, (std::multiset<VertexId>{0, 1}));
}

TEST(Partition, BlockEdgeSliceIsTheUnionOfItsVertices)
{
    EdgeList el = smallGraph();
    BlockPartition g(el, 3);
    for (BlockId b = 0; b < g.numBlocks(); b++) {
        EdgeId count = 0;
        for (VertexId v = g.blockBegin(b); v < g.blockEnd(b); v++)
            count += g.inEdgeEnd(v) - g.inEdgeBegin(v);
        EXPECT_EQ(count, g.blockEdgeCount(b));
        EXPECT_EQ(g.edgeEnd(b) - g.edgeBegin(b), count);
    }
}

TEST(Partition, EdgeSlicesAreSortedByDestination)
{
    Rng rng(21);
    EdgeList el = generateRmat(512, 4096, rng);
    BlockPartition g(el, 64);
    for (EdgeId e = 1; e < g.numEdges(); e++)
        EXPECT_LE(g.edgeDst(e - 1), g.edgeDst(e));
}

TEST(Partition, ScatterIndexCoversEveryEdgeExactlyOnce)
{
    Rng rng(22);
    EdgeList el = generateRmat(256, 2048, rng);
    BlockPartition g(el, 32);
    std::vector<char> seen(g.numEdges(), 0);
    for (VertexId v = 0; v < g.numVertices(); v++) {
        for (EdgeId pos : g.scatterPositions(v)) {
            EXPECT_EQ(g.edgeSrc(pos), v);   // position belongs to v
            EXPECT_FALSE(seen[pos]);
            seen[pos] = 1;
        }
    }
    for (char s : seen)
        EXPECT_TRUE(s);
}

TEST(Partition, DegreesMatchEdgeList)
{
    Rng rng(23);
    EdgeList el = generateErdosRenyi(128, 1000, rng);
    BlockPartition g(el, 16);
    auto outd = el.outDegrees();
    auto ind = el.inDegrees();
    for (VertexId v = 0; v < 128; v++) {
        EXPECT_EQ(g.outDegree(v), outd[v]);
        EXPECT_EQ(g.inDegree(v), ind[v]);
    }
}

TEST(Partition, DownstreamBlocksAreExact)
{
    EdgeList el = smallGraph();
    BlockPartition g(el, 2);   // blocks {0,1},{2,3},{4,5}
    // Block 0 = {0,1}: edges to 1(blk0), 2(blk1), 2(blk1), 4(blk2).
    auto down0 = g.downstreamBlocks(0);
    std::vector<BlockId> expect0{0, 1, 2};
    EXPECT_EQ(std::vector<BlockId>(down0.begin(), down0.end()), expect0);
    // Block 2 = {4,5}: edges 4->5 (blk2), 5->0 (blk0).
    auto down2 = g.downstreamBlocks(2);
    std::vector<BlockId> expect2{0, 2};
    EXPECT_EQ(std::vector<BlockId>(down2.begin(), down2.end()), expect2);
}

TEST(Partition, SingleBlockDegeneratesToWholeGraph)
{
    EdgeList el = smallGraph();
    BlockPartition g(el, 100);   // block size > |V|
    EXPECT_EQ(g.numBlocks(), 1u);
    EXPECT_EQ(g.blockEdgeCount(0), el.numEdges());
}

TEST(Partition, BlockSizeOneGivesPerVertexBlocks)
{
    EdgeList el = smallGraph();
    BlockPartition g(el, 1);
    EXPECT_EQ(g.numBlocks(), 6u);
    for (VertexId v = 0; v < 6; v++)
        EXPECT_EQ(g.blockOf(v), v);
}

TEST(Partition, StreamBytesScaleWithEdgesAndValueWidth)
{
    EdgeList el = smallGraph();
    BlockPartition g(el, 3);
    std::uint64_t narrow = g.blockStreamBytes(0, 8);
    std::uint64_t wide = g.blockStreamBytes(0, 64);
    EXPECT_GT(wide, narrow);
    // Edge record = 4 (src) + 4 (weight) + value bytes.
    std::uint64_t expected =
        g.blockEdgeCount(0) * (4 + 4 + 8) +
        2ull * g.blockVertexCount(0) * 8;
    EXPECT_EQ(narrow, expected);
}

TEST(Partition, EmptyGraphIsHandled)
{
    EdgeList el(0);
    BlockPartition g(el, 8);
    EXPECT_EQ(g.numBlocks(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
}

TEST(Partition, VertexWithNoEdgesHasEmptySlices)
{
    EdgeList el(4);
    el.addEdge(0, 1);
    BlockPartition g(el, 2);
    EXPECT_EQ(g.inEdgeBegin(3), g.inEdgeEnd(3));
    EXPECT_TRUE(g.scatterPositions(3).empty());
    EXPECT_EQ(g.outDegree(3), 0u);
}

} // namespace
} // namespace graphabcd
