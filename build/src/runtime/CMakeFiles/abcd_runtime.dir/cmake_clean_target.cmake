file(REMOVE_RECURSE
  "libabcd_runtime.a"
)
