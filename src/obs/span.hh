/**
 * @file
 * Causal span propagation — the per-job trace context that links a
 * serve request to every executor task and fragment pump it spawns.
 *
 * A SpanContext names one node of a job's span tree: the owning JobId,
 * a process-unique span id, and the parent span id (0 for the root).
 * JobManager::submit allocates the root; the context then rides along
 * explicitly (Executor::Task captures the submitter's ambient context)
 * and ambiently (a thread-local slot installed by SpanScope), so a
 * CausalSpan opened anywhere below the root lands in the same tree
 * without any plumbing through engine signatures.
 *
 * Chrome-trace export (TraceRecorder) writes the three ids as event
 * `args`, so a trace viewer — or the span-tree test — can reassemble
 * one causally-linked tree per job out of the per-thread rings.
 *
 * This header stands alone (the executor includes it directly, and
 * src/runtime must stay light): with GRAPHABCD_OBS_ENABLED=0 the
 * context keeps its POD layout so structs embedding it still compile,
 * but currentSpan() is a constant and SpanScope/CausalSpan are empty —
 * the optimiser removes every call site.
 */

#ifndef GRAPHABCD_OBS_SPAN_HH
#define GRAPHABCD_OBS_SPAN_HH

#include <cstdint>

#ifndef GRAPHABCD_OBS_ENABLED
#define GRAPHABCD_OBS_ENABLED 1
#endif

#if GRAPHABCD_OBS_ENABLED
#include <atomic>

#include "obs/trace.hh"
#endif

namespace graphabcd {
namespace obs {

/** One node of a job's span tree (POD in both build modes). */
struct SpanContext
{
    std::uint64_t job = 0;    //!< owning serve JobId; 0 = none
    std::uint64_t span = 0;   //!< this span's id; 0 = no span
    std::uint64_t parent = 0; //!< parent span id; 0 = tree root

    bool valid() const { return span != 0; }
};

#if GRAPHABCD_OBS_ENABLED

/** @return a process-unique span id (never 0). */
inline std::uint64_t
nextSpanId()
{
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

namespace detail {

inline SpanContext &
currentSpanSlot()
{
    thread_local SpanContext slot;
    return slot;
}

} // namespace detail

/** The calling thread's ambient span context (a copy). */
inline SpanContext
currentSpan()
{
    return detail::currentSpanSlot();
}

/** @return a fresh child context of the thread's ambient span. */
inline SpanContext
childSpan(std::uint64_t job_id = 0)
{
    const SpanContext parent = currentSpan();
    return SpanContext{job_id != 0 ? job_id : parent.job, nextSpanId(),
                       parent.span};
}

/**
 * RAII: install a foreign context as the thread's ambient one (the
 * executor adopts the submitter's context around each task), restore
 * the previous context on exit.  An invalid context installs nothing.
 */
class SpanScope
{
  public:
    explicit SpanScope(const SpanContext &ctx)
        : prev_(detail::currentSpanSlot())
    {
        if (ctx.valid())
            detail::currentSpanSlot() = ctx;
    }

    ~SpanScope() { detail::currentSpanSlot() = prev_; }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    SpanContext prev_;
};

/**
 * RAII causal span: allocates a child of the ambient context, installs
 * itself as the ambient context for its scope, and records one Chrome
 * "X" complete event (with job/span/parent args) on destruction.
 * Cheap no-op while the global TraceRecorder is disabled.
 * @param name must be a string literal (the recorder keeps the pointer).
 * @param job_id overrides the inherited JobId (roots of a job's tree).
 */
class CausalSpan
{
  public:
    explicit CausalSpan(const char *name, std::uint64_t job_id = 0)
    {
        TraceRecorder &recorder = TraceRecorder::global();
        if (!recorder.enabled())
            return;
        recorder_ = &recorder;
        name_ = name;
        SpanContext &slot = detail::currentSpanSlot();
        prev_ = slot;
        ctx_.job = job_id != 0 ? job_id : prev_.job;
        ctx_.span = nextSpanId();
        ctx_.parent = prev_.span;
        slot = ctx_;
        startMicros_ = TraceRecorder::nowMicros();
    }

    ~CausalSpan()
    {
        if (!recorder_)
            return;
        detail::currentSpanSlot() = prev_;
        recorder_->complete(name_, startMicros_,
                            TraceRecorder::nowMicros() - startMicros_,
                            ctx_.job, ctx_.span, ctx_.parent);
    }

    CausalSpan(const CausalSpan &) = delete;
    CausalSpan &operator=(const CausalSpan &) = delete;

    /** This span's context ({} when the recorder was disabled). */
    const SpanContext &context() const { return ctx_; }

  private:
    TraceRecorder *recorder_ = nullptr;
    const char *name_ = nullptr;
    double startMicros_ = 0.0;
    SpanContext ctx_{};
    SpanContext prev_{};
};

#else // !GRAPHABCD_OBS_ENABLED

inline std::uint64_t
nextSpanId()
{
    return 0;
}

inline SpanContext
currentSpan()
{
    return {};
}

inline SpanContext
childSpan(std::uint64_t = 0)
{
    return {};
}

struct SpanScope
{
    explicit SpanScope(const SpanContext &) {}
};

struct CausalSpan
{
    explicit CausalSpan(const char *, std::uint64_t = 0) {}
    SpanContext context() const { return {}; }
};

#endif // GRAPHABCD_OBS_ENABLED

} // namespace obs
} // namespace graphabcd

#endif // GRAPHABCD_OBS_SPAN_HH
