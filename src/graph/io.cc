#include "graph/io.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <span>
#include <sstream>
#include <unordered_map>

#include "graph/codec.hh"
#include "graph/layout.hh"
#include "support/logging.hh"

namespace graphabcd {

EdgeList
loadEdgeList(const std::string &path, bool densify)
{
    std::ifstream ifs(path);
    if (!ifs)
        fatal("cannot open edge list '", path, "'");

    std::vector<Edge> raw;
    std::uint64_t max_id = 0;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(ifs, line)) {
        line_no++;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream iss(line);
        std::uint64_t s, d;
        float w = 1.0f;
        if (!(iss >> s >> d))
            fatal("garbled edge at ", path, ":", line_no);
        // VertexId is 32-bit; a wider id must fail loudly here, not
        // silently alias a low vertex after truncation.
        constexpr std::uint64_t max_vertex =
            std::numeric_limits<VertexId>::max();
        if (s > max_vertex || d > max_vertex)
            fatal("vertex id ", std::max(s, d), " at ", path, ":",
                  line_no, " exceeds the 32-bit VertexId range ",
                  "(densify cannot help: ids are truncated before ",
                  "remapping)");
        iss >> w;   // optional third column
        raw.emplace_back(static_cast<VertexId>(s),
                         static_cast<VertexId>(d), w);
        max_id = std::max({max_id, s, d});
    }

    if (!densify) {
        // max_id fits VertexId (checked per line), but the vertex
        // *count* max_id + 1 may not.
        if (max_id == std::numeric_limits<VertexId>::max())
            fatal("'", path, "' needs ", max_id + 1,
                  " vertices, which overflows the 32-bit vertex count; "
                  "load with densify=true");
        EdgeList el(static_cast<VertexId>(max_id) + 1);
        for (const Edge &e : raw)
            el.addEdge(e.src, e.dst, e.weight);
        return el;
    }

    std::unordered_map<VertexId, VertexId> remap;
    remap.reserve(raw.size() * 2);
    auto intern = [&remap](VertexId v) {
        auto [it, fresh] =
            remap.emplace(v, static_cast<VertexId>(remap.size()));
        (void)fresh;
        return it->second;
    };
    for (Edge &e : raw) {
        e.src = intern(e.src);
        e.dst = intern(e.dst);
    }
    EdgeList el(static_cast<VertexId>(remap.size()));
    for (const Edge &e : raw)
        el.addEdge(e.src, e.dst, e.weight);
    return el;
}

namespace {

constexpr char binaryMagic[4] = {'A', 'B', 'C', 'D'};
constexpr std::uint32_t binaryVersion = 1;

} // namespace

void
saveEdgeListBinary(const EdgeList &el, const std::string &path)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    ofs.write(binaryMagic, sizeof(binaryMagic));
    const std::uint32_t version = binaryVersion;
    const std::uint32_t n = el.numVertices();
    const std::uint64_t m = el.numEdges();
    ofs.write(reinterpret_cast<const char *>(&version), sizeof(version));
    ofs.write(reinterpret_cast<const char *>(&n), sizeof(n));
    ofs.write(reinterpret_cast<const char *>(&m), sizeof(m));
    static_assert(sizeof(Edge) == 12, "Edge layout changed: bump the "
                                      "binary format version");
    ofs.write(reinterpret_cast<const char *>(el.edges().data()),
              static_cast<std::streamsize>(m * sizeof(Edge)));
    if (!ofs)
        fatal("short write to '", path, "'");
}

EdgeList
loadEdgeListBinary(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        fatal("cannot open binary edge list '", path, "'");
    char magic[4];
    std::uint32_t version = 0, n = 0;
    std::uint64_t m = 0;
    ifs.read(magic, sizeof(magic));
    ifs.read(reinterpret_cast<char *>(&version), sizeof(version));
    ifs.read(reinterpret_cast<char *>(&n), sizeof(n));
    ifs.read(reinterpret_cast<char *>(&m), sizeof(m));
    if (!ifs || std::memcmp(magic, binaryMagic, sizeof(magic)) != 0)
        fatal("'", path, "' is not a graphabcd binary edge list");
    if (version != binaryVersion)
        fatal("'", path, "' has format version ", version,
              ", expected ", binaryVersion);
    // Validate the edge count against the bytes actually present
    // before allocating: a corrupt or malicious header must fail
    // cleanly here, not OOM the process on the vector below.  The
    // division form avoids overflowing m * sizeof(Edge).
    const std::istream::pos_type data_pos = ifs.tellg();
    ifs.seekg(0, std::ios::end);
    const std::istream::pos_type end_pos = ifs.tellg();
    if (data_pos == std::istream::pos_type(-1) ||
        end_pos == std::istream::pos_type(-1) || end_pos < data_pos)
        fatal("cannot size '", path, "'");
    const std::uint64_t remaining =
        static_cast<std::uint64_t>(end_pos - data_pos);
    if (m > remaining / sizeof(Edge))
        fatal("'", path, "' header claims ", m, " edges but only ",
              remaining, " bytes (", remaining / sizeof(Edge),
              " edges) follow the header");
    ifs.seekg(data_pos);
    std::vector<Edge> edges(m);
    ifs.read(reinterpret_cast<char *>(edges.data()),
             static_cast<std::streamsize>(m * sizeof(Edge)));
    if (!ifs)
        fatal("'", path, "' is truncated");
    return EdgeList(n, std::move(edges));
}

namespace {

constexpr char packedMagic[4] = {'A', 'B', 'C', 'Z'};
constexpr std::uint32_t packedVersion = 1;

} // namespace

void
saveEdgeListPacked(const EdgeList &el, const std::string &path)
{
    const VertexId n = el.numVertices();
    const std::uint64_t m = el.numEdges();

    // Group edges by source and sort each neighbor list (weights stay
    // paired), the shape the delta codec needs.
    std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
    for (const Edge &e : el.edges())
        offsets[e.src + 1]++;
    for (VertexId v = 0; v < n; v++)
        offsets[v + 1] += offsets[v];
    std::vector<VertexId> nbr(m);
    std::vector<float> wgt(m);
    {
        std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
        for (const Edge &e : el.edges()) {
            const EdgeId pos = cursor[e.src]++;
            nbr[pos] = e.dst;
            wgt[pos] = e.weight;
        }
    }
    std::vector<EdgeId> order(m);
    for (VertexId v = 0; v < n; v++) {
        const EdgeId begin = offsets[v], end = offsets[v + 1];
        if (end - begin < 2)
            continue;
        for (EdgeId i = begin; i < end; i++)
            order[i] = i;
        std::stable_sort(order.begin() + begin, order.begin() + end,
                         [&](EdgeId a, EdgeId b) {
                             return nbr[a] < nbr[b];
                         });
        std::vector<VertexId> na(end - begin);
        std::vector<float> nw(end - begin);
        for (EdgeId i = begin; i < end; i++) {
            na[i - begin] = nbr[order[i]];
            nw[i - begin] = wgt[order[i]];
        }
        std::copy(na.begin(), na.end(), nbr.begin() + begin);
        std::copy(nw.begin(), nw.end(), wgt.begin() + begin);
    }

    // Narrowest weight sidecar preserving every value exactly.
    WeightMode mode = WeightMode::Unit;
    for (std::uint64_t e = 0; e < m && mode != WeightMode::Float32; e++) {
        const float w = wgt[e];
        if (w == 1.0f)
            continue;
        if (w >= 0.0f && w <= 255.0f &&
            w == static_cast<float>(static_cast<std::uint8_t>(w)))
            mode = WeightMode::U8;
        else
            mode = WeightMode::Float32;
    }

    std::vector<std::uint8_t> stream;
    stream.reserve(m * 2);
    for (VertexId v = 0; v < n; v++) {
        const EdgeId begin = offsets[v], end = offsets[v + 1];
        codec::putVarint32(stream,
                           static_cast<std::uint32_t>(end - begin));
        codec::encodeDeltaList32(
            std::span<const VertexId>(nbr.data() + begin,
                                      nbr.data() + end),
            stream);
    }

    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    ofs.write(packedMagic, sizeof(packedMagic));
    const std::uint32_t version = packedVersion;
    const std::uint32_t nv = n;
    const std::uint8_t mode_byte = static_cast<std::uint8_t>(mode);
    ofs.write(reinterpret_cast<const char *>(&version), sizeof(version));
    ofs.write(reinterpret_cast<const char *>(&nv), sizeof(nv));
    ofs.write(reinterpret_cast<const char *>(&m), sizeof(m));
    ofs.write(reinterpret_cast<const char *>(&mode_byte),
              sizeof(mode_byte));
    ofs.write(reinterpret_cast<const char *>(stream.data()),
              static_cast<std::streamsize>(stream.size()));
    if (mode == WeightMode::U8) {
        std::vector<std::uint8_t> side(m);
        for (std::uint64_t e = 0; e < m; e++)
            side[e] = static_cast<std::uint8_t>(wgt[e]);
        ofs.write(reinterpret_cast<const char *>(side.data()),
                  static_cast<std::streamsize>(side.size()));
    } else if (mode == WeightMode::Float32) {
        ofs.write(reinterpret_cast<const char *>(wgt.data()),
                  static_cast<std::streamsize>(m * sizeof(float)));
    }
    if (!ofs)
        fatal("short write to '", path, "'");
}

EdgeList
loadEdgeListPacked(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        fatal("cannot open packed edge list '", path, "'");
    char magic[4];
    std::uint32_t version = 0, n = 0;
    std::uint64_t m = 0;
    std::uint8_t mode_byte = 0xff;
    ifs.read(magic, sizeof(magic));
    ifs.read(reinterpret_cast<char *>(&version), sizeof(version));
    ifs.read(reinterpret_cast<char *>(&n), sizeof(n));
    ifs.read(reinterpret_cast<char *>(&m), sizeof(m));
    ifs.read(reinterpret_cast<char *>(&mode_byte), sizeof(mode_byte));
    if (!ifs || std::memcmp(magic, packedMagic, sizeof(magic)) != 0)
        fatal("'", path, "' is not a graphabcd packed edge list");
    if (version != packedVersion)
        fatal("'", path, "' has packed format version ", version,
              ", expected ", packedVersion);
    if (mode_byte > static_cast<std::uint8_t>(WeightMode::Float32))
        fatal("'", path, "' has unknown weight mode ",
              static_cast<unsigned>(mode_byte));
    const WeightMode mode = static_cast<WeightMode>(mode_byte);

    // Size the payload before allocating anything proportional to the
    // header counts: a corrupt header must fail cleanly, not OOM.
    const std::istream::pos_type data_pos = ifs.tellg();
    ifs.seekg(0, std::ios::end);
    const std::istream::pos_type end_pos = ifs.tellg();
    if (data_pos == std::istream::pos_type(-1) ||
        end_pos == std::istream::pos_type(-1) || end_pos < data_pos)
        fatal("cannot size '", path, "'");
    const std::uint64_t payload =
        static_cast<std::uint64_t>(end_pos - data_pos);
    // Each edge costs >= 1 stream byte and each vertex >= 1 degree
    // byte, so an absurd header count is caught before decoding (the
    // m <= payload bound first, so weight_bytes below cannot wrap).
    if (m > payload || n > payload)
        fatal("'", path, "' header claims ", n, " vertices / ", m,
              " edges but only ", payload,
              " payload bytes follow the header");
    const std::uint64_t weight_bytes =
        mode == WeightMode::Unit ? 0
        : mode == WeightMode::U8 ? m
                                 : m * sizeof(float);
    if (payload < weight_bytes || payload - weight_bytes < m ||
        payload - weight_bytes - m < n)
        fatal("'", path, "' header claims ", n, " vertices / ", m,
              " edges (", weight_bytes,
              " weight bytes) but only ", payload,
              " payload bytes follow the header");
    const std::uint64_t stream_bytes = payload - weight_bytes;
    ifs.seekg(data_pos);
    std::vector<std::uint8_t> stream(stream_bytes);
    ifs.read(reinterpret_cast<char *>(stream.data()),
             static_cast<std::streamsize>(stream_bytes));
    if (!ifs)
        fatal("'", path, "' is truncated");

    std::vector<Edge> edges;
    edges.reserve(m);
    const std::uint8_t *base = stream.data();
    const std::uint8_t *end = base + stream.size();
    std::size_t off = 0;
    std::uint64_t placed = 0;
    auto offsetOf = [&](std::size_t stream_off) {
        return static_cast<std::uint64_t>(data_pos) + stream_off;
    };
    for (VertexId v = 0; v < n; v++) {
        std::uint32_t deg = 0;
        codec::VarintResult r = codec::getVarint32(base + off, end, deg);
        if (!r.ok())
            fatal("'", path, "': ", codec::to_string(r.status),
                  " in degree of vertex ", v, " at byte ", offsetOf(off));
        off += r.bytes;
        if (placed + deg > m)
            fatal("'", path, "': degree sum exceeds the header's ", m,
                  " edges at vertex ", v, " (byte ", offsetOf(off), ")");
        VertexId prev = 0;
        for (std::uint32_t i = 0; i < deg; i++) {
            std::uint32_t d = 0;
            r = codec::getVarint32(base + off, end, d);
            if (!r.ok())
                fatal("'", path, "': ", codec::to_string(r.status),
                      " in neighbor list of vertex ", v, " at byte ",
                      offsetOf(off));
            off += r.bytes;
            if (i > 0 && d > ~prev)
                fatal("'", path,
                      "': neighbor delta wraps the id space at vertex ",
                      v, " (byte ", offsetOf(off), ")");
            prev = i == 0 ? d : prev + d;
            if (prev >= n)
                fatal("'", path, "': neighbor ", prev, " of vertex ", v,
                      " is out of range [0, ", n, ")");
            edges.emplace_back(v, prev, 1.0f);
        }
        placed += deg;
    }
    if (placed != m)
        fatal("'", path, "': degree sum ", placed,
              " disagrees with the header's ", m, " edges");

    if (mode == WeightMode::U8) {
        std::vector<std::uint8_t> side(m);
        ifs.read(reinterpret_cast<char *>(side.data()),
                 static_cast<std::streamsize>(m));
        if (!ifs)
            fatal("'", path, "' weight sidecar is truncated");
        for (std::uint64_t e = 0; e < m; e++)
            edges[e].weight = static_cast<float>(side[e]);
    } else if (mode == WeightMode::Float32) {
        std::vector<float> side(m);
        ifs.read(reinterpret_cast<char *>(side.data()),
                 static_cast<std::streamsize>(m * sizeof(float)));
        if (!ifs)
            fatal("'", path, "' weight sidecar is truncated");
        for (std::uint64_t e = 0; e < m; e++)
            edges[e].weight = side[e];
    }
    return EdgeList(n, std::move(edges));
}

void
saveEdgeList(const EdgeList &el, const std::string &path)
{
    std::ofstream ofs(path);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    ofs << "# graphabcd edge list: " << el.numVertices() << " vertices, "
        << el.numEdges() << " edges\n";
    bool uniform = true;
    for (const Edge &e : el.edges()) {
        if (e.weight != 1.0f) {
            uniform = false;
            break;
        }
    }
    for (const Edge &e : el.edges()) {
        ofs << e.src << ' ' << e.dst;
        if (!uniform)
            ofs << ' ' << e.weight;
        ofs << '\n';
    }
}

} // namespace graphabcd
