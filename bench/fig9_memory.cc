/**
 * @file
 * Reproduces paper Fig. 9: (a) CPU-FPGA memory-traffic breakdown and
 * bandwidth utilization for PR, SSSP and CF; (b) bus utilization as the
 * PE count grows from 1 to 16 with 14 CPU threads.
 *
 * Expected shape: 80-99% bus utilization at full configuration, reads
 * dominating writes (|E| edge streams vs |V| vertex write-backs), all
 * accelerator accesses sequential; utilization saturates around 8 PEs.
 */

#include "bench_common.hh"

namespace graphabcd {
namespace {

using namespace bench;

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declareInt("block-size", 512, "block size");
    if (!flags.parse(argc, argv))
        return 0;

    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));

    // ------------------------------------------- (a) traffic breakdown
    Table traffic({"app", "graph", "seq reads", "seq writes",
                   "read share", "CPU random bytes", "bus util"});

    auto emit_traffic = [&](const char *app, const std::string &key,
                            const SimReport &sim) {
        const double total = static_cast<double>(sim.busReadBytes) +
                             static_cast<double>(sim.busWriteBytes);
        traffic.row()
            .add(app)
            .add(key)
            .add(formatBytes(static_cast<double>(sim.busReadBytes)))
            .add(formatBytes(static_cast<double>(sim.busWriteBytes)))
            .add(total > 0 ? sim.busReadBytes / total : 0.0, 3)
            .add(formatBytes(static_cast<double>(sim.cpuRandomBytes)))
            .add(sim.busUtilization, 3);
    };

    {
        Dataset lj = loadDataset("LJ", flags);
        BlockPartition g(lj.graph, block_size);
        EngineOptions opt;
        opt.blockSize = block_size;
        emit_traffic("PR", "LJ",
                     abcdPagerank(g, opt, HarpConfig{}).sim);
        emit_traffic("SSSP", "LJ", abcdSssp(g, opt, HarpConfig{}).sim);
    }
    {
        Dataset nf = loadDataset("NF", flags);
        EdgeList sym = nf.graph.symmetrized();
        BlockPartition g(sym, block_size);
        EngineOptions opt;
        opt.blockSize = block_size;
        emit_traffic("CF", "NF",
                     abcdCf(g, opt, HarpConfig{}, 0.0, 20.0).sim);
    }
    traffic.print(std::cout);

    // --------------------------------------- (b) bus util vs PE count
    Table scaling({"PEs", "bus utilization", "MTES"});
    Dataset lj = loadDataset("LJ", flags);
    BlockPartition g(lj.graph, block_size);
    for (std::uint32_t pes : {1u, 2u, 4u, 8u, 16u}) {
        EngineOptions opt;
        opt.blockSize = block_size;
        HarpConfig cfg;
        cfg.numPes = pes;
        RunResult r = abcdPagerank(g, opt, cfg);
        scaling.row()
            .add(static_cast<std::uint64_t>(pes))
            .add(r.sim.busUtilization, 3)
            .add(r.mtes, 4);
    }
    std::cout << '\n';
    emitTable(scaling, flags);
    std::fprintf(stderr,
                 "info: paper shape: 98/99/80%% bus utilization for "
                 "PR/SSSP/CF; saturation at ~8 PEs; reads dominate.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
