file(REMOVE_RECURSE
  "CMakeFiles/fig4_convergence.dir/fig4_convergence.cc.o"
  "CMakeFiles/fig4_convergence.dir/fig4_convergence.cc.o.d"
  "fig4_convergence"
  "fig4_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
