/**
 * @file
 * Job model of the serve layer: what a client submits, what the
 * service reports back, and the service-wide configuration/metrics
 * records.
 *
 * A job is one analytics request — (graph, algorithm, engine, options)
 * — submitted by a *tenant*, with a priority, an optional deadline,
 * and a lifecycle
 *     Queued -> Running -> Done | Cancelled | Failed
 *     Queued -> Shed                 (displaced under queue pressure)
 * observable at any time through JobStatus snapshots.  Submissions the
 * admission queue rejects never become jobs at all (backpressure), and
 * submissions whose deadline is already infeasible are shed at
 * admission (SubmitError::Shed) so the client fails fast.
 */

#ifndef GRAPHABCD_SERVE_JOB_HH
#define GRAPHABCD_SERVE_JOB_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/options.hh"
#include "graph/types.hh"
#include "serve/qos.hh"

namespace graphabcd {

class Executor;

/** Service-wide job identifier; 0 is never a valid id. */
using JobId = std::uint64_t;

/** Lifecycle of a job. */
enum class JobState
{
    Queued,      //!< admitted, waiting for a service worker
    Running,     //!< an engine is executing it
    Done,        //!< finished (from an engine run or the result cache)
    Cancelled,   //!< ended by cancel(), deadline, or service shutdown
    Failed,      //!< the request could not be executed
    Shed,        //!< dropped while Queued to shed fair-share pressure
};

/** @return human-readable name of a JobState. */
const char *to_string(JobState state);

/** @return whether a state is terminal. */
inline bool
isTerminal(JobState state)
{
    return state == JobState::Done || state == JobState::Cancelled ||
           state == JobState::Failed || state == JobState::Shed;
}

/** Why a submission was not admitted. */
enum class SubmitError
{
    None,          //!< admitted (or served directly from the cache)
    QueueFull,     //!< admission queue saturated — retry later
    UnknownGraph,  //!< no such name in the GraphRegistry
    BadRequest,    //!< unsupported algorithm/engine combination
    ShuttingDown,  //!< the service is stopping
    Shed,          //!< shed at admission: the estimated queue wait
                   //!< alone would blow the job's deadline
};

/** @return human-readable name of a SubmitError. */
const char *to_string(SubmitError error);

/** One analytics request. */
struct JobRequest
{
    std::string graph;            //!< GraphRegistry name
    std::string algo = "pr";      //!< pr | ppr | sssp | bfs | cc | lp
    std::string engine = "serial"; //!< serial | async | sim
    std::string tenant;           //!< QoS lane; empty = "default".
                                  //!< Never part of the result identity:
                                  //!< cache hits and warm starts are
                                  //!< shared across tenants.
    VertexId source = 0;          //!< sssp / bfs / ppr source vertex
    EngineOptions options;        //!< run knobs (blockSize is taken
                                  //!< from the registered partition)
    double priority = 0.0;        //!< larger runs first
    double timeoutSeconds = 0.0;  //!< from submission; 0 = no deadline
    bool allowCached = true;      //!< serve an identical cached result
    bool allowWarmStart = true;   //!< seed from a cached family fixpoint
};

/** Final output of a job: per-vertex values plus the run accounting. */
struct JobResult
{
    std::vector<double> values;
    EngineReport report;
};

/** Point-in-time view of a job, snapshotable while it runs. */
struct JobStatus
{
    JobId id = 0;
    JobState state = JobState::Queued;
    std::string tenant;
    double priority = 0.0;

    // Live work counters (from the engine's Progress sink while
    // Running; from the final report once terminal).
    double epochs = 0.0;
    std::uint64_t blockUpdates = 0;
    std::uint64_t edgeTraversals = 0;
    std::uint64_t scatterWrites = 0;

    double queuedSeconds = 0.0;   //!< time spent waiting for a worker
    double runSeconds = 0.0;      //!< time spent executing so far

    bool cacheHit = false;        //!< served from the ResultCache
    bool warmStarted = false;     //!< seeded from a cached fixpoint
    bool converged = false;       //!< meaningful once Done
    std::string error;            //!< set when Cancelled/Failed
};

/** Sizing knobs of a JobManager. */
struct ServeConfig
{
    std::uint32_t workers = 2;       //!< service worker threads
    std::size_t queueCapacity = 16;  //!< admission queue bound
    std::size_t cacheCapacity = 64;  //!< ResultCache entries
    double cacheTtlSeconds = 300.0;  //!< ResultCache entry lifetime

    /**
     * Terminal jobs retained for status()/result() queries; beyond
     * this the oldest terminal records are pruned so a long-lived
     * service's job table stays bounded.
     */
    std::size_t maxRetainedJobs = 1024;

    /**
     * Engine worker pool threads.  0 (the default) shares the
     * process-wide pool (Executor::shared(), sized to the hardware);
     * > 0 gives this service a private pool of that size.  Either
     * way the service's total thread count is `workers` service
     * threads + the pool — engines never spawn threads per job.
     */
    std::uint32_t poolThreads = 0;

    /**
     * Inject a specific pool (e.g. one shared with another embedded
     * service).  Non-null overrides poolThreads.
     */
    std::shared_ptr<Executor> executor;

    /** Fair-share parameters of tenants not listed in tenantQos. */
    TenantQos defaultQos;

    /** Per-tenant weight/quota overrides, keyed by tenant name. */
    std::map<std::string, TenantQos> tenantQos;

    /** Shed-at-admission jobs whose estimated queue wait alone would
     *  blow their deadline (see FairShareQueue). */
    bool shedOnDeadline = true;

    /** Seed for the deadline-shed service-time estimate; 0 disables
     *  shedding until the first measured run. */
    double initialServiceEstimateSeconds = 0.0;

    /**
     * Stall watchdog: a Running job whose progress counters stay flat
     * for this many seconds is flagged (structured warning, the
     * serve.jobs.stalled gauge, a flight-recorder dump when armed).
     * 0 (the default) disables the watchdog.  No-op under
     * GRAPHABCD_OBS=OFF.
     */
    double stallWindowSeconds = 0.0;

    /** Watchdog poll period (seconds). */
    double stallCheckSeconds = 0.25;

    /**
     * Escalate a flagged stall to cancellation: the watchdog requests a
     * cooperative stop and the job terminalises Cancelled with a
     * "stalled: ..." diagnosis instead of wedging a worker forever.
     */
    bool cancelOnStall = false;
};

/** Monotonic service counters plus instantaneous gauges. */
struct ServeStats
{
    std::uint64_t submitted = 0;   //!< submit() calls
    std::uint64_t rejected = 0;    //!< not admitted (any SubmitError)
    std::uint64_t completed = 0;   //!< reached Done
    std::uint64_t cancelled = 0;   //!< reached Cancelled
    std::uint64_t failed = 0;      //!< reached Failed
    std::uint64_t shed = 0;        //!< queued jobs displaced to Shed
    std::uint64_t shedAdmission = 0; //!< submissions shed at admission
                                     //!< (also counted in rejected)
    std::uint64_t cacheHits = 0;   //!< jobs served from the ResultCache
    std::uint64_t warmStarts = 0;  //!< jobs seeded from a cached fixpoint
    std::size_t queueDepth = 0;    //!< gauge: jobs waiting
    std::size_t running = 0;       //!< gauge: jobs executing now
};

/** Per-tenant slice of the service counters (see JobManager::tenantStats). */
struct TenantServeStats
{
    std::uint64_t submitted = 0;   //!< submit() calls naming this tenant
    std::uint64_t rejected = 0;    //!< not admitted (any SubmitError)
    std::uint64_t completed = 0;   //!< reached Done
    std::uint64_t cancelled = 0;   //!< reached Cancelled
    std::uint64_t failed = 0;      //!< reached Failed
    std::uint64_t shed = 0;        //!< queued jobs displaced to Shed
    std::uint64_t shedAdmission = 0; //!< submissions shed at admission
    std::uint64_t cacheHits = 0;   //!< served from the ResultCache
    std::uint64_t warmStarts = 0;  //!< seeded from a cached fixpoint
    std::size_t queued = 0;        //!< gauge: jobs waiting
    std::size_t running = 0;       //!< gauge: jobs executing now
};

} // namespace graphabcd

#endif // GRAPHABCD_SERVE_JOB_HH
