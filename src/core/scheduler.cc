#include "core/scheduler.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/logging.hh"

namespace graphabcd {

// ---------------------------------------------------------------- Cyclic

CyclicScheduler::CyclicScheduler(BlockId num_blocks)
    : active(num_blocks, 0)
{
}

void
CyclicScheduler::activate(BlockId b, double)
{
    GRAPHABCD_ASSERT(b < active.size(), "block id out of range");
    stats.activations++;
    if (!active[b]) {
        active[b] = 1;
        nActive++;
    }
}

std::optional<BlockId>
CyclicScheduler::next()
{
    if (nActive == 0)
        return std::nullopt;
    const auto n = static_cast<BlockId>(active.size());
    for (BlockId step = 0; step < n; step++) {
        BlockId b = cursor;
        cursor = cursor + 1 == n ? 0 : cursor + 1;
        if (active[b]) {
            active[b] = 0;
            nActive--;
            return b;
        }
    }
    panic("active count out of sync with the bitvector");
}

// -------------------------------------------------------------- Priority

PriorityScheduler::PriorityScheduler(BlockId num_blocks)
    : prio(num_blocks, 0.0), pushedPrio(num_blocks, 0.0),
      active(num_blocks, 0)
{
}

void
PriorityScheduler::activate(BlockId b, double priority_delta)
{
    GRAPHABCD_ASSERT(b < active.size(), "block id out of range");
    stats.activations++;
    // A gradient estimate cannot shrink from new scatter input: clamp
    // non-positive deltas.  Without the clamp a negative delta drives
    // prio[b] below pushedPrio[b] (or below zero), which defeats the
    // 25% growth test below and refreshes the heap on every call —
    // exactly the churn the throttle exists to prevent.
    if (priority_delta > 0.0)
        prio[b] += priority_delta;
    const bool was_active = active[b];
    if (!was_active) {
        active[b] = 1;
        nActive++;
    }
    // Lazy heap with churn throttling: only refresh a block's entry
    // when its priority grew by more than 25% since the last push —
    // scatter storms otherwise push one entry per written edge.  The
    // live entry of a block is the one whose key equals pushedPrio.
    if (!was_active || prio[b] > pushedPrio[b] * 1.25) {
        if (was_active)
            stats.refreshes++;
        pushedPrio[b] = prio[b];
        heap.push_back(HeapEntry{prio[b], b});
        std::push_heap(heap.begin(), heap.end());
        stats.heapPushes++;
    }
}

std::optional<BlockId>
PriorityScheduler::next()
{
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end());
        HeapEntry top = heap.back();
        heap.pop_back();
        if (!active[top.block] ||
            top.priority != pushedPrio[top.block]) {
            stats.staleDiscards++;
            continue;   // stale
        }
        active[top.block] = 0;
        prio[top.block] = 0.0;   // processed: gradient estimate consumed
        pushedPrio[top.block] = 0.0;
        nActive--;
        return top.block;
    }
    GRAPHABCD_ASSERT(nActive == 0, "active blocks missing from the heap");
    return std::nullopt;
}

// ---------------------------------------------------------------- Random

RandomScheduler::RandomScheduler(BlockId num_blocks, std::uint64_t seed)
    : slot(num_blocks, npos), rng(seed)
{
}

void
RandomScheduler::activate(BlockId b, double)
{
    GRAPHABCD_ASSERT(b < slot.size(), "block id out of range");
    stats.activations++;
    if (slot[b] != npos)
        return;
    slot[b] = static_cast<std::uint32_t>(pool.size());
    pool.push_back(b);
}

std::optional<BlockId>
RandomScheduler::next()
{
    if (pool.empty())
        return std::nullopt;
    auto idx = static_cast<std::uint32_t>(rng.nextBounded(pool.size()));
    BlockId b = pool[idx];
    pool[idx] = pool.back();
    slot[pool[idx]] = idx;
    pool.pop_back();
    slot[b] = npos;
    return b;
}

// ------------------------------------------------------------------ OBIM

ObimScheduler::ObimScheduler(BlockId num_blocks,
                             std::uint32_t num_workers)
    : slots(std::min<std::uint32_t>(
          std::max<std::uint32_t>(num_workers, 1u) * 2, 64u)),
      prio(num_blocks), queued(num_blocks), queuedLevel(num_blocks),
      popLevelHist(obs::histogram("scheduler.obim.pop_level",
                                  obs::obimLevelBuckets()))
{
    for (BlockId b = 0; b < num_blocks; b++) {
        prio[b].store(0.0, std::memory_order_relaxed);
        queued[b].store(0, std::memory_order_relaxed);
        queuedLevel[b].store(kLevels - 1, std::memory_order_relaxed);
    }
}

int
ObimScheduler::levelOf(double priority)
{
    if (!(priority > 0.0))
        return kLevels - 1;   // non-positive / NaN: lowest level
    int exp = 0;
    std::frexp(priority, &exp);   // priority in [2^(exp-1), 2^exp)
    // kTopExp puts the initial-activation seed (1e9 ~ 2^30) at level 1
    // and leaves level 0 for anything >= 2^31; the 64 levels then span
    // priorities down to ~2^-32, far below any useful tolerance.
    constexpr int kTopExp = 31;
    const int level = kTopExp - exp;
    return std::clamp(level, 0, kLevels - 1);
}

void
ObimScheduler::activate(BlockId b, double priority_delta)
{
    GRAPHABCD_ASSERT(b < queued.size(), "block id out of range");
    cActivations.fetch_add(1, std::memory_order_relaxed);
    // Accumulate the gradient estimate (non-positive deltas are
    // ignored, as in PriorityScheduler) and bucket the new total.
    double total;
    if (priority_delta > 0.0) {
        double cur = prio[b].load(std::memory_order_relaxed);
        while (!prio[b].compare_exchange_weak(cur, cur + priority_delta,
                                              std::memory_order_relaxed))
            ;
        total = cur + priority_delta;
    } else {
        total = prio[b].load(std::memory_order_relaxed);
    }
    const int level = levelOf(total);
    for (;;) {
        if (queued[b].load(std::memory_order_acquire) != 0) {
            int cur_level =
                queuedLevel[b].load(std::memory_order_relaxed);
            if (level >= cur_level)
                return;   // live entry already at a same-or-better level
            // Upgrade: retag the live entry and push a duplicate at the
            // better level; the old entry goes stale and next() drops
            // it via the queued-flag exchange (lazy deletion).
            if (queuedLevel[b].compare_exchange_weak(
                    cur_level, level, std::memory_order_relaxed)) {
                cRefreshes.fetch_add(1, std::memory_order_relaxed);
                cPushes.fetch_add(1, std::memory_order_relaxed);
                pushToSlot(b, level);
                return;
            }
        } else {
            if (queued[b].exchange(1, std::memory_order_acq_rel) == 0) {
                queuedLevel[b].store(level, std::memory_order_relaxed);
                nQueued.fetch_add(1, std::memory_order_relaxed);
                cPushes.fetch_add(1, std::memory_order_relaxed);
                pushToSlot(b, level);
                return;
            }
            // Lost the race to another activation: re-check its level.
        }
    }
}

std::uint32_t
ObimScheduler::slotIndex() const
{
    static std::atomic<std::uint32_t> nextThreadTag{0};
    thread_local const std::uint32_t threadTag =
        nextThreadTag.fetch_add(1, std::memory_order_relaxed);
    return static_cast<std::uint32_t>(threadTag % slots.size());
}

void
ObimScheduler::pushToSlot(BlockId b, int level)
{
    const std::uint32_t s = slotIndex();
    Slot &slot = slots[s];
    Chunk out;
    int out_level = -1;
    {
        std::lock_guard<std::mutex> lock(slot.m);
        if (slot.open.count > 0 && slot.level != level) {
            // Level changed: publish the open chunk as-is.
            out = slot.open;
            out_level = slot.level;
            slot.open = Chunk{};
        }
        slot.level = level;
        slot.open.items[slot.open.count++] = b;
        if (slot.open.count == kChunkSize) {
            // (Mutually exclusive with the level-change flush above:
            // that path leaves count == 1.)
            out = slot.open;
            out_level = level;
            slot.open = Chunk{};
            slot.level = -1;
        }
        const std::uint64_t bit = std::uint64_t{1} << s;
        if (slot.open.count > 0)
            slotMask.fetch_or(bit, std::memory_order_release);
        else
            slotMask.fetch_and(~bit, std::memory_order_release);
    }
    if (out_level >= 0)
        publishChunk(std::move(out), out_level);
}

void
ObimScheduler::publishChunk(Chunk &&chunk, int level)
{
    Level &lvl = levels[static_cast<std::size_t>(level)];
    std::lock_guard<std::mutex> lock(lvl.m);
    lvl.chunks.push_back(std::move(chunk));
    // Set the occupancy bit under the level lock, so bit==0 implies
    // the level really is empty at every lock boundary.
    occupancy.fetch_or(std::uint64_t{1} << level,
                       std::memory_order_release);
}

std::optional<BlockId>
ObimScheduler::popLevel(int level)
{
    Level &lvl = levels[static_cast<std::size_t>(level)];
    std::lock_guard<std::mutex> lock(lvl.m);
    while (!lvl.chunks.empty()) {
        Chunk &front = lvl.chunks.front();
        if (front.head < front.count) {
            BlockId b = front.items[front.head++];
            if (front.head == front.count)
                lvl.chunks.pop_front();
            if (lvl.chunks.empty())
                occupancy.fetch_and(~(std::uint64_t{1} << level),
                                    std::memory_order_release);
            return b;
        }
        lvl.chunks.pop_front();
    }
    occupancy.fetch_and(~(std::uint64_t{1} << level),
                        std::memory_order_release);
    return std::nullopt;
}

void
ObimScheduler::drainSlots()
{
    std::uint64_t mask = slotMask.load(std::memory_order_acquire);
    while (mask) {
        const int s = std::countr_zero(mask);
        mask &= mask - 1;
        Slot &slot = slots[static_cast<std::size_t>(s)];
        Chunk out;
        int out_level = -1;
        {
            std::lock_guard<std::mutex> lock(slot.m);
            if (slot.open.count > 0) {
                out = slot.open;
                out_level = slot.level;
                slot.open = Chunk{};
                slot.level = -1;
            }
            slotMask.fetch_and(~(std::uint64_t{1} << s),
                               std::memory_order_release);
        }
        if (out_level >= 0)
            publishChunk(std::move(out), out_level);
    }
}

void
ObimScheduler::drainOwnSlot()
{
    const std::uint32_t s = slotIndex();
    const std::uint64_t bit = std::uint64_t{1} << s;
    if (!(slotMask.load(std::memory_order_acquire) & bit))
        return;
    Slot &slot = slots[s];
    Chunk out;
    int out_level = -1;
    {
        std::lock_guard<std::mutex> lock(slot.m);
        if (slot.open.count > 0) {
            out = slot.open;
            out_level = slot.level;
            slot.open = Chunk{};
            slot.level = -1;
        }
        slotMask.fetch_and(~bit, std::memory_order_release);
    }
    if (out_level >= 0)
        publishChunk(std::move(out), out_level);
}

std::optional<BlockId>
ObimScheduler::next()
{
    // Publish this thread's own open chunk before choosing a level:
    // without it a consumer can pop a weaker published level while its
    // own *stronger* activations sit invisible in the open chunk —
    // out-of-order processing that fragments deltas prematurely (each
    // premature apply scatters mass that would otherwise have
    // coalesced).  One mostly-uncontended lock per pop; cross-worker
    // open chunks are still only drained when occupancy runs dry.
    drainOwnSlot();
    bool drained = false;
    for (;;) {
        const std::uint64_t occ =
            occupancy.load(std::memory_order_acquire);
        if (occ == 0) {
            if (drained)
                return std::nullopt;
            // Published levels are dry; flush the open per-worker
            // chunks and rescan once before declaring emptiness.
            drainSlots();
            drained = true;
            continue;
        }
        const int level = std::countr_zero(occ);
        std::optional<BlockId> b = popLevel(level);
        if (!b)
            continue;   // raced to empty; occupancy was cleared
        if (queued[*b].exchange(0, std::memory_order_acq_rel) != 0) {
            nQueued.fetch_sub(1, std::memory_order_relaxed);
            // Processed: the gradient estimate is consumed.
            prio[*b].store(0.0, std::memory_order_relaxed);
            popLevelHist.record(static_cast<double>(level));
            return *b;
        }
        cStaleDiscards.fetch_add(1, std::memory_order_relaxed);
        drained = false;   // discards may have emptied a level
    }
}

std::size_t
ObimScheduler::activeCount() const
{
    const std::int64_t n = nQueued.load(std::memory_order_acquire);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
}

double
ObimScheduler::priority(BlockId b) const
{
    return prio[b].load(std::memory_order_relaxed);
}

const SchedulerCounters &
ObimScheduler::counters() const
{
    snap.activations = cActivations.load(std::memory_order_relaxed);
    snap.heapPushes = cPushes.load(std::memory_order_relaxed);
    snap.staleDiscards = cStaleDiscards.load(std::memory_order_relaxed);
    snap.refreshes = cRefreshes.load(std::memory_order_relaxed);
    return snap;
}

// --------------------------------------------------------------- factory

std::unique_ptr<BlockScheduler>
makeScheduler(Schedule schedule, BlockId num_blocks, std::uint64_t seed,
              std::uint32_t num_workers)
{
    switch (schedule) {
      case Schedule::Cyclic:
        return std::make_unique<CyclicScheduler>(num_blocks);
      case Schedule::Priority:
        return std::make_unique<PriorityScheduler>(num_blocks);
      case Schedule::Random:
        return std::make_unique<RandomScheduler>(num_blocks, seed);
      case Schedule::Obim:
        return std::make_unique<ObimScheduler>(num_blocks, num_workers);
    }
    panic("unknown schedule");
}

} // namespace graphabcd
