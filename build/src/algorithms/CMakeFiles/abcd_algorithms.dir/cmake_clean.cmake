file(REMOVE_RECURSE
  "CMakeFiles/abcd_algorithms.dir/extras.cc.o"
  "CMakeFiles/abcd_algorithms.dir/extras.cc.o.d"
  "CMakeFiles/abcd_algorithms.dir/pagerank.cc.o"
  "CMakeFiles/abcd_algorithms.dir/pagerank.cc.o.d"
  "CMakeFiles/abcd_algorithms.dir/reference.cc.o"
  "CMakeFiles/abcd_algorithms.dir/reference.cc.o.d"
  "libabcd_algorithms.a"
  "libabcd_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcd_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
