/**
 * @file
 * Recommendation scenario: train Collaborative Filtering (matrix
 * factorization) on a synthetic user-movie rating graph with the serial
 * BCD engine, watch the RMSE descend per epoch, and produce top-N movie
 * recommendations for one user — the wide-value workload that stresses
 * the edge-carried pull-push layout.
 *
 * Usage: ./build/examples/recommender [--users N] [--movies N] ...
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "algorithms/cf.hh"
#include "core/engine.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "support/flags.hh"

using namespace graphabcd;

namespace {

constexpr std::uint32_t H = 16;

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declareInt("users", 2000, "number of users");
    flags.declareInt("movies", 500, "number of movies");
    flags.declareInt("ratings", 60000, "number of ratings");
    flags.declareInt("epochs", 25, "training epochs");
    flags.declareInt("seed", 11, "dataset seed");
    if (!flags.parse(argc, argv))
        return 0;

    const auto users = static_cast<VertexId>(flags.getInt("users"));
    const auto movies = static_cast<VertexId>(flags.getInt("movies"));
    Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
    BipartiteGraph data = generateRatings(
        users, movies,
        static_cast<EdgeId>(flags.getInt("ratings")), rng);
    std::printf("ratings: %u users x %u movies, %llu ratings\n", users,
                movies,
                static_cast<unsigned long long>(data.graph.numEdges()));

    // Symmetrize so both user and movie factors receive updates.
    BlockPartition g(data.graph.symmetrized(), /*block_size=*/128);

    EngineOptions opt;
    opt.blockSize = 128;
    opt.schedule = Schedule::Priority;
    opt.tolerance = 1e-6;
    opt.maxEpochs = static_cast<double>(flags.getInt("epochs"));
    opt.traceInterval = 5.0;

    CfProgram<H> program(/*learning_rate=*/0.2, /*regularization=*/0.02);
    SerialEngine<CfProgram<H>> engine(g, program, opt);
    std::vector<FeatureVec<H>> factors;
    engine.run(factors,
               [&g](double epochs, const std::vector<FeatureVec<H>> &x) {
                   std::printf("  epoch %5.1f  RMSE %.4f\n", epochs,
                               cfRmse<H>(g, x));
               });

    // Recommend: highest predicted rating among movies user 0 has not
    // rated yet.
    const VertexId user = data.userVertex(0);
    std::vector<char> seen(movies, 0);
    for (EdgeId pos : g.scatterPositions(user))
        seen[g.edgeDst(pos) - users] = 1;

    std::vector<std::pair<double, VertexId>> scored;
    for (VertexId m = 0; m < movies; m++) {
        if (seen[m])
            continue;
        const auto &xu = factors[user];
        const auto &xm = factors[data.itemVertex(m)];
        double pred = 0.0;
        for (std::uint32_t k = 0; k < H; k++)
            pred += static_cast<double>(xu[k]) * xm[k];
        scored.emplace_back(pred, m);
    }
    std::partial_sort(scored.begin(),
                      scored.begin() + std::min<std::size_t>(
                                           5, scored.size()),
                      scored.end(), std::greater<>());
    std::printf("top recommendations for user 0:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, scored.size());
         i++) {
        std::printf("  movie %4u  predicted rating %.2f\n",
                    scored[i].second, scored[i].first);
    }
    return 0;
}
