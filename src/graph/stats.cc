#include "graph/stats.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

namespace graphabcd {

GraphStats
computeGraphStats(const EdgeList &el)
{
    GraphStats stats;
    stats.numVertices = el.numVertices();
    stats.numEdges = el.numEdges();
    if (stats.numVertices == 0)
        return stats;
    stats.avgDegree = static_cast<double>(stats.numEdges) /
                      stats.numVertices;

    std::vector<std::uint32_t> outd = el.outDegrees();
    std::vector<std::uint32_t> ind = el.inDegrees();

    EdgeId self_loops = 0;
    for (const Edge &e : el.edges())
        self_loops += e.src == e.dst;
    stats.selfLoopFraction = stats.numEdges
        ? static_cast<double>(self_loops) / stats.numEdges
        : 0.0;

    for (VertexId v = 0; v < stats.numVertices; v++) {
        stats.maxOutDegree = std::max(stats.maxOutDegree, outd[v]);
        stats.maxInDegree = std::max(stats.maxInDegree, ind[v]);
        if (outd[v] == 0) {
            stats.danglingVertices++;
            if (ind[v] == 0)
                stats.isolatedVertices++;
        }
    }

    // Gini via the sorted-degree formula:
    // G = (2 * sum_i i*d_i) / (n * sum d) - (n + 1) / n, d ascending.
    std::sort(ind.begin(), ind.end());
    const double total = std::accumulate(ind.begin(), ind.end(), 0.0);
    if (total > 0.0) {
        double weighted = 0.0;
        for (VertexId i = 0; i < stats.numVertices; i++)
            weighted += static_cast<double>(i + 1) * ind[i];
        const double n = stats.numVertices;
        stats.inDegreeGini = 2.0 * weighted / (n * total) - (n + 1) / n;
    }
    return stats;
}

std::string
GraphStats::toString() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%u vertices, %llu edges (avg degree %.2f); max degree "
        "out=%u in=%u; %u dangling, %u isolated; %.2f%% self loops; "
        "in-degree Gini %.3f",
        numVertices, static_cast<unsigned long long>(numEdges),
        avgDegree, maxOutDegree, maxInDegree, danglingVertices,
        isolatedVertices, selfLoopFraction * 100.0, inDegreeGini);
    return buf;
}

} // namespace graphabcd
