/**
 * @file
 * Block selection (scheduling) strategies — paper Sec. III-B / IV-B.
 *
 * A scheduler owns the active list: blocks become active when SCATTER
 * writes changed values into their edge slice, and inactive when picked
 * for processing.  The algorithm terminates when no block is active
 * (the Termination Unit's check in Fig. 2, step 1).
 *
 * PriorityScheduler implements the Gauss-Southwell rule with the paper's
 * approximation: a block's priority is the L1 norm of the value changes
 * recently scattered into it (an estimate of its gradient magnitude),
 * cheap to maintain and reset when the block is processed.
 */

#ifndef GRAPHABCD_CORE_SCHEDULER_HH
#define GRAPHABCD_CORE_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/options.hh"
#include "graph/types.hh"
#include "support/random.hh"

namespace graphabcd {

/**
 * Cumulative work counters a scheduler maintains over its lifetime.
 * Plain (non-atomic) fields: every scheduler call already happens under
 * the engine's control lock.  heapPushes / staleDiscards / refreshes
 * measure heap churn and are only meaningful for PriorityScheduler.
 */
struct SchedulerCounters
{
    std::uint64_t activations = 0;   //!< activate() calls
    std::uint64_t heapPushes = 0;    //!< entries pushed into the heap
    std::uint64_t staleDiscards = 0; //!< lazy-deleted entries seen by next()
    std::uint64_t refreshes = 0;     //!< re-pushes of already-active blocks
};

/**
 * Abstract block scheduler.  All implementations are deterministic given
 * the same activation sequence (Random uses a seeded generator).
 */
class BlockScheduler
{
  public:
    virtual ~BlockScheduler() = default;

    /**
     * Record that block `b` received updated inputs.
     * @param priority_delta estimated gradient-magnitude increase (L1 of
     *        the incoming value changes); ignored by order-based rules.
     */
    virtual void activate(BlockId b, double priority_delta) = 0;

    /**
     * Pick the next block to process and mark it inactive.
     * @return std::nullopt when no block is active (quiescence).
     */
    virtual std::optional<BlockId> next() = 0;

    /** @return number of active blocks. */
    virtual std::size_t activeCount() const = 0;

    /** @return whether no block is active. */
    bool empty() const { return activeCount() == 0; }

    /** @return current priority estimate of block b (0 if unsupported). */
    virtual double priority(BlockId) const { return 0.0; }

    /** @return cumulative work counters (heap fields 0 if heapless). */
    const SchedulerCounters &counters() const { return stats; }

    /** @return the strategy this scheduler implements. */
    virtual Schedule kind() const = 0;

  protected:
    SchedulerCounters stats;
};

/**
 * Cyclic selection: repeatedly sweeps the block id space in fixed order,
 * skipping inactive blocks.  Predictable access pattern (prefetchable).
 */
class CyclicScheduler : public BlockScheduler
{
  public:
    explicit CyclicScheduler(BlockId num_blocks);

    void activate(BlockId b, double priority_delta) override;
    std::optional<BlockId> next() override;
    std::size_t activeCount() const override { return nActive; }
    Schedule kind() const override { return Schedule::Cyclic; }

  private:
    std::vector<char> active;
    BlockId cursor = 0;
    std::size_t nActive = 0;
};

/**
 * Gauss-Southwell priority selection: argmax of the maintained gradient
 * estimates.  Max-heap with lazy deletion; stale heap entries are skipped
 * on pop, so activate() is O(log B) and next() is amortised O(log B).
 */
class PriorityScheduler : public BlockScheduler
{
  public:
    explicit PriorityScheduler(BlockId num_blocks);

    void activate(BlockId b, double priority_delta) override;
    std::optional<BlockId> next() override;
    std::size_t activeCount() const override { return nActive; }
    double priority(BlockId b) const override { return prio[b]; }
    Schedule kind() const override { return Schedule::Priority; }

  private:
    struct HeapEntry
    {
        double priority;
        BlockId block;

        bool
        operator<(const HeapEntry &other) const
        {
            // std::priority_queue is a max-heap on operator<.
            return priority < other.priority;
        }
    };

    std::vector<double> prio;
    std::vector<double> pushedPrio;   //!< key of the live heap entry
    std::vector<char> active;
    std::vector<HeapEntry> heap;   //!< std::*_heap managed
    std::size_t nActive = 0;
};

/**
 * Uniform random selection among active blocks (ablation baseline; the
 * BCD literature often analyses random selection).
 */
class RandomScheduler : public BlockScheduler
{
  public:
    RandomScheduler(BlockId num_blocks, std::uint64_t seed);

    void activate(BlockId b, double priority_delta) override;
    std::optional<BlockId> next() override;
    std::size_t activeCount() const override { return pool.size(); }
    Schedule kind() const override { return Schedule::Random; }

  private:
    std::vector<BlockId> pool;        //!< active blocks, unordered
    std::vector<std::uint32_t> slot;  //!< block -> pool index or npos
    Rng rng;

    static constexpr std::uint32_t npos = ~0u;
};

/** Factory keyed by the EngineOptions schedule. */
std::unique_ptr<BlockScheduler> makeScheduler(Schedule schedule,
                                              BlockId num_blocks,
                                              std::uint64_t seed);

/**
 * Initial activation priority used when every block is seeded at the
 * start of a run.  It is *equal* across blocks and far larger than any
 * gradient estimate, so the first sweep visits every block once before
 * Gauss-Southwell ordering takes over — seeding by block density
 * instead measurably hurts convergence on skewed graphs.
 */
inline double
initialActivationPriority()
{
    return 1e9;
}

} // namespace graphabcd

#endif // GRAPHABCD_CORE_SCHEDULER_HH
