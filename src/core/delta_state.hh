/**
 * @file
 * Operation-based (delta) update state — the counter-example of paper
 * Sec. IV-A3.
 *
 * GraphABCD proper is *state-based*: SCATTER writes whole values, so a
 * delayed or replayed propagation is harmless and no synchronization is
 * needed.  The *operation-based* alternative (e.g. PageRank Delta)
 * ships increments instead: edges carry pending deltas that GATHER must
 * consume (read-and-zero) and SCATTER must accumulate (read-add-write).
 * Both are read-modify-write cycles, so overlapping block processing
 * can overwrite or double-count updates — which is exactly why the
 * paper rejects operation-based updates for its barrierless design.
 *
 * This header implements the operation-based machinery faithfully (it
 * is correct under serial or barriered execution) so that tests and the
 * ablation bench can demonstrate the lost-update anomaly under
 * asynchronous interleavings.  Sub-tolerance residuals are carried in a
 * per-vertex side slot rather than dropped: an early version absorbed a
 * gathered sub-tolerance sum into the value without ever re-scattering
 * its downstream share, which leaked PageRank mass even under serial
 * execution (the regression test pins sum(values) ~= 1 at fixpoint).
 * The safe-by-construction variant of this machinery is
 * src/core/accum_engine.hh.
 */

#ifndef GRAPHABCD_CORE_DELTA_STATE_HH
#define GRAPHABCD_CORE_DELTA_STATE_HH

#include <concepts>
#include <vector>

#include "core/options.hh"
#include "core/scheduler.hh"
#include "graph/partition.hh"
#include "support/logging.hh"

namespace graphabcd {

/**
 * Contract of an operation-based vertex program: values are scalars
 * accumulated additively on the edges.
 */
template <typename P>
concept DeltaProgram = requires(const P p, typename P::Value v,
                                VertexId vid, const BlockPartition &g) {
    typename P::Value;
    { p.init(vid, g) } -> std::convertible_to<typename P::Value>;
    { p.initialPending(vid, g) }
        -> std::convertible_to<typename P::Value>;
    { p.scatterDelta(vid, v, v, g) }
        -> std::convertible_to<typename P::Value>;
    { p.delta(v, v) } -> std::convertible_to<double>;
};

/**
 * PageRank Delta: the operation-based variant of PageRank (paper
 * Sec. IV-A3 names it explicitly).  Edges carry pending rank
 * increments; GATHER sums and consumes them; SCATTER adds
 * alpha * (x_new - x_old) / outdeg to each out-edge.
 */
struct PageRankDeltaProgram
{
    using Value = double;

    double alpha = 0.85;

    explicit PageRankDeltaProgram(double damping = 0.85)
        : alpha(damping)
    {}

    Value
    init(VertexId, const BlockPartition &g) const
    {
        return (1.0 - alpha) / std::max<double>(g.numVertices(), 1.0);
    }

    /** Pending increment seeded on out-edges at start. */
    Value
    initialPending(VertexId v, const BlockPartition &g) const
    {
        const std::uint32_t d = g.outDegree(v);
        return d ? alpha * init(v, g) / d : 0.0;
    }

    /** Increment shipped when a vertex moves old -> next. */
    Value
    scatterDelta(VertexId v, Value old_value, Value next,
                 const BlockPartition &g) const
    {
        const std::uint32_t d = g.outDegree(v);
        return d ? alpha * (next - old_value) / d : 0.0;
    }

    double delta(Value a, Value b) const { return std::abs(a - b); }
};

/** GATHER result of one block under operation-based semantics. */
template <typename Value>
struct DeltaBlockUpdate
{
    BlockId block = invalidBlock;
    std::vector<Value> newValues;
    std::vector<double> deltas;
};

/**
 * Operation-based BCD state: `pending` is parallel to the partition's
 * CSC edge arrays and holds un-consumed increments.
 */
template <DeltaProgram Program>
class DeltaState
{
  public:
    using Value = typename Program::Value;

    DeltaState(const BlockPartition &g, const Program &p)
        : graph(g)
    {
        values_.resize(g.numVertices());
        pending_.assign(g.numEdges(), Value{});
        residual_.assign(g.numVertices(), Value{});
        for (VertexId v = 0; v < g.numVertices(); v++) {
            values_[v] = p.init(v, g);
            Value seed = p.initialPending(v, g);
            for (EdgeId pos : g.scatterList(v, scatterScratch_))
                pending_[pos] = seed;
        }
    }

    const std::vector<Value> &values() const { return values_; }
    const std::vector<Value> &pending() const { return pending_; }
    /** Carried sub-tolerance sums, one per vertex (conservation). */
    const std::vector<Value> &residuals() const { return residual_; }

    /**
     * GATHER without consuming: reads the pending increments of block
     * b.  Kept separate from commit so tests can build adversarial
     * interleavings.
     */
    DeltaBlockUpdate<Value>
    gatherBlock(const Program &p, BlockId b) const
    {
        DeltaBlockUpdate<Value> out;
        out.block = b;
        for (VertexId v = graph.blockBegin(b); v < graph.blockEnd(b);
             v++) {
            // Seed from the carried residual: sub-tolerance sums from
            // earlier commits stay in play instead of being dropped.
            Value acc = residual_[v];
            for (EdgeId e = graph.inEdgeBegin(v);
                 e < graph.inEdgeEnd(v); e++)
                acc += pending_[e];
            Value next = values_[v] + acc;
            out.newValues.push_back(next);
            out.deltas.push_back(p.delta(values_[v], next));
        }
        return out;
    }

    /**
     * Commit: CONSUME the block's in-edge slice (zero it — this is the
     * read-modify-write that loses concurrent writes), store the new
     * values, and ACCUMULATE the out-going increments.
     * @param on_write (dst_block, |delta|) activation hook.
     * @return out-edge positions written.
     */
    template <typename OnWrite>
    EdgeId
    commitBlock(const Program &p, const DeltaBlockUpdate<Value> &update,
                double tol, OnWrite &&on_write)
    {
        // Consume: anything scattered into this slice after the gather
        // snapshot is destroyed here — the lost-update anomaly.
        for (EdgeId e = graph.edgeBegin(update.block);
             e < graph.edgeEnd(update.block); e++)
            pending_[e] = Value{};

        EdgeId writes = 0;
        const VertexId begin = graph.blockBegin(update.block);
        BlockId hint = update.block;
        for (std::size_t i = 0; i < update.newValues.size(); i++) {
            const VertexId v = begin + static_cast<VertexId>(i);
            if (update.deltas[i] <= tol) {
                // Sub-tolerance: do NOT absorb the sum into the value
                // (its downstream alpha-share would never scatter and
                // the mass would leak).  Park it in the residual slot;
                // the next gather of this block re-reads it.
                residual_[v] = update.newValues[i] - values_[v];
                continue;
            }
            Value inc = p.scatterDelta(v, values_[v],
                                       update.newValues[i], graph);
            values_[v] = update.newValues[i];
            residual_[v] = Value{};   // consumed by this gather
            for (EdgeId pos : graph.scatterList(v, scatterScratch_)) {
                pending_[pos] += inc;   // accumulate, not overwrite
                on_write(graph.dstBlockOfEdge(pos, hint),
                         update.deltas[i]);
                writes++;
            }
        }
        return writes;
    }

    EdgeId
    commitBlock(const Program &p, const DeltaBlockUpdate<Value> &update,
                double tol)
    {
        return commitBlock(p, update, tol, [](BlockId, double) {});
    }

  private:
    const BlockPartition &graph;
    std::vector<Value> values_;
    std::vector<Value> pending_;
    std::vector<Value> residual_;
    // One thread drives an instance (serial/barriered by design — see
    // the file comment), so the decode scratch is a member.
    ScatterScratch scatterScratch_;
};

/**
 * Serial operation-based engine (correct: gather and commit are
 * adjacent, i.e. implicitly barriered per block).
 * @return epochs to quiescence.
 */
template <DeltaProgram Program>
double
runDeltaSerial(const BlockPartition &g, const Program &p,
               std::vector<typename Program::Value> &out, double tol,
               double max_epochs = 1000.0,
               Schedule schedule = Schedule::Cyclic)
{
    DeltaState<Program> state(g, p);
    auto sched = makeScheduler(schedule, g.numBlocks(), 1);
    for (BlockId b = 0; b < g.numBlocks(); b++)
        sched->activate(b, 1.0);

    std::uint64_t updates = 0;
    const double n = std::max<double>(g.numVertices(), 1.0);
    while (auto b = sched->next()) {
        auto update = state.gatherBlock(p, *b);
        state.commitBlock(p, update, tol,
                          [&sched](BlockId dst, double delta) {
                              sched->activate(dst, delta);
                          });
        updates += g.blockVertexCount(*b);
        if (static_cast<double>(updates) / n >= max_epochs)
            break;
    }
    out = state.values();
    return static_cast<double>(updates) / n;
}

} // namespace graphabcd

#endif // GRAPHABCD_CORE_DELTA_STATE_HH
