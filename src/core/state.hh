/**
 * @file
 * Mutable BCD state: vertex values plus edge-carried value copies.
 *
 * There is exactly one copy of the topology (in BlockPartition); this
 * class owns the value arrays that change during a run.  `edgeValues` is
 * parallel to the partition's CSC edge arrays: position e holds the
 * edge-carried copy of edgeSrc(e)'s value, written by SCATTER.
 */

#ifndef GRAPHABCD_CORE_STATE_HH
#define GRAPHABCD_CORE_STATE_HH

#include <cmath>
#include <vector>

#include "core/vertex_program.hh"
#include "graph/partition.hh"
#include "support/logging.hh"

namespace graphabcd {

/**
 * Result of the GATHER-APPLY phase over one block, before SCATTER
 * commits it.  This mirrors the PE output buffer of the prototype.
 */
template <typename Value>
struct BlockUpdate
{
    BlockId block = invalidBlock;
    std::vector<Value> newValues;   //!< one per vertex in the block
    std::vector<double> deltas;     //!< |new - old| per vertex
    double l1Delta = 0.0;           //!< sum of deltas (priority estimate)
    VertexId changed = 0;           //!< vertices moving more than tol
};

/**
 * Vertex + edge-carried values of one run.
 *
 * One instance is driven by one thread at a time (SerialEngine, the
 * HarpSystem event loop, the GraphMat baseline); the layout decode
 * scratches are members under that contract.
 */
template <VertexProgram Program>
class BcdState
{
  public:
    using Value = typename Program::Value;

    BcdState() = default;

    /** Initialise values and edge copies from the program's init(). */
    BcdState(const BlockPartition &g, const Program &p) { reset(g, p); }

    /** Re-initialise in place. */
    void
    reset(const BlockPartition &g, const Program &p)
    {
        const VertexId n = g.numVertices();
        values_.resize(n);
        for (VertexId v = 0; v < n; v++)
            values_[v] = p.init(v, g);
        seedEdgeValues(g, p);
    }

    /**
     * Seed the run from explicit per-vertex values (warm start): adopt
     * `init` and re-derive every edge-carried copy, exactly as reset()
     * does from Program::init().  `init.size()` must equal |V|.
     */
    void
    setValues(const BlockPartition &g, const Program &p,
              std::vector<Value> init)
    {
        GRAPHABCD_ASSERT(init.size() == g.numVertices(),
                         "warm-start size must match |V|");
        values_ = std::move(init);
        seedEdgeValues(g, p);
    }

    const std::vector<Value> &values() const { return values_; }
    std::vector<Value> &values() { return values_; }

    const Value &value(VertexId v) const { return values_[v]; }

    const std::vector<Value> &edgeValues() const { return edgeValues_; }
    std::vector<Value> &edgeValues() { return edgeValues_; }

    /**
     * GATHER-APPLY over block b (no mutation): stream the block's
     * in-edge slice, reduce per destination vertex, apply.
     * @param tol per-vertex change threshold for the `changed` count.
     */
    BlockUpdate<Value>
    processBlock(const BlockPartition &g, const Program &p, BlockId b,
                 double tol) const
    {
        BlockUpdate<Value> out;
        out.block = b;
        const VertexId begin = g.blockBegin(b);
        const VertexId end = g.blockEnd(b);
        out.newValues.reserve(end - begin);
        out.deltas.reserve(end - begin);

        // Stream the slice through the layout: plain returns spans in
        // place, compressed decodes into the member scratch — either
        // way the partition's gather bytes-moved tally is charged.
        const BlockEdgesView slice = g.blockEdges(b, gatherScratch_);

        for (VertexId v = begin; v < end; v++) {
            auto acc = p.identity();
            const Value &old = values_[v];
            for (EdgeId e = g.inEdgeBegin(v); e < g.inEdgeEnd(v); e++) {
                acc = p.combine(acc, p.edgeTerm(old, edgeValues_[e],
                                                slice.wgt[e - slice.base]));
            }
            Value next = p.apply(v, acc, old, g);
            double d = p.delta(old, next);
            GRAPHABCD_ASSERT(!(d < 0.0), "delta() must be non-negative");
            out.l1Delta += d;
            if (d > tol)
                out.changed++;
            out.newValues.push_back(next);
            out.deltas.push_back(d);
        }
        return out;
    }

    /**
     * SCATTER: commit a block update — write the new vertex values and
     * copy each changed vertex's edge value onto its out-edges.  State-
     * based (whole values, not deltas), so replays are idempotent.
     * @param tol vertices moving by <= tol skip the edge copies.
     * @param on_write called as (dst_block, delta) for every out-edge
     *        written; schedulers hook block activation here.
     * @return number of out-edge positions written (random writes).
     */
    template <typename OnWrite>
    EdgeId
    commitBlock(const BlockPartition &g, const Program &p,
                const BlockUpdate<Value> &update, double tol,
                OnWrite &&on_write)
    {
        const VertexId begin = g.blockBegin(update.block);
        EdgeId writes = 0;
        BlockId hint = update.block;
        for (std::size_t i = 0; i < update.newValues.size(); i++) {
            const VertexId v = begin + static_cast<VertexId>(i);
            values_[v] = update.newValues[i];
            if (update.deltas[i] > tol) {
                auto positions = g.scatterList(v, scatterScratch_);
                if (positions.empty())
                    continue;
                Value ev = p.edgeValue(v, values_[v], g);
                // Gauss-Southwell estimate: the perturbation a
                // destination block actually receives is the change of
                // the *edge-carried* value (e.g. rank/degree for PR).
                // All of v's out-edges carried the same old copy, so
                // the first position serves as the old value.
                const double edge_delta =
                    p.delta(edgeValues_[positions.front()], ev);
                for (EdgeId pos : positions) {
                    edgeValues_[pos] = ev;
                    on_write(g.dstBlockOfEdge(pos, hint), edge_delta);
                    writes++;
                }
            }
        }
        return writes;
    }

    /** commitBlock without an activation hook. */
    EdgeId
    commitBlock(const BlockPartition &g, const Program &p,
                const BlockUpdate<Value> &update, double tol)
    {
        return commitBlock(g, p, update, tol, [](BlockId, double) {});
    }

  private:
    /**
     * Derive every edge-carried copy from the current vertex values.
     * Walks destination in-lists (position order), which works in every
     * layout; the per-source copies are precomputed once.
     */
    void
    seedEdgeValues(const BlockPartition &g, const Program &p)
    {
        const VertexId n = g.numVertices();
        std::vector<Value> ev(n);
        for (VertexId v = 0; v < n; v++)
            ev[v] = p.edgeValue(v, values_[v], g);
        edgeValues_.resize(g.numEdges());
        for (VertexId v = 0; v < n; v++) {
            g.forEachInEdge(v, [&](EdgeId pos, VertexId src, float) {
                edgeValues_[pos] = ev[src];
            });
        }
    }

    std::vector<Value> values_;
    std::vector<Value> edgeValues_;

    // Layout decode buffers; see the class contract above.
    mutable EdgeSliceScratch gatherScratch_;
    ScatterScratch scatterScratch_;
};

} // namespace graphabcd

#endif // GRAPHABCD_CORE_STATE_HH
