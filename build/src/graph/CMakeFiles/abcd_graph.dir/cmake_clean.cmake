file(REMOVE_RECURSE
  "CMakeFiles/abcd_graph.dir/csr.cc.o"
  "CMakeFiles/abcd_graph.dir/csr.cc.o.d"
  "CMakeFiles/abcd_graph.dir/datasets.cc.o"
  "CMakeFiles/abcd_graph.dir/datasets.cc.o.d"
  "CMakeFiles/abcd_graph.dir/edge_list.cc.o"
  "CMakeFiles/abcd_graph.dir/edge_list.cc.o.d"
  "CMakeFiles/abcd_graph.dir/generators.cc.o"
  "CMakeFiles/abcd_graph.dir/generators.cc.o.d"
  "CMakeFiles/abcd_graph.dir/io.cc.o"
  "CMakeFiles/abcd_graph.dir/io.cc.o.d"
  "CMakeFiles/abcd_graph.dir/partition.cc.o"
  "CMakeFiles/abcd_graph.dir/partition.cc.o.d"
  "CMakeFiles/abcd_graph.dir/stats.cc.o"
  "CMakeFiles/abcd_graph.dir/stats.cc.o.d"
  "libabcd_graph.a"
  "libabcd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
