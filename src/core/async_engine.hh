/**
 * @file
 * Threaded asynchronous BCD engine — real barrierless execution on a
 * shared worker pool (the "software GraphABCD" of paper Sec. V-D, with
 * the GATHER-APPLY / SCATTER kernel fusion the paper applies to its
 * software baseline).
 *
 * Vertex and edge-carried values are relaxed atomics: GATHER reads
 * whatever SCATTER has most recently published (possibly stale — that is
 * asynchronous BCD), and SCATTER publishes whole values (state-based
 * update information, Sec. IV-A3), so no locks or barriers are needed on
 * the data plane.  The only shared control state is the scheduler plus a
 * bounded dispatch FIFO (the software stand-in for the paper's
 * accelerator task queue), both guarded by one mutex that every
 * participant acquires exactly once per block: commit the previous
 * block's activation batch, refill the FIFO from the scheduler, claim
 * the next block.  The FIFO is bounded, which bounds the
 * update-propagation delay and hence preserves the asynchronous-BCD
 * convergence guarantee (Sec. III-D).
 *
 * Threading: the engine spawns nothing.  It opens an Executor::Job with
 * participation `numThreads` on the shared pool (EngineOptions::executor,
 * defaulting to the process-wide Executor::shared()), and the calling
 * thread pumps blocks alongside the pool workers — so a run always makes
 * progress even on a saturated pool, and N concurrent runs share one set
 * of OS threads instead of spawning N x numThreads.
 *
 * ExecMode::Barrier caps participation at one in-flight block (the
 * paper's per-block memory-barrier baseline); ExecMode::Bsp processes
 * whole supersteps against a frozen snapshot (Jacobi), reproducing the
 * paper's Fig. 7 baselines.
 */

#ifndef GRAPHABCD_CORE_ASYNC_ENGINE_HH
#define GRAPHABCD_CORE_ASYNC_ENGINE_HH

#include <algorithm>
#include <atomic>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>
#include <vector>

#include "core/engine.hh"
#include "core/options.hh"
#include "core/scheduler.hh"
#include "core/vertex_program.hh"
#include "graph/partition.hh"
#include "obs/obs.hh"
#include "runtime/executor.hh"
#include "support/timer.hh"

namespace graphabcd {

/**
 * Multi-threaded BCD engine.  Requires a lock-free-atomic Value (the
 * scalar algorithms: PR, SSSP, BFS, CC).  Vector-valued programs (CF)
 * run through the serial engine or the HARP simulator instead.
 */
template <VertexProgram Program>
class AsyncEngine
{
  public:
    using Value = typename Program::Value;

    static_assert(std::atomic<Value>::is_always_lock_free,
                  "AsyncEngine needs a lock-free atomic Value; "
                  "use SerialEngine or HarpSystem for wide values");

    AsyncEngine(const BlockPartition &g, Program p, EngineOptions opt)
        : graph(g), program(std::move(p)), options(opt)
    {
    }

    /**
     * Run to quiescence (or maxEpochs).
     * @param out_values receives the final vertex values.
     */
    EngineReport
    run(std::vector<Value> &out_values)
    {
        Timer timer;
        initState();

        EngineReport report;
        switch (options.mode) {
          case ExecMode::Async:
            report = runAsync(/*barrier_per_block=*/false);
            break;
          case ExecMode::Barrier:
            report = runAsync(/*barrier_per_block=*/true);
            break;
          case ExecMode::Bsp:
            report = runBsp();
            break;
        }

        out_values.resize(graph.numVertices());
        for (VertexId v = 0; v < graph.numVertices(); v++)
            out_values[v] = values[v].load(std::memory_order_relaxed);
        report.seconds = timer.seconds();
        return report;
    }

  private:
    void
    initState()
    {
        const VertexId n = graph.numVertices();
        const bool warm = [&] {
            if constexpr (std::is_same_v<Value, double>)
                return options.warmStart && options.warmStart->size() == n;
            else
                return false;
        }();
        values = std::vector<std::atomic<Value>>(n);
        edgeValues = std::vector<std::atomic<Value>>(graph.numEdges());
        std::vector<Value> ev(n);
        for (VertexId v = 0; v < n; v++) {
            Value init = program.init(v, graph);
            if constexpr (std::is_same_v<Value, double>) {
                if (warm)
                    init = (*options.warmStart)[v];
            }
            values[v].store(init, std::memory_order_relaxed);
            ev[v] = program.edgeValue(v, init, graph);
        }
        // Seed the edge-carried copies by walking destination in-lists
        // (position order), which every layout supports directly.
        for (VertexId v = 0; v < n; v++) {
            graph.forEachInEdge(v, [&](EdgeId pos, VertexId src, float) {
                edgeValues[pos].store(ev[src], std::memory_order_relaxed);
            });
        }
    }

    /** The executor this run draws workers from. */
    std::shared_ptr<Executor>
    pool() const
    {
        return options.executor ? options.executor : Executor::shared();
    }

    /**
     * Fused GATHER-APPLY-SCATTER of one block directly against the
     * atomic arrays.  `scratch` is per-participant: pumps run
     * concurrently, so each owns its own decode buffers.
     * @return (vertices changed, L1 delta).
     */
    std::pair<VertexId, double>
    processAndCommit(BlockId b,
                     std::vector<std::pair<BlockId, double>> &activations,
                     LayoutScratch &scratch)
    {
        VertexId changed = 0;
        double l1 = 0.0;
        activations.clear();
        const BlockEdgesView slice = graph.blockEdges(b, scratch.slice);
        BlockId hint = b;
        for (VertexId v = graph.blockBegin(b); v < graph.blockEnd(b);
             v++) {
            auto acc = program.identity();
            Value old = values[v].load(std::memory_order_relaxed);
            for (EdgeId e = graph.inEdgeBegin(v); e < graph.inEdgeEnd(v);
                 e++) {
                Value ev = edgeValues[e].load(std::memory_order_relaxed);
                acc = program.combine(
                    acc, program.edgeTerm(old, ev,
                                          slice.wgt[e - slice.base]));
            }
            Value next = program.apply(v, acc, old, graph);
            double d = program.delta(old, next);
            l1 += d;
            values[v].store(next, std::memory_order_relaxed);
            if (d > options.tolerance) {
                changed++;
                auto positions = graph.scatterList(v, scratch.scatter);
                if (positions.empty())
                    continue;
                // Read the outgoing edges' previous value before the
                // stores below overwrite it: the activation priority is
                // old-vs-new, not new-vs-new.
                const Value old_ev = edgeValues[positions.front()].load(
                    std::memory_order_relaxed);
                const Value ev = program.edgeValue(v, next, graph);
                const double edge_delta = program.delta(old_ev, ev);
                for (EdgeId pos : positions) {
                    edgeValues[pos].store(ev, std::memory_order_relaxed);
                    activations.emplace_back(
                        graph.dstBlockOfEdge(pos, hint), edge_delta);
                }
            }
        }
        return {changed, l1};
    }

    EngineReport
    runAsync(bool barrier_per_block)
    {
        Timer timer;
        // Root span of this engine run; under the serve layer it nests
        // into the submitting job's causal tree.
        obs::Span run_span("engine.async.run");
        EngineReport report;
        const double n = std::max<double>(graph.numVertices(), 1.0);
        auto sched = makeScheduler(options.schedule, graph.numBlocks(),
                                   options.seed);
        for (BlockId b = 0; b < graph.numBlocks(); b++)
            sched->activate(b, initialActivationPriority());

        // Barrier mode admits one in-flight block (participation one,
        // dispatch window one): the per-block memory barrier baseline.
        const std::uint32_t participation =
            barrier_per_block ? 1 : std::max(1u, options.numThreads);
        const std::size_t dispatchCap =
            barrier_per_block ? 1 : std::size_t{participation} * 4;
        const std::uint64_t max_updates =
            updateBudget(options.maxEpochs, n);
        // Blocks a pool task pumps before requeueing itself, so
        // concurrent runs interleave on a shared pool instead of the
        // first run monopolising the workers to quiescence.
        constexpr std::uint32_t kQuantum = 32;

        // Bounded dispatch FIFO: blocks move scheduler -> FIFO -> a
        // pump, which bounds staleness (paper Sec. III-D).  Each item
        // carries the global block-update count at FIFO-entry time;
        // the difference read when the item is claimed is the measured
        // staleness, which FIFO order keeps at <= FIFO capacity +
        // in-flight participants.
        struct WorkItem
        {
            BlockId block;
            std::uint64_t stamp;
        };
        // All control state shares one mutex; every participant takes
        // it exactly once per block (commit + refill + claim).
        struct Ctl
        {
            std::mutex m;
            std::deque<WorkItem> fifo;
            std::uint32_t inflight = 0;   //!< claimed, not committed
            std::uint32_t pumps = 0;      //!< live participants
            bool halted = false;          //!< stop token or budget
            bool droppedWork = false;     //!< halt discarded FIFO items
            // Convergence sample window (mutated under m, and only
            // inside `if constexpr (obs::kEnabled)` sections).
            double winL1 = 0.0;
            std::uint64_t winActive = 0;
            double nextSample = 0.0;
        } ctl;
        std::atomic<std::uint64_t> vertex_updates{0};
        std::atomic<std::uint64_t> block_updates{0};
        std::atomic<std::uint64_t> edge_traversals{0};
        std::atomic<std::uint64_t> scatter_writes{0};

        // Resolve metrics once per run; recording is per block.
        obs::Histogram &gasHist = obs::histogram(
            "engine.async.block_gas_us", obs::latencyBucketsUs());
        obs::Histogram &fanoutHist = obs::histogram(
            "engine.async.scatter_fanout", obs::fanoutBuckets());
        obs::Histogram &staleHist = obs::histogram(
            "engine.async.staleness_blocks", obs::stalenessBuckets());
        obs::Gauge &depthGauge = obs::gauge("engine.async.queue_depth");

        // Convergence samples fire at trace-interval epoch boundaries,
        // inside the per-block locked commit the engine already takes.
        const double sampleInterval =
            options.traceInterval > 0.0 ? options.traceInterval : 1.0;
        ctl.nextSample = sampleInterval;

        std::shared_ptr<Executor> exec = pool();
        std::shared_ptr<Executor::Job> job =
            exec->createJob(participation);

        // ---- ctl.m must be held by callers of the *Locked helpers ----

        // Move ready blocks scheduler -> FIFO until the window is full
        // or the run halts (stop token polled here: once per claim, as
        // before).
        auto refillLocked = [&] {
            if (!ctl.halted && options.stop.stopRequested())
                ctl.halted = true;
            while (!ctl.halted && ctl.fifo.size() < dispatchCap) {
                if (vertex_updates.load(std::memory_order_relaxed) >=
                    max_updates) {
                    ctl.halted = true;
                    break;
                }
                std::optional<BlockId> b = sched->next();
                if (!b)
                    break;
                std::uint64_t stamp = 0;
                if constexpr (obs::kEnabled) {
                    stamp =
                        block_updates.load(std::memory_order_relaxed);
                }
                ctl.fifo.push_back({*b, stamp});
            }
            if (ctl.halted && !ctl.fifo.empty()) {
                // A halted run drops (not processes) dispatched work,
                // so an empty scheduler no longer implies quiescence.
                ctl.droppedWork = true;
                ctl.fifo.clear();
            }
            if constexpr (obs::kEnabled)
                depthGauge.set(static_cast<double>(ctl.fifo.size()));
        };

        // Claim the FIFO head.  Measuring staleness inside the locked
        // claim keeps the FIFO bound exact: only items claimed before
        // this one can have committed by now.
        auto claimLocked = [&]() -> std::optional<WorkItem> {
            if (ctl.fifo.empty())
                return std::nullopt;
            WorkItem item = ctl.fifo.front();
            ctl.fifo.pop_front();
            ctl.inflight++;
            if constexpr (obs::kEnabled) {
                staleHist.record(static_cast<double>(
                    block_updates.load(std::memory_order_relaxed) -
                    item.stamp));
                depthGauge.set(static_cast<double>(ctl.fifo.size()));
            }
            return item;
        };

        std::function<void()> pumpTask;   // assigned below

        // Add pool participants for waiting FIFO items, up to the
        // participation bound.
        auto spawnLocked = [&] {
            std::size_t want = std::min<std::size_t>(
                participation > ctl.pumps ? participation - ctl.pumps
                                          : 0,
                ctl.fifo.size());
            for (; want > 0; want--) {
                ctl.pumps++;
                job->submit(pumpTask);
            }
        };

        // One participant: claim-process-commit blocks until no work
        // is claimable (or, for pool tasks, the quantum expires and the
        // participant requeues itself behind other runs' tasks).
        auto pump = [&](bool allow_requeue) {
            std::vector<std::pair<BlockId, double>> activations;
            LayoutScratch scratch;   // per-participant decode buffers
            std::uint32_t done = 0;
            std::optional<WorkItem> cur;
            {
                std::lock_guard<std::mutex> lock(ctl.m);
                refillLocked();
                cur = claimLocked();
                if (!cur) {
                    ctl.pumps--;
                    return;
                }
            }
            for (;;) {
                const BlockId b = cur->block;
                VertexId chg = 0;
                double l1 = 0.0;
                {
                    obs::ScopedLatency lat(gasHist);
                    std::tie(chg, l1) =
                        processAndCommit(b, activations, scratch);
                    (void)chg;
                    (void)l1;
                }
                fanoutHist.record(
                    static_cast<double>(activations.size()));
                vertex_updates.fetch_add(graph.blockVertexCount(b),
                                         std::memory_order_relaxed);
                block_updates.fetch_add(1, std::memory_order_relaxed);
                edge_traversals.fetch_add(graph.blockEdgeCount(b),
                                          std::memory_order_relaxed);
                scatter_writes.fetch_add(activations.size(),
                                         std::memory_order_relaxed);
                if (options.progress) {
                    options.progress->accumulate(
                        graph.blockVertexCount(b), 1,
                        graph.blockEdgeCount(b), activations.size());
                }
                done++;
                bool requeue = false;
                {
                    std::lock_guard<std::mutex> lock(ctl.m);
                    for (auto &[dst, delta] : activations)
                        sched->activate(dst, delta);
                    ctl.inflight--;
                    if constexpr (obs::kEnabled) {
                        ctl.winL1 += l1;
                        ctl.winActive += chg;
                        if (options.convergence) {
                            const double ep =
                                static_cast<double>(
                                    vertex_updates.load(
                                        std::memory_order_relaxed)) /
                                n;
                            if (ep + 1e-12 >= ctl.nextSample) {
                                ctl.nextSample = ep + sampleInterval;
                                obs::ConvergencePoint pt;
                                pt.epochs = ep;
                                pt.residual = ctl.winL1;
                                pt.activeVertices = ctl.winActive;
                                pt.vertexUpdates = vertex_updates.load(
                                    std::memory_order_relaxed);
                                pt.edgeTraversals = edge_traversals.load(
                                    std::memory_order_relaxed);
                                pt.wallSeconds = timer.seconds();
                                options.convergence->record(pt);
                                ctl.winL1 = 0.0;
                                ctl.winActive = 0;
                            }
                        }
                    }
                    refillLocked();
                    if (allow_requeue && done >= kQuantum &&
                        !ctl.fifo.empty()) {
                        // Keep ctl.pumps: the requeued task inherits
                        // this participant's slot.
                        requeue = true;
                    } else {
                        cur = claimLocked();
                        if (cur)
                            spawnLocked();
                        else
                            ctl.pumps--;
                    }
                }
                if (requeue) {
                    job->submit(pumpTask);
                    return;
                }
                if (!cur)
                    return;
            }
        };
        pumpTask = [&pump] { pump(/*allow_requeue=*/true); };

        {
            std::lock_guard<std::mutex> lock(ctl.m);
            ctl.pumps = 1;   // the calling thread participates
            refillLocked();
            spawnLocked();
        }
        pump(/*allow_requeue=*/false);
        job->wait();   // all pool participants drained

        report.stopped = options.stop.stopRequested();
        report.vertexUpdates = vertex_updates.load();
        report.blockUpdates = block_updates.load();
        report.edgeTraversals = edge_traversals.load();
        report.scatterWrites = scatter_writes.load();
        report.epochs = static_cast<double>(report.vertexUpdates) / n;
        // A halted run never claims convergence: dispatched blocks are
        // dropped (not reactivated), so an empty scheduler does not
        // mean quiescence once work was discarded.  No lock needed:
        // job->wait() ordered every participant before this point.
        report.converged =
            !report.stopped && !ctl.droppedWork && sched->empty();
        if constexpr (obs::kEnabled) {
            report.residual = ctl.winL1;
            if (options.convergence) {
                obs::ConvergencePoint pt;
                pt.epochs = report.epochs;
                pt.residual = ctl.winL1;
                pt.activeVertices = ctl.winActive;
                pt.vertexUpdates = report.vertexUpdates;
                pt.edgeTraversals = report.edgeTraversals;
                pt.wallSeconds = timer.seconds();
                options.convergence->recordFinal(pt);
            }
        }
        flushSchedulerCounters(*sched);
        return report;
    }

    /** Fold a finished run's scheduler counters into the registry. */
    static void
    flushSchedulerCounters(const BlockScheduler &sched)
    {
        if constexpr (obs::kEnabled) {
            const SchedulerCounters c = sched.counters();
            obs::counter("scheduler.activations").add(c.activations);
            obs::counter("scheduler.heap_pushes").add(c.heapPushes);
            obs::counter("scheduler.stale_discards")
                .add(c.staleDiscards);
            obs::counter("scheduler.refreshes").add(c.refreshes);
        }
    }

    EngineReport
    runBsp()
    {
        // Jacobi supersteps with a pool-parallel wave and a global
        // barrier (Job::wait) per iteration; commits go to a double
        // buffer.
        Timer timer;
        obs::Span run_span("engine.bsp.run");
        EngineReport report;
        const double n = std::max<double>(graph.numVertices(), 1.0);
        auto sched = makeScheduler(options.schedule, graph.numBlocks(),
                                   options.seed);
        for (BlockId b = 0; b < graph.numBlocks(); b++)
            sched->activate(b, initialActivationPriority());

        const std::uint32_t participation =
            std::max(1u, options.numThreads);
        std::shared_ptr<Executor> exec = pool();
        std::shared_ptr<Executor::Job> job =
            exec->createJob(participation);

        const double sampleInterval =
            options.traceInterval > 0.0 ? options.traceInterval : 1.0;
        double nextSample = sampleInterval;
        double winL1 = 0.0;
        std::uint64_t winActive = 0;

        std::vector<BlockId> wave;
        std::vector<BlockUpdate<Value>> updates;
        // Commits run serially after the superstep barrier, so one
        // scatter decode buffer serves every commitUpdate call.
        ScatterScratch commit_scratch;
        while (!sched->empty()) {
            if (options.stop.stopRequested()) {
                report.stopped = true;
                break;
            }
            wave.clear();
            while (auto b = sched->next())
                wave.push_back(*b);

            updates.assign(wave.size(), {});
            std::atomic<std::size_t> cursor{0};
            auto sweep = [&] {
                // Declared inside the body, NOT captured: this one
                // closure runs on several workers at once, and each
                // needs its own decode buffer.
                EdgeSliceScratch slice_scratch;
                for (;;) {
                    std::size_t i =
                        cursor.fetch_add(1, std::memory_order_relaxed);
                    if (i >= wave.size())
                        return;
                    updates[i] = gatherApplyBlock(wave[i], slice_scratch);
                }
            };
            // participation-1 pool helpers; the caller sweeps too.
            const std::size_t helpers = std::min<std::size_t>(
                participation - 1, wave.size());
            for (std::size_t h = 0; h < helpers; h++)
                job->submit(sweep);
            sweep();
            job->wait();   // the global memory barrier

            for (std::size_t i = 0; i < wave.size(); i++) {
                commitUpdate(wave[i], updates[i], *sched, report,
                             commit_scratch);
            }
            report.epochs = static_cast<double>(report.vertexUpdates) / n;
            if constexpr (obs::kEnabled) {
                for (const auto &update : updates) {
                    winL1 += update.l1Delta;
                    winActive += update.changed;
                }
                if (options.convergence &&
                    report.epochs + 1e-12 >= nextSample) {
                    nextSample = report.epochs + sampleInterval;
                    obs::ConvergencePoint pt;
                    pt.epochs = report.epochs;
                    pt.residual = winL1;
                    pt.activeVertices = winActive;
                    pt.vertexUpdates = report.vertexUpdates;
                    pt.edgeTraversals = report.edgeTraversals;
                    pt.wallSeconds = timer.seconds();
                    options.convergence->record(pt);
                    winL1 = 0.0;
                    winActive = 0;
                }
            }
            if (options.progress) {
                options.progress->publish(report.vertexUpdates,
                                          report.blockUpdates,
                                          report.edgeTraversals,
                                          report.scatterWrites);
            }
            if (report.epochs >= options.maxEpochs)
                break;
        }
        report.converged = !report.stopped && sched->empty();
        if constexpr (obs::kEnabled) {
            report.residual = winL1;
            if (options.convergence) {
                obs::ConvergencePoint pt;
                pt.epochs = report.epochs;
                pt.residual = winL1;
                pt.activeVertices = winActive;
                pt.vertexUpdates = report.vertexUpdates;
                pt.edgeTraversals = report.edgeTraversals;
                pt.wallSeconds = timer.seconds();
                options.convergence->recordFinal(pt);
            }
        }
        flushSchedulerCounters(*sched);
        return report;
    }

    /** Jacobi helper: GATHER-APPLY one block without committing. */
    BlockUpdate<Value>
    gatherApplyBlock(BlockId b, EdgeSliceScratch &slice_scratch)
    {
        BlockUpdate<Value> out;
        out.block = b;
        const BlockEdgesView slice = graph.blockEdges(b, slice_scratch);
        for (VertexId v = graph.blockBegin(b); v < graph.blockEnd(b);
             v++) {
            auto acc = program.identity();
            Value old = values[v].load(std::memory_order_relaxed);
            for (EdgeId e = graph.inEdgeBegin(v); e < graph.inEdgeEnd(v);
                 e++) {
                Value ev = edgeValues[e].load(std::memory_order_relaxed);
                acc = program.combine(
                    acc, program.edgeTerm(old, ev,
                                          slice.wgt[e - slice.base]));
            }
            Value next = program.apply(v, acc, old, graph);
            double d = program.delta(old, next);
            out.l1Delta += d;
            if (d > options.tolerance)
                out.changed++;
            out.newValues.push_back(next);
            out.deltas.push_back(d);
        }
        return out;
    }

    /** Jacobi helper: commit + activate one block update. */
    void
    commitUpdate(BlockId b, const BlockUpdate<Value> &update,
                 BlockScheduler &sched, EngineReport &report,
                 ScatterScratch &scatter_scratch)
    {
        const VertexId begin = graph.blockBegin(b);
        BlockId hint = b;
        for (std::size_t i = 0; i < update.newValues.size(); i++) {
            const VertexId v = begin + static_cast<VertexId>(i);
            values[v].store(update.newValues[i],
                            std::memory_order_relaxed);
            if (update.deltas[i] > options.tolerance) {
                auto positions = graph.scatterList(v, scatter_scratch);
                if (positions.empty())
                    continue;
                const Value old_ev = edgeValues[positions.front()].load(
                    std::memory_order_relaxed);
                const Value ev = program.edgeValue(v, update.newValues[i],
                                                   graph);
                const double edge_delta = program.delta(old_ev, ev);
                for (EdgeId pos : positions) {
                    edgeValues[pos].store(ev, std::memory_order_relaxed);
                    sched.activate(graph.dstBlockOfEdge(pos, hint),
                                   edge_delta);
                    report.scatterWrites++;
                }
            }
        }
        report.blockUpdates++;
        report.vertexUpdates += update.newValues.size();
        report.edgeTraversals += graph.blockEdgeCount(b);
    }

    const BlockPartition &graph;
    Program program;
    EngineOptions options;

    std::vector<std::atomic<Value>> values;
    std::vector<std::atomic<Value>> edgeValues;
};

} // namespace graphabcd

#endif // GRAPHABCD_CORE_ASYNC_ENGINE_HH
