file(REMOVE_RECURSE
  "CMakeFiles/fig7_async_breakdown.dir/fig7_async_breakdown.cc.o"
  "CMakeFiles/fig7_async_breakdown.dir/fig7_async_breakdown.cc.o.d"
  "fig7_async_breakdown"
  "fig7_async_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_async_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
