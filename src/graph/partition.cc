#include "graph/partition.hh"

#include <algorithm>

#include "support/logging.hh"

namespace graphabcd {

BlockPartition::BlockPartition(const EdgeList &el, VertexId block_size)
    : nVertices(el.numVertices())
{
    GRAPHABCD_ASSERT(block_size > 0, "block size must be positive");
    blockSize_ = std::min<VertexId>(block_size,
                                    std::max<VertexId>(nVertices, 1));
    nBlocks = nVertices == 0
        ? 0
        : static_cast<BlockId>((nVertices + blockSize_ - 1) / blockSize_);

    blockBegins.resize(static_cast<std::size_t>(nBlocks) + 1);
    for (BlockId b = 0; b < nBlocks; b++)
        blockBegins[b] = b * blockSize_;
    blockBegins[nBlocks] = nVertices;

    buildFromBoundaries(el);
}

BlockPartition::BlockPartition(const EdgeList &el,
                               EdgeId target_edges_per_block,
                               EdgeBalanced)
    : nVertices(el.numVertices())
{
    GRAPHABCD_ASSERT(target_edges_per_block > 0,
                     "edge budget must be positive");

    // Greedy contiguous cut: extend the current block until its in-edge
    // count reaches the target; a single hub vertex may exceed the
    // target on its own (blocks always hold at least one vertex).
    std::vector<std::uint32_t> ind = el.inDegrees();
    blockBegins.push_back(0);
    EdgeId in_block = 0;
    for (VertexId v = 0; v < nVertices; v++) {
        in_block += ind[v];
        if (in_block >= target_edges_per_block && v + 1 < nVertices) {
            blockBegins.push_back(v + 1);
            in_block = 0;
        }
    }
    if (nVertices > 0)
        blockBegins.push_back(nVertices);
    else
        blockBegins.assign(1, 0);

    nBlocks = static_cast<BlockId>(blockBegins.size() - 1);
    blockSize_ = nBlocks
        ? std::max<VertexId>(1, nVertices / nBlocks)
        : 1;

    buildFromBoundaries(el);
}

void
BlockPartition::buildFromBoundaries(const EdgeList &el)
{
    // Vertex -> block lookup.
    vertexBlock.resize(nVertices);
    for (BlockId b = 0; b < nBlocks; b++) {
        for (VertexId v = blockBegins[b]; v < blockBegins[b + 1]; v++)
            vertexBlock[v] = b;
    }

    const EdgeId m = el.numEdges();
    inOffsets.assign(static_cast<std::size_t>(nVertices) + 1, 0);
    edgeSrc_.resize(m);
    edgeDst_.resize(m);
    edgeWeight_.resize(m);

    // Counting sort by destination: in-coming edges of the same vertex
    // become contiguous; since blocks are contiguous vertex ranges, each
    // block's edge slice is contiguous too (the paper's layout).
    for (const Edge &e : el.edges())
        inOffsets[e.dst + 1]++;
    for (VertexId v = 0; v < nVertices; v++)
        inOffsets[v + 1] += inOffsets[v];

    {
        std::vector<EdgeId> cursor(inOffsets.begin(), inOffsets.end() - 1);
        for (const Edge &e : el.edges()) {
            EdgeId pos = cursor[e.dst]++;
            edgeSrc_[pos] = e.src;
            edgeDst_[pos] = e.dst;
            edgeWeight_[pos] = e.weight;
        }
    }

    // Scatter index: group CSC positions by their *source* vertex with a
    // second counting sort, so SCATTER can enumerate where to copy a
    // vertex's new value.
    scatterOffsets.assign(static_cast<std::size_t>(nVertices) + 1, 0);
    for (EdgeId pos = 0; pos < m; pos++)
        scatterOffsets[edgeSrc_[pos] + 1]++;
    for (VertexId v = 0; v < nVertices; v++)
        scatterOffsets[v + 1] += scatterOffsets[v];

    scatterPos.resize(m);
    {
        std::vector<EdgeId> cursor(scatterOffsets.begin(),
                                   scatterOffsets.end() - 1);
        for (EdgeId pos = 0; pos < m; pos++)
            scatterPos[cursor[edgeSrc_[pos]]++] = pos;
    }

    // Downstream block sets: for each source block, the sorted unique
    // destination blocks of its out-edges.
    downstreamOffsets.assign(static_cast<std::size_t>(nBlocks) + 1, 0);
    std::vector<std::vector<BlockId>> per_block(nBlocks);
    {
        std::vector<BlockId> scratch;
        for (BlockId b = 0; b < nBlocks; b++) {
            scratch.clear();
            for (VertexId v = blockBegin(b); v < blockEnd(b); v++) {
                for (EdgeId pos : scatterPositions(v))
                    scratch.push_back(blockOf(edgeDst_[pos]));
            }
            std::sort(scratch.begin(), scratch.end());
            scratch.erase(std::unique(scratch.begin(), scratch.end()),
                          scratch.end());
            per_block[b] = scratch;
            downstreamOffsets[b + 1] =
                downstreamOffsets[b] + scratch.size();
        }
    }
    downstream.resize(downstreamOffsets[nBlocks]);
    for (BlockId b = 0; b < nBlocks; b++) {
        std::copy(per_block[b].begin(), per_block[b].end(),
                  downstream.begin() +
                      static_cast<std::ptrdiff_t>(downstreamOffsets[b]));
    }
}

} // namespace graphabcd
