/**
 * @file
 * Reproduces paper Table II: execution time and throughput (MTES) of
 * GraphABCD (best of the four priority/hybrid configurations, simulated
 * HARP platform), GraphMat (functional run + CPU cost model) and the
 * Graphicionado projection, for PR and SSSP on WT/PS/LJ/TW and CF on
 * SAC/MOL/NF.
 *
 * Expected shape: GraphABCD beats GraphMat ~2.1-2.5x on PR and
 * ~2.5-3.3x on CF, roughly ties on SSSP (0.76-1.14x), and beats the
 * projected ASIC on all three; GraphMat's raw MTES may exceed
 * GraphABCD's (58 vs 12.8 GB/s of bandwidth).
 */

#include "bench_common.hh"

namespace graphabcd {
namespace {

using namespace bench;

/** Paper Table II values for annotation (seconds). */
struct PaperRow
{
    const char *app;
    const char *graph;
    double abcd;
    double graphmat;
    double asic;   //!< 0 when the paper has no ASIC number
};

constexpr PaperRow paperRows[] = {
    {"PR", "WT", 0.123, 0.255, 0.0},
    {"PR", "PS", 0.619, 1.420, 0.0},
    {"PR", "LJ", 1.577, 3.997, 9.993},
    {"PR", "TW", 42.810, 108.015, 93.116},
    {"SSSP", "WT", 0.034, 0.026, 0.0},
    {"SSSP", "PS", 0.280, 0.262, 0.0},
    {"SSSP", "LJ", 0.652, 0.717, 1.195},
    {"SSSP", "TW", 8.367, 9.556, 23.890},
    {"CF", "SAC", 0.206, 0.556, 0.0},
    {"CF", "MOL", 0.853, 2.092, 0.0},
    {"CF", "NF", 2.090, 6.832, 9.760},
};

const PaperRow &
paperRow(const std::string &app, const std::string &graph)
{
    for (const PaperRow &row : paperRows) {
        if (app == row.app && graph == row.graph)
            return row;
    }
    fatal("no paper row for ", app, "/", graph);
}

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declareInt("block-size", 512, "GraphABCD block size");
    flags.declareInt("cf-block-size", 32,
                     "CF block size (proportional to the smaller\n"
                     "                           bipartite vertex counts)");
    if (!flags.parse(argc, argv))
        return 0;

    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));

    Table table({"app", "graph", "ABCD time (s)", "GraphMat time (s)",
                 "ASIC time (s)", "ABCD MTES", "GraphMat MTES",
                 "speedup vs GraphMat", "paper speedup"});

    auto emit = [&](const char *app, const std::string &key,
                    const RunResult &abcd, const RunResult &gm,
                    double asic_seconds) {
        const PaperRow &paper = paperRow(app, key);
        table.row()
            .add(app)
            .add(key)
            .add(abcd.seconds, 4)
            .add(gm.seconds, 4)
            .add(asic_seconds, 4)
            .add(abcd.mtes, 4)
            .add(gm.mtes, 4)
            .add(gm.seconds / abcd.seconds, 3)
            .add(paper.graphmat / paper.abcd, 3);
    };

    // ------------------------------------------------------ PR / SSSP
    for (const std::string key : {"WT", "PS", "LJ", "TW"}) {
        Dataset ds = loadDataset(key, flags);
        BlockPartition g(ds.graph, block_size);
        EngineOptions base;
        base.blockSize = block_size;

        RunResult abcd_pr = bestOfFourConfigs(
            base, HarpConfig{}, [&](EngineOptions o, HarpConfig c) {
                return abcdPagerank(g, o, c);
            });
        graphmat::GraphMatReport gm_raw;
        RunResult gm_pr = graphmatPagerank(ds.graph, &gm_raw);
        auto asic_pr = graphicionadoTime(gm_raw, ds.numVertices(), 8);
        emit("PR", key, abcd_pr, gm_pr, asic_pr.seconds);

        RunResult abcd_sp = bestOfFourConfigs(
            base, HarpConfig{}, [&](EngineOptions o, HarpConfig c) {
                return abcdSssp(g, o, c);
            });
        graphmat::GraphMatReport gm_sp_raw;
        RunResult gm_sp = graphmatSssp(ds.graph, &gm_sp_raw);
        auto asic_sp =
            graphicionadoTime(gm_sp_raw, ds.numVertices(), 8);
        emit("SSSP", key, abcd_sp, gm_sp, asic_sp.seconds);
    }

    // -------------------------------------------------------------- CF
    for (const std::string key : {"SAC", "MOL", "NF"}) {
        Dataset ds = loadDataset(key, flags);
        EdgeList sym = ds.graph.symmetrized();
        const auto cf_bs =
            static_cast<VertexId>(flags.getInt("cf-block-size"));
        BlockPartition g(sym, cf_bs);
        EngineOptions base;
        base.blockSize = cf_bs;

        double target_rmse = 0.0;
        graphmat::GraphMatReport gm_raw;
        RunResult gm_cf = graphmatCf(sym, ds.graph, &target_rmse,
                                     &gm_raw);
        RunResult abcd_cf = bestOfFourConfigs(
            base, HarpConfig{},
            [&](EngineOptions o, HarpConfig c) {
                return abcdCf(g, o, c, target_rmse,
                              /*max_epochs=*/120.0);
            });
        auto asic_cf =
            graphicionadoTime(gm_raw, sym.numVertices(), 4 * kCfDim);
        emit("CF", key, abcd_cf, gm_cf, asic_cf.seconds);
    }

    emitTable(table, flags);
    std::fprintf(stderr,
                 "info: absolute times are for the scaled stand-ins; "
                 "compare the speedup columns against the paper's.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
