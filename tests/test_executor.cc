/**
 * @file
 * Tests of the process-wide work-stealing Executor: task execution and
 * reuse, per-job participation bounds, work stealing under skewed
 * shards, and clean drain/reuse when an engine run is cancelled
 * mid-flight through a StopToken.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "core/async_engine.hh"
#include "core/stop_token.hh"
#include "graph/generators.hh"
#include "runtime/executor.hh"

namespace graphabcd {
namespace {

TEST(Executor, RunsEveryTaskAndWaitJoins)
{
    Executor ex(4);
    EXPECT_EQ(ex.size(), 4u);
    auto job = ex.createJob(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; i++)
        job->submit([&sum, i] { sum.fetch_add(i); });
    job->wait();
    EXPECT_EQ(sum.load(), 5050);
    EXPECT_EQ(job->pending(), 0u);
}

TEST(Executor, ZeroWorkersSizesToHardware)
{
    Executor ex(0);
    EXPECT_GE(ex.size(), 1u);
    auto job = ex.createJob(2);
    std::atomic<int> ran{0};
    job->submit([&ran] { ran.fetch_add(1); });
    job->wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(Executor, JobIsReusableAcrossWaves)
{
    // A drained Job accepts new submissions: this is the BSP pattern,
    // one wait() barrier per superstep on one handle.
    Executor ex(3);
    auto job = ex.createJob(3);
    std::atomic<int> count{0};
    for (int wave = 0; wave < 10; wave++) {
        for (int t = 0; t < 7; t++)
            job->submit([&count] { count.fetch_add(1); });
        job->wait();
        EXPECT_EQ(count.load(), (wave + 1) * 7);
    }
}

TEST(Executor, ParticipationBoundCapsConcurrency)
{
    Executor ex(8);
    auto job = ex.createJob(2);
    std::atomic<int> cur{0};
    std::atomic<int> peak{0};
    for (int i = 0; i < 64; i++) {
        job->submit([&cur, &peak] {
            int now = cur.fetch_add(1) + 1;
            int seen = peak.load();
            while (now > seen && !peak.compare_exchange_weak(seen, now)) {
            }
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            cur.fetch_sub(1);
        });
    }
    job->wait();
    EXPECT_LE(peak.load(), 2);
    EXPECT_GE(peak.load(), 1);
}

TEST(Executor, TwoJobsShareThePoolWithoutInterference)
{
    Executor ex(4);
    auto a = ex.createJob(2);
    auto b = ex.createJob(2);
    std::atomic<int> na{0}, nb{0};
    for (int i = 0; i < 50; i++) {
        a->submit([&na] { na.fetch_add(1); });
        b->submit([&nb] { nb.fetch_add(1); });
    }
    a->wait();
    b->wait();
    EXPECT_EQ(na.load(), 50);
    EXPECT_EQ(nb.load(), 50);
}

TEST(Executor, StealsFromSkewedShards)
{
    // Round-robin spreads tasks over the shards, but the slow tasks
    // all land in one "heavy" residue class, so the workers that drain
    // their own shard first must steal the remainder.
    Executor ex(4);
    auto job = ex.createJob(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; i++) {
        const bool heavy = (i % 4) == 0;
        job->submit([&ran, heavy] {
            if (heavy)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(300));
            ran.fetch_add(1);
        });
    }
    job->wait();
    EXPECT_EQ(ran.load(), 200);
    const Executor::Stats stats = ex.stats();
    EXPECT_EQ(stats.executed, 200u);
    EXPECT_GT(stats.steals, 0u);
}

TEST(Executor, DrainsCleanlyAfterStopTokenAndRunsAgain)
{
    // An engine run cancelled mid-flight must leave the pool clean:
    // no orphaned tasks, and the very same executor runs the next job
    // to the correct fixpoint.
    Rng rng(77);
    EdgeList el = generateRmat(400, 3200, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.numThreads = 4;
    opt.tolerance = -1.0;   // never quiescent: cancel bait
    opt.executor = std::make_shared<Executor>(4);
    BlockPartition g(el, opt.blockSize);

    StopSource source;
    opt.stop = source.token();
    std::thread firing([&source] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        source.requestStop();
    });
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    firing.join();
    EXPECT_TRUE(report.stopped);
    EXPECT_FALSE(report.converged);

    // Same pool, fresh run, sane options: must match the reference.
    EngineOptions opt2 = opt;
    opt2.stop = StopToken();
    opt2.tolerance = 1e-12;
    AsyncEngine<PageRankProgram> engine2(g, PageRankProgram(0.85), opt2);
    EngineReport report2 = engine2.run(x);
    EXPECT_TRUE(report2.converged);
    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        ASSERT_NEAR(x[v], ref[v], 1e-6) << "vertex " << v;
}

TEST(Executor, SharedPoolIsOneProcessWideInstance)
{
    const std::shared_ptr<Executor> &a = Executor::shared();
    const std::shared_ptr<Executor> &b = Executor::shared();
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_GE(a->size(), 1u);
}

} // namespace
} // namespace graphabcd
