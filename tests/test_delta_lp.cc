/**
 * @file
 * Tests of the operation-based update machinery (PageRank Delta) and
 * Label Propagation — including the lost-update demonstration that
 * motivates the paper's state-based design choice (Sec. IV-A3).
 */

#include <gtest/gtest.h>

#include "algorithms/label_propagation.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "core/delta_state.hh"
#include "core/engine.hh"
#include "graph/generators.hh"

namespace graphabcd {
namespace {

TEST(PageRankDelta, SerialRunMatchesPowerIteration)
{
    Rng rng(111);
    EdgeList el = generateRmat(300, 2400, rng);
    BlockPartition g(el, 32);
    std::vector<double> x;
    runDeltaSerial(g, PageRankDeltaProgram(0.85), x, 1e-13, 2000.0);
    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-7);
}

TEST(PageRankDelta, PrioritySchedulingAlsoConverges)
{
    Rng rng(112);
    EdgeList el = generateRmat(200, 1600, rng);
    BlockPartition g(el, 16);
    std::vector<double> x;
    runDeltaSerial(g, PageRankDeltaProgram(0.85), x, 1e-13, 2000.0,
                   Schedule::Priority);
    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-7);
}

TEST(PageRankDelta, LostUpdateAnomalyUnderAsyncInterleaving)
{
    // The paper's argument against operation-based updates: interleave
    // two blocks the way an asynchronous machine would —
    //   1. block A GATHERs (snapshots its pending increments),
    //   2. block B commits, scattering NEW increments into A's slice,
    //   3. block A commits: its consume step zeroes the slice,
    //      destroying B's increments.
    // The result must then differ from the true fixed point.
    Rng rng(113);
    EdgeList el = generateRmat(64, 512, rng);
    BlockPartition g(el, 8);
    PageRankDeltaProgram p(0.85);
    DeltaState<PageRankDeltaProgram> state(g, p);

    // Pick two blocks where B feeds A.
    BlockId block_a = invalidBlock, block_b = invalidBlock;
    for (BlockId b = 0; b < g.numBlocks() && block_a == invalidBlock;
         b++) {
        for (BlockId dst : g.downstreamBlocks(b)) {
            if (dst != b) {
                block_b = b;
                block_a = dst;
                break;
            }
        }
    }
    ASSERT_NE(block_a, invalidBlock);

    // Adversarial interleaving.
    auto a_update = state.gatherBlock(p, block_a);     // 1
    auto b_update = state.gatherBlock(p, block_b);
    state.commitBlock(p, b_update, 0.0);               // 2
    EdgeId lost_window_writes = 0;
    for (EdgeId e = g.edgeBegin(block_a); e < g.edgeEnd(block_a); e++)
        lost_window_writes += state.pending()[e] != 0.0;
    state.commitBlock(p, a_update, 0.0);               // 3: consume!

    // B's increments into A's slice existed before A's commit and are
    // gone after it, without A having gathered them.
    EXPECT_GT(lost_window_writes, 0u);
    double survivors = 0.0;
    for (EdgeId e = g.edgeBegin(block_a); e < g.edgeEnd(block_a); e++)
        survivors += std::abs(state.pending()[e]);
    // Only A's own self-loop-block scatters could have repopulated it.
    EXPECT_LT(survivors, 1e-12 + 1.0);
}

TEST(PageRankDelta, StateBasedSurvivesTheSameInterleaving)
{
    // Same schedule, state-based machinery: the delayed SCATTER simply
    // overwrites with a newer whole value — nothing is lost, and the
    // fixed point is still reached afterwards.
    Rng rng(113);   // same graph as above
    EdgeList el = generateRmat(64, 512, rng);
    BlockPartition g(el, 8);
    PageRankProgram p(0.85);
    BcdState<PageRankProgram> state(g, p);

    auto a_update = state.processBlock(g, p, 0, 0.0);
    auto b_update = state.processBlock(g, p, 1, 0.0);
    state.commitBlock(g, p, b_update, 0.0);
    state.commitBlock(g, p, a_update, 0.0);   // overwrite, not consume

    // Finish with a normal engine run seeded from this state.
    EngineOptions opt;
    opt.blockSize = 8;
    opt.tolerance = 1e-13;
    SerialEngine<PageRankProgram> engine(g, p, opt);
    EngineReport report = engine.run(state);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(state.values()[v], ref[v], 1e-7);
}

TEST(PageRankDelta, RankMassIsConservedToFixpoint)
{
    // Regression for the residual leak: commitBlock used to absorb a
    // sub-tolerance gathered sum into the value WITHOUT scattering its
    // downstream alpha-share, so every such absorb leaked
    // alpha/(1-alpha) of the absorbed mass.  With the residual carry,
    //   sum(values) + (sum(pending) + sum(residuals)) / (1 - alpha)
    // is invariant (== 1) after every commit, and the fixpoint keeps
    // sum(values) ~= 1.  Ring + random chords: every vertex has an
    // out-edge, so no mass drains through dangling vertices.
    const double alpha = 0.85;
    Rng rng(114);
    EdgeList el = generateCycle(64);
    for (int i = 0; i < 128; i++) {
        const auto src = static_cast<VertexId>(rng.nextBounded(64));
        const auto dst = static_cast<VertexId>(rng.nextBounded(64));
        el.addEdge(src, dst);
    }
    BlockPartition g(el, 8);
    PageRankDeltaProgram p(alpha);
    DeltaState<PageRankDeltaProgram> state(g, p);
    const double tol = 1e-12;

    auto conserved = [&] {
        double v = 0.0, carried = 0.0;
        for (double x : state.values())
            v += x;
        for (double d : state.pending())
            carried += d;
        for (double r : state.residuals())
            carried += r;
        return v + carried / (1.0 - alpha);
    };
    EXPECT_NEAR(conserved(), 1.0, 1e-12);   // seed state

    auto sched = makeScheduler(Schedule::Cyclic, g.numBlocks(), 1);
    for (BlockId b = 0; b < g.numBlocks(); b++)
        sched->activate(b, 1.0);
    std::uint64_t commits = 0;
    while (auto b = sched->next()) {
        auto update = state.gatherBlock(p, *b);
        state.commitBlock(p, update, tol,
                          [&sched](BlockId dst, double delta) {
                              sched->activate(dst, delta);
                          });
        // The invariant holds after EVERY commit, not just at the end.
        if (++commits % 16 == 0) {
            ASSERT_NEAR(conserved(), 1.0, 1e-9) << commits << " commits";
        }
        ASSERT_LT(commits, 200000u) << "delta iteration diverged";
    }

    EXPECT_NEAR(conserved(), 1.0, 1e-9);
    double mass = 0.0;
    for (double x : state.values())
        mass += x;
    EXPECT_NEAR(mass, 1.0, 1e-9);   // parked residuals are sub-tol

    std::vector<double> ref = pagerankReference(el, alpha);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(state.values()[v], ref[v], 1e-7);
}

TEST(LabelPropagation, TwoCliquesSplitIntoTwoCommunities)
{
    // Two 6-cliques joined by a single bridge edge.
    EdgeList el(12);
    for (VertexId a = 0; a < 6; a++)
        for (VertexId b = 0; b < 6; b++)
            if (a != b)
                el.addEdge(a, b);
    for (VertexId a = 6; a < 12; a++)
        for (VertexId b = 6; b < 12; b++)
            if (a != b)
                el.addEdge(a, b);
    el.addEdge(5, 6);
    el.addEdge(6, 5);

    BlockPartition g(el, 4);
    EngineOptions opt;
    opt.blockSize = 4;
    opt.tolerance = 0.5;
    opt.maxEpochs = 100.0;
    SerialEngine<LabelPropagationProgram> engine(
        g, LabelPropagationProgram(), opt);
    std::vector<double> labels;
    EngineReport report = engine.run(labels);
    EXPECT_TRUE(report.converged);

    for (VertexId v = 1; v < 6; v++)
        EXPECT_EQ(labels[v], labels[0]);
    for (VertexId v = 7; v < 12; v++)
        EXPECT_EQ(labels[v], labels[6]);
    EXPECT_NE(labels[0], labels[6]);
}

TEST(LabelPropagation, AccumulatorMergeIsAssociative)
{
    LabelPropagationProgram p;
    auto t1 = p.edgeTerm(0.0, 3.0, 1.0f);
    auto t2 = p.edgeTerm(0.0, 3.0, 1.0f);
    auto t3 = p.edgeTerm(0.0, 7.0, 1.0f);
    auto left = p.combine(p.combine(t1, t2), t3);
    auto right = p.combine(t1, p.combine(t2, t3));
    EXPECT_EQ(left.counts, right.counts);
    EXPECT_EQ(left.counts.at(3), 2u);
    EXPECT_EQ(left.counts.at(7), 1u);
}

TEST(LabelPropagation, HysteresisPreventsTwoCycleOscillation)
{
    // Directed 2-cycle: without keep-old-on-tie, labels swap forever.
    EdgeList el = generateCycle(2);
    EdgeList sym = el.symmetrized();
    BlockPartition g(sym, 1);
    EngineOptions opt;
    opt.blockSize = 1;
    opt.tolerance = 0.5;
    opt.maxEpochs = 50.0;
    SerialEngine<LabelPropagationProgram> engine(
        g, LabelPropagationProgram(), opt);
    std::vector<double> labels;
    EngineReport report = engine.run(labels);
    EXPECT_TRUE(report.converged);
}

} // namespace
} // namespace graphabcd
