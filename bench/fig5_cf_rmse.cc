/**
 * @file
 * Reproduces paper Fig. 5: RMSE of Collaborative Filtering versus
 * iteration for GraphABCD (priority and cyclic) and GraphMat on the
 * Netflix stand-in.
 *
 * Expected shape: GraphABCD reaches a better RMSE in ~20 iterations
 * than GraphMat reaches in 60 — the block-size-|V| (Jacobi) penalty.
 */

#include "bench_common.hh"

#include "core/engine.hh"

namespace graphabcd {
namespace {

using namespace bench;

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declare("graph", "NF", "rating dataset key (SAC, MOL, NF)");
    flags.declareInt("iterations", 60, "iteration horizon");
    flags.declareInt("block-size", 512, "GraphABCD block size");
    if (!flags.parse(argc, argv))
        return 0;

    Dataset ds = loadDataset(flags.get("graph"), flags);
    EdgeList sym = ds.graph.symmetrized();
    const auto budget =
        static_cast<std::uint32_t>(flags.getInt("iterations"));
    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));

    // GraphMat: RMSE after every BSP superstep.
    std::vector<std::pair<double, double>> gm_curve;
    {
        graphmat::GraphMatEngine<graphmat::CfSpmv<kCfDim>> engine(
            sym,
            graphmat::CfSpmv<kCfDim>(kCfLearningRate, kCfLambda));
        std::vector<std::array<float, kCfDim>> x;
        engine.run(x, 1e-6, budget,
                   [&](std::uint32_t iter, const auto &values) {
                       gm_curve.emplace_back(
                           iter, graphmat::cfSpmvRmse<kCfDim>(ds.graph,
                                                              values));
                       return false;
                   });
    }

    // GraphABCD: RMSE per traced epoch, cyclic and priority.
    auto abcd_curve = [&](Schedule sched) {
        BlockPartition g(sym, block_size);
        EngineOptions opt;
        opt.blockSize = block_size;
        opt.schedule = sched;
        opt.tolerance = 1e-6;
        opt.maxEpochs = budget;
        opt.traceInterval = 1.0;
        SerialEngine<CfProgram<kCfDim>> engine(
            g, CfProgram<kCfDim>(kCfLearningRate, kCfLambda), opt);
        std::vector<std::pair<double, double>> curve;
        std::vector<FeatureVec<kCfDim>> x;
        engine.run(x, [&](double epochs,
                          const std::vector<FeatureVec<kCfDim>> &v) {
            curve.emplace_back(epochs, cfRmse<kCfDim>(g, v));
        });
        return curve;
    };
    auto cyc = abcd_curve(Schedule::Cyclic);
    auto pri = abcd_curve(Schedule::Priority);

    Table table({"iteration", "GraphABCD priority RMSE",
                 "GraphABCD cyclic RMSE", "GraphMat RMSE"});
    const std::size_t rows =
        std::max({gm_curve.size(), cyc.size(), pri.size()});
    for (std::size_t i = 0; i < rows; i++) {
        auto cell = [&](const std::vector<std::pair<double, double>> &c)
            -> std::string {
            if (i < c.size()) {
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%.4f", c[i].second);
                return buf;
            }
            return "-";
        };
        table.row()
            .add(static_cast<std::uint64_t>(i + 1))
            .add(cell(pri))
            .add(cell(cyc))
            .add(cell(gm_curve));
    }
    emitTable(table, flags);

    auto at = [](const std::vector<std::pair<double, double>> &c,
                 std::size_t i) {
        return i < c.size() ? c[i].second : c.back().second;
    };
    std::fprintf(stderr,
                 "info: paper Fig. 5 anchor: GraphABCD RMSE=1.04 @ 20 "
                 "iters vs GraphMat RMSE=1.34 @ 60 iters.\n");
    std::fprintf(stderr,
                 "info: ours: GraphABCD(priority) %.4f @ 20 vs GraphMat "
                 "%.4f @ %u.\n",
                 at(pri, 19), at(gm_curve, gm_curve.size() - 1),
                 budget);
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
