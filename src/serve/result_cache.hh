/**
 * @file
 * ResultCache — LRU + TTL cache of converged fixpoints.
 *
 * Keyed by the 64-bit job fingerprint (graph identity x algorithm x
 * parameters x engine options, see serve/runner.hh): an identical
 * re-submitted job is answered from memory, and a *related* job (same
 * fixpoint family, different run options) can warm-start from a cached
 * result instead of iterating from scratch — the delta/accumulative
 * iteration insight of Maiter applied at the serving layer.
 *
 * Entries are shared_ptr<const JobResult>, so a hit never copies the
 * value vector and eviction never invalidates a result a client still
 * holds.  TTL is measured from insertion on the monotonic clock; an
 * expired entry counts as a miss (plus an `expirations` stat) and is
 * dropped on access.  The clock is injectable so TTL behaviour is unit
 * testable without sleeping.
 */

#ifndef GRAPHABCD_SERVE_RESULT_CACHE_HH
#define GRAPHABCD_SERVE_RESULT_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "serve/job.hh"

namespace graphabcd {

/** Thread-safe fixed-capacity LRU cache with per-entry TTL. */
class ResultCache
{
  public:
    /** Monotonic now() in seconds; injectable for tests. */
    using NowFn = std::function<double()>;

    /** Hit/miss accounting (monotonic counters). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;    //!< new keys added
        std::uint64_t replacements = 0;  //!< existing keys overwritten
        std::uint64_t evictions = 0;     //!< dropped by LRU capacity
        std::uint64_t expirations = 0;   //!< dropped by TTL

        double
        hitRate() const
        {
            const std::uint64_t total = hits + misses;
            return total ? static_cast<double>(hits) / total : 0.0;
        }
    };

    /**
     * @param capacity maximum entries (0 disables caching entirely).
     * @param ttl_seconds entry lifetime from insertion; <= 0 = no TTL.
     * @param now clock override for tests; defaults to the process
     *        monotonic clock.
     */
    ResultCache(std::size_t capacity, double ttl_seconds,
                NowFn now = nullptr);

    /**
     * Look up a fingerprint, refreshing its LRU position.
     * @return the cached result, or nullptr (miss or expired).
     */
    std::shared_ptr<const JobResult> get(std::uint64_t key);

    /** Insert or replace; evicts the LRU entry beyond capacity. */
    void put(std::uint64_t key, std::shared_ptr<const JobResult> result);

    Stats stats() const;
    std::size_t size() const;
    std::size_t capacity() const { return cap; }
    void clear();

  private:
    struct Entry
    {
        std::shared_ptr<const JobResult> result;
        double insertedAt = 0.0;
        std::list<std::uint64_t>::iterator lruIt;
    };

    bool expired(const Entry &entry, double now) const;

    const std::size_t cap;
    const double ttl;
    const NowFn now;

    mutable std::mutex mtx;
    std::list<std::uint64_t> lru;   //!< front = most recently used
    std::unordered_map<std::uint64_t, Entry> map;
    Stats counters;
};

} // namespace graphabcd

#endif // GRAPHABCD_SERVE_RESULT_CACHE_HH
