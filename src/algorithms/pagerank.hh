/**
 * @file
 * PageRank as a BCD vertex program (paper Sec. III-A2).
 *
 * Objective (Eq. 3): F(x) = 1/2 (Px + b - x)^2 with
 * P = alpha (G^-1 A)^T and b = (1-alpha)/|V| e.  Gradient descent on one
 * coordinate recovers the classic iteration
 *     x_v = (1-alpha)/|V| + alpha * sum_{u in in(v)} x_u / outdeg(u).
 *
 * The edge-carried value is x_u / outdeg(u) (Fig. 3(c)'s trick), so
 * GATHER is a plain sum over the sequential edge slice.
 */

#ifndef GRAPHABCD_ALGORITHMS_PAGERANK_HH
#define GRAPHABCD_ALGORITHMS_PAGERANK_HH

#include <cmath>
#include <vector>

#include "core/vertex_program.hh"
#include "graph/partition.hh"

namespace graphabcd {

/** PageRank vertex program. */
struct PageRankProgram
{
    using Value = double;   //!< the vertex's rank
    using Accum = double;   //!< sum of in-coming rank/degree

    double alpha = 0.85;    //!< damping factor

    explicit PageRankProgram(double damping = 0.85) : alpha(damping) {}

    Value
    init(VertexId, const BlockPartition &g) const
    {
        return 1.0 / std::max<double>(g.numVertices(), 1.0);
    }

    Accum identity() const { return 0.0; }

    Accum
    edgeTerm(const Value &, const Value &edge_value, float) const
    {
        return edge_value;   // already divided by the source out-degree
    }

    Accum combine(Accum a, Accum b) const { return a + b; }

    Value
    apply(VertexId, const Accum &acc, const Value &,
          const BlockPartition &g) const
    {
        return (1.0 - alpha) / std::max<double>(g.numVertices(), 1.0) +
               alpha * acc;
    }

    Value
    edgeValue(VertexId v, const Value &value, const BlockPartition &g)
        const
    {
        const std::uint32_t d = g.outDegree(v);
        return d ? value / d : 0.0;
    }

    double delta(const Value &a, const Value &b) const
    {
        return std::abs(a - b);
    }
};

/**
 * L2 norm of the PageRank optimality residual ||Px + b - x||_2 — the
 * gradient magnitude of Eq. (3).  Zero at the stationary point.
 */
double pagerankResidual(const BlockPartition &g,
                        const std::vector<double> &x, double alpha);

/** Sum of all ranks (= 1 - leaked dangling mass; sanity metric). */
double pagerankMass(const std::vector<double> &x);

} // namespace graphabcd

#endif // GRAPHABCD_ALGORITHMS_PAGERANK_HH
