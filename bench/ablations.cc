/**
 * @file
 * Ablations of GraphABCD's individual design choices (the trade-offs
 * Sec. III-C and IV-A argue for), run on the simulated HARP platform:
 *
 *  1. block size vs total execution time — trade-off 1: small blocks
 *     converge faster but pay coordination/invocation overhead, large
 *     blocks stream better; the paper picks a middle block size;
 *  2. dispatch-window (staleness) sweep — asynchronous BCD's bounded
 *     delay: more in-flight blocks improve overlap until staleness
 *     inflates the epoch count;
 *  3. GATHER-APPLY placement — offloading GATHER-APPLY moves |E|
 *     sequential reads to the accelerator and leaves |V| writes, vs a
 *     SCATTER offload that would move 2|E| (Sec. IV-A2's traffic
 *     argument, evaluated from the real partition);
 *  4. state-based vs operation-based updates (Sec. IV-A3): epochs to
 *     converge under serial execution — the async-correctness argument
 *     is demonstrated in tests/test_delta_lp.cc.
 */

#include "bench_common.hh"

#include "core/delta_state.hh"
#include "core/engine.hh"

namespace graphabcd {
namespace {

using namespace bench;

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declare("graph", "PS", "dataset key");
    if (!flags.parse(argc, argv))
        return 0;

    Dataset ds = loadDataset(flags.get("graph"), flags);

    // ------------------------------------------- 1. block size sweep
    {
        Table t({"block size", "blocks", "epochs", "sim time (s)",
                 "MTES"});
        for (VertexId bs : {64u, 256u, 1024u, 4096u, 16384u}) {
            BlockPartition g(ds.graph, bs);
            EngineOptions opt;
            opt.blockSize = bs;
            RunResult r = abcdPagerank(g, opt, HarpConfig{});
            t.row()
                .add(static_cast<std::uint64_t>(bs))
                .add(static_cast<std::uint64_t>(g.numBlocks()))
                .add(r.iterations, 4)
                .add(r.seconds, 4)
                .add(r.mtes, 4);
        }
        std::cout << "-- ablation 1: block size (PR, "
                  << ds.info.key << ")\n";
        t.print(std::cout);
        std::cout << '\n';
    }

    // --------------------------------- 2. staleness (queue depth) sweep
    {
        Table t({"accel queue depth", "epochs", "sim time (s)",
                 "PE util"});
        BlockPartition g(ds.graph, 512);
        for (std::uint32_t depth : {1u, 4u, 16u, 64u, 256u}) {
            EngineOptions opt;
            opt.blockSize = 512;
            HarpConfig cfg;
            cfg.accelQueueDepth = depth;
            RunResult r = abcdPagerank(g, opt, cfg);
            t.row()
                .add(static_cast<std::uint64_t>(depth))
                .add(r.iterations, 4)
                .add(r.seconds, 4)
                .add(r.sim.peUtilization, 3);
        }
        std::cout << "-- ablation 2: staleness window (PR, "
                  << ds.info.key << ")\n";
        t.print(std::cout);
        std::cout << '\n';
    }

    // ----------------------------- 3. GATHER-APPLY placement traffic
    {
        BlockPartition g(ds.graph, 512);
        const double e = static_cast<double>(g.numEdges());
        const double v = static_cast<double>(g.numVertices());
        const double edge_rec = 16.0, value = 8.0;
        Table t({"offload", "accel traffic (model)", "bytes"});
        t.row()
            .add("GATHER-APPLY only (GraphABCD)")
            .add("|E| reads + |V| writes")
            .add(formatBytes(e * edge_rec + v * value));
        t.row()
            .add("GATHER-APPLY + SCATTER")
            .add("|E| reads + |E| writes")
            .add(formatBytes(e * edge_rec + e * value));
        std::cout << "-- ablation 3: per-epoch accelerator traffic\n";
        t.print(std::cout);
        std::cout << '\n';
    }

    // ------------------------- 4. state-based vs operation-based (PR)
    {
        BlockPartition g(ds.graph, 512);
        EngineOptions opt;
        opt.blockSize = 512;
        opt.tolerance = prTolerance(g.numVertices());
        SerialEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                             opt);
        std::vector<double> x;
        EngineReport state_based = engine.run(x);

        std::vector<double> y;
        double delta_epochs = runDeltaSerial(
            g, PageRankDeltaProgram(0.85), y,
            opt.tolerance * 0.05, 500.0);

        Table t({"update information", "epochs",
                 "async-safe without sync?"});
        t.row()
            .add("state-based (GraphABCD)")
            .add(state_based.epochs, 4)
            .add("yes — overwrites are idempotent");
        t.row()
            .add("operation-based (PR-Delta)")
            .add(delta_epochs, 4)
            .add("no — consume/accumulate races (see tests)");
        std::cout << "-- ablation 4: update information\n";
        t.print(std::cout);
    }

    // ------------------- 5. fixed vs edge-balanced block boundaries
    {
        BlockPartition fixed(ds.graph, 512);
        const EdgeId target = fixed.numBlocks()
            ? ds.graph.numEdges() / fixed.numBlocks()
            : 4096;
        BlockPartition balanced(ds.graph, target,
                                BlockPartition::EdgeBalanced{});

        auto stats = [](const BlockPartition &g) {
            EdgeId max_edges = 0;
            for (BlockId b = 0; b < g.numBlocks(); b++)
                max_edges = std::max(max_edges, g.blockEdgeCount(b));
            return max_edges;
        };
        auto run = [&](const BlockPartition &g) {
            EngineOptions opt;
            opt.blockSize = g.blockSize();
            return abcdPagerank(g, opt, HarpConfig{});
        };
        RunResult rf = run(fixed);
        RunResult rb = run(balanced);

        Table t({"partition", "blocks", "max block edges",
                 "sim time (s)", "PE util"});
        t.row()
            .add("fixed 512 vertices")
            .add(static_cast<std::uint64_t>(fixed.numBlocks()))
            .add(static_cast<std::uint64_t>(stats(fixed)))
            .add(rf.seconds, 4)
            .add(rf.sim.peUtilization, 3);
        t.row()
            .add("edge-balanced")
            .add(static_cast<std::uint64_t>(balanced.numBlocks()))
            .add(static_cast<std::uint64_t>(stats(balanced)))
            .add(rb.seconds, 4)
            .add(rb.sim.peUtilization, 3);
        std::cout << "\n-- ablation 5: block load balance\n";
        t.print(std::cout);
    }

    std::fprintf(stderr,
                 "info: shapes: U-curve over block size; epochs grow "
                 "with queue depth while time falls then flattens; "
                 "edge-balanced blocks cut the straggler tail.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
