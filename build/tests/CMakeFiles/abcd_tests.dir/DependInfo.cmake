
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_async_engine.cc" "tests/CMakeFiles/abcd_tests.dir/test_async_engine.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_async_engine.cc.o.d"
  "/root/repo/tests/test_cf.cc" "tests/CMakeFiles/abcd_tests.dir/test_cf.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_cf.cc.o.d"
  "/root/repo/tests/test_delta_lp.cc" "tests/CMakeFiles/abcd_tests.dir/test_delta_lp.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_delta_lp.cc.o.d"
  "/root/repo/tests/test_engine.cc" "tests/CMakeFiles/abcd_tests.dir/test_engine.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_engine.cc.o.d"
  "/root/repo/tests/test_extras.cc" "tests/CMakeFiles/abcd_tests.dir/test_extras.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_extras.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/abcd_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_graphmat.cc" "tests/CMakeFiles/abcd_tests.dir/test_graphmat.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_graphmat.cc.o.d"
  "/root/repo/tests/test_harp_system.cc" "tests/CMakeFiles/abcd_tests.dir/test_harp_system.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_harp_system.cc.o.d"
  "/root/repo/tests/test_harp_units.cc" "tests/CMakeFiles/abcd_tests.dir/test_harp_units.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_harp_units.cc.o.d"
  "/root/repo/tests/test_partition.cc" "tests/CMakeFiles/abcd_tests.dir/test_partition.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_partition.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/abcd_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/abcd_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_runtime.cc.o.d"
  "/root/repo/tests/test_scaleout.cc" "tests/CMakeFiles/abcd_tests.dir/test_scaleout.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_scaleout.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/abcd_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_sim_conservation.cc" "tests/CMakeFiles/abcd_tests.dir/test_sim_conservation.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_sim_conservation.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/abcd_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/abcd_tests.dir/test_support.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithms/CMakeFiles/abcd_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/harp/CMakeFiles/abcd_harp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/graphmat/CMakeFiles/abcd_graphmat.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/abcd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/abcd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/abcd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/abcd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
