/**
 * @file
 * Wall-clock timing helpers for benchmarks and examples.
 */

#ifndef GRAPHABCD_SUPPORT_TIMER_HH
#define GRAPHABCD_SUPPORT_TIMER_HH

#include <chrono>

namespace graphabcd {

/**
 * Monotonic stopwatch.  start() (or construction) begins a measurement;
 * seconds()/millis() read the elapsed time without stopping it.
 */
class Timer
{
  public:
    Timer() { start(); }

    /** (Re)start the measurement from now. */
    void start() { begin = Clock::now(); }

    /** @return elapsed seconds since start(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - begin).count();
    }

    /** @return elapsed milliseconds since start(). */
    double millis() const { return seconds() * 1e3; }

    /** @return elapsed microseconds since start(). */
    double micros() const { return seconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point begin;
};

} // namespace graphabcd

#endif // GRAPHABCD_SUPPORT_TIMER_HH
