# Empty dependencies file for table3_iterations.
# This may be replaced when dependencies are built.
