/**
 * @file
 * Threaded asynchronous BCD engine — real barrierless execution on host
 * threads (the "software GraphABCD" of paper Sec. V-D, with the GATHER-
 * APPLY / SCATTER kernel fusion the paper applies to its software
 * baseline).
 *
 * Vertex and edge-carried values are relaxed atomics: GATHER reads
 * whatever SCATTER has most recently published (possibly stale — that is
 * asynchronous BCD), and SCATTER publishes whole values (state-based
 * update information, Sec. IV-A3), so no locks or barriers are needed on
 * the data plane.  The only shared control state is the scheduler, which
 * matches the paper's design where scheduling is a CPU-side software
 * unit.  The work queue is bounded, which bounds the update-propagation
 * delay and hence preserves the asynchronous-BCD convergence guarantee.
 *
 * ExecMode::Barrier inserts a wait-for-wave after every dispatched block
 * group; ExecMode::Bsp processes whole supersteps against a frozen
 * snapshot (Jacobi), reproducing the paper's Fig. 7 baselines.
 */

#ifndef GRAPHABCD_CORE_ASYNC_ENGINE_HH
#define GRAPHABCD_CORE_ASYNC_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "core/options.hh"
#include "core/scheduler.hh"
#include "core/vertex_program.hh"
#include "graph/partition.hh"
#include "obs/obs.hh"
#include "runtime/task_queue.hh"
#include "support/timer.hh"

namespace graphabcd {

/**
 * Multi-threaded BCD engine.  Requires a lock-free-atomic Value (the
 * scalar algorithms: PR, SSSP, BFS, CC).  Vector-valued programs (CF)
 * run through the serial engine or the HARP simulator instead.
 */
template <VertexProgram Program>
class AsyncEngine
{
  public:
    using Value = typename Program::Value;

    static_assert(std::atomic<Value>::is_always_lock_free,
                  "AsyncEngine needs a lock-free atomic Value; "
                  "use SerialEngine or HarpSystem for wide values");

    AsyncEngine(const BlockPartition &g, Program p, EngineOptions opt)
        : graph(g), program(std::move(p)), options(opt)
    {
    }

    /**
     * Run to quiescence (or maxEpochs).
     * @param out_values receives the final vertex values.
     */
    EngineReport
    run(std::vector<Value> &out_values)
    {
        Timer timer;
        initState();

        EngineReport report;
        switch (options.mode) {
          case ExecMode::Async:
            report = runAsync(/*barrier_per_wave=*/false);
            break;
          case ExecMode::Barrier:
            report = runAsync(/*barrier_per_wave=*/true);
            break;
          case ExecMode::Bsp:
            report = runBsp();
            break;
        }

        out_values.resize(graph.numVertices());
        for (VertexId v = 0; v < graph.numVertices(); v++)
            out_values[v] = values[v].load(std::memory_order_relaxed);
        report.seconds = timer.seconds();
        return report;
    }

  private:
    void
    initState()
    {
        const VertexId n = graph.numVertices();
        const bool warm = [&] {
            if constexpr (std::is_same_v<Value, double>)
                return options.warmStart && options.warmStart->size() == n;
            else
                return false;
        }();
        values = std::vector<std::atomic<Value>>(n);
        edgeValues = std::vector<std::atomic<Value>>(graph.numEdges());
        for (VertexId v = 0; v < n; v++) {
            Value init = program.init(v, graph);
            if constexpr (std::is_same_v<Value, double>) {
                if (warm)
                    init = (*options.warmStart)[v];
            }
            values[v].store(init, std::memory_order_relaxed);
            Value ev = program.edgeValue(v, init, graph);
            for (EdgeId pos : graph.scatterPositions(v))
                edgeValues[pos].store(ev, std::memory_order_relaxed);
        }
    }

    /**
     * Fused GATHER-APPLY-SCATTER of one block directly against the
     * atomic arrays.  @return (vertices changed, L1 delta).
     */
    std::pair<VertexId, double>
    processAndCommit(BlockId b,
                     std::vector<std::pair<BlockId, double>> &activations)
    {
        VertexId changed = 0;
        double l1 = 0.0;
        activations.clear();
        for (VertexId v = graph.blockBegin(b); v < graph.blockEnd(b);
             v++) {
            auto acc = program.identity();
            Value old = values[v].load(std::memory_order_relaxed);
            for (EdgeId e = graph.inEdgeBegin(v); e < graph.inEdgeEnd(v);
                 e++) {
                Value ev = edgeValues[e].load(std::memory_order_relaxed);
                acc = program.combine(
                    acc, program.edgeTerm(old, ev, graph.edgeWeight(e)));
            }
            Value next = program.apply(v, acc, old, graph);
            double d = program.delta(old, next);
            l1 += d;
            values[v].store(next, std::memory_order_relaxed);
            if (d > options.tolerance) {
                changed++;
                auto positions = graph.scatterPositions(v);
                if (positions.empty())
                    continue;
                // Read the outgoing edges' previous value before the
                // stores below overwrite it: the activation priority is
                // old-vs-new, not new-vs-new.
                const Value old_ev = edgeValues[positions.front()].load(
                    std::memory_order_relaxed);
                const Value ev = program.edgeValue(v, next, graph);
                const double edge_delta = program.delta(old_ev, ev);
                for (EdgeId pos : positions) {
                    edgeValues[pos].store(ev, std::memory_order_relaxed);
                    activations.emplace_back(
                        graph.blockOf(graph.edgeDst(pos)), edge_delta);
                }
            }
        }
        return {changed, l1};
    }

    EngineReport
    runAsync(bool barrier_per_wave)
    {
        EngineReport report;
        const double n = std::max<double>(graph.numVertices(), 1.0);
        auto sched = makeScheduler(options.schedule, graph.numBlocks(),
                                   options.seed);
        for (BlockId b = 0; b < graph.numBlocks(); b++)
            sched->activate(b, initialActivationPriority());

        // Bounded queue: bounds staleness (paper Sec. III-D).  Each
        // item carries the global block-update count at dispatch time;
        // the consumer-side difference is the measured staleness, which
        // the FIFO bound keeps at <= queue capacity + numThreads.
        struct WorkItem
        {
            BlockId block;
            std::uint64_t stamp;
        };
        TaskQueue<WorkItem> work(options.numThreads * 4);
        std::mutex ctl;
        std::condition_variable ctlCv;
        std::size_t inflight = 0;
        std::atomic<std::uint64_t> vertex_updates{0};
        std::atomic<std::uint64_t> block_updates{0};
        std::atomic<std::uint64_t> edge_traversals{0};
        std::atomic<std::uint64_t> scatter_writes{0};

        // Resolve metrics once per run; recording is per block.
        obs::Histogram &gasHist = obs::histogram(
            "engine.async.block_gas_us", obs::latencyBucketsUs());
        obs::Histogram &fanoutHist = obs::histogram(
            "engine.async.scatter_fanout", obs::fanoutBuckets());
        obs::Histogram &staleHist = obs::histogram(
            "engine.async.staleness_blocks", obs::stalenessBuckets());
        work.attachDepthGauge(&obs::gauge("engine.async.queue_depth"));
        if constexpr (obs::kEnabled) {
            // Measure staleness inside the pop critical section: only
            // items dispatched before this one can have committed by
            // then, so the reading obeys the FIFO bound of
            // queue capacity + in-flight workers (paper Sec. III-D).
            // Read after pop() returns, it can be inflated without
            // bound by later items committing while this worker is
            // preempted.
            work.attachPopObserver([&](const WorkItem &item) {
                staleHist.record(static_cast<double>(
                    block_updates.load(std::memory_order_relaxed) -
                    item.stamp));
            });
        }

        auto worker = [&] {
            std::vector<std::pair<BlockId, double>> activations;
            while (auto item = work.pop()) {
                const BlockId b = item->block;
                // Cooperative cancellation: a stopped worker still
                // drains its queue entries (the inflight accounting
                // must balance) but skips the GAS work, so all workers
                // wind down within one block of the stop request.
                if (options.stop.stopRequested()) {
                    activations.clear();
                } else {
                    {
                        obs::ScopedLatency lat(gasHist);
                        auto [chg, l1] = processAndCommit(b, activations);
                        (void)chg;
                        (void)l1;
                    }
                    fanoutHist.record(
                        static_cast<double>(activations.size()));
                    vertex_updates.fetch_add(graph.blockVertexCount(b),
                                             std::memory_order_relaxed);
                    block_updates.fetch_add(1, std::memory_order_relaxed);
                    edge_traversals.fetch_add(graph.blockEdgeCount(b),
                                              std::memory_order_relaxed);
                    scatter_writes.fetch_add(activations.size(),
                                             std::memory_order_relaxed);
                    if (options.progress) {
                        options.progress->accumulate(
                            graph.blockVertexCount(b), 1,
                            graph.blockEdgeCount(b), activations.size());
                    }
                }
                {
                    std::lock_guard<std::mutex> lock(ctl);
                    for (auto &[dst, delta] : activations)
                        sched->activate(dst, delta);
                    inflight--;
                }
                ctlCv.notify_all();
            }
        };

        std::vector<std::thread> threads;
        const std::uint32_t nthreads = std::max(1u, options.numThreads);
        threads.reserve(nthreads);
        for (std::uint32_t t = 0; t < nthreads; t++)
            threads.emplace_back(worker);

        // Dispatcher (the paper's software Scheduler unit).
        const auto max_updates = static_cast<std::uint64_t>(
            options.maxEpochs * n);
        {
            std::unique_lock<std::mutex> lock(ctl);
            for (;;) {
                if (options.stop.stopRequested()) {
                    report.stopped = true;
                    break;
                }
                if (vertex_updates.load(std::memory_order_relaxed) >=
                    max_updates)
                    break;
                std::optional<BlockId> b = sched->next();
                if (!b) {
                    if (inflight == 0)
                        break;   // quiescent
                    ctlCv.wait(lock, [&] {
                        return inflight == 0 || !sched->empty();
                    });
                    continue;
                }
                inflight++;
                lock.unlock();
                std::uint64_t stamp = 0;
                if constexpr (obs::kEnabled) {
                    stamp =
                        block_updates.load(std::memory_order_relaxed);
                }
                work.push({*b, stamp});
                if (barrier_per_wave) {
                    // Memory barrier after each block's GAS processing
                    // (the paper's 'Barrier' baseline).
                    std::unique_lock<std::mutex> wait_lock(ctl);
                    ctlCv.wait(wait_lock, [&] { return inflight == 0; });
                    wait_lock.unlock();
                }
                lock.lock();
            }
        }

        work.close();
        for (auto &t : threads)
            t.join();

        if (options.stop.stopRequested())
            report.stopped = true;
        report.vertexUpdates = vertex_updates.load();
        report.blockUpdates = block_updates.load();
        report.edgeTraversals = edge_traversals.load();
        report.scatterWrites = scatter_writes.load();
        report.epochs = static_cast<double>(report.vertexUpdates) / n;
        {
            std::lock_guard<std::mutex> lock(ctl);
            // A stopped run never claims convergence: workers drop (not
            // reactivate) the blocks they skip, so an empty scheduler
            // does not mean quiescence here.
            report.converged = !report.stopped && sched->empty();
        }
        flushSchedulerCounters(*sched);
        return report;
    }

    /** Fold a finished run's scheduler counters into the registry. */
    static void
    flushSchedulerCounters(const BlockScheduler &sched)
    {
        if constexpr (obs::kEnabled) {
            const SchedulerCounters c = sched.counters();
            obs::counter("scheduler.activations").add(c.activations);
            obs::counter("scheduler.heap_pushes").add(c.heapPushes);
            obs::counter("scheduler.stale_discards")
                .add(c.staleDiscards);
            obs::counter("scheduler.refreshes").add(c.refreshes);
        }
    }

    EngineReport
    runBsp()
    {
        // Jacobi supersteps with a thread-parallel wave and a global
        // barrier (join) per iteration; commits go to a double buffer.
        EngineReport report;
        const double n = std::max<double>(graph.numVertices(), 1.0);
        auto sched = makeScheduler(options.schedule, graph.numBlocks(),
                                   options.seed);
        for (BlockId b = 0; b < graph.numBlocks(); b++)
            sched->activate(b, initialActivationPriority());

        std::vector<BlockId> wave;
        std::vector<BlockUpdate<Value>> updates;
        while (!sched->empty()) {
            if (options.stop.stopRequested()) {
                report.stopped = true;
                break;
            }
            wave.clear();
            while (auto b = sched->next())
                wave.push_back(*b);

            updates.assign(wave.size(), {});
            std::atomic<std::size_t> cursor{0};
            auto worker = [&] {
                for (;;) {
                    std::size_t i =
                        cursor.fetch_add(1, std::memory_order_relaxed);
                    if (i >= wave.size())
                        return;
                    updates[i] = gatherApplyBlock(wave[i]);
                }
            };
            std::vector<std::thread> threads;
            const std::uint32_t nthreads =
                std::max(1u, options.numThreads);
            for (std::uint32_t t = 0; t < nthreads; t++)
                threads.emplace_back(worker);
            for (auto &t : threads)
                t.join();   // the global memory barrier

            for (std::size_t i = 0; i < wave.size(); i++) {
                commitUpdate(wave[i], updates[i], *sched, report);
            }
            report.epochs = static_cast<double>(report.vertexUpdates) / n;
            if (options.progress) {
                options.progress->publish(report.vertexUpdates,
                                          report.blockUpdates,
                                          report.edgeTraversals,
                                          report.scatterWrites);
            }
            if (report.epochs >= options.maxEpochs)
                break;
        }
        report.converged = !report.stopped && sched->empty();
        flushSchedulerCounters(*sched);
        return report;
    }

    /** Jacobi helper: GATHER-APPLY one block without committing. */
    BlockUpdate<Value>
    gatherApplyBlock(BlockId b)
    {
        BlockUpdate<Value> out;
        out.block = b;
        for (VertexId v = graph.blockBegin(b); v < graph.blockEnd(b);
             v++) {
            auto acc = program.identity();
            Value old = values[v].load(std::memory_order_relaxed);
            for (EdgeId e = graph.inEdgeBegin(v); e < graph.inEdgeEnd(v);
                 e++) {
                Value ev = edgeValues[e].load(std::memory_order_relaxed);
                acc = program.combine(
                    acc, program.edgeTerm(old, ev, graph.edgeWeight(e)));
            }
            Value next = program.apply(v, acc, old, graph);
            double d = program.delta(old, next);
            out.l1Delta += d;
            if (d > options.tolerance)
                out.changed++;
            out.newValues.push_back(next);
            out.deltas.push_back(d);
        }
        return out;
    }

    /** Jacobi helper: commit + activate one block update. */
    void
    commitUpdate(BlockId b, const BlockUpdate<Value> &update,
                 BlockScheduler &sched, EngineReport &report)
    {
        const VertexId begin = graph.blockBegin(b);
        for (std::size_t i = 0; i < update.newValues.size(); i++) {
            const VertexId v = begin + static_cast<VertexId>(i);
            values[v].store(update.newValues[i],
                            std::memory_order_relaxed);
            if (update.deltas[i] > options.tolerance) {
                auto positions = graph.scatterPositions(v);
                if (positions.empty())
                    continue;
                const Value old_ev = edgeValues[positions.front()].load(
                    std::memory_order_relaxed);
                const Value ev = program.edgeValue(v, update.newValues[i],
                                                   graph);
                const double edge_delta = program.delta(old_ev, ev);
                for (EdgeId pos : positions) {
                    edgeValues[pos].store(ev, std::memory_order_relaxed);
                    sched.activate(graph.blockOf(graph.edgeDst(pos)),
                                   edge_delta);
                    report.scatterWrites++;
                }
            }
        }
        report.blockUpdates++;
        report.vertexUpdates += update.newValues.size();
        report.edgeTraversals += graph.blockEdgeCount(b);
    }

    const BlockPartition &graph;
    Program program;
    EngineOptions options;

    std::vector<std::atomic<Value>> values;
    std::vector<std::atomic<Value>> edgeValues;
};

} // namespace graphabcd

#endif // GRAPHABCD_CORE_ASYNC_ENGINE_HH
