# Empty dependencies file for fig6_hw_accel.
# This may be replaced when dependencies are built.
