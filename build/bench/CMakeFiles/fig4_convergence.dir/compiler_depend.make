# Empty compiler generated dependencies file for fig4_convergence.
# This may be replaced when dependencies are built.
