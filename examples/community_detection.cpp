/**
 * @file
 * Community detection scenario: Label Propagation over a planted
 * community graph, followed by a k-core filter to find each community's
 * dense nucleus, and a greedy coloring of the community graph —
 * demonstrating three extra GAS algorithms on one pipeline.
 *
 * Usage: ./build/examples/community_detection [--communities N] ...
 */

#include <cstdio>
#include <map>
#include <vector>

#include "algorithms/extras.hh"
#include "algorithms/label_propagation.hh"
#include "core/engine.hh"
#include "graph/generators.hh"
#include "support/flags.hh"

using namespace graphabcd;

namespace {

/** Planted-partition graph: dense communities, sparse cross links. */
EdgeList
plantedCommunities(VertexId communities, VertexId size, Rng &rng)
{
    EdgeList el(communities * size);
    for (VertexId c = 0; c < communities; c++) {
        const VertexId base = c * size;
        for (VertexId i = 0; i < size; i++) {
            for (VertexId j = 0; j < size; j++) {
                if (i != j && rng.nextBool(0.4))
                    el.addEdge(base + i, base + j);
            }
        }
    }
    // A few cross-community bridges.
    for (VertexId c = 0; c + 1 < communities; c++) {
        el.addEdge(c * size, (c + 1) * size);
        el.addEdge((c + 1) * size, c * size);
    }
    return el.symmetrized();
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declareInt("communities", 8, "number of planted communities");
    flags.declareInt("size", 40, "vertices per community");
    flags.declareInt("seed", 3, "generator seed");
    if (!flags.parse(argc, argv))
        return 0;

    const auto communities =
        static_cast<VertexId>(flags.getInt("communities"));
    const auto size = static_cast<VertexId>(flags.getInt("size"));
    Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
    EdgeList graph = plantedCommunities(communities, size, rng);
    std::printf("graph: %u vertices, %llu edges, %u planted "
                "communities\n",
                graph.numVertices(),
                static_cast<unsigned long long>(graph.numEdges()),
                communities);

    BlockPartition g(graph, 32);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.tolerance = 0.5;
    opt.maxEpochs = 200.0;

    // 1. Label propagation finds the communities.
    std::vector<double> labels;
    SerialEngine<LabelPropagationProgram>(g, LabelPropagationProgram(),
                                          opt)
        .run(labels);
    std::map<double, std::uint32_t> sizes;
    for (double label : labels)
        sizes[label]++;
    std::printf("label propagation found %zu communities, sizes:",
                sizes.size());
    for (const auto &[label, count] : sizes)
        std::printf(" %u", count);
    std::printf("\n");

    // 2. k-core filter marks each community's dense nucleus.
    std::vector<double> alive;
    SerialEngine<KCoreProgram>(g, KCoreProgram(8), opt).run(alive);
    std::printf("8-core nucleus: %llu of %u vertices\n",
                static_cast<unsigned long long>(kcoreSize(alive)),
                graph.numVertices());

    // 3. Greedy coloring (e.g. for parallel processing of members).
    std::vector<double> colors;
    SerialEngine<ColoringProgram>(g, ColoringProgram(), opt).run(colors);
    std::uint32_t max_color = 0;
    for (double c : colors)
        max_color = std::max(max_color, ColoringProgram::colorOf(c));
    std::printf("greedy coloring: %u colors, %llu conflicts\n",
                max_color + 1,
                static_cast<unsigned long long>(
                    coloringConflicts(g, colors)));
    return 0;
}
