/**
 * @file
 * MetricsServer — a minimal loopback HTTP/1.0 listener for scrapes.
 *
 * One background thread, blocking accept (bounded by a poll timeout so
 * stop() is prompt), one request per connection, `Connection: close`.
 * That is deliberately the whole design: a scrape every few seconds is
 * the workload, so concurrency machinery would be dead weight, and the
 * serve tool's stdin loop must never share a thread with socket I/O.
 *
 * Routes:
 *   GET /metrics           Prometheus text exposition of the registry
 *   GET /series            sampler time series as CSV
 *   GET /convergence       convergence recorder as CSV
 *   GET /convergence.json  convergence recorder as JSON
 *
 * Binds 127.0.0.1 only — this is an operator port, not a public API;
 * production fronting belongs in a real proxy.  Port 0 requests an
 * ephemeral port (tests); port() reports the bound one.
 */

#ifndef GRAPHABCD_OBS_METRICS_SERVER_HH
#define GRAPHABCD_OBS_METRICS_SERVER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace graphabcd {

class MetricsServer
{
  public:
    MetricsServer() = default;
    ~MetricsServer();

    MetricsServer(const MetricsServer &) = delete;
    MetricsServer &operator=(const MetricsServer &) = delete;

    /**
     * Bind 127.0.0.1:port (0 = ephemeral) and start serving.
     * @return false with *error filled on bind/listen failure.
     */
    bool start(std::uint16_t port, std::string *error = nullptr);

    /** Stop the thread and close the socket.  Idempotent. */
    void stop();

    bool running() const { return running_.load(); }

    /** @return the bound port (resolves port 0), 0 when stopped. */
    std::uint16_t port() const { return port_; }

    /**
     * The response body for one request path, also used by the METRICS
     * stdin verb and tests (no socket needed).
     * @return true when the path is routable; *body and *content_type
     * are filled on success.
     */
    static bool handlePath(const std::string &path, std::string *body,
                           std::string *content_type);

  private:
    void loop();
    void serveClient(int fd);

    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopRequested_{false};
    std::thread thread_;
};

} // namespace graphabcd

#endif // GRAPHABCD_OBS_METRICS_SERVER_HH
