/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: inform() for status, warn() for suspicious
 * but survivable conditions, fatal() for user errors (bad configuration,
 * malformed input) and panic() for internal invariant violations.  Because
 * this is a library rather than a standalone simulator, fatal() and panic()
 * raise exceptions instead of terminating the process, so embedding
 * applications and tests can recover.
 */

#ifndef GRAPHABCD_SUPPORT_LOGGING_HH
#define GRAPHABCD_SUPPORT_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/log.hh"

namespace graphabcd {

/**
 * Base class of all errors raised by the library.
 */
class GraphError : public std::runtime_error
{
  public:
    explicit GraphError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Raised by fatal(): the caller supplied an invalid configuration or
 * malformed input.  Equivalent of gem5's fatal().
 */
class FatalError : public GraphError
{
  public:
    explicit FatalError(const std::string &what_arg)
        : GraphError(what_arg)
    {}
};

/**
 * Raised by panic(): an internal invariant was violated, i.e. a bug in
 * the library itself.  Equivalent of gem5's panic().
 */
class PanicError : public GraphError
{
  public:
    explicit PanicError(const std::string &what_arg)
        : GraphError(what_arg)
    {}
};

namespace detail {

/** Concatenate a parameter pack into one string using operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Global verbosity switch shared by inform()/warn(). */
bool &verboseFlag();

} // namespace detail

/** Enable or disable inform()/warn() console output (default: enabled). */
void setVerbose(bool verbose);

/** @return whether inform()/warn() currently print. */
bool verbose();

/**
 * Print an informational status message to stderr.
 * @param args pieces concatenated with operator<<.
 */
template <typename... Args>
void
inform(Args &&...args)
{
    // Routed through the structured logger's Logger directly (not the
    // compile-out macros): status messages are user-facing output of
    // the tools, so they must survive GRAPHABCD_OBS=OFF builds too.
    if (verbose()) {
        obs::logAt(obs::LogLevel::Info, "graphabcd",
                   detail::concat(std::forward<Args>(args)...).c_str());
    }
}

/**
 * Print a warning to stderr.  The computation continues.
 * @param args pieces concatenated with operator<<.
 */
template <typename... Args>
void
warn(Args &&...args)
{
    if (verbose()) {
        obs::logAt(obs::LogLevel::Warn, "graphabcd",
                   detail::concat(std::forward<Args>(args)...).c_str());
    }
}

/**
 * Report an unrecoverable *user* error (bad parameters, malformed file).
 * Fires the obs fatal hook (flight-recorder dump) before throwing.
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string message = detail::concat(std::forward<Args>(args)...);
    obs::notifyFatal(message.c_str());
    throw FatalError(message);
}

/**
 * Report an internal invariant violation (a library bug).  Fires the
 * same fatal hook as fatal(): an invariant violation is precisely when
 * the flight recorder's black box is worth capturing.
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string message = detail::concat(std::forward<Args>(args)...);
    obs::notifyFatal(message.c_str());
    throw PanicError(message);
}

} // namespace graphabcd

/**
 * Checked assertion that survives NDEBUG builds.  Use for invariants whose
 * violation indicates a library bug; the failure message names the
 * expression and source location.
 */
#define GRAPHABCD_ASSERT(cond, ...)                                        \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::graphabcd::panic("assertion '", #cond, "' failed at ",       \
                               __FILE__, ":", __LINE__, ": ",              \
                               ##__VA_ARGS__);                             \
        }                                                                  \
    } while (0)

#endif // GRAPHABCD_SUPPORT_LOGGING_HH
