#include "support/fingerprint.hh"

#include <cstring>

namespace graphabcd {

namespace {
constexpr std::uint64_t fnvPrime = 0x100000001b3ull;
} // namespace

Fingerprint &
Fingerprint::mixBytes(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; i++) {
        hash ^= bytes[i];
        hash *= fnvPrime;
    }
    return *this;
}

Fingerprint &
Fingerprint::mix(std::uint64_t v)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; i++)
        bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    return mixBytes(bytes, sizeof(bytes));
}

Fingerprint &
Fingerprint::mix(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return mix(bits);
}

Fingerprint &
Fingerprint::mix(std::string_view s)
{
    mix(static_cast<std::uint64_t>(s.size()));
    return mixBytes(s.data(), s.size());
}

} // namespace graphabcd
