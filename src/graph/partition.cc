#include "graph/partition.hh"

#include <algorithm>
#include <utility>

#include "support/logging.hh"

namespace graphabcd {

BlockPartition::BlockPartition(const EdgeList &el, VertexId block_size,
                               LayoutOptions lo)
    : nVertices(el.numVertices()), layoutOpts_(lo)
{
    GRAPHABCD_ASSERT(block_size > 0, "block size must be positive");
    blockSize_ = std::min<VertexId>(block_size,
                                    std::max<VertexId>(nVertices, 1));
    nBlocks = nVertices == 0
        ? 0
        : static_cast<BlockId>((nVertices + blockSize_ - 1) / blockSize_);

    blockBegins.resize(static_cast<std::size_t>(nBlocks) + 1);
    for (BlockId b = 0; b < nBlocks; b++)
        blockBegins[b] = b * blockSize_;
    blockBegins[nBlocks] = nVertices;

    if (layoutOpts_.reorder == VertexReorder::Hub) {
        perm_ = VertexPermutation::hubCluster(el);
        buildFromBoundaries(perm_.apply(el));
    } else {
        buildFromBoundaries(el);
    }
}

BlockPartition::BlockPartition(const EdgeList &el,
                               EdgeId target_edges_per_block,
                               EdgeBalanced, LayoutOptions lo)
    : nVertices(el.numVertices()), layoutOpts_(lo)
{
    GRAPHABCD_ASSERT(target_edges_per_block > 0,
                     "edge budget must be positive");

    // The edge-balanced cut depends on per-vertex in-degrees, so remap
    // to internal ids *before* computing the boundaries.
    EdgeList remapped;
    const EdgeList *input = &el;
    if (layoutOpts_.reorder == VertexReorder::Hub) {
        perm_ = VertexPermutation::hubCluster(el);
        remapped = perm_.apply(el);
        input = &remapped;
    }

    // Greedy contiguous cut: extend the current block until its in-edge
    // count reaches the target; a single hub vertex may exceed the
    // target on its own (blocks always hold at least one vertex).
    std::vector<std::uint32_t> ind = input->inDegrees();
    blockBegins.push_back(0);
    EdgeId in_block = 0;
    for (VertexId v = 0; v < nVertices; v++) {
        in_block += ind[v];
        if (in_block >= target_edges_per_block && v + 1 < nVertices) {
            blockBegins.push_back(v + 1);
            in_block = 0;
        }
    }
    if (nVertices > 0)
        blockBegins.push_back(nVertices);
    else
        blockBegins.assign(1, 0);

    nBlocks = static_cast<BlockId>(blockBegins.size() - 1);
    blockSize_ = nBlocks
        ? std::max<VertexId>(1, nVertices / nBlocks)
        : 1;

    buildFromBoundaries(*input);
}

void
BlockPartition::buildFromBoundaries(const EdgeList &el)
{
    // Vertex -> block lookup.
    vertexBlock.resize(nVertices);
    for (BlockId b = 0; b < nBlocks; b++) {
        for (VertexId v = blockBegins[b]; v < blockBegins[b + 1]; v++)
            vertexBlock[v] = b;
    }

    const EdgeId m = el.numEdges();
    nEdges_ = m;
    inOffsets.assign(static_cast<std::size_t>(nVertices) + 1, 0);
    edgeSrc_.resize(m);
    edgeDst_.resize(m);
    edgeWeight_.resize(m);

    // Counting sort by destination: in-coming edges of the same vertex
    // become contiguous; since blocks are contiguous vertex ranges, each
    // block's edge slice is contiguous too (the paper's layout).
    for (const Edge &e : el.edges())
        inOffsets[e.dst + 1]++;
    for (VertexId v = 0; v < nVertices; v++)
        inOffsets[v + 1] += inOffsets[v];

    {
        std::vector<EdgeId> cursor(inOffsets.begin(), inOffsets.end() - 1);
        for (const Edge &e : el.edges()) {
            EdgeId pos = cursor[e.dst]++;
            edgeSrc_[pos] = e.src;
            edgeDst_[pos] = e.dst;
            edgeWeight_[pos] = e.weight;
        }
    }

    // Compressed layouts delta-encode each vertex's source list, which
    // requires it sorted.  This must happen before the scatter index is
    // built so positions and sources stay consistent; plain layouts
    // keep the historical input-order lists byte for byte.
    if (compressed())
        sortInLists();

    // Scatter index: group CSC positions by their *source* vertex with a
    // second counting sort, so SCATTER can enumerate where to copy a
    // vertex's new value.
    scatterOffsets.assign(static_cast<std::size_t>(nVertices) + 1, 0);
    for (EdgeId pos = 0; pos < m; pos++)
        scatterOffsets[edgeSrc_[pos] + 1]++;
    for (VertexId v = 0; v < nVertices; v++)
        scatterOffsets[v + 1] += scatterOffsets[v];

    scatterPos.resize(m);
    {
        std::vector<EdgeId> cursor(scatterOffsets.begin(),
                                   scatterOffsets.end() - 1);
        for (EdgeId pos = 0; pos < m; pos++)
            scatterPos[cursor[edgeSrc_[pos]]++] = pos;
    }

    // Downstream block sets: for each source block, the sorted unique
    // destination blocks of its out-edges.
    downstreamOffsets.assign(static_cast<std::size_t>(nBlocks) + 1, 0);
    std::vector<std::vector<BlockId>> per_block(nBlocks);
    {
        std::vector<BlockId> scratch;
        for (BlockId b = 0; b < nBlocks; b++) {
            scratch.clear();
            for (VertexId v = blockBegin(b); v < blockEnd(b); v++) {
                const EdgeId s = scatterOffsets[v], e = scatterOffsets[v + 1];
                for (EdgeId i = s; i < e; i++)
                    scratch.push_back(blockOf(edgeDst_[scatterPos[i]]));
            }
            std::sort(scratch.begin(), scratch.end());
            scratch.erase(std::unique(scratch.begin(), scratch.end()),
                          scratch.end());
            per_block[b] = scratch;
            downstreamOffsets[b + 1] =
                downstreamOffsets[b] + scratch.size();
        }
    }
    downstream.resize(downstreamOffsets[nBlocks]);
    for (BlockId b = 0; b < nBlocks; b++) {
        std::copy(per_block[b].begin(), per_block[b].end(),
                  downstream.begin() +
                      static_cast<std::ptrdiff_t>(downstreamOffsets[b]));
    }

    blockEdgeStarts_.resize(static_cast<std::size_t>(nBlocks) + 1);
    for (BlockId b = 0; b < nBlocks; b++)
        blockEdgeStarts_[b] = edgeBegin(b);
    blockEdgeStarts_[nBlocks] = m;

    if (compressed())
        packCompressed();
    else
        weightMode_ = WeightMode::Float32;
}

void
BlockPartition::sortInLists()
{
    // Sort each vertex's in-list segment by source id so the deltas of
    // the packed stream are non-negative and small.  Destination is
    // constant inside a segment; weights travel with their source.
    std::vector<std::pair<VertexId, float>> seg;
    for (VertexId v = 0; v < nVertices; v++) {
        const EdgeId begin = inOffsets[v], end = inOffsets[v + 1];
        if (end - begin < 2)
            continue;
        seg.clear();
        for (EdgeId e = begin; e < end; e++)
            seg.emplace_back(edgeSrc_[e], edgeWeight_[e]);
        std::stable_sort(seg.begin(), seg.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        for (EdgeId e = begin; e < end; e++) {
            edgeSrc_[e] = seg[e - begin].first;
            edgeWeight_[e] = seg[e - begin].second;
        }
    }
}

void
BlockPartition::packCompressed()
{
    const EdgeId m = nEdges_;

    // Weight sidecar mode: Unit when every weight is exactly 1.0f (the
    // common unweighted case — zero bytes), U8 when all weights are
    // integral in [0, 255] (generated SSSP/CF-style small ratings),
    // Float32 otherwise (the wide array is simply kept).
    weightMode_ = WeightMode::Unit;
    for (EdgeId e = 0; e < m && weightMode_ != WeightMode::Float32; e++) {
        const float w = edgeWeight_[e];
        if (w == 1.0f)
            continue;
        if (w >= 0.0f && w <= 255.0f &&
            w == static_cast<float>(static_cast<std::uint8_t>(w))) {
            weightMode_ = WeightMode::U8;
            continue;
        }
        weightMode_ = WeightMode::Float32;
    }
    if (weightMode_ == WeightMode::U8) {
        wgt8_.resize(m);
        for (EdgeId e = 0; e < m; e++)
            wgt8_[e] = static_cast<std::uint8_t>(edgeWeight_[e]);
    }
    if (weightMode_ != WeightMode::Float32) {
        edgeWeight_.clear();
        edgeWeight_.shrink_to_fit();
    }

    // Gather streams: per-vertex delta-varint source lists (sorted by
    // sortInLists).  gatherOffsets_[v] is the byte offset of v's list.
    gatherOffsets_.resize(static_cast<std::size_t>(nVertices) + 1);
    gatherStream_.clear();
    gatherStream_.reserve(m * 2);
    for (VertexId v = 0; v < nVertices; v++) {
        gatherOffsets_[v] = gatherStream_.size();
        codec::encodeDeltaList32(
            {edgeSrc_.data() + inOffsets[v],
             edgeSrc_.data() + inOffsets[v + 1]},
            gatherStream_);
    }
    gatherOffsets_[nVertices] = gatherStream_.size();
    gatherStream_.shrink_to_fit();

    // Scatter streams: per-vertex delta-varint position lists.  The
    // counting sort above produced them ascending, so deltas are
    // non-negative and the common in-block runs are 1-byte.
    scatterByteOffsets_.resize(static_cast<std::size_t>(nVertices) + 1);
    scatterStream_.clear();
    scatterStream_.reserve(m * 2);
    for (VertexId v = 0; v < nVertices; v++) {
        scatterByteOffsets_[v] = scatterStream_.size();
        codec::encodeDeltaList64(
            {scatterPos.data() + scatterOffsets[v],
             scatterPos.data() + scatterOffsets[v + 1]},
            scatterStream_);
    }
    scatterByteOffsets_[nVertices] = scatterStream_.size();
    scatterStream_.shrink_to_fit();

    // 16-bit in-block destination ids, possible iff every block spans
    // at most 2^16 vertices (the default block sizes are far smaller).
    dstLocal16_ = nBlocks > 0;
    for (BlockId b = 0; b < nBlocks; b++) {
        if (blockVertexCount(b) > 65536) {
            dstLocal16_ = false;
            break;
        }
    }
    if (dstLocal16_) {
        dst16_.resize(m);
        for (EdgeId e = 0; e < m; e++) {
            const VertexId d = edgeDst_[e];
            dst16_[e] = static_cast<std::uint16_t>(
                d - blockBegin(vertexBlock[d]));
        }
        edgeDst_.clear();
        edgeDst_.shrink_to_fit();
    }

    // The packed streams now carry the topology; drop the wide arrays.
    edgeSrc_.clear();
    edgeSrc_.shrink_to_fit();
    scatterPos.clear();
    scatterPos.shrink_to_fit();
}

VertexId
BlockPartition::edgeSrc(EdgeId e) const
{
    if (!compressed())
        return edgeSrc_[e];
    // Sample/debug path: locate the owning destination vertex, then
    // decode its list up to position e.
    const auto it = std::upper_bound(inOffsets.begin(), inOffsets.end(), e);
    const VertexId v = static_cast<VertexId>(it - inOffsets.begin()) - 1;
    const std::uint8_t *p = gatherStream_.data() + gatherOffsets_[v];
    VertexId src = 0;
    for (EdgeId i = inOffsets[v]; i <= e; i++) {
        std::uint32_t d = 0;
        p = codec::decodeVarint32(p, d);
        src = i == inOffsets[v] ? d : src + d;
    }
    return src;
}

VertexId
BlockPartition::edgeDst(EdgeId e) const
{
    if (!dstLocal16_)
        return edgeDst_[e];
    const BlockId b = dstBlockSearch(e);
    return blockBegin(b) + dst16_[e];
}

BlockId
BlockPartition::dstBlockSearch(EdgeId e) const
{
    GRAPHABCD_ASSERT(e < nEdges_, "edge position out of range");
    const auto it = std::upper_bound(blockEdgeStarts_.begin(),
                                     blockEdgeStarts_.end(), e);
    return static_cast<BlockId>(it - blockEdgeStarts_.begin()) - 1;
}

BlockEdgesView
BlockPartition::blockEdges(BlockId b, EdgeSliceScratch &scratch) const
{
    const EdgeId begin = edgeBegin(b), end = edgeEnd(b);
    const EdgeId count = end - begin;

    if (!compressed()) {
        gatherBytesMoved_.fetch_add(
            count * (sizeof(VertexId) + sizeof(float)),
            std::memory_order_relaxed);
        return {begin,
                {edgeSrc_.data() + begin, edgeSrc_.data() + end},
                {edgeWeight_.data() + begin, edgeWeight_.data() + end}};
    }

    scratch.src.resize(count);
    const std::uint8_t *p =
        gatherStream_.data() + gatherOffsets_[blockBegin(b)];
    EdgeId out = 0;
    for (VertexId v = blockBegin(b); v < blockEnd(b); v++) {
        const EdgeId deg = inOffsets[v + 1] - inOffsets[v];
        VertexId src = 0;
        for (EdgeId i = 0; i < deg; i++) {
            std::uint32_t d = 0;
            p = codec::decodeVarint32(p, d);
            src = i == 0 ? d : src + d;
            scratch.src[out++] = src;
        }
    }

    std::span<const float> wgt;
    switch (weightMode_) {
      case WeightMode::Unit:
        scratch.wgt.assign(count, 1.0f);
        wgt = scratch.wgt;
        break;
      case WeightMode::U8:
        scratch.wgt.resize(count);
        for (EdgeId i = 0; i < count; i++)
            scratch.wgt[i] = static_cast<float>(wgt8_[begin + i]);
        wgt = scratch.wgt;
        break;
      case WeightMode::Float32:
        wgt = {edgeWeight_.data() + begin, edgeWeight_.data() + end};
        break;
    }

    gatherBytesMoved_.fetch_add(
        gatherPackedBytes(b) + count * sidecarBytesPerEdge(),
        std::memory_order_relaxed);
    return {begin, scratch.src, wgt};
}

std::span<const EdgeId>
BlockPartition::scatterList(VertexId v, ScatterScratch &scratch) const
{
    const EdgeId deg = scatterOffsets[v + 1] - scatterOffsets[v];
    if (!compressed()) {
        scatterBytesMoved_.fetch_add(deg * sizeof(EdgeId),
                                     std::memory_order_relaxed);
        return {scatterPos.data() + scatterOffsets[v],
                scatterPos.data() + scatterOffsets[v + 1]};
    }

    scratch.pos.resize(deg);
    const std::uint8_t *p =
        scatterStream_.data() + scatterByteOffsets_[v];
    EdgeId pos = 0;
    for (EdgeId i = 0; i < deg; i++) {
        std::uint64_t d = 0;
        p = codec::decodeVarint64(p, d);
        pos = i == 0 ? d : pos + d;
        scratch.pos[i] = pos;
    }
    scatterBytesMoved_.fetch_add(
        scatterByteOffsets_[v + 1] - scatterByteOffsets_[v],
        std::memory_order_relaxed);
    return scratch.pos;
}

} // namespace graphabcd
