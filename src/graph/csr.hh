/**
 * @file
 * Compressed sparse row adjacency, used by the GraphMat baseline and the
 * exact reference algorithms.
 *
 * Two physical layouts behind one API (DESIGN.md §11):
 *
 *  - GraphLayout::Plain — classic parallel (neighbor, weight) arrays;
 *    the span accessors neighbors()/weights() view them directly.
 *  - GraphLayout::Compressed — each row's neighbors are sorted and
 *    stored as a varint delta stream (first id absolute, then gaps),
 *    with the weight sidecar elided when every weight is 1.0f or
 *    narrowed to one byte when all are small integers.  Rows are read
 *    through row() into a caller-owned RowScratch, or streamed with
 *    forEachNeighbor(); the span accessors assert on this layout
 *    because there is no decoded array to view.
 */

#ifndef GRAPHABCD_GRAPH_CSR_HH
#define GRAPHABCD_GRAPH_CSR_HH

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/codec.hh"
#include "graph/edge_list.hh"
#include "graph/layout.hh"
#include "graph/types.hh"

namespace graphabcd {

/**
 * CSR adjacency: for each vertex, a contiguous span of (neighbor, weight)
 * pairs.  Build "by source" for out-adjacency or "by destination" for
 * in-adjacency (CSC).
 */
class Csr
{
  public:
    /** Which endpoint indexes the rows. */
    enum class Axis { BySource, ByDestination };

    /** Caller-owned decode buffer for compressed rows. */
    struct RowScratch
    {
        std::vector<VertexId> nbr;
        std::vector<float> wgt;
    };

    /** One decoded (or directly viewed) row. */
    struct RowView
    {
        std::span<const VertexId> nbr;
        std::span<const float> wgt;

        std::size_t size() const { return nbr.size(); }
    };

    Csr() = default;

    /**
     * Build from an edge list.
     * @param el input edges.
     * @param axis BySource => row v holds v's out-neighbors (dst ids);
     *             ByDestination => row v holds v's in-neighbors (src ids).
     * @param layout physical row storage; Compressed sorts each row by
     *        neighbor id (weights stay paired with their neighbor).
     */
    Csr(const EdgeList &el, Axis axis,
        GraphLayout layout = GraphLayout::Plain);

    VertexId numVertices() const { return nVertices; }
    EdgeId numEdges() const { return nEdges; }
    GraphLayout layout() const { return layout_; }
    bool compressed() const { return layout_ == GraphLayout::Compressed; }

    /**
     * @return neighbor ids of `row` (out- or in-, per the build axis).
     * Plain layout only — compressed rows have no array to view; use
     * row() or forEachNeighbor().
     */
    std::span<const VertexId>
    neighbors(VertexId row) const
    {
        assert(!compressed());
        return {adj.data() + offsets[row],
                adj.data() + offsets[row + 1]};
    }

    /** @return weights parallel to neighbors(row).  Plain layout only. */
    std::span<const float>
    weights(VertexId row) const
    {
        assert(!compressed());
        return {wgt.data() + offsets[row], wgt.data() + offsets[row + 1]};
    }

    /**
     * @return the row's (neighbor, weight) pairs, decoding into
     * `scratch` when compressed (the view aliases `scratch` until the
     * next row() call with the same scratch).  Works on both layouts.
     */
    RowView row(VertexId row, RowScratch &scratch) const;

    /** Invoke fn(neighbor, weight) for each entry of the row. */
    template <typename Fn>
    void
    forEachNeighbor(VertexId row, Fn &&fn) const
    {
        if (!compressed()) {
            const EdgeId begin = offsets[row], end = offsets[row + 1];
            for (EdgeId i = begin; i < end; i++)
                fn(adj[i], wgt[i]);
            return;
        }
        const std::uint32_t deg = degree(row);
        const std::uint8_t *p = stream_.data() + byteOffsets_[row];
        VertexId prev = 0;
        for (std::uint32_t i = 0; i < deg; i++) {
            std::uint32_t d;
            p = codec::decodeVarint32(p, d);
            const VertexId nbr = i == 0 ? d : prev + d;
            prev = nbr;
            fn(nbr, weightAt(offsets[row] + i));
        }
    }

    /** @return degree of the row (out- or in-, per the build axis). */
    std::uint32_t
    degree(VertexId row) const
    {
        return static_cast<std::uint32_t>(offsets[row + 1] - offsets[row]);
    }

    /** @return the row offsets array (size numVertices()+1). */
    const std::vector<EdgeId> &rowOffsets() const { return offsets; }

    /**
     * @return measured topology+weight bytes stored per edge for this
     * layout (plain: exactly 8; compressed: varint stream + sidecar).
     */
    double bytesPerEdge() const;

  private:
    float
    weightAt(EdgeId e) const
    {
        switch (weightMode_) {
          case WeightMode::Unit:
            return 1.0f;
          case WeightMode::U8:
            return static_cast<float>(wgt8_[e]);
          default:
            return wgt[e];
        }
    }

    void pack();   //!< plain arrays -> sorted varint streams

    VertexId nVertices = 0;
    EdgeId nEdges = 0;
    GraphLayout layout_ = GraphLayout::Plain;
    WeightMode weightMode_ = WeightMode::Float32;
    std::vector<EdgeId> offsets;   //!< size nVertices+1
    std::vector<VertexId> adj;     //!< plain: size numEdges
    std::vector<float> wgt;        //!< plain / Float32: size numEdges
    // Compressed-only storage.
    std::vector<std::uint8_t> stream_;      //!< concatenated row codes
    std::vector<std::size_t> byteOffsets_;  //!< size nVertices+1
    std::vector<std::uint8_t> wgt8_;        //!< U8 sidecar
};

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_CSR_HH
