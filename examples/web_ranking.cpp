/**
 * @file
 * Web-scale ranking scenario: PageRank over a social/web graph stand-in
 * on the *simulated* HARPv2 CPU-FPGA platform, comparing the paper's
 * four configurations (cyclic/priority x hybrid off/on) and printing
 * the projected accelerator-side statistics a deployment would care
 * about: time, throughput, PE/bus utilization, memory traffic.
 *
 * Usage: ./build/examples/web_ranking [--graph WT|PS|LJ|TW] [--scale S]
 */

#include <cstdio>
#include <iostream>

#include "algorithms/pagerank.hh"
#include "graph/datasets.hh"
#include "graph/partition.hh"
#include "harp/system.hh"
#include "support/flags.hh"
#include "support/table.hh"
#include "support/units.hh"

using namespace graphabcd;

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("graph", "WT", "dataset key (WT, PS, LJ, TW)");
    flags.declareDouble("scale", 1.0, "dataset scale factor");
    flags.declareInt("block-size", 512, "vertices per block");
    if (!flags.parse(argc, argv))
        return 0;

    Dataset ds = makeDataset(flags.get("graph"),
                             flags.getDouble("scale"));
    std::printf("ranking %s: %s pages, %s links\n",
                ds.info.paperName.c_str(),
                formatCount(ds.numVertices()).c_str(),
                formatCount(ds.numEdges()).c_str());

    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));
    BlockPartition g(ds.graph, block_size);

    Table table({"schedule", "hybrid", "time", "MTES", "PE util",
                 "bus util", "bus traffic", "epochs"});

    std::vector<double> best_ranks;
    double best_time = 0.0;
    for (Schedule sched : {Schedule::Cyclic, Schedule::Priority}) {
        for (bool hybrid : {false, true}) {
            EngineOptions opt;
            opt.blockSize = block_size;
            opt.schedule = sched;
            opt.tolerance = 0.01 / ds.numVertices();
            HarpConfig cfg;
            cfg.hybrid = hybrid;
            HarpSystem<PageRankProgram> sys(g, PageRankProgram(0.85),
                                            opt, cfg);
            std::vector<double> ranks;
            SimReport r = sys.run(ranks);
            table.row()
                .add(to_string(sched))
                .add(hybrid ? "on" : "off")
                .add(formatSeconds(r.seconds))
                .add(r.mtes, 4)
                .add(r.peUtilization, 3)
                .add(r.busUtilization, 3)
                .add(formatBytes(static_cast<double>(
                    r.busReadBytes + r.busWriteBytes)))
                .add(r.epochs, 4);
            if (best_ranks.empty() || r.seconds < best_time) {
                best_time = r.seconds;
                best_ranks = ranks;
            }
        }
    }
    table.print(std::cout);

    VertexId top = 0;
    for (VertexId v = 1; v < ds.numVertices(); v++) {
        if (best_ranks[v] > best_ranks[top])
            top = v;
    }
    std::printf("highest-ranked page: vertex %u (rank %.3g, %u "
                "in-links)\n",
                top, best_ranks[top], g.inDegree(top));
    return 0;
}
