# Empty compiler generated dependencies file for abcd_cli.
# This may be replaced when dependencies are built.
