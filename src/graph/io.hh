/**
 * @file
 * Plain-text edge-list I/O (the format the paper's prototype consumes).
 *
 * Format: one "src dst [weight]" triple per line; '#' or '%' start
 * comment lines (SNAP and Matrix Market headers respectively).  Vertex
 * ids may be sparse in the file; loadEdgeList() densifies them.
 */

#ifndef GRAPHABCD_GRAPH_IO_HH
#define GRAPHABCD_GRAPH_IO_HH

#include <string>

#include "graph/edge_list.hh"

namespace graphabcd {

/**
 * Load a whitespace-separated edge list.
 * @param path input file.
 * @param densify remap sparse ids to [0, n); when false the max id + 1
 *        becomes the vertex count.
 * @throws FatalError on missing/garbled files.
 */
EdgeList loadEdgeList(const std::string &path, bool densify = true);

/** Write "src dst weight" lines (weight omitted when uniformly 1). */
void saveEdgeList(const EdgeList &el, const std::string &path);

/**
 * Write the compact binary format: magic "ABCD", format version,
 * vertex count, edge count, then raw (src, dst, weight) records.
 * Roughly 5x smaller and 20x faster to load than the text format.
 */
void saveEdgeListBinary(const EdgeList &el, const std::string &path);

/** Load the binary format; fatal() on bad magic/version/truncation. */
EdgeList loadEdgeListBinary(const std::string &path);

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_IO_HH
