#include "support/stats.hh"

#include <cstdio>

namespace graphabcd {

void
StatRegistry::merge(const StatRegistry &other)
{
    for (const auto &[name, value] : other.counters)
        counters[name] += value;
    for (const auto &[name, value] : other.scalars)
        scalars[name] = value;
    for (const auto &[name, dist] : other.dists)
        dists[name].merge(dist);
}

std::vector<std::string>
StatRegistry::dump() const
{
    std::vector<std::string> lines;
    char buf[160];
    for (const auto &[name, value] : counters) {
        std::snprintf(buf, sizeof(buf), "%s = %llu", name.c_str(),
                      static_cast<unsigned long long>(value));
        lines.emplace_back(buf);
    }
    for (const auto &[name, value] : scalars) {
        std::snprintf(buf, sizeof(buf), "%s = %g", name.c_str(), value);
        lines.emplace_back(buf);
    }
    for (const auto &[name, dist] : dists) {
        std::snprintf(buf, sizeof(buf),
                      "%s = {n=%llu mean=%g min=%g max=%g}", name.c_str(),
                      static_cast<unsigned long long>(dist.count()),
                      dist.mean(), dist.min(), dist.max());
        lines.emplace_back(buf);
    }
    return lines;
}

} // namespace graphabcd
