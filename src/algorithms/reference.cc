#include "algorithms/reference.hh"

#include <algorithm>
#include <cmath>
#include <queue>

#include "graph/csr.hh"
#include "support/logging.hh"

namespace graphabcd {

std::vector<double>
pagerankReference(const EdgeList &el, double alpha, double tol,
                  std::uint32_t max_iters)
{
    const VertexId n = el.numVertices();
    const Csr in(el, Csr::Axis::ByDestination);
    const std::vector<std::uint32_t> outdeg = el.outDegrees();

    std::vector<double> x(n, 1.0 / std::max<double>(n, 1.0));
    std::vector<double> next(n);
    const double base = (1.0 - alpha) / std::max<double>(n, 1.0);

    for (std::uint32_t it = 0; it < max_iters; it++) {
        double max_change = 0.0;
        for (VertexId v = 0; v < n; v++) {
            double acc = 0.0;
            for (VertexId u : in.neighbors(v)) {
                if (outdeg[u])
                    acc += x[u] / outdeg[u];
            }
            next[v] = base + alpha * acc;
            max_change = std::max(max_change, std::abs(next[v] - x[v]));
        }
        x.swap(next);
        if (max_change < tol)
            break;
    }
    return x;
}

std::vector<double>
dijkstraReference(const EdgeList &el, VertexId source)
{
    constexpr double unreachable = 1e18;
    const VertexId n = el.numVertices();
    GRAPHABCD_ASSERT(source < n, "source outside the graph");
    const Csr out(el, Csr::Axis::BySource);

    std::vector<double> dist(n, unreachable);
    dist[source] = 0.0;

    using Item = std::pair<double, VertexId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    pq.emplace(0.0, source);
    while (!pq.empty()) {
        auto [d, v] = pq.top();
        pq.pop();
        if (d > dist[v])
            continue;
        auto nbrs = out.neighbors(v);
        auto wgts = out.weights(v);
        for (std::size_t i = 0; i < nbrs.size(); i++) {
            double nd = d + static_cast<double>(wgts[i]);
            if (nd < dist[nbrs[i]]) {
                dist[nbrs[i]] = nd;
                pq.emplace(nd, nbrs[i]);
            }
        }
    }
    return dist;
}

std::vector<double>
bfsReference(const EdgeList &el, VertexId source)
{
    constexpr double unreachable = 1e18;
    const VertexId n = el.numVertices();
    GRAPHABCD_ASSERT(source < n, "source outside the graph");
    const Csr out(el, Csr::Axis::BySource);

    std::vector<double> depth(n, unreachable);
    depth[source] = 0.0;
    std::queue<VertexId> frontier;
    frontier.push(source);
    while (!frontier.empty()) {
        VertexId v = frontier.front();
        frontier.pop();
        for (VertexId u : out.neighbors(v)) {
            if (depth[u] >= unreachable) {
                depth[u] = depth[v] + 1.0;
                frontier.push(u);
            }
        }
    }
    return depth;
}

namespace {

/** Union-find with path halving and union by size. */
class DisjointSets
{
  public:
    explicit DisjointSets(VertexId n) : parent(n), size(n, 1)
    {
        for (VertexId v = 0; v < n; v++)
            parent[v] = v;
    }

    VertexId
    find(VertexId v)
    {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    }

    void
    unite(VertexId a, VertexId b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (size[a] < size[b])
            std::swap(a, b);
        parent[b] = a;
        size[a] += size[b];
    }

  private:
    std::vector<VertexId> parent;
    std::vector<VertexId> size;
};

} // namespace

std::vector<double>
ccReference(const EdgeList &el)
{
    const VertexId n = el.numVertices();
    DisjointSets ds(n);
    for (const Edge &e : el.edges())
        ds.unite(e.src, e.dst);

    // Map each root to the minimum vertex id of its component.
    std::vector<VertexId> min_label(n, invalidVertex);
    for (VertexId v = 0; v < n; v++) {
        VertexId r = ds.find(v);
        min_label[r] = std::min(min_label[r], v);
    }
    std::vector<double> labels(n);
    for (VertexId v = 0; v < n; v++)
        labels[v] = min_label[ds.find(v)];
    return labels;
}

} // namespace graphabcd
