#include "serve/result_cache.hh"

#include "support/timer.hh"

namespace graphabcd {

ResultCache::ResultCache(std::size_t capacity, double ttl_seconds,
                         NowFn now_fn)
    : cap(capacity), ttl(ttl_seconds),
      now(now_fn ? std::move(now_fn) : NowFn(&monotonicSeconds))
{
}

bool
ResultCache::expired(const Entry &entry, double t) const
{
    return ttl > 0.0 && t - entry.insertedAt >= ttl;
}

std::shared_ptr<const JobResult>
ResultCache::get(std::uint64_t key)
{
    const double t = now();
    std::lock_guard<std::mutex> lock(mtx);
    auto it = map.find(key);
    if (it == map.end()) {
        counters.misses++;
        return nullptr;
    }
    if (expired(it->second, t)) {
        lru.erase(it->second.lruIt);
        map.erase(it);
        counters.expirations++;
        counters.misses++;
        return nullptr;
    }
    lru.splice(lru.begin(), lru, it->second.lruIt);
    counters.hits++;
    return it->second.result;
}

void
ResultCache::put(std::uint64_t key,
                 std::shared_ptr<const JobResult> result)
{
    if (cap == 0 || !result)
        return;
    const double t = now();
    std::lock_guard<std::mutex> lock(mtx);
    auto it = map.find(key);
    if (it != map.end()) {
        // Replace in place and refresh both LRU position and TTL.  No
        // key was added, so this is a replacement, not an insertion —
        // counting it as the latter would overstate the working set.
        it->second.result = std::move(result);
        it->second.insertedAt = t;
        lru.splice(lru.begin(), lru, it->second.lruIt);
        counters.replacements++;
        return;
    }
    if (map.size() >= cap) {
        // Prefer an already-expired entry as the victim (scanning from
        // the cold end): evicting dead weight preserves a live LRU
        // entry that could still serve hits or warm-starts.
        auto victimIt = lru.end();
        if (ttl > 0.0) {
            for (auto rit = lru.rbegin(); rit != lru.rend(); ++rit) {
                if (expired(map.at(*rit), t)) {
                    victimIt = std::next(rit).base();
                    break;
                }
            }
        }
        if (victimIt != lru.end()) {
            map.erase(*victimIt);
            lru.erase(victimIt);
            counters.expirations++;
        } else {
            const std::uint64_t victim = lru.back();
            lru.pop_back();
            map.erase(victim);
            counters.evictions++;
        }
    }
    lru.push_front(key);
    Entry entry;
    entry.result = std::move(result);
    entry.insertedAt = t;
    entry.lruIt = lru.begin();
    map.emplace(key, std::move(entry));
    counters.insertions++;
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return counters;
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return map.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mtx);
    lru.clear();
    map.clear();
}

} // namespace graphabcd
