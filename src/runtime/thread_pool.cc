#include "runtime/thread_pool.hh"

namespace graphabcd {

ThreadPool::ThreadPool(std::size_t num_threads)
    : queue(0)
{
    GRAPHABCD_ASSERT(num_threads > 0, "thread pool needs a worker");
    workers.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; i++)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    queue.close();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    inflight.fetch_add(1, std::memory_order_acq_rel);
    if (!queue.push(std::move(fn))) {
        inflight.fetch_sub(1, std::memory_order_acq_rel);
        panic("submit() on a destroyed thread pool");
    }
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lock(idleMtx);
    idleCv.wait(lock, [this] {
        return inflight.load(std::memory_order_acquire) == 0;
    });
}

void
ThreadPool::workerLoop()
{
    while (auto fn = queue.pop()) {
        (*fn)();
        if (inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(idleMtx);
            idleCv.notify_all();
        }
    }
}

} // namespace graphabcd
