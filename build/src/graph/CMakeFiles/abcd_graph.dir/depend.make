# Empty dependencies file for abcd_graph.
# This may be replaced when dependencies are built.
