file(REMOVE_RECURSE
  "CMakeFiles/route_planner.dir/route_planner.cpp.o"
  "CMakeFiles/route_planner.dir/route_planner.cpp.o.d"
  "route_planner"
  "route_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
