#include "serve/job_manager.hh"

#include <chrono>
#include <sstream>

#include "obs/log.hh"
#include "obs/obs.hh"
#include "serve/runner.hh"
#include "support/timer.hh"

namespace graphabcd {

const char *
to_string(JobState state)
{
    switch (state) {
      case JobState::Queued:    return "queued";
      case JobState::Running:   return "running";
      case JobState::Done:      return "done";
      case JobState::Cancelled: return "cancelled";
      case JobState::Failed:    return "failed";
      case JobState::Shed:      return "shed";
    }
    return "?";
}

const char *
to_string(SubmitError error)
{
    switch (error) {
      case SubmitError::None:         return "None";
      case SubmitError::QueueFull:    return "QueueFull";
      case SubmitError::UnknownGraph: return "UnknownGraph";
      case SubmitError::BadRequest:   return "BadRequest";
      case SubmitError::ShuttingDown: return "ShuttingDown";
      case SubmitError::Shed:         return "Shed";
    }
    return "?";
}

namespace {

/** ServeConfig -> the admission queue's sizing/policy record. */
QosConfig
makeQosConfig(const ServeConfig &cfg)
{
    QosConfig qos;
    qos.capacity = cfg.queueCapacity;
    qos.workers = std::max(1u, cfg.workers);
    qos.shedOnDeadline = cfg.shedOnDeadline;
    qos.initialServiceSeconds = cfg.initialServiceEstimateSeconds;
    qos.defaults = cfg.defaultQos;
    qos.tenants = cfg.tenantQos;
    return qos;
}

/** JSON string literal (quotes included) for the flight provider;
 *  mirrors the flight recorder's own escaping. */
std::string
flightQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof(esc), "\\u%04x",
                          static_cast<unsigned char>(c));
            out += esc;
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

} // namespace

JobManager::JobManager(GraphRegistry &registry, ServeConfig config)
    : registry_(registry), cfg_(config),
      cache_(config.cacheCapacity, config.cacheTtlSeconds),
      queue_(makeQosConfig(config))
{
    queue_.attachDepthGauge(&obs::gauge("serve.queue_depth"));
    queue_.attachWaitHistogram(
        &obs::histogram("serve.queue_wait_us", obs::latencyBucketsUs()));
    // One engine worker pool for the whole service: concurrent jobs
    // share its fixed threads (bounded per-job participation) instead
    // of each spawning options.numThreads of their own.
    if (cfg_.executor)
        executor_ = cfg_.executor;
    else if (cfg_.poolThreads > 0)
        executor_ = std::make_shared<Executor>(cfg_.poolThreads);
    else
        executor_ = Executor::shared();
    workers_.reserve(cfg_.workers);
    for (std::uint32_t i = 0; i < std::max(1u, cfg_.workers); i++)
        workers_.emplace_back([this] { workerLoop(); });
    if constexpr (obs::kEnabled) {
        if (cfg_.stallWindowSeconds > 0.0) {
            obs::StallWatchdog::Config wd;
            wd.windowSeconds = cfg_.stallWindowSeconds;
            wd.checkSeconds = cfg_.stallCheckSeconds;
            watchdog_ = std::make_unique<obs::StallWatchdog>(wd);
            watchdog_->start();
        }
        // When a flight dump fires (fatal, signal, stall, DUMP verb),
        // include the live job table; removed again in shutdown().
        flightProviderToken_ = obs::flightAddProvider(
            "serve", [this] { return flightJson(); });
    }
    GRAPHABCD_LOG_INFO("serve", "job manager started",
                       LOGF("workers", std::max(1u, cfg_.workers)),
                       LOGF("queue_capacity", cfg_.queueCapacity),
                       LOGF("pool_threads", executor_->size()));
}

JobManager::~JobManager()
{
    shutdown();
}

JobManager::Submitted
JobManager::submit(JobRequest req)
{
    // Every job lives in some QoS lane; anonymous submitters share one.
    if (req.tenant.empty())
        req.tenant = "default";

    // Pre-admission rejections (nothing was registered yet).  Copies,
    // not references: req may have been moved into the job record.
    auto reject = [this, tenant = req.tenant, graph_name = req.graph,
                   algo = req.algo](SubmitError error) {
        GRAPHABCD_LOG_WARN("serve", "job rejected",
                           LOGF("reason", to_string(error)),
                           LOGF("tenant", tenant),
                           LOGF("graph", graph_name),
                           LOGF("algo", algo));
        std::lock_guard<std::mutex> lock(mtx_);
        stats_.submitted++;
        stats_.rejected++;
        TenantEntry &entry = tenantEntryLocked(tenant);
        entry.stats.submitted++;
        entry.stats.rejected++;
        return Submitted{0, error};
    };

    if (shutdown_.load(std::memory_order_acquire))
        return reject(SubmitError::ShuttingDown);
    std::string why;
    if (!isRunnable(req, &why))
        return reject(SubmitError::BadRequest);
    auto graph = registry_.get(req.graph);
    if (!graph)
        return reject(SubmitError::UnknownGraph);

    // Normalise: the partition's geometry is fixed at LOAD time, and
    // the fingerprint must reflect the geometry actually run.
    req.options.blockSize = graph->blockSize();

    auto job = std::make_shared<Job>();
    job->id = nextId_.fetch_add(1, std::memory_order_relaxed);
    job->graph = std::move(graph);
    const std::uint64_t graph_fp = registry_.fingerprint(req.graph);
    job->key = jobFingerprint(graph_fp, req);
    job->familyKey = jobFamilyFingerprint(graph_fp, req);
    job->progress = std::make_shared<Progress>();
    job->submittedAt = monotonicSeconds();

    // Allocate the root of the job's causal span tree here, at
    // submission: queue wait, the run envelope, executor tasks, and
    // fragment pumps all hang off this context.
    if constexpr (obs::kEnabled) {
        job->traceRoot = obs::SpanContext{job->id, obs::nextSpanId(), 0};
        obs::instantSpan("serve.submit", job->traceRoot);
    }

    // Arm the cooperative stop: cancel() + optional deadline measured
    // from submission, so time spent queued counts against the budget.
    StopToken token = job->stop.token();
    if (req.timeoutSeconds > 0.0)
        token = token.withDeadline(req.timeoutSeconds);
    req.options.stop = token;
    req.options.progress = job->progress;
    job->req = std::move(req);

    // Fast path: an identical job already converged — answer from the
    // cache without consuming a queue slot or a worker.
    if (job->req.allowCached) {
        if (auto cached = cache_.get(job->key)) {
            job->cacheHit = true;
            job->result = std::move(cached);
            job->startedAt = job->finishedAt = monotonicSeconds();
            job->state.store(JobState::Done, std::memory_order_release);
            std::lock_guard<std::mutex> lock(mtx_);
            stats_.submitted++;
            stats_.completed++;
            stats_.cacheHits++;
            TenantEntry &entry = tenantEntryLocked(job->req.tenant);
            entry.stats.submitted++;
            entry.stats.completed++;
            entry.stats.cacheHits++;
            jobs_.emplace(job->id, job);
            return Submitted{job->id, SubmitError::None};
        }
    }

    // Pre-register the job *before* queue admission: the instant
    // tryPush succeeds a worker may pop and claim it, and the claim's
    // guarded queued-- must observe this queued++ — registering after
    // the push loses the decrement and pins the gauge high forever.
    {
        std::lock_guard<std::mutex> lock(mtx_);
        stats_.submitted++;
        TenantEntry &entry = tenantEntryLocked(job->req.tenant);
        entry.stats.submitted++;
        entry.stats.queued++;
        publishTenantGauges(entry);
        jobs_.emplace(job->id, job);
    }

    // Deadlines are measured from submission on the same clock the
    // queue uses for its wait estimate, so admission can tell whether
    // the job could plausibly still start in time.
    const double deadline_at = job->req.timeoutSeconds > 0.0
                                   ? job->submittedAt +
                                         job->req.timeoutSeconds
                                   : 0.0;
    auto pushed = queue_.tryPush(job, job->req.tenant,
                                 job->req.priority, deadline_at);
    if (pushed.outcome != AdmitOutcome::Admitted) {
        const SubmitError error =
            pushed.outcome == AdmitOutcome::Shed
                ? SubmitError::Shed
                : (shutdown_.load(std::memory_order_acquire)
                       ? SubmitError::ShuttingDown
                       : SubmitError::QueueFull);
        GRAPHABCD_LOG_WARN("serve", "job rejected",
                           LOGF("reason", to_string(error)),
                           LOGF("tenant", job->req.tenant),
                           LOGF("graph", job->req.graph),
                           LOGF("algo", job->req.algo));
        std::lock_guard<std::mutex> lock(mtx_);
        jobs_.erase(job->id);
        // Every state transition happens under mtx_, so the state is
        // stable here.  A job no longer Queued was claimed (and fully
        // accounted) by a concurrent shutdown() sweep — re-accounting
        // it as a rejection would double-book it.
        if (job->state.load(std::memory_order_acquire) ==
            JobState::Queued) {
            stats_.rejected++;
            TenantEntry &entry = tenantEntryLocked(job->req.tenant);
            entry.stats.rejected++;
            if (entry.stats.queued > 0)
                entry.stats.queued--;
            if (error == SubmitError::Shed) {
                stats_.shedAdmission++;
                entry.stats.shedAdmission++;
                entry.shedCounter->add(1);
            }
            publishTenantGauges(entry);
        }
        return Submitted{0, error};
    }

    GRAPHABCD_LOG_DEBUG("serve", "job admitted", LOGF("job", job->id),
                        LOGF("tenant", job->req.tenant),
                        LOGF("graph", job->req.graph),
                        LOGF("algo", job->req.algo),
                        LOGF("engine", job->req.engine));

    // Admission may have displaced other tenants' newest queued work to
    // make room (fair-share pressure shedding).  Terminalise each
    // victim outside mtx_; a concurrent cancel() may win the CAS, in
    // which case the victim is already accounted for.
    for (auto &victim : pushed.shed) {
        finishJob(victim, JobState::Queued, JobState::Shed,
                  "shed: displaced by fair-share pressure");
    }
    return Submitted{job->id, SubmitError::None};
}

void
JobManager::workerLoop()
{
    std::string tenant;
    while (auto popped = queue_.pop(&tenant)) {
        std::shared_ptr<Job> job = std::move(*popped);
        runJob(job);
        // Return the tenant's in-flight slot on *every* path (run,
        // skip, cancel), or its quota would leak and starve the lane.
        queue_.release(tenant);
    }
}

void
JobManager::runJob(const std::shared_ptr<Job> &job)
{
    // cancel() may have claimed the job while it was queued.
    if (job->state.load(std::memory_order_acquire) != JobState::Queued)
        return;
    if (job->req.options.stop.stopRequested()) {
        // CAS: cancel() may terminalise the job concurrently, and
        // only the winner may count it (else stats_.cancelled is
        // double-counted and the error double-written).
        finishJob(job, JobState::Queued, JobState::Cancelled,
                  stopCauseError(*job, /*queued=*/true));
        return;
    }

    // Re-check the cache: an identical job may have converged while
    // this one sat in the queue.  All non-atomic Job fields are
    // guarded by mtx_ once the job is published in jobs_, so status()
    // snapshots never race the worker.  The outcome fields are written
    // only inside the on-win hook: a concurrent cancel() that wins the
    // Queued->Done race must not find a result (or a started stamp)
    // hanging off its Cancelled job.
    if (job->req.allowCached) {
        if (auto cached = cache_.get(job->key)) {
            finishJob(job, JobState::Queued, JobState::Done, "",
                      [this, &job, &cached] {
                          job->cacheHit = true;
                          job->result = std::move(cached);
                          job->startedAt = monotonicSeconds();
                          stats_.cacheHits++;
                          tenantEntryLocked(job->req.tenant)
                              .stats.cacheHits++;
                      });
            return;
        }
    }

    // Warm start: a converged result from the same fixpoint family
    // (same graph/algo/params, any engine options) seeds this run.
    // The family key deliberately ignores the tenant: one tenant's
    // converged fixpoint legitimately warms another's run of the same
    // family (the values are a function of the request, not of who
    // asked).
    if (job->req.allowWarmStart) {
        std::shared_ptr<const JobResult> seed;
        {
            std::lock_guard<std::mutex> lock(mtx_);
            auto it = lastFixpoint_.find(job->familyKey);
            if (it != lastFixpoint_.end())
                seed = it->second.lock();
        }
        if (seed && seed->values.size() ==
                        job->graph->numVertices()) {
            // Aliasing shared_ptr: keeps the whole JobResult alive,
            // points at its value vector — no copy.
            job->req.options.warmStart =
                std::shared_ptr<const std::vector<double>>(
                    seed, &seed->values);
            std::lock_guard<std::mutex> lock(mtx_);
            job->warmStarted = true;
            stats_.warmStarts++;
            tenantEntryLocked(job->req.tenant).stats.warmStarts++;
        }
    }

    {
        std::lock_guard<std::mutex> lock(mtx_);
        // Claim Queued -> Running; cancel() may have claimed the job
        // between the worker's pop and this point.  The claim is the
        // one place a starting job's startedAt is stamped (terminal
        // paths only backfill a still-zero stamp), so queue-wait and
        // run-time accounting stay monotonic:
        //   submittedAt <= startedAt <= finishedAt.
        JobState expected = JobState::Queued;
        if (!job->state.compare_exchange_strong(expected,
                                                JobState::Running))
            return;
        job->startedAt = monotonicSeconds();
        TenantEntry &entry = tenantEntryLocked(job->req.tenant);
        if (entry.stats.queued > 0)
            entry.stats.queued--;
        entry.stats.running++;
        publishTenantGauges(entry);
        if constexpr (obs::kEnabled) {
            const double wait_us =
                (job->startedAt - job->submittedAt) * 1e6;
            if (entry.waitHist) {
                // Exemplar: the latest wait sample carries the job's
                // root span id, so a histogram outlier links straight
                // into its trace tree.
                entry.waitHist->recordExemplar(wait_us, job->id,
                                               job->traceRoot.span);
            }
            // The queue wait as a retroactive span under the root:
            // the tree shows submit -> claim as its own slice.
            obs::completeSpan(
                "serve.queue_wait", job->submittedAt * 1e6, wait_us,
                obs::SpanContext{job->id, obs::nextSpanId(),
                                 job->traceRoot.span});
        }
        // Open this run's convergence curve in the process-wide
        // recorder.  The sink is a serve-layer hook (like stop and
        // progress), so the cache fingerprint is unaffected.
        if constexpr (obs::kEnabled) {
            job->series = obs::beginConvergence(
                "job" + std::to_string(job->id) + ":" + job->req.graph +
                "/" + job->req.algo + "/" + job->req.engine);
            job->req.options.convergence = job->series;
        }
    }
    running_.fetch_add(1, std::memory_order_relaxed);

    // Watch the run for flat progress.  The progress closure sums the
    // engine's relaxed counters (lock-free, as the watchdog requires);
    // the stall closure owns a job reference so a flagged job outlives
    // any concurrent table pruning.
    if constexpr (obs::kEnabled) {
        if (watchdog_) {
            std::shared_ptr<Progress> progress = job->progress;
            watchdog_->watch(
                job->id,
                "job " + std::to_string(job->id) + " " +
                    job->req.graph + "/" + job->req.algo + "/" +
                    job->req.engine,
                [progress] {
                    return progress->vertexUpdates.load(
                               std::memory_order_relaxed) +
                           progress->blockUpdates.load(
                               std::memory_order_relaxed) +
                           progress->edgeTraversals.load(
                               std::memory_order_relaxed) +
                           progress->scatterWrites.load(
                               std::memory_order_relaxed);
                },
                [this, job](const std::string &diagnosis) {
                    onJobStalled(job, diagnosis);
                });
        }
    }

    RunOutcome outcome;
    Timer run_timer;
    {
        // Adopt the job's root context on this worker thread and open
        // the run span under it; every engine epoch, executor task and
        // fragment pump recorded below nests into the same tree.
        obs::SpanScope adopt(job->traceRoot);
        obs::Span span("serve.run", job->id);
        outcome = runAnalyticsJob(*job->graph, job->req, executor_);
    }

    if constexpr (obs::kEnabled) {
        if (watchdog_)
            watchdog_->unwatch(job->id);
        obs::histogram("serve.job_run_us", obs::latencyBucketsUs())
            .recordExemplar(run_timer.micros(), job->id,
                            job->traceRoot.span);
    }

    running_.fetch_sub(1, std::memory_order_relaxed);

    if (!outcome.ok()) {
        finishJob(job, JobState::Running, JobState::Failed,
                  std::move(outcome.error));
        return;
    }
    if (outcome.report.stopped) {
        // The engine halted through the StopToken, which fires for
        // both cancel() and the per-job deadline; attribute the true
        // cause by which instant came first, not by guessing from the
        // flag (a deadline also rides the token).
        finishJob(job, JobState::Running, JobState::Cancelled,
                  stopCauseError(*job, /*queued=*/false));
        return;
    }

    // Feed the admission-time deadline estimator with what jobs
    // actually cost; only measured runs count (cache hits are ~free
    // and would drag the estimate toward zero).
    queue_.recordServiceSeconds(outcome.report.seconds);

    auto result = std::make_shared<JobResult>();
    result->values = std::move(outcome.values);
    result->report = outcome.report;
    cache_.put(job->key, result);
    finishJob(job, JobState::Running, JobState::Done, "",
              [this, &job, &result] {
                  job->result = result;
                  lastFixpoint_[job->familyKey] = std::move(result);
              });
}

bool
JobManager::finishJob(const std::shared_ptr<Job> &job, JobState from,
                      JobState to, std::string error,
                      const std::function<void()> &on_win)
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        JobState expected = from;
        if (!job->state.compare_exchange_strong(expected, to,
                                                std::memory_order_acq_rel))
            return false;   // lost to a concurrent transition
        if (on_win)
            on_win();
        job->error = std::move(error);
        job->finishedAt = monotonicSeconds();
        if (job->startedAt == 0.0)
            job->startedAt = job->finishedAt;
        TenantEntry &entry = tenantEntryLocked(job->req.tenant);
        if (from == JobState::Queued && entry.stats.queued > 0)
            entry.stats.queued--;
        if (from == JobState::Running && entry.stats.running > 0)
            entry.stats.running--;
        switch (to) {
          case JobState::Done:
            stats_.completed++;
            entry.stats.completed++;
            entry.completedCounter->add(1);
            break;
          case JobState::Cancelled:
            stats_.cancelled++;
            entry.stats.cancelled++;
            break;
          case JobState::Failed:
            stats_.failed++;
            entry.stats.failed++;
            break;
          case JobState::Shed:
            stats_.shed++;
            entry.stats.shed++;
            entry.shedCounter->add(1);
            break;
          default: break;
        }
        publishTenantGauges(entry);
        // Bound the job table: prune the oldest terminal records
        // (JobIds are monotonic, so map order is submission order).
        if (cfg_.maxRetainedJobs > 0) {
            for (auto it = jobs_.begin();
                 jobs_.size() > cfg_.maxRetainedJobs &&
                 it != jobs_.end();) {
                if (isTerminal(it->second->state.load(
                        std::memory_order_acquire)))
                    it = jobs_.erase(it);
                else
                    ++it;
            }
        }
    }
    // Close the job's root span: the whole submit -> terminal envelope
    // as one top-level slice of its tree.  Recorded *before* waking
    // waiters so a WAIT-then-TRACE client always sees the root.  Safe
    // without mtx_ — only the CAS winner (us) ever writes finishedAt.
    if constexpr (obs::kEnabled) {
        if (job->traceRoot.valid()) {
            obs::completeSpan("serve.job", job->submittedAt * 1e6,
                              (job->finishedAt - job->submittedAt) * 1e6,
                              job->traceRoot);
        }
    }
    doneCv_.notify_all();
    GRAPHABCD_LOG_INFO("serve", "job finished", LOGF("job", job->id),
                       LOGF("state", to_string(to)),
                       LOGF("cache_hit", job->cacheHit),
                       LOGF("error", job->error));
    return true;
}

bool
JobManager::cancel(JobId id)
{
    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return false;
        job = it->second;
    }
    JobState state = job->state.load(std::memory_order_acquire);
    if (isTerminal(state))
        return false;
    job->stop.requestStop();
    // Claim a queued job outright so it never starts; the popping
    // worker sees a non-Queued state and drops its queue entry.  The
    // CAS inside finishJob arbitrates against that worker, so exactly
    // one side records the cancellation.  The cause still goes through
    // stopCauseError: if the job's deadline had already fired before
    // this cancel arrived, "deadline exceeded" is the truth.
    finishJob(job, JobState::Queued, JobState::Cancelled,
              stopCauseError(*job, /*queued=*/true));
    // Running jobs finish through the worker when the token fires.
    return true;
}

std::string
JobManager::stopCauseError(const Job &job, bool queued)
{
    // A watchdog-escalated stop is its own cause: the acquire load
    // pairs with onJobStalled's release store, so the diagnosis string
    // is safely readable once the flag is seen.
    if (job.stalled.load(std::memory_order_acquire))
        return "stalled: " + job.stallDiagnosis;
    const StopToken &token = job.req.options.stop;
    const double requested_at = job.stop.requestStopAtSeconds();
    // Both instants are on the raw steady-clock scale (stop_token.hh).
    // An expired deadline that predates the first cancel request — or
    // that fired with no cancel request at all — is the true cause.
    const bool deadline_first =
        token.deadlineExpired() &&
        (requested_at == 0.0 ||
         token.deadlineAtSeconds() <= requested_at);
    if (deadline_first)
        return queued ? "deadline exceeded while queued"
                      : "deadline exceeded";
    return queued ? "cancelled while queued" : "cancelled";
}

void
JobManager::onJobStalled(const std::shared_ptr<Job> &job,
                         const std::string &diagnosis)
{
    // Single writer (the watchdog thread): the diagnosis string is
    // fully written before the release store, so any reader observing
    // stalled == true (acquire) may read it without a lock.  Only the
    // first episode keeps its diagnosis.
    if (!job->stalled.load(std::memory_order_acquire)) {
        job->stallDiagnosis = diagnosis;
        job->stalled.store(true, std::memory_order_release);
    }
    GRAPHABCD_LOG_WARN("serve", "job stalled", LOGF("job", job->id),
                       LOGF("tenant", job->req.tenant),
                       LOGF("engine", job->req.engine),
                       LOGF("span_root", job->traceRoot.span),
                       LOGF("pool_queue_depth", executor_->queueDepth()),
                       LOGF("admit_queue_depth", queue_.size()),
                       LOGF("diagnosis", diagnosis));
    obs::flightNote("serve", "job " + std::to_string(job->id) +
                                 " stalled: " + diagnosis);
    if (cfg_.cancelOnStall)
        job->stop.requestStop();
}

std::string
JobManager::flightJson() const
{
    // Runs as a FlightRecorder provider, outside the recorder mutex;
    // takes mtx_ like any status() reader.  Gauges first (lock-free).
    std::ostringstream os;
    os << "{\"queue_depth\":" << queue_.size()
       << ",\"running\":" << running_.load(std::memory_order_relaxed)
       << ",\"jobs\":[";
    std::lock_guard<std::mutex> lock(mtx_);
    bool first = true;
    for (const auto &[id, job] : jobs_) {
        const Progress &p = *job->progress;
        os << (first ? "" : ",") << "\n{\"id\":" << id << ",\"state\":"
           << flightQuote(to_string(
                  job->state.load(std::memory_order_acquire)))
           << ",\"tenant\":" << flightQuote(job->req.tenant)
           << ",\"graph\":" << flightQuote(job->req.graph)
           << ",\"algo\":" << flightQuote(job->req.algo)
           << ",\"engine\":" << flightQuote(job->req.engine)
           << ",\"span_root\":" << job->traceRoot.span
           << ",\"submitted_at\":" << job->submittedAt
           << ",\"started_at\":" << job->startedAt
           << ",\"finished_at\":" << job->finishedAt
           << ",\"vertex_updates\":"
           << p.vertexUpdates.load(std::memory_order_relaxed)
           << ",\"block_updates\":"
           << p.blockUpdates.load(std::memory_order_relaxed)
           << ",\"edge_traversals\":"
           << p.edgeTraversals.load(std::memory_order_relaxed)
           << ",\"scatter_writes\":"
           << p.scatterWrites.load(std::memory_order_relaxed)
           << ",\"stalled\":"
           << (job->stalled.load(std::memory_order_acquire) ? "true"
                                                            : "false")
           << ",\"error\":" << flightQuote(job->error) << "}";
        first = false;
    }
    os << "]}";
    return os.str();
}

JobManager::TenantEntry &
JobManager::tenantEntryLocked(const std::string &tenant)
{
    auto it = tenants_.find(tenant);
    if (it != tenants_.end())
        return it->second;
    TenantEntry &entry = tenants_[tenant];
    // Resolve the per-tenant instruments once; tenant cardinality is
    // small (lanes are configured, not per-request).  Under
    // GRAPHABCD_OBS=OFF these resolve to the shared no-op instruments.
    // Metric keys take the *sanitized* tenant name (dump lines and the
    // Prometheus exposition must stay parseable whatever a client
    // sends); QoS lanes and the stats map keep the raw name.  Two raw
    // names may sanitize to the same key — they then share instruments,
    // which is the documented trade for a bounded character set.
    const std::string prefix =
        "serve.tenant." + obs::sanitizeMetricComponent(tenant) + ".";
    entry.queuedGauge = &obs::gauge((prefix + "queued").c_str());
    entry.runningGauge = &obs::gauge((prefix + "running").c_str());
    entry.completedCounter =
        &obs::counter((prefix + "completed").c_str());
    entry.shedCounter = &obs::counter((prefix + "shed").c_str());
    entry.waitHist = &obs::histogram((prefix + "wait_us").c_str(),
                                     obs::latencyBucketsUs());
    return entry;
}

void
JobManager::publishTenantGauges(const TenantEntry &entry)
{
    if constexpr (obs::kEnabled) {
        if (entry.queuedGauge) {
            entry.queuedGauge->set(
                static_cast<double>(entry.stats.queued));
        }
        if (entry.runningGauge) {
            entry.runningGauge->set(
                static_cast<double>(entry.stats.running));
        }
    }
}

std::optional<JobStatus>
JobManager::status(JobId id) const
{
    // Hold the lock across the whole snapshot: every non-atomic Job
    // field is written under mtx_ once the job is published.
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    const std::shared_ptr<Job> &job = it->second;

    JobStatus st;
    st.id = job->id;
    st.state = job->state.load(std::memory_order_acquire);
    st.tenant = job->req.tenant;
    st.priority = job->req.priority;
    st.cacheHit = job->cacheHit;
    st.warmStarted = job->warmStarted;
    st.error = job->error;

    const double now = monotonicSeconds();
    const double n = std::max<double>(job->graph->numVertices(), 1.0);
    if (isTerminal(st.state)) {
        st.queuedSeconds = job->startedAt - job->submittedAt;
        st.runSeconds = job->finishedAt - job->startedAt;
        if (job->result) {
            st.epochs = job->result->report.epochs;
            st.blockUpdates = job->result->report.blockUpdates;
            st.edgeTraversals = job->result->report.edgeTraversals;
            st.scatterWrites = job->result->report.scatterWrites;
            st.converged = job->result->report.converged;
        }
    } else {
        const bool running = st.state == JobState::Running;
        st.queuedSeconds =
            (running ? job->startedAt : now) - job->submittedAt;
        st.runSeconds = running ? now - job->startedAt : 0.0;
        // Live counters from the engine's lock-free Progress sink.
        const Progress &p = *job->progress;
        st.epochs = static_cast<double>(p.vertexUpdates.load(
                        std::memory_order_relaxed)) / n;
        st.blockUpdates =
            p.blockUpdates.load(std::memory_order_relaxed);
        st.edgeTraversals =
            p.edgeTraversals.load(std::memory_order_relaxed);
        st.scatterWrites =
            p.scatterWrites.load(std::memory_order_relaxed);
    }
    return st;
}

std::shared_ptr<const JobResult>
JobManager::result(JobId id) const
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return nullptr;
    if (it->second->state.load(std::memory_order_acquire) !=
        JobState::Done)
        return nullptr;
    return it->second->result;
}

bool
JobManager::wait(JobId id, double timeout_seconds) const
{
    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return false;
        job = it->second;
    }
    auto terminal = [&job] {
        return isTerminal(job->state.load(std::memory_order_acquire));
    };
    std::unique_lock<std::mutex> lock(mtx_);
    if (timeout_seconds < 0.0) {
        doneCv_.wait(lock, terminal);
        return true;
    }
    return doneCv_.wait_for(
        lock, std::chrono::duration<double>(timeout_seconds), terminal);
}

ServeStats
JobManager::stats() const
{
    ServeStats out;
    {
        std::lock_guard<std::mutex> lock(mtx_);
        out = stats_;
    }
    out.queueDepth = queue_.size();
    out.running = running_.load(std::memory_order_relaxed);
    return out;
}

std::map<std::string, TenantServeStats>
JobManager::tenantStats() const
{
    std::map<std::string, TenantServeStats> out;
    std::lock_guard<std::mutex> lock(mtx_);
    for (const auto &[tenant, entry] : tenants_)
        out.emplace(tenant, entry.stats);
    return out;
}

std::shared_ptr<const obs::ConvergenceSeries>
JobManager::convergence(JobId id) const
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second->series;
}

void
JobManager::shutdown()
{
    if (shutdown_.exchange(true, std::memory_order_acq_rel))
        return;
    // The flight provider and the watchdog's stall closures capture
    // `this`/job records — deregister and quiesce them before any
    // member is torn down.
    if constexpr (obs::kEnabled) {
        if (flightProviderToken_ != 0) {
            obs::flightRemoveProvider(flightProviderToken_);
            flightProviderToken_ = 0;
        }
        if (watchdog_)
            watchdog_->stop();
    }
    // Stop running engines promptly; queued jobs drain as cancelled.
    {
        std::lock_guard<std::mutex> lock(mtx_);
        for (auto &[id, job] : jobs_) {
            if (!isTerminal(job->state.load(std::memory_order_acquire)))
                job->stop.requestStop();
        }
    }
    queue_.close();
    for (auto &t : workers_) {
        if (t.joinable())
            t.join();
    }
    workers_.clear();
    GRAPHABCD_LOG_INFO("serve", "job manager stopped");
}

} // namespace graphabcd
