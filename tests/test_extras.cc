/**
 * @file
 * Tests of the extra algorithms (Personalized PageRank, k-core, greedy
 * coloring) and of the edge-balanced partitioner.
 */

#include <gtest/gtest.h>

#include <set>

#include "algorithms/extras.hh"
#include "algorithms/reference.hh"
#include "core/async_engine.hh"
#include "core/engine.hh"
#include "graph/generators.hh"

namespace graphabcd {
namespace {

TEST(PersonalizedPageRank, MassConcentratesNearTheSource)
{
    // A chain: PPR from vertex 0 must decay monotonically along it.
    EdgeList el = generateChain(16);
    BlockPartition g(el, 4);
    EngineOptions opt;
    opt.blockSize = 4;
    opt.tolerance = 1e-14;
    SerialEngine<PersonalizedPageRankProgram> engine(
        g, PersonalizedPageRankProgram(0), opt);
    std::vector<double> ppr;
    EngineReport report = engine.run(ppr);
    EXPECT_TRUE(report.converged);
    for (VertexId v = 1; v < 16; v++)
        EXPECT_LT(ppr[v], ppr[v - 1]);
    EXPECT_GT(ppr[0], 0.15);   // the source keeps the teleport mass
}

TEST(PersonalizedPageRank, ZeroForUnreachableVertices)
{
    // Two disjoint chains; PPR from chain A never touches chain B.
    EdgeList el(8);
    for (VertexId v = 0; v + 1 < 4; v++)
        el.addEdge(v, v + 1);
    for (VertexId v = 4; v + 1 < 8; v++)
        el.addEdge(v, v + 1);
    BlockPartition g(el, 2);
    EngineOptions opt;
    opt.blockSize = 2;
    opt.tolerance = 1e-14;
    SerialEngine<PersonalizedPageRankProgram> engine(
        g, PersonalizedPageRankProgram(0), opt);
    std::vector<double> ppr;
    engine.run(ppr);
    for (VertexId v = 4; v < 8; v++)
        EXPECT_DOUBLE_EQ(ppr[v], 0.0);
}

class KCoreSweep : public testing::TestWithParam<std::uint32_t>
{
};

TEST_P(KCoreSweep, MatchesPeelingReference)
{
    Rng rng(131);
    EdgeList el = generateRmat(300, 2400, rng);
    EdgeList sym = el.symmetrized();
    BlockPartition g(sym, 32);
    const std::uint32_t k = GetParam();

    EngineOptions opt;
    opt.blockSize = 32;
    opt.tolerance = 0.5;
    SerialEngine<KCoreProgram> engine(g, KCoreProgram(k), opt);
    std::vector<double> alive;
    EngineReport report = engine.run(alive);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = kcoreReference(sym, k);
    for (VertexId v = 0; v < sym.numVertices(); v++)
        EXPECT_DOUBLE_EQ(alive[v], ref[v]) << "k=" << k << " v=" << v;
}

INSTANTIATE_TEST_SUITE_P(Ks, KCoreSweep, testing::Values(2, 3, 5, 8));

TEST(KCore, CoreSizesAreNested)
{
    Rng rng(132);
    EdgeList el = generateRmat(400, 4000, rng);
    EdgeList sym = el.symmetrized();
    BlockPartition g(sym, 32);
    std::uint64_t prev = sym.numVertices();
    for (std::uint32_t k : {1u, 2u, 4u, 8u}) {
        EngineOptions opt;
        opt.blockSize = 32;
        opt.tolerance = 0.5;
        SerialEngine<KCoreProgram> engine(g, KCoreProgram(k), opt);
        std::vector<double> alive;
        engine.run(alive);
        std::uint64_t size = kcoreSize(alive);
        EXPECT_LE(size, prev);   // (k+1)-core is inside the k-core
        prev = size;
    }
}

TEST(KCore, ThreadedAsyncAgreesWithSerial)
{
    Rng rng(133);
    EdgeList el = generateRmat(256, 2000, rng);
    EdgeList sym = el.symmetrized();
    BlockPartition g(sym, 16);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.tolerance = 0.5;
    opt.numThreads = 4;

    std::vector<double> serial, threaded;
    SerialEngine<KCoreProgram>(g, KCoreProgram(3), opt).run(serial);
    AsyncEngine<KCoreProgram>(g, KCoreProgram(3), opt).run(threaded);
    EXPECT_EQ(serial, threaded);
}

TEST(Coloring, ProducesAProperColoring)
{
    Rng rng(134);
    EdgeList el = generateRmat(300, 2400, rng);
    EdgeList sym = el.symmetrized();
    BlockPartition g(sym, 32);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.tolerance = 0.5;
    opt.maxEpochs = 200.0;
    SerialEngine<ColoringProgram> engine(g, ColoringProgram(), opt);
    std::vector<double> colors;
    EngineReport report = engine.run(colors);
    EXPECT_TRUE(report.converged);
    EXPECT_EQ(coloringConflicts(g, colors), 0u);
}

TEST(Coloring, CompleteGraphNeedsNColors)
{
    EdgeList k5 = generateComplete(5);
    BlockPartition g(k5, 2);
    EngineOptions opt;
    opt.blockSize = 2;
    opt.tolerance = 0.5;
    opt.maxEpochs = 100.0;
    SerialEngine<ColoringProgram> engine(g, ColoringProgram(), opt);
    std::vector<double> colors;
    engine.run(colors);
    EXPECT_EQ(coloringConflicts(g, colors), 0u);
    std::set<std::uint32_t> used;
    for (double c : colors)
        used.insert(ColoringProgram::colorOf(c));
    EXPECT_EQ(used.size(), 5u);
}

TEST(Coloring, ChainIsTwoColorable)
{
    EdgeList chain = generateChain(20).symmetrized();
    BlockPartition g(chain, 4);
    EngineOptions opt;
    opt.blockSize = 4;
    opt.tolerance = 0.5;
    opt.maxEpochs = 100.0;
    SerialEngine<ColoringProgram> engine(g, ColoringProgram(), opt);
    std::vector<double> colors;
    engine.run(colors);
    EXPECT_EQ(coloringConflicts(g, colors), 0u);
    for (double c : colors)
        EXPECT_LE(ColoringProgram::colorOf(c), 1u);
}

// ------------------------------------------- edge-balanced partitions

TEST(EdgeBalanced, BlocksHoldRoughlyTheTargetEdgeCount)
{
    Rng rng(135);
    EdgeList el = generateRmat(2048, 32768, rng);
    BlockPartition g(el, 1024, BlockPartition::EdgeBalanced{});
    EXPECT_GT(g.numBlocks(), 8u);
    // Every block except possibly hub-dominated ones lands near target.
    for (BlockId b = 0; b + 1 < g.numBlocks(); b++)
        EXPECT_GE(g.blockEdgeCount(b), 1024u);
}

TEST(EdgeBalanced, StructuralInvariantsStillHold)
{
    Rng rng(136);
    EdgeList el = generateRmat(512, 8192, rng);
    BlockPartition g(el, 512, BlockPartition::EdgeBalanced{});
    // Tiling and blockOf consistency.
    VertexId covered = 0;
    for (BlockId b = 0; b < g.numBlocks(); b++) {
        for (VertexId v = g.blockBegin(b); v < g.blockEnd(b); v++)
            EXPECT_EQ(g.blockOf(v), b);
        covered += g.blockVertexCount(b);
    }
    EXPECT_EQ(covered, el.numVertices());
    EXPECT_EQ(g.numEdges(), el.numEdges());
}

TEST(EdgeBalanced, EnginesConvergeOnIt)
{
    Rng rng(137);
    EdgeList el = generateRmat(512, 8192, rng);
    BlockPartition g(el, 512, BlockPartition::EdgeBalanced{});
    EngineOptions opt;
    opt.blockSize = g.blockSize();
    opt.tolerance = 1e-12;
    SerialEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);
    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-7);
}

TEST(EdgeBalanced, ReducesBlockLoadImbalance)
{
    // On a skewed graph, fixed-size blocks have wildly varying edge
    // counts; edge-balanced blocks must shrink the max/mean ratio.
    Rng rng(138);
    EdgeList el = generateRmat(4096, 65536, rng);

    auto imbalance = [](const BlockPartition &g) {
        EdgeId max_edges = 0, total = 0;
        for (BlockId b = 0; b < g.numBlocks(); b++) {
            max_edges = std::max(max_edges, g.blockEdgeCount(b));
            total += g.blockEdgeCount(b);
        }
        double mean =
            static_cast<double>(total) / std::max(1u, g.numBlocks());
        return static_cast<double>(max_edges) / mean;
    };

    BlockPartition fixed(el, 256);
    BlockPartition balanced(
        el, fixed.numBlocks() ? 65536 / fixed.numBlocks() : 4096,
        BlockPartition::EdgeBalanced{});
    EXPECT_LT(imbalance(balanced), imbalance(fixed));
}

} // namespace
} // namespace graphabcd
