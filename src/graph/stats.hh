/**
 * @file
 * Descriptive statistics of a graph — degree distribution summary,
 * skew, block-balance preview — used by the CLI (--stats) and by
 * examples to describe their inputs.
 */

#ifndef GRAPHABCD_GRAPH_STATS_HH
#define GRAPHABCD_GRAPH_STATS_HH

#include <cstdint>
#include <string>

#include "graph/edge_list.hh"

namespace graphabcd {

/** Summary statistics of one graph. */
struct GraphStats
{
    VertexId numVertices = 0;
    EdgeId numEdges = 0;
    double avgDegree = 0.0;
    std::uint32_t maxOutDegree = 0;
    std::uint32_t maxInDegree = 0;
    VertexId isolatedVertices = 0;   //!< no in- and no out-edges
    VertexId danglingVertices = 0;   //!< out-degree 0 (PR mass leaks)
    double selfLoopFraction = 0.0;

    /**
     * Gini coefficient of the in-degree distribution in [0, 1):
     * 0 = perfectly regular, -> 1 = extreme hub concentration.  The
     * skew measure behind the paper's load-imbalance concern.
     */
    double inDegreeGini = 0.0;

    /** Render as one readable paragraph. */
    std::string toString() const;
};

/** Compute summary statistics in O(V + E). */
GraphStats computeGraphStats(const EdgeList &el);

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_STATS_HH
