#!/usr/bin/env bash
# Tier-1 CI entry point: configure, build, and test under a CMake
# preset (default: "default").  Usage:
#
#   tools/ci.sh            # release build + full ctest
#   tools/ci.sh asan       # AddressSanitizer+UBSan build + ctest
#   tools/ci.sh tsan       # ThreadSanitizer build + ctest
set -euo pipefail

preset="${1:-default}"
cd "$(dirname "$0")/.."

echo "== configure (${preset}) =="
cmake --preset "${preset}"

echo "== build (${preset}) =="
cmake --build --preset "${preset}" -j "$(nproc)"

echo "== test (${preset}) =="
ctest --preset "${preset}"

echo "== ${preset}: OK =="
