#!/usr/bin/env bash
# Tier-1 CI entry point: configure, build, and test under CMake presets.
# src/obs/ builds with -Werror, so any warning there fails the build.
# Usage:
#
#   tools/ci.sh            # default + asan + tsan + obsoff, in order
#   tools/ci.sh default    # release build + full ctest only
#   tools/ci.sh asan       # AddressSanitizer+UBSan build + ctest only
#   tools/ci.sh tsan       # ThreadSanitizer build + ctest only
#   tools/ci.sh obsoff     # GRAPHABCD_OBS=OFF build + ctest only
#                          # (proves instrumentation compiles out)
set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
    local preset="$1"

    echo "== configure (${preset}) =="
    cmake --preset "${preset}"

    echo "== build (${preset}) =="
    cmake --build --preset "${preset}" -j "$(nproc)"

    echo "== test (${preset}) =="
    ctest --preset "${preset}"

    # The fragment engine is the most concurrency-dense code in the
    # repo (per-fragment runners, SPSC delta rings, the four-counter
    # termination detector, cooperative cancel).  The default stress
    # iteration count keeps plain ctest fast; under TSan, rerun the
    # cancel-storm stress heavier so the race detector sees many
    # claim/flush/drain interleavings per CI run.
    # The varint/delta codec and the compressed-layout decode loops are
    # pointer-walking code over packed byte streams — exactly what ASan
    # is for.  Rerun the codec tests with the randomized round-trip
    # count cranked up so each CI run covers many adversarial streams.
    if [ "${preset}" = "asan" ]; then
        echo "== codec fuzz (${preset}) =="
        GRAPHABCD_CODEC_FUZZ_ITERS=2000 \
            "./build-asan/tests/abcd_tests" \
            --gtest_filter='Codec*'
    fi

    # The obs-off build must still compile and pass the compressed
    # layout paths (the bytes-moved tallies are plain atomics, not obs
    # instrumentation, so they work in both builds), and the tenant QoS
    # admission path (per-tenant gauges/histograms compile out but the
    # fair-share scheduling itself must not change).
    if [ "${preset}" = "obsoff" ]; then
        echo "== layout equivalence (${preset}) =="
        "./build-obsoff/tests/abcd_tests" \
            --gtest_filter='Layout*:Codec*:FairShareQueue.*:ServeQosStress.*'
    fi

    if [ "${preset}" = "tsan" ]; then
        echo "== fragment stress (${preset}) =="
        GRAPHABCD_FRAGMENT_STRESS_ITERS=24 \
            "./build-tsan/tests/abcd_tests" \
            --gtest_filter='FragmentStress.*'

        # Same treatment for the accumulative engine: its scatter hooks
        # push into the OBIM worklist concurrently (no control lock), so
        # the cancel storm is rerun heavier to cover many push/pop/drain
        # interleavings under the race detector.
        echo "== accum stress (${preset}) =="
        GRAPHABCD_ACCUM_STRESS_ITERS=24 \
            "./build-tsan/tests/abcd_tests" \
            --gtest_filter='AccumStress.*'

        # The serve layer's cancel/cache-hit/shed races are guarded by
        # finishJob's terminal CAS; rerun the multi-tenant storm heavier
        # so TSan sees many submit/cancel/pop/displace interleavings.
        echo "== serve qos stress (${preset}) =="
        GRAPHABCD_QOS_STRESS_ITERS=12 \
            "./build-tsan/tests/abcd_tests" \
            --gtest_filter='ServeQosStress.*'

        # The metrics endpoint is scraped while engines hammer the same
        # counters/histograms (including the exemplar slot, which mixes
        # lock-free records with a mutex-guarded triple); run the
        # concurrent-scrape stress under the race detector.
        echo "== metrics scrape stress (${preset}) =="
        "./build-tsan/tests/abcd_tests" \
            --gtest_filter='MetricsServerStress.*'
    fi

    # Observability drill (release build): drive a traced fragment job
    # through abcd_serve end-to-end, then validate the debugging
    # artifacts — the Chrome trace must contain exactly one causally
    # connected span tree for the job, and the DUMP verb must produce a
    # parseable flight-recorder snapshot.  A second session runs the
    # wedge drill engine (enabled only by env var; it burns wall-clock
    # without ever moving its progress counters) and must be flagged by
    # the stall watchdog and escalated to cancellation.
    if [ "${preset}" = "default" ]; then
        echo "== observability drill (${preset}) =="
        obs_dir="$(mktemp -d)"
        printf '%s\n' \
            "LOAD web WT scale=0.05" \
            "RUN web pr engine=fragment fragments=4" \
            "WAIT 1 60" \
            "TRACE ${obs_dir}/trace.json" \
            "DUMP ${obs_dir}/flight.json" \
            "QUIT" \
            | "./build/tools/abcd_serve" \
                --flight="${obs_dir}/fatal.json" \
                > "${obs_dir}/serve.out" 2>&1
        grep -q "state=done" "${obs_dir}/serve.out"
        python3 - "${obs_dir}/trace.json" "${obs_dir}/flight.json" <<'PY'
import json, sys

trace = json.load(open(sys.argv[1]))
nodes = {}   # span id -> parent id, for job 1
names = {}
for e in trace["traceEvents"]:
    args = e.get("args")
    if not args or args.get("job") != 1:
        continue
    nodes[args["span"]] = args["parent"]
    names[e["name"]] = names.get(e["name"], 0) + 1
roots = [s for s, p in nodes.items() if p == 0]
assert len(roots) == 1, "want one span-tree root, got %r" % roots
for s in nodes:
    hops = 0
    while s != roots[0]:
        assert s in nodes, "orphaned span %r" % s
        s = nodes[s]
        hops += 1
        assert hops < 64, "parent cycle"
for want in ("serve.job", "serve.run", "engine.fragment.run",
             "fragment.pump"):
    assert names.get(want), "missing %s spans in %r" % (want, sorted(names))

flight = json.load(open(sys.argv[2]))
for key in ("reason", "notes", "log", "providers", "metrics", "trace"):
    assert key in flight, "flight dump missing %r" % key
assert "serve" in flight["providers"], "serve provider absent"
embedded = [e for e in flight["trace"]["traceEvents"]
            if e.get("args", {}).get("job") == 1]
assert embedded, "flight dump trace lacks the job's span tree"
print("drill ok: %d spans in one tree, flight dump embeds %d of them"
      % (len(nodes), len(embedded)))
PY

        echo "== stall watchdog drill (${preset}) =="
        printf '%s\n' \
            "LOAD tiny WT scale=0.02" \
            "RUN tiny pr engine=wedge" \
            "WAIT 1 30" \
            "QUIT" \
            | GRAPHABCD_ENABLE_WEDGE_ENGINE=1 "./build/tools/abcd_serve" \
                --stall-window=0.2 --stall-check=0.05 \
                --stall-cancel=true \
                > "${obs_dir}/wedge.out" 2>&1
        grep -q "state=cancelled" "${obs_dir}/wedge.out"
        grep -q "error=stalled:" "${obs_dir}/wedge.out"
        rm -rf "${obs_dir}"
    fi

    echo "== ${preset}: OK =="
}

if [ "$#" -ge 1 ]; then
    presets=("$@")
else
    presets=(default asan tsan obsoff)
fi

for preset in "${presets[@]}"; do
    run_preset "${preset}"
done

echo "== all presets OK: ${presets[*]} =="
