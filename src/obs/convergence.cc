#include "obs/convergence.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace graphabcd {

// ---------------------------------------------------- ConvergenceSeries

ConvergenceSeries::ConvergenceSeries(std::uint64_t id, std::string label,
                                     std::size_t capacity)
    : id_(id), label_(std::move(label)),
      capacity_(std::max<std::size_t>(2, capacity))
{
}

void
ConvergenceSeries::record(const ConvergencePoint &point)
{
    std::lock_guard<std::mutex> lock(mtx_);
    // Stride downsampling: drop all but every stride_-th sample, and
    // when the buffer still fills, halve it and double the stride.
    if (tick_++ % stride_ != 0)
        return;
    appendLocked(point);
}

void
ConvergenceSeries::recordFinal(const ConvergencePoint &point)
{
    // The run's last sample always lands, regardless of stride, so the
    // curve's final row and the engine report agree.
    std::lock_guard<std::mutex> lock(mtx_);
    appendLocked(point);
}

void
ConvergenceSeries::appendLocked(const ConvergencePoint &point)
{
    if (points_.size() == capacity_) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < points_.size(); i += 2)
            points_[keep++] = points_[i];
        points_.resize(keep);
        stride_ *= 2;
    }
    points_.push_back(point);
}

std::vector<ConvergencePoint>
ConvergenceSeries::points() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return points_;
}

std::size_t
ConvergenceSeries::size() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return points_.size();
}

ConvergencePoint
ConvergenceSeries::back() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return points_.empty() ? ConvergencePoint{} : points_.back();
}

// -------------------------------------------------- ConvergenceRecorder

ConvergenceRecorder &
ConvergenceRecorder::global()
{
    static ConvergenceRecorder instance;
    return instance;
}

ConvergenceRecorder::ConvergenceRecorder(std::size_t max_series)
    : maxSeries_(std::max<std::size_t>(1, max_series))
{
}

std::shared_ptr<ConvergenceSeries>
ConvergenceRecorder::begin(std::string label)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto series = std::make_shared<ConvergenceSeries>(nextId_++,
                                                      std::move(label));
    series_.push_back(series);
    while (series_.size() > maxSeries_)
        series_.pop_front();
    return series;
}

std::vector<std::shared_ptr<const ConvergenceSeries>>
ConvergenceRecorder::list() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return {series_.begin(), series_.end()};
}

std::shared_ptr<const ConvergenceSeries>
ConvergenceRecorder::find(const std::string &label) const
{
    std::lock_guard<std::mutex> lock(mtx_);
    for (auto it = series_.rbegin(); it != series_.rend(); ++it) {
        if ((*it)->label() == label)
            return *it;
    }
    return nullptr;
}

void
ConvergenceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mtx_);
    series_.clear();
}

std::size_t
ConvergenceRecorder::seriesCount() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return series_.size();
}

namespace {

constexpr const char *kCsvHeader =
    "series,label,epochs,residual,active_vertices,vertex_updates,"
    "edge_traversals,wall_seconds,sim_seconds\n";

void
appendRows(std::ostringstream &os, const ConvergenceSeries &series)
{
    for (const ConvergencePoint &p : series.points()) {
        os << series.id() << ',' << series.label() << ',' << p.epochs
           << ',' << p.residual << ',' << p.activeVertices << ','
           << p.vertexUpdates << ',' << p.edgeTraversals << ','
           << p.wallSeconds << ',' << p.simSeconds << '\n';
    }
}

} // namespace

std::string
ConvergenceRecorder::csv(const ConvergenceSeries &series)
{
    std::ostringstream os;
    os << std::setprecision(12) << kCsvHeader;
    appendRows(os, series);
    return os.str();
}

std::string
ConvergenceRecorder::csv() const
{
    std::ostringstream os;
    os << std::setprecision(12) << kCsvHeader;
    for (const auto &series : list())
        appendRows(os, *series);
    return os.str();
}

std::string
ConvergenceRecorder::json() const
{
    std::ostringstream os;
    os << std::setprecision(12) << "{\"series\":[";
    bool first_series = true;
    for (const auto &series : list()) {
        os << (first_series ? "" : ",") << "\n{\"id\":" << series->id()
           << ",\"label\":\"";
        // Labels are library-built (jobNN:graph/algo) but escape
        // defensively so a stray quote never breaks the document.
        for (char c : series->label()) {
            if (c == '"' || c == '\\')
                os << '\\';
            os << c;
        }
        os << "\",\"points\":[";
        first_series = false;
        bool first_point = true;
        for (const ConvergencePoint &p : series->points()) {
            os << (first_point ? "" : ",") << "[" << p.epochs << ","
               << p.residual << "," << p.activeVertices << ","
               << p.vertexUpdates << "," << p.edgeTraversals << ","
               << p.wallSeconds << "," << p.simSeconds << "]";
            first_point = false;
        }
        os << "]}";
    }
    os << "\n]}\n";
    return os.str();
}

} // namespace graphabcd
