file(REMOVE_RECURSE
  "libabcd_core.a"
)
