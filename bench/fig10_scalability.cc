/**
 * @file
 * Reproduces paper Fig. 10: scalability of GraphABCD on the LJ
 * stand-in, with and without Hybrid Execution — (a) execution time as
 * FPGA PE count grows 1..16 with 14 CPU threads; (b) execution time as
 * CPU threads grow 1..14 with 16 PEs.
 *
 * Expected shape: near-linear scaling until ~8 PEs, then
 * bandwidth-bound; with hybrid execution the curve is much flatter at
 * low PE counts (CPU workers absorb the loss); thread scaling matters
 * less than PE scaling without hybrid.
 */

#include "bench_common.hh"

namespace graphabcd {
namespace {

using namespace bench;

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declareInt("block-size", 512, "block size");
    flags.declare("graph", "LJ", "dataset key");
    if (!flags.parse(argc, argv))
        return 0;

    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));
    Dataset ds = loadDataset(flags.get("graph"), flags);
    BlockPartition g(ds.graph, block_size);

    auto time_of = [&](std::uint32_t pes, std::uint32_t threads,
                       bool hybrid) {
        EngineOptions opt;
        opt.blockSize = block_size;
        HarpConfig cfg;
        cfg.numPes = pes;
        cfg.cpuThreads = threads;
        cfg.hybrid = hybrid;
        return abcdPagerank(g, opt, cfg).seconds;
    };

    Table pe_table({"PEs (14 threads)", "time w/o hybrid (s)",
                    "time w/ hybrid (s)", "hybrid gain"});
    for (std::uint32_t pes : {1u, 2u, 4u, 8u, 16u}) {
        double plain = time_of(pes, 14, false);
        double hybrid = time_of(pes, 14, true);
        pe_table.row()
            .add(static_cast<std::uint64_t>(pes))
            .add(plain, 4)
            .add(hybrid, 4)
            .add(plain / hybrid, 3);
    }
    pe_table.print(std::cout);
    std::cout << '\n';

    Table thread_table({"threads (16 PEs)", "time w/o hybrid (s)",
                        "time w/ hybrid (s)", "hybrid gain"});
    for (std::uint32_t threads : {1u, 2u, 4u, 8u, 14u}) {
        double plain = time_of(16, threads, false);
        double hybrid = time_of(16, threads, true);
        thread_table.row()
            .add(static_cast<std::uint64_t>(threads))
            .add(plain, 4)
            .add(hybrid, 4)
            .add(plain / hybrid, 3);
    }
    emitTable(thread_table, flags);
    std::fprintf(stderr,
                 "info: paper shape: linear until ~8 PEs, hybrid "
                 "flattens the PE curve; threads matter less.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
