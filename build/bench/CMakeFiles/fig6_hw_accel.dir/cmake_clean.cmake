file(REMOVE_RECURSE
  "CMakeFiles/fig6_hw_accel.dir/fig6_hw_accel.cc.o"
  "CMakeFiles/fig6_hw_accel.dir/fig6_hw_accel.cc.o.d"
  "fig6_hw_accel"
  "fig6_hw_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hw_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
