/**
 * @file
 * Cooperative cancellation and progress observation for engine runs.
 *
 * The serve layer (src/serve) turns one-shot engine runs into managed
 * jobs; that needs two hooks plumbed through every engine:
 *
 *  - a StopToken the engine polls at block-update granularity.  A token
 *    combines a shared cancel flag (set by JobManager::cancel or
 *    service shutdown) with an optional monotonic-clock deadline, so
 *    per-job timeouts need no extra timer thread.  Polling per block
 *    keeps the hot loop branch-predictable: one relaxed atomic load and
 *    (only when a deadline is armed) one steady_clock read.
 *
 *    Because both causes fire through the same stopRequested() answer,
 *    the channel also records *when* the first requestStop() happened
 *    (steady-clock seconds), so a finisher can attribute the halt to
 *    the cancel or to the deadline by which instant came first —
 *    requestStopAtSeconds() and deadlineAtSeconds() are on the same
 *    raw steady_clock scale (NOT monotonicSeconds(), whose epoch is
 *    process-local).
 *
 *  - a Progress sink of relaxed atomic counters the engine publishes
 *    into as it works, so JobStatus snapshots are readable from any
 *    thread while the run is in flight, without locks on the data path.
 *
 * Both are optional: a default-constructed StopToken never fires and a
 * null Progress pointer disables publishing, so standalone engine users
 * pay nothing.
 */

#ifndef GRAPHABCD_CORE_STOP_TOKEN_HH
#define GRAPHABCD_CORE_STOP_TOKEN_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace graphabcd {

namespace detail {

/**
 * Shared state of a cancellation channel: the sticky stop flag plus the
 * steady-clock instant of the first requestStop() (0 = never), so halt
 * causes can be attributed after the fact.
 */
struct StopState
{
    std::atomic<bool> stop{false};
    std::atomic<double> requestedAt{0.0};
};

/** Seconds since the (arbitrary) steady_clock epoch. */
inline double
steadyNowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace detail

/**
 * View side of a cancellation channel.  Copyable and cheap; safe to
 * poll from any thread.  A default-constructed token never requests a
 * stop (unless a deadline is armed via withDeadline()).
 */
class StopToken
{
  public:
    StopToken() = default;

    /** @return whether this token could ever fire. */
    bool
    stopPossible() const
    {
        return state_ != nullptr || hasDeadline();
    }

    /** @return whether the run should end now (cancel or deadline). */
    bool
    stopRequested() const
    {
        if (state_ && state_->stop.load(std::memory_order_acquire))
            return true;
        return hasDeadline() && Clock::now() >= deadline_;
    }

    /** @return whether the deadline (not the cancel flag) has fired. */
    bool
    deadlineExpired() const
    {
        return hasDeadline() && Clock::now() >= deadline_;
    }

    /**
     * @return the armed deadline as seconds since the steady_clock
     * epoch (comparable to StopSource::requestStopAtSeconds()), or
     * 0.0 when no deadline is armed.
     */
    double
    deadlineAtSeconds() const
    {
        if (!hasDeadline())
            return 0.0;
        return std::chrono::duration<double>(
                   deadline_.time_since_epoch())
            .count();
    }

    /**
     * @return a copy of this token that additionally fires
     * `seconds_from_now` from the moment of this call.
     */
    StopToken
    withDeadline(double seconds_from_now) const
    {
        StopToken t(*this);
        t.deadline_ = Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds_from_now));
        return t;
    }

  private:
    friend class StopSource;

    using Clock = std::chrono::steady_clock;

    explicit StopToken(std::shared_ptr<const detail::StopState> state)
        : state_(std::move(state))
    {
    }

    bool
    hasDeadline() const
    {
        return deadline_ != Clock::time_point::max();
    }

    std::shared_ptr<const detail::StopState> state_;
    Clock::time_point deadline_ = Clock::time_point::max();
};

/**
 * Owner side of a cancellation channel.  requestStop() is sticky and
 * idempotent; every token handed out observes it.
 */
class StopSource
{
  public:
    StopSource() : state_(std::make_shared<detail::StopState>()) {}

    void
    requestStop()
    {
        // Record the first request's instant *before* raising the flag,
        // so any reader that observes stop==true also observes a
        // non-zero timestamp (release store orders the pair).
        double expected = 0.0;
        state_->requestedAt.compare_exchange_strong(
            expected, detail::steadyNowSeconds(),
            std::memory_order_relaxed, std::memory_order_relaxed);
        state_->stop.store(true, std::memory_order_release);
    }

    bool
    stopRequested() const
    {
        return state_->stop.load(std::memory_order_acquire);
    }

    /**
     * @return the steady-clock instant (seconds) of the first
     * requestStop(), or 0.0 if none happened yet.  Comparable to
     * StopToken::deadlineAtSeconds(): whichever is smaller fired first.
     */
    double
    requestStopAtSeconds() const
    {
        return state_->requestedAt.load(std::memory_order_acquire);
    }

    /** @return a token observing this source (no deadline). */
    StopToken token() const { return StopToken(state_); }

  private:
    std::shared_ptr<detail::StopState> state_;
};

/**
 * Live work counters an engine publishes while running.  All stores and
 * loads are relaxed: snapshots are monitoring data, not synchronisation.
 */
struct Progress
{
    std::atomic<std::uint64_t> vertexUpdates{0};
    std::atomic<std::uint64_t> blockUpdates{0};
    std::atomic<std::uint64_t> edgeTraversals{0};
    std::atomic<std::uint64_t> scatterWrites{0};

    /** Publish absolute totals (single-writer engines). */
    void
    publish(std::uint64_t vertex_updates, std::uint64_t block_updates,
            std::uint64_t edge_traversals, std::uint64_t scatter_writes)
    {
        vertexUpdates.store(vertex_updates, std::memory_order_relaxed);
        blockUpdates.store(block_updates, std::memory_order_relaxed);
        edgeTraversals.store(edge_traversals, std::memory_order_relaxed);
        scatterWrites.store(scatter_writes, std::memory_order_relaxed);
    }

    /** Add per-block increments (multi-writer engines). */
    void
    accumulate(std::uint64_t vertex_updates, std::uint64_t block_updates,
               std::uint64_t edge_traversals,
               std::uint64_t scatter_writes)
    {
        vertexUpdates.fetch_add(vertex_updates, std::memory_order_relaxed);
        blockUpdates.fetch_add(block_updates, std::memory_order_relaxed);
        edgeTraversals.fetch_add(edge_traversals,
                                 std::memory_order_relaxed);
        scatterWrites.fetch_add(scatter_writes,
                                std::memory_order_relaxed);
    }
};

} // namespace graphabcd

#endif // GRAPHABCD_CORE_STOP_TOKEN_HH
