/**
 * @file
 * Fundamental graph identifier and edge types.
 */

#ifndef GRAPHABCD_GRAPH_TYPES_HH
#define GRAPHABCD_GRAPH_TYPES_HH

#include <cstdint>
#include <limits>

namespace graphabcd {

/** Vertex identifier; dense in [0, numVertices). */
using VertexId = std::uint32_t;

/** Edge identifier / index into flat edge arrays. */
using EdgeId = std::uint64_t;

/** Block identifier within a BlockPartition. */
using BlockId = std::uint32_t;

/** Sentinel for "no vertex". */
constexpr VertexId invalidVertex = std::numeric_limits<VertexId>::max();

/** Sentinel for "no block". */
constexpr BlockId invalidBlock = std::numeric_limits<BlockId>::max();

/**
 * A directed, weighted edge.  Unweighted algorithms ignore `weight`;
 * Collaborative Filtering stores the rating there.
 */
struct Edge
{
    VertexId src = 0;
    VertexId dst = 0;
    float weight = 1.0f;

    Edge() = default;
    Edge(VertexId s, VertexId d, float w = 1.0f)
        : src(s), dst(d), weight(w)
    {}

    bool
    operator==(const Edge &other) const
    {
        return src == other.src && dst == other.dst &&
               weight == other.weight;
    }
};

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_TYPES_HH
