/**
 * @file
 * Reproduces paper Fig. 6: FPGA-accelerated GraphABCD versus the
 * kernel-fused software GraphABCD (both cyclic and priority), PR, SSSP
 * and CF across the datasets.
 *
 * Expected shape: hardware acceleration wins 1.2-9.2x, ~3.4x on
 * average — the customized sequential memory system plus the fully
 * pipelined GATHER beat the cache-based CPU loop.
 */

#include "bench_common.hh"

#include "core/engine.hh"

namespace graphabcd {
namespace {

using namespace bench;

/** Software GraphABCD: serial-engine work counters + CPU cost model. */
template <typename Program>
double
softwareSeconds(const BlockPartition &g, Program p, EngineOptions opt,
                std::uint32_t value_bytes,
                const typename SerialEngine<Program>::StopFn &stop)
{
    SerialEngine<Program> engine(g, p, opt);
    std::vector<typename Program::Value> x;
    EngineReport report = engine.run(x, nullptr, stop);
    return softwareAbcdTime(report, g.numVertices(), value_bytes)
        .seconds;
}

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declareInt("block-size", 512, "block size");
    flags.declare("graphs", "WT,PS,LJ", "dataset keys for PR/SSSP");
    if (!flags.parse(argc, argv))
        return 0;

    const auto block_size =
        static_cast<VertexId>(flags.getInt("block-size"));

    Table table({"app", "graph", "schedule", "software (s)",
                 "FPGA-accel (s)", "speedup"});
    double geo = 1.0;
    int rows = 0;

    std::string keys = flags.get("graphs");
    std::size_t pos = 0;
    while (pos < keys.size()) {
        auto comma = keys.find(',', pos);
        std::string key = keys.substr(pos, comma - pos);
        pos = comma == std::string::npos ? keys.size() : comma + 1;

        Dataset ds = loadDataset(key, flags);
        BlockPartition g(ds.graph, block_size);

        for (Schedule sched : {Schedule::Cyclic, Schedule::Priority}) {
            EngineOptions opt;
            opt.blockSize = block_size;
            opt.schedule = sched;

            // PageRank.
            {
                EngineOptions o = opt;
                o.tolerance = prTolerance(g.numVertices());
                double sw = softwareSeconds(
                    g, PageRankProgram(0.85), o, 8, nullptr);
                HarpConfig cfg;
                cfg.hybrid = true;
                RunResult hw = abcdPagerank(g, o, cfg);
                table.row()
                    .add("PR")
                    .add(key)
                    .add(to_string(sched))
                    .add(sw, 4)
                    .add(hw.seconds, 4)
                    .add(sw / hw.seconds, 3);
                geo *= sw / hw.seconds;
                rows++;
            }
            // SSSP.
            {
                EngineOptions o = opt;
                o.tolerance = 1e-9;
                double sw =
                    softwareSeconds(g, SsspProgram(hubVertex(g)), o, 8,
                                    nullptr);
                HarpConfig cfg;
                cfg.hybrid = true;
                RunResult hw = abcdSssp(g, o, cfg);
                table.row()
                    .add("SSSP")
                    .add(key)
                    .add(to_string(sched))
                    .add(sw, 4)
                    .add(hw.seconds, 4)
                    .add(sw / hw.seconds, 3);
                geo *= sw / hw.seconds;
                rows++;
            }
        }
    }

    // CF on the smallest rating stand-in.
    {
        Dataset ds = loadDataset("SAC", flags);
        EdgeList sym = ds.graph.symmetrized();
        BlockPartition g(sym, block_size);
        for (Schedule sched : {Schedule::Cyclic, Schedule::Priority}) {
            EngineOptions opt;
            opt.blockSize = block_size;
            opt.schedule = sched;
            opt.tolerance = 1e-6;
            opt.maxEpochs = 20.0;
            double sw = softwareSeconds(
                g, CfProgram<kCfDim>(kCfLearningRate, kCfLambda), opt,
                4 * kCfDim, nullptr);
            HarpConfig cfg;
            cfg.hybrid = true;
            RunResult hw = abcdCf(g, opt, cfg, 0.0, 20.0);
            table.row()
                .add("CF")
                .add("SAC")
                .add(to_string(sched))
                .add(sw, 4)
                .add(hw.seconds, 4)
                .add(sw / hw.seconds, 3);
            geo *= sw / hw.seconds;
            rows++;
        }
    }

    emitTable(table, flags);
    std::fprintf(stderr,
                 "info: geo-mean speedup %.2fx (paper: 1.2-9.2x, avg "
                 "3.4x).\n",
                 std::pow(geo, 1.0 / std::max(rows, 1)));
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
