#include "core/scheduler.hh"

#include <algorithm>

#include "support/logging.hh"

namespace graphabcd {

// ---------------------------------------------------------------- Cyclic

CyclicScheduler::CyclicScheduler(BlockId num_blocks)
    : active(num_blocks, 0)
{
}

void
CyclicScheduler::activate(BlockId b, double)
{
    GRAPHABCD_ASSERT(b < active.size(), "block id out of range");
    stats.activations++;
    if (!active[b]) {
        active[b] = 1;
        nActive++;
    }
}

std::optional<BlockId>
CyclicScheduler::next()
{
    if (nActive == 0)
        return std::nullopt;
    const auto n = static_cast<BlockId>(active.size());
    for (BlockId step = 0; step < n; step++) {
        BlockId b = cursor;
        cursor = cursor + 1 == n ? 0 : cursor + 1;
        if (active[b]) {
            active[b] = 0;
            nActive--;
            return b;
        }
    }
    panic("active count out of sync with the bitvector");
}

// -------------------------------------------------------------- Priority

PriorityScheduler::PriorityScheduler(BlockId num_blocks)
    : prio(num_blocks, 0.0), pushedPrio(num_blocks, 0.0),
      active(num_blocks, 0)
{
}

void
PriorityScheduler::activate(BlockId b, double priority_delta)
{
    GRAPHABCD_ASSERT(b < active.size(), "block id out of range");
    stats.activations++;
    // A gradient estimate cannot shrink from new scatter input: clamp
    // non-positive deltas.  Without the clamp a negative delta drives
    // prio[b] below pushedPrio[b] (or below zero), which defeats the
    // 25% growth test below and refreshes the heap on every call —
    // exactly the churn the throttle exists to prevent.
    if (priority_delta > 0.0)
        prio[b] += priority_delta;
    const bool was_active = active[b];
    if (!was_active) {
        active[b] = 1;
        nActive++;
    }
    // Lazy heap with churn throttling: only refresh a block's entry
    // when its priority grew by more than 25% since the last push —
    // scatter storms otherwise push one entry per written edge.  The
    // live entry of a block is the one whose key equals pushedPrio.
    if (!was_active || prio[b] > pushedPrio[b] * 1.25) {
        if (was_active)
            stats.refreshes++;
        pushedPrio[b] = prio[b];
        heap.push_back(HeapEntry{prio[b], b});
        std::push_heap(heap.begin(), heap.end());
        stats.heapPushes++;
    }
}

std::optional<BlockId>
PriorityScheduler::next()
{
    while (!heap.empty()) {
        std::pop_heap(heap.begin(), heap.end());
        HeapEntry top = heap.back();
        heap.pop_back();
        if (!active[top.block] ||
            top.priority != pushedPrio[top.block]) {
            stats.staleDiscards++;
            continue;   // stale
        }
        active[top.block] = 0;
        prio[top.block] = 0.0;   // processed: gradient estimate consumed
        pushedPrio[top.block] = 0.0;
        nActive--;
        return top.block;
    }
    GRAPHABCD_ASSERT(nActive == 0, "active blocks missing from the heap");
    return std::nullopt;
}

// ---------------------------------------------------------------- Random

RandomScheduler::RandomScheduler(BlockId num_blocks, std::uint64_t seed)
    : slot(num_blocks, npos), rng(seed)
{
}

void
RandomScheduler::activate(BlockId b, double)
{
    GRAPHABCD_ASSERT(b < slot.size(), "block id out of range");
    stats.activations++;
    if (slot[b] != npos)
        return;
    slot[b] = static_cast<std::uint32_t>(pool.size());
    pool.push_back(b);
}

std::optional<BlockId>
RandomScheduler::next()
{
    if (pool.empty())
        return std::nullopt;
    auto idx = static_cast<std::uint32_t>(rng.nextBounded(pool.size()));
    BlockId b = pool[idx];
    pool[idx] = pool.back();
    slot[pool[idx]] = idx;
    pool.pop_back();
    slot[b] = npos;
    return b;
}

// --------------------------------------------------------------- factory

std::unique_ptr<BlockScheduler>
makeScheduler(Schedule schedule, BlockId num_blocks, std::uint64_t seed)
{
    switch (schedule) {
      case Schedule::Cyclic:
        return std::make_unique<CyclicScheduler>(num_blocks);
      case Schedule::Priority:
        return std::make_unique<PriorityScheduler>(num_blocks);
      case Schedule::Random:
        return std::make_unique<RandomScheduler>(num_blocks, seed);
    }
    panic("unknown schedule");
}

} // namespace graphabcd
