/**
 * @file
 * Bounded priority admission queue — the serve layer's front door.
 *
 * Unlike TaskQueue (FIFO, producers block when full), an admission
 * queue must give *backpressure*: when the service is saturated a new
 * job is rejected immediately (`tryPush` returns false, surfaced to the
 * client as QueueFull) rather than parked on a blocking push, so the
 * submitting thread can shed load or retry with its own policy.
 * Dequeue order is highest priority first, FIFO among equal priorities
 * (a submission sequence number breaks ties), so latency-sensitive jobs
 * overtake batch work without starving same-priority peers.
 */

#ifndef GRAPHABCD_RUNTIME_ADMISSION_QUEUE_HH
#define GRAPHABCD_RUNTIME_ADMISSION_QUEUE_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "obs/obs.hh"
#include "runtime/task_queue.hh"   // PopStatus
#include "support/timer.hh"

namespace graphabcd {

/**
 * Blocking-consumer / rejecting-producer bounded priority queue with
 * TaskQueue-compatible close() semantics: after close(), pushes fail
 * and consumers drain the backlog, then see std::nullopt.
 */
template <typename T>
class AdmissionQueue
{
  public:
    /** @param capacity maximum queued items; 0 means unbounded. */
    explicit AdmissionQueue(std::size_t capacity) : cap(capacity) {}

    AdmissionQueue(const AdmissionQueue &) = delete;
    AdmissionQueue &operator=(const AdmissionQueue &) = delete;

    /**
     * Admit an item, never blocking.
     * @param priority larger dequeues first.
     * @return false when the queue is full (backpressure) or closed.
     */
    bool
    tryPush(T item, double priority)
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            if (closed || (cap != 0 && heap.size() >= cap))
                return false;
            Entry entry{priority, nextSeq++, std::move(item), 0.0};
            if constexpr (obs::kEnabled) {
                if (waitHist)
                    entry.enqueuedAt = monotonicSeconds();
            }
            heap.push_back(std::move(entry));
            std::push_heap(heap.begin(), heap.end());
            publishDepth(heap.size());
        }
        notEmpty.notify_one();
        return true;
    }

    /**
     * Block until an item is available or the queue is closed and
     * drained.
     * @return the highest-priority item, or std::nullopt on shutdown.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mtx);
        notEmpty.wait(lock, [this] { return closed || !heap.empty(); });
        if (heap.empty())
            return std::nullopt;
        return takeTop();
    }

    /**
     * Non-blocking dequeue with closed-and-drained visibility (same
     * contract as TaskQueue::tryPop(T&)).
     */
    PopStatus
    tryPop(T &out)
    {
        std::lock_guard<std::mutex> lock(mtx);
        if (heap.empty())
            return closed ? PopStatus::Drained : PopStatus::Empty;
        out = takeTop();
        return PopStatus::Ok;
    }

    /** Non-blocking dequeue; std::nullopt when currently empty. */
    std::optional<T>
    tryPop()
    {
        T item;
        if (tryPop(item) == PopStatus::Ok)
            return item;
        return std::nullopt;
    }

    /** Reject subsequent pushes; consumers drain then see nullopt. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mtx);
            closed = true;
        }
        notEmpty.notify_all();
    }

    /** @return current backlog length (racy, for stats only). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return heap.size();
    }

    /** @return whether close() has been called. */
    bool
    isClosed() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return closed;
    }

    /** @return whether the queue is closed *and* empty: terminal. */
    bool
    isDrained() const
    {
        std::lock_guard<std::mutex> lock(mtx);
        return closed && heap.empty();
    }

    /** @return configured capacity (0 = unbounded). */
    std::size_t capacity() const { return cap; }

    /** Publish backlog depth into `g` on every push/pop. */
    void
    attachDepthGauge(obs::Gauge *g)
    {
        std::lock_guard<std::mutex> lock(mtx);
        depthGauge = g;
    }

    /** Record each item's queueing delay (microseconds) into `h`. */
    void
    attachWaitHistogram(obs::Histogram *h)
    {
        std::lock_guard<std::mutex> lock(mtx);
        waitHist = h;
    }

  private:
    struct Entry
    {
        double priority;
        std::uint64_t seq;
        T item;
        double enqueuedAt;   //!< monotonicSeconds(); 0 when untimed

        bool
        operator<(const Entry &other) const
        {
            // Max-heap on priority; FIFO (smaller seq first) within a
            // priority class.
            if (priority != other.priority)
                return priority < other.priority;
            return seq > other.seq;
        }
    };

    /** Pop the heap top (caller holds mtx, heap non-empty). */
    T
    takeTop()
    {
        std::pop_heap(heap.begin(), heap.end());
        Entry entry = std::move(heap.back());
        heap.pop_back();
        publishDepth(heap.size());
        if constexpr (obs::kEnabled) {
            if (waitHist && entry.enqueuedAt > 0.0) {
                waitHist->record(
                    (monotonicSeconds() - entry.enqueuedAt) * 1e6);
            }
        }
        return std::move(entry.item);
    }

    void
    publishDepth(std::size_t depth)
    {
        if constexpr (obs::kEnabled) {
            if (depthGauge)
                depthGauge->set(static_cast<double>(depth));
        }
    }

    const std::size_t cap;
    mutable std::mutex mtx;
    std::condition_variable notEmpty;
    std::vector<Entry> heap;   //!< std::*_heap managed
    std::uint64_t nextSeq = 0;
    bool closed = false;
    obs::Gauge *depthGauge = nullptr;
    obs::Histogram *waitHist = nullptr;
};

} // namespace graphabcd

#endif // GRAPHABCD_RUNTIME_ADMISSION_QUEUE_HH
