#include "algorithms/extras.hh"

#include <vector>

#include "graph/csr.hh"

namespace graphabcd {

std::uint64_t
coloringConflicts(const BlockPartition &g,
                  const std::vector<double> &colors)
{
    std::uint64_t conflicts = 0;
    for (VertexId v = 0; v < g.numVertices(); v++) {
        g.forEachInEdge(v, [&](EdgeId, VertexId u, float) {
            if (u != v && ColoringProgram::colorOf(colors[u]) ==
                              ColoringProgram::colorOf(colors[v]))
                conflicts++;
        });
    }
    return conflicts;
}

std::uint64_t
kcoreSize(const std::vector<double> &alive)
{
    std::uint64_t count = 0;
    for (double a : alive)
        count += a > 0.5;
    return count;
}

std::vector<double>
kcoreReference(const EdgeList &sym, std::uint32_t k)
{
    const VertexId n = sym.numVertices();
    Csr adj(sym, Csr::Axis::BySource);
    std::vector<std::uint32_t> degree(n);
    std::vector<char> alive(n, 1);
    std::vector<VertexId> queue;

    for (VertexId v = 0; v < n; v++) {
        degree[v] = adj.degree(v);
        if (degree[v] < k) {
            alive[v] = 0;
            queue.push_back(v);
        }
    }
    while (!queue.empty()) {
        VertexId v = queue.back();
        queue.pop_back();
        for (VertexId u : adj.neighbors(v)) {
            if (alive[u] && --degree[u] < k) {
                alive[u] = 0;
                queue.push_back(u);
            }
        }
    }
    std::vector<double> out(n);
    for (VertexId v = 0; v < n; v++)
        out[v] = alive[v] ? 1.0 : 0.0;
    return out;
}

} // namespace graphabcd
