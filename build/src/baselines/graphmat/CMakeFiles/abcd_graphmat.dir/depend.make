# Empty dependencies file for abcd_graphmat.
# This may be replaced when dependencies are built.
