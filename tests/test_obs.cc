/**
 * @file
 * Tests of the observability layer: histogram bucket/aggregation math,
 * registry behaviour, trace ring buffers and Chrome JSON export, and
 * the engine-level staleness measurement the bounded task queue is
 * supposed to guarantee (paper Sec. III-D).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/pagerank.hh"
#include "baselines/graphmat/engine.hh"
#include "baselines/graphmat/programs.hh"
#include "core/async_engine.hh"
#include "core/engine.hh"
#include "graph/generators.hh"
#include "obs/convergence.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/metrics_server.hh"
#include "obs/obs.hh"
#include "obs/prometheus.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace graphabcd {
namespace {

// --------------------------------------------------------------- metrics

TEST(Histogram, BucketBoundariesAreUpperInclusive)
{
    // Bucket i counts bounds[i-1] < x <= bounds[i]; one implicit
    // overflow bucket catches everything above the last bound.
    Histogram h({1.0, 2.0, 4.0});
    for (double x : {0.5, 1.0, 1.5, 3.0, 100.0})
        h.record(x);

    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 2u);   // 0.5 and 1.0 (<= 1)
    EXPECT_EQ(snap.counts[1], 1u);   // 1.5
    EXPECT_EQ(snap.counts[2], 1u);   // 3.0
    EXPECT_EQ(snap.counts[3], 1u);   // 100.0 overflows
    EXPECT_EQ(snap.count, 5u);
    EXPECT_DOUBLE_EQ(snap.sum, 106.0);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 100.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 106.0 / 5.0);
}

TEST(Histogram, QuantileReturnsBucketUpperBoundOrMax)
{
    Histogram h({1.0, 2.0, 4.0});
    for (double x : {0.5, 1.0, 1.5, 3.0, 100.0})
        h.record(x);

    const Histogram::Snapshot snap = h.snapshot();
    // rank = q * (count - 1): ranks 0-1 land in bucket <=1, rank 2 in
    // bucket <=2, rank 3 in bucket <=4, rank 4 in the overflow bucket.
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.75), 4.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);   // overflow -> max
}

TEST(Histogram, QuantileEdgeCases)
{
    // Empty: every quantile is the defined zero, not UB.
    {
        Histogram h({1.0, 2.0});
        const Histogram::Snapshot snap = h.snapshot();
        EXPECT_DOUBLE_EQ(snap.quantile(0.0), 0.0);
        EXPECT_DOUBLE_EQ(snap.quantile(1.0), 0.0);
    }
    // Single bucket holding every sample: all quantiles report its
    // upper bound (the estimate is bucket-granular by design).
    {
        Histogram h({10.0});
        for (double x : {1.0, 2.0, 3.0})
            h.record(x);
        const Histogram::Snapshot snap = h.snapshot();
        EXPECT_DOUBLE_EQ(snap.quantile(0.0), 10.0);
        EXPECT_DOUBLE_EQ(snap.quantile(0.5), 10.0);
        EXPECT_DOUBLE_EQ(snap.quantile(1.0), 10.0);
    }
    // Every sample beyond the last bound: the overflow bucket has no
    // upper bound, so quantiles fall back to the observed max.
    {
        Histogram h({1.0});
        h.record(5.0);
        h.record(7.0);
        const Histogram::Snapshot snap = h.snapshot();
        EXPECT_DOUBLE_EQ(snap.quantile(0.0), 7.0);
        EXPECT_DOUBLE_EQ(snap.quantile(1.0), 7.0);
    }
    // Exactly one sample: q=0 and q=1 agree on its bucket.
    {
        Histogram h({1.0, 2.0});
        h.record(1.5);
        const Histogram::Snapshot snap = h.snapshot();
        EXPECT_DOUBLE_EQ(snap.quantile(0.0), 2.0);
        EXPECT_DOUBLE_EQ(snap.quantile(1.0), 2.0);
    }
}

TEST(Histogram, EmptySnapshotIsWellDefined)
{
    Histogram h({1.0, 10.0});
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max, 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, ResetZeroesEverythingAndStaysUsable)
{
    Histogram h({1.0});
    h.record(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    h.record(0.5);
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 0.5);
}

TEST(Metrics, ConcurrentRecordingLosesNothing)
{
    Counter c;
    Histogram h({10.0, 100.0, 1000.0});
    constexpr int threads = 4, per_thread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; t++) {
        pool.emplace_back([&, t] {
            for (int i = 0; i < per_thread; i++) {
                c.add(1);
                h.record(static_cast<double>(t * per_thread + i));
            }
        });
    }
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(threads) * per_thread);
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<std::uint64_t>(threads) * per_thread);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t n : snap.counts)
        bucket_total += n;
    EXPECT_EQ(bucket_total, snap.count);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max,
                     static_cast<double>(threads * per_thread - 1));
}

TEST(MetricsRegistry, SameNameReturnsSameInstance)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("x");
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    // Second registration keeps the original bucket layout.
    Histogram &h1 = reg.histogram("h", {1.0, 2.0});
    Histogram &h2 = reg.histogram("h", {99.0});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h1.snapshot().bounds.size(), 2u);
}

TEST(MetricsRegistry, DumpListsEveryMetricAndResetZeroes)
{
    MetricsRegistry reg;
    reg.counter("jobs.done").add(3);
    reg.gauge("queue.depth").set(7.0);
    reg.histogram("lat", {1.0, 10.0}).record(5.0);

    const std::string dump = reg.dump();
    EXPECT_NE(dump.find("counter jobs.done 3"), std::string::npos);
    EXPECT_NE(dump.find("gauge queue.depth 7"), std::string::npos);
    EXPECT_NE(dump.find("hist lat count=1"), std::string::npos);

    reg.reset();
    EXPECT_EQ(reg.counter("jobs.done").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("queue.depth").value(), 0.0);
    EXPECT_EQ(reg.histogram("lat", {}).count(), 0u);
}

// ----------------------------------------------------------------- trace

TEST(TraceRecorder, DisabledRecorderRetainsNothing)
{
    TraceRecorder rec(8);
    rec.complete("x", 0.0, 1.0);
    rec.instant("y");
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceRecorder, RingWrapKeepsCapacityNewestEvents)
{
    TraceRecorder rec(8);
    rec.setEnabled(true);
    for (int i = 0; i < 20; i++)
        rec.complete("span", static_cast<double>(i), 1.0);
    EXPECT_EQ(rec.eventCount(), 8u);
    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceRecorder, ChromeJsonExportIsLoadable)
{
    TraceRecorder rec(64);
    rec.setEnabled(true);
    rec.complete("gas", 10.0, 5.0);
    rec.instant("activated");
    {
        TraceSpan span(rec, "scoped");
    }
    EXPECT_EQ(rec.eventCount(), 3u);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"gas\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
    // Instant events need a scope to load in Perfetto.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
    // Balanced braces and closing bracket: crude well-formedness.
    EXPECT_NE(json.find("\n]}"), std::string::npos);
}

TEST(TraceRecorder, ThreadsGetDistinctRings)
{
    TraceRecorder rec(16);
    rec.setEnabled(true);
    std::thread t1([&] { rec.instant("a"); });
    std::thread t2([&] { rec.instant("b"); });
    t1.join();
    t2.join();
    EXPECT_EQ(rec.eventCount(), 2u);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"b\""), std::string::npos);
}

TEST(TraceRecorder, VirtualTracksGetHighTidsAnyThreadMayWrite)
{
    TraceRecorder rec(8);
    rec.setEnabled(true);
    rec.completeOnTrack(0, "pe.task", 0.0, 5.0);
    std::thread t([&] { rec.completeOnTrack(2, "pe.task", 5.0, 5.0); });
    t.join();
    EXPECT_EQ(rec.eventCount(), 2u);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    const std::string json = os.str();
    // Tracks 0 and 2 render as tids kTrackBase + index, far above any
    // real thread ring's tid.
    const auto base = TraceRecorder::kTrackBase;
    EXPECT_NE(json.find("\"tid\":" + std::to_string(base)),
              std::string::npos);
    EXPECT_NE(json.find("\"tid\":" + std::to_string(base + 2)),
              std::string::npos);

    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
}

// ----------------------------------------------------------- convergence

TEST(Convergence, StrideDownsamplingBoundsMemoryKeepsOrderAndFinal)
{
    ConvergenceSeries series(1, "unit", 16);
    for (int i = 0; i < 1000; i++) {
        ConvergencePoint p;
        p.epochs = static_cast<double>(i);
        p.residual = 1000.0 - i;
        series.record(p);
    }
    EXPECT_LE(series.size(), 16u);
    const auto pts = series.points();
    ASSERT_GE(pts.size(), 2u);
    for (std::size_t i = 1; i < pts.size(); i++)
        EXPECT_LT(pts[i - 1].epochs, pts[i].epochs);

    // The run's last sample always lands, whatever the stride is.
    ConvergencePoint last;
    last.epochs = 5000.0;
    series.recordFinal(last);
    EXPECT_DOUBLE_EQ(series.back().epochs, 5000.0);
    EXPECT_LE(series.size(), 16u);
}

TEST(Convergence, RecorderRetainsBoundedSeriesAndRendersCsvJson)
{
    ConvergenceRecorder rec(2);
    auto a = rec.begin("a");
    {
        ConvergencePoint p;
        p.epochs = 1.0;
        p.residual = 0.5;
        p.activeVertices = 7;
        a->record(p);
    }
    rec.begin("b");
    rec.begin("c");
    EXPECT_EQ(rec.seriesCount(), 2u);
    EXPECT_EQ(rec.find("a"), nullptr);   // oldest evicted
    EXPECT_NE(rec.find("c"), nullptr);

    const std::string csv = ConvergenceRecorder::csv(*a);
    EXPECT_EQ(csv.rfind("series,label,epochs,residual,active_vertices,"
                        "vertex_updates,edge_traversals,wall_seconds,"
                        "sim_seconds\n",
                        0),
              0u);
    EXPECT_NE(csv.find(",a,1,"), std::string::npos);

    EXPECT_NE(rec.csv().find("series,label"), std::string::npos);
    const std::string json = rec.json();
    EXPECT_EQ(json.rfind("{\"series\":[", 0), 0u);
    EXPECT_NE(json.find("\"label\":\"b\""), std::string::npos);
}

// --------------------------------------------------------------- sampler

TEST(Sampler, SampleOnceSnapshotsCountersAndGauges)
{
    MetricsRegistry registry;
    registry.counter("jobs").add(5);
    registry.gauge("depth").set(2.5);
    Sampler sampler(registry, 64);

    sampler.sampleOnce();
    registry.counter("jobs").add(1);
    sampler.sampleOnce();

    EXPECT_EQ(sampler.seriesCount(), 2u);
    bool saw_counter = false, saw_gauge = false;
    for (const auto &series : sampler.series()) {
        if (series->key() == "counter:jobs") {
            saw_counter = true;
            ASSERT_EQ(series->size(), 2u);
            EXPECT_DOUBLE_EQ(series->points()[0].value, 5.0);
            EXPECT_DOUBLE_EQ(series->back().value, 6.0);
        } else if (series->key() == "gauge:depth") {
            saw_gauge = true;
            EXPECT_DOUBLE_EQ(series->back().value, 2.5);
        }
    }
    EXPECT_TRUE(saw_counter);
    EXPECT_TRUE(saw_gauge);

    const std::string csv = sampler.csv();
    EXPECT_EQ(csv.rfind("key,t_seconds,value\n", 0), 0u);
    EXPECT_NE(csv.find("counter:jobs,"), std::string::npos);
}

TEST(Sampler, BackgroundThreadRecordsOverTimeAndStops)
{
    MetricsRegistry registry;
    registry.gauge("load").set(1.0);
    Sampler sampler(registry, 64);
    sampler.start(0.001);
    EXPECT_TRUE(sampler.running());
    // Wait for at least a couple of ticks, bounded to stay robust on a
    // loaded CI machine.
    for (int i = 0; i < 200; i++) {
        if (sampler.seriesCount() > 0 &&
            sampler.series()[0]->size() >= 2)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    sampler.stop();
    EXPECT_FALSE(sampler.running());
    ASSERT_EQ(sampler.seriesCount(), 1u);
    EXPECT_GE(sampler.series()[0]->size(), 2u);
    // Series stay readable after stop, and restart keeps the time axis.
    const std::size_t before = sampler.series()[0]->size();
    sampler.start(0.001);
    sampler.stop();
    EXPECT_GE(sampler.series()[0]->size(), before);
}

// ------------------------------------------------------------ prometheus

namespace prom {

bool
validName(const std::string &name)
{
    if (name.empty())
        return false;
    auto ok_first = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
               c == ':';
    };
    auto ok_rest = [&](char c) {
        return ok_first(c) || std::isdigit(static_cast<unsigned char>(c));
    };
    if (!ok_first(name[0]))
        return false;
    for (char c : name.substr(1)) {
        if (!ok_rest(c))
            return false;
    }
    return true;
}

/**
 * Line-format validator for text exposition 0.0.4: every line is
 * either `# TYPE <name> <kind>` or `<name>[{labels}] <value>`.
 * @return true when the whole document parses; *why names the first
 * offending line otherwise.
 */
bool
validate(const std::string &text, std::string *why)
{
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            *why = "document does not end in a newline";
            return false;
        }
        const std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty()) {
            *why = "empty line";
            return false;
        }
        if (line[0] == '#') {
            std::istringstream iss(line);
            std::string hash, keyword, name, kind;
            iss >> hash >> keyword >> name >> kind;
            if (hash != "#" || keyword != "TYPE" || !validName(name) ||
                (kind != "counter" && kind != "gauge" &&
                 kind != "histogram")) {
                *why = "bad comment line: " + line;
                return false;
            }
            continue;
        }
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos) {
            *why = "sample line without a value: " + line;
            return false;
        }
        std::string series = line.substr(0, sp);
        const std::string value = line.substr(sp + 1);
        char *end = nullptr;
        std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0') {
            *why = "unparsable value: " + line;
            return false;
        }
        const std::size_t brace = series.find('{');
        if (brace != std::string::npos) {
            if (series.back() != '}') {
                *why = "unterminated label set: " + line;
                return false;
            }
            series = series.substr(0, brace);
        }
        if (!validName(series)) {
            *why = "bad metric name: " + line;
            return false;
        }
    }
    return true;
}

} // namespace prom

TEST(Prometheus, NamesArePrefixedAndSanitised)
{
    EXPECT_EQ(prometheusName("engine.async.block_gas_us"),
              "graphabcd_engine_async_block_gas_us");
    EXPECT_EQ(prometheusName("harp.pe_utilization"),
              "graphabcd_harp_pe_utilization");
    EXPECT_TRUE(prom::validName(prometheusName("weird name!/7")));
}

TEST(Prometheus, TextExpositionIsWellFormed)
{
    MetricsSnapshot snap;
    snap.counters.emplace_back("serve.jobs", 3);
    snap.gauges.emplace_back("harp.pe_utilization", 0.5);
    Histogram h({1.0, 2.0});
    h.record(0.5);
    h.record(5.0);
    snap.histograms.emplace_back("lat.us", h.snapshot());

    const std::string text = prometheusText(snap);
    std::string why;
    EXPECT_TRUE(prom::validate(text, &why)) << why;

    EXPECT_NE(text.find("# TYPE graphabcd_serve_jobs_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("graphabcd_serve_jobs_total 3"),
              std::string::npos);
    EXPECT_NE(text.find("graphabcd_harp_pe_utilization 0.5"),
              std::string::npos);
    // Histogram buckets are cumulative and end at le="+Inf" == count.
    EXPECT_NE(text.find("graphabcd_lat_us_bucket{le=\"1\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("graphabcd_lat_us_bucket{le=\"+Inf\"} 2"),
              std::string::npos);
    EXPECT_NE(text.find("graphabcd_lat_us_count 2"), std::string::npos);
}

TEST(Prometheus, GlobalRegistryExpositionValidates)
{
    MetricsRegistry::global().counter("test.prom_exposition").add(2);
    const std::string text = prometheusText();
    std::string why;
    EXPECT_TRUE(prom::validate(text, &why)) << why;
    EXPECT_NE(
        text.find("graphabcd_test_prom_exposition_total"),
        std::string::npos);
}

// -------------------------------------------------------- metrics server

TEST(MetricsServer, HandlePathRoutes)
{
    std::string body, content_type;
    EXPECT_TRUE(MetricsServer::handlePath("/metrics", &body,
                                          &content_type));
    EXPECT_NE(content_type.find("text/plain"), std::string::npos);
    EXPECT_TRUE(MetricsServer::handlePath("/series", &body,
                                          &content_type));
    EXPECT_TRUE(MetricsServer::handlePath("/convergence", &body,
                                          &content_type));
    EXPECT_TRUE(MetricsServer::handlePath("/convergence.json", &body,
                                          &content_type));
    EXPECT_NE(content_type.find("application/json"), std::string::npos);
    EXPECT_FALSE(MetricsServer::handlePath("/nope", &body,
                                           &content_type));
}

namespace {

/** One blocking HTTP/1.0 GET against loopback; returns the raw reply. */
std::string
httpGet(std::uint16_t port, const std::string &target)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return {};
    }
    const std::string req =
        "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
    (void)!::send(fd, req.data(), req.size(), 0);
    std::string reply;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

} // namespace

TEST(MetricsServer, ServesPrometheusTextOverLoopback)
{
    MetricsRegistry::global().counter("test.server_metric").add(1);

    MetricsServer server;
    std::string error;
    ASSERT_TRUE(server.start(0, &error)) << error;
    ASSERT_GT(server.port(), 0);

    const std::string reply = httpGet(server.port(), "/metrics");
    ASSERT_NE(reply.find("HTTP/1.0 200 OK"), std::string::npos);
    ASSERT_NE(reply.find("\r\n\r\n"), std::string::npos);
    const std::string body =
        reply.substr(reply.find("\r\n\r\n") + 4);
    std::string why;
    EXPECT_TRUE(prom::validate(body, &why)) << why;
    EXPECT_NE(body.find("graphabcd_test_server_metric_total"),
              std::string::npos);

    EXPECT_NE(httpGet(server.port(), "/nope").find("404"),
              std::string::npos);

    server.stop();
    EXPECT_FALSE(server.running());
}

// ---------------------------------------------------------------- logger

TEST(Logger, PlainAndJsonFormatsAndLevelFilter)
{
    obs::Logger &logger = obs::Logger::global();
    const obs::LogLevel old_level = logger.level();
    const bool old_json = logger.json();

    std::vector<std::string> lines;
    logger.setSink([&lines](const std::string &line) {
        lines.push_back(line);
    });
    logger.setLevel(obs::LogLevel::Info);
    logger.setJson(false);

    obs::logAt(obs::LogLevel::Debug, "test", "filtered out");
    obs::logAt(obs::LogLevel::Info, "test", "job finished",
               obs::LogField("job", 3), obs::LogField("state", "done"),
               obs::LogField("ok", true));
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("INFO test: job finished job=3 state=done "
                            "ok=true"),
              std::string::npos);

    logger.setJson(true);
    obs::logAt(obs::LogLevel::Warn, "test", "queue \"full\"",
               obs::LogField("depth", 1.5));
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[1].rfind("{\"ts\":\"", 0), 0u);
    EXPECT_NE(lines[1].find("\"level\":\"warn\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"msg\":\"queue \\\"full\\\"\""),
              std::string::npos);
    // Numbers stay unquoted so `jq` sees them as numbers.
    EXPECT_NE(lines[1].find("\"depth\":1.5"), std::string::npos);

    logger.setSink(nullptr);
    logger.setLevel(old_level);
    logger.setJson(old_json);
}

TEST(Logger, ParseLevelNamesAndFallback)
{
    EXPECT_EQ(obs::parseLogLevel("debug"), obs::LogLevel::Debug);
    EXPECT_EQ(obs::parseLogLevel("error"), obs::LogLevel::Error);
    EXPECT_EQ(obs::parseLogLevel("off"), obs::LogLevel::Off);
    EXPECT_EQ(obs::parseLogLevel("nonsense", obs::LogLevel::Warn),
              obs::LogLevel::Warn);
    EXPECT_EQ(obs::parseLogLevel(nullptr, obs::LogLevel::Debug),
              obs::LogLevel::Debug);
}

// ----------------------------------------------- engine instrumentation

#if GRAPHABCD_OBS_ENABLED

TEST(EngineObs, AsyncStalenessIsBoundedByQueueAndThreads)
{
    // The engine's dispatch FIFO holds participation * 4 stamped
    // items; an item's measured staleness (block updates committed
    // between FIFO entry and claim) can only come from items claimed
    // before it — at most a FIFO's worth plus the blocks in flight on
    // the participants.  This is the bounded-staleness condition of
    // paper Sec. III-D, measured rather than assumed.
    constexpr std::uint32_t threads = 4;
    obs::Histogram &stale = obs::histogram(
        "engine.async.staleness_blocks", obs::stalenessBuckets());
    stale.reset();

    Rng rng(61);
    EdgeList el = generateRmat(400, 3200, rng);
    EngineOptions opt;
    opt.blockSize = 16;   // plenty of blocks to keep the queue full
    opt.numThreads = threads;
    opt.tolerance = 1e-10;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);

    EXPECT_TRUE(report.converged);
    EXPECT_GT(stale.count(), 0u);
    EXPECT_LE(stale.max(), static_cast<double>(threads * 4 + threads));
}

TEST(EngineObs, AsyncRunRecordsLatencyFanoutAndSchedulerCounters)
{
    obs::Histogram &gas = obs::histogram("engine.async.block_gas_us",
                                         obs::latencyBucketsUs());
    obs::Histogram &fanout = obs::histogram(
        "engine.async.scatter_fanout", obs::fanoutBuckets());
    obs::Counter &activations = obs::counter("scheduler.activations");
    gas.reset();
    fanout.reset();
    activations.reset();

    Rng rng(62);
    EdgeList el = generateRmat(200, 1600, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 2;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);

    EXPECT_EQ(gas.count(), report.blockUpdates);
    EXPECT_EQ(fanout.count(), report.blockUpdates);
    EXPECT_GT(activations.value(), 0u);
}

TEST(EngineObs, SerialPageRankConvergenceCurveIsMonotone)
{
    Rng rng(63);
    EdgeList el = generateRmat(300, 2400, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    auto series = std::make_shared<ConvergenceSeries>(1, "pr-serial");
    opt.convergence = series;
    BlockPartition g(el, opt.blockSize);
    SerialEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    // This is the paper's Fig. 9-11 claim in miniature: the residual
    // (window L1 delta) of a PageRank run decays monotonically.
    const auto pts = series->points();
    ASSERT_GE(pts.size(), 2u);
    for (std::size_t i = 1; i < pts.size(); i++) {
        EXPECT_LE(pts[i].residual, pts[i - 1].residual + 1e-12)
            << "residual rose at sample " << i;
        EXPECT_LT(pts[i - 1].epochs, pts[i].epochs);
    }
    // The final CSV row is the report's residual, by construction.
    EXPECT_DOUBLE_EQ(pts.back().residual, report.residual);
    EXPECT_EQ(pts.back().vertexUpdates, report.vertexUpdates);

    const std::string csv = ConvergenceRecorder::csv(*series);
    EXPECT_EQ(csv.rfind("series,label,epochs,residual,", 0), 0u);
}

TEST(EngineObs, AsyncEngineRecordsConvergenceAndFinalResidual)
{
    Rng rng(64);
    EdgeList el = generateRmat(200, 1600, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 2;
    auto series = std::make_shared<ConvergenceSeries>(2, "pr-async");
    opt.convergence = series;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    ASSERT_GE(series->size(), 1u);
    EXPECT_DOUBLE_EQ(series->back().residual, report.residual);
    EXPECT_EQ(series->back().vertexUpdates, report.vertexUpdates);
}

TEST(EngineObs, GraphMatBaselineRecordsOneSamplePerSuperstep)
{
    Rng rng(65);
    EdgeList el = generateRmat(200, 1600, rng);
    const auto degs = el.outDegrees();
    graphmat::GraphMatEngine<graphmat::PageRankSpmv> engine(
        el, graphmat::PageRankSpmv(0.85, degs));
    auto series = std::make_shared<ConvergenceSeries>(3, "pr-graphmat");
    engine.setConvergenceSeries(series);

    std::vector<graphmat::PageRankSpmv::Value> values;
    const graphmat::GraphMatReport report =
        engine.run(values, 1e-9, 200);

    EXPECT_EQ(series->size(), report.iterations);
    const auto pts = series->points();
    for (std::size_t i = 1; i < pts.size(); i++)
        EXPECT_LE(pts[i].residual, pts[i - 1].residual + 1e-12);
    EXPECT_EQ(pts.back().vertexUpdates, report.vertexUpdates);
}

#endif // GRAPHABCD_OBS_ENABLED

} // namespace
} // namespace graphabcd
