#include "support/table.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>

#include "support/logging.hh"

namespace graphabcd {

Table::Table(std::vector<std::string> column_names)
    : header(std::move(column_names))
{
    GRAPHABCD_ASSERT(!header.empty(), "a table needs at least one column");
}

Table &
Table::row()
{
    if (!cells.empty() && cells.back().size() != header.size()) {
        panic("row ", cells.size() - 1, " has ", cells.back().size(),
              " cells, expected ", header.size());
    }
    cells.emplace_back();
    cells.back().reserve(header.size());
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    GRAPHABCD_ASSERT(!cells.empty(), "call row() before add()");
    GRAPHABCD_ASSERT(cells.back().size() < header.size(),
                     "row already full");
    cells.back().push_back(cell);
    return *this;
}

Table &
Table::add(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    return add(std::string(buf));
}

Table &
Table::add(std::uint64_t value)
{
    return add(std::to_string(value));
}

namespace {

bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    for (char c : cell) {
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
              c == '-' || c == '+' || c == 'e' || c == 'E' || c == 'x' ||
              c == '%' || c == ','))
            return false;
    }
    return true;
}

} // namespace

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); c++)
        widths[c] = header[c].size();
    for (const auto &row_cells : cells) {
        for (std::size_t c = 0; c < row_cells.size(); c++)
            widths[c] = std::max(widths[c], row_cells[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row_cells) {
        os << "|";
        for (std::size_t c = 0; c < header.size(); c++) {
            const std::string cell =
                c < row_cells.size() ? row_cells[c] : "";
            std::size_t pad = widths[c] - cell.size();
            if (looksNumeric(cell)) {
                os << ' ' << std::string(pad, ' ') << cell << " |";
            } else {
                os << ' ' << cell << std::string(pad, ' ') << " |";
            }
        }
        os << '\n';
    };

    emit_row(header);
    os << "|";
    for (std::size_t c = 0; c < header.size(); c++)
        os << std::string(widths[c] + 2, '-') << "|";
    os << '\n';
    for (const auto &row_cells : cells)
        emit_row(row_cells);
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row_cells) {
        for (std::size_t c = 0; c < row_cells.size(); c++) {
            if (c)
                os << ',';
            os << csvEscape(row_cells[c]);
        }
        os << '\n';
    };
    emit_row(header);
    for (const auto &row_cells : cells)
        emit_row(row_cells);
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream ofs(path);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    printCsv(ofs);
}

} // namespace graphabcd
