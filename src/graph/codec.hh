/**
 * @file
 * Varint / delta codec for the compressed graph layouts (ROADMAP item 3,
 * GraphScale-style neighbor-list compression).
 *
 * Encoding is LEB128: seven payload bits per byte, the high bit marks a
 * continuation.  Sorted id lists are stored as a first absolute value
 * followed by non-negative deltas, so typical social-graph neighbor
 * lists cost 1-2 bytes per edge instead of 4 (ids) or 8 (positions).
 *
 * Two decode paths:
 *
 *  - decodeVarint32/decodeVarint64: unchecked, for trusted in-memory
 *    streams built by this process (the hot gather/scatter loops);
 *  - getVarint32/getVarint64: bounds- and canonicality-checked, for
 *    byte streams read from disk.  A truncated stream, an encoding
 *    longer than the maximum, a value overflowing the output type, or
 *    a non-canonical padded encoding all return an error instead of
 *    over-reading — the adversarial-input contract the codec tests pin.
 */

#ifndef GRAPHABCD_GRAPH_CODEC_HH
#define GRAPHABCD_GRAPH_CODEC_HH

#include <cstdint>
#include <span>
#include <vector>

namespace graphabcd {
namespace codec {

/** Longest legal encoding of a 32-bit value (ceil(32 / 7)). */
constexpr std::size_t kMaxVarint32Bytes = 5;
/** Longest legal encoding of a 64-bit value (ceil(64 / 7)). */
constexpr std::size_t kMaxVarint64Bytes = 10;

/** Append the LEB128 encoding of `x` to `out`. */
inline void
putVarint32(std::vector<std::uint8_t> &out, std::uint32_t x)
{
    while (x >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(x) | 0x80);
        x >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(x));
}

/** Append the LEB128 encoding of `x` to `out`. */
inline void
putVarint64(std::vector<std::uint8_t> &out, std::uint64_t x)
{
    while (x >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(x) | 0x80);
        x >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(x));
}

/**
 * Unchecked decode for trusted in-memory streams.
 * @return pointer past the consumed bytes.
 */
inline const std::uint8_t *
decodeVarint32(const std::uint8_t *p, std::uint32_t &out)
{
    std::uint32_t b = *p++;
    if (b < 0x80) {
        out = b;
        return p;
    }
    std::uint32_t x = b & 0x7f;
    unsigned shift = 7;
    do {
        b = *p++;
        x |= (b & 0x7f) << shift;
        shift += 7;
    } while (b & 0x80);
    out = x;
    return p;
}

/** Unchecked 64-bit decode for trusted in-memory streams. */
inline const std::uint8_t *
decodeVarint64(const std::uint8_t *p, std::uint64_t &out)
{
    std::uint64_t b = *p++;
    if (b < 0x80) {
        out = b;
        return p;
    }
    std::uint64_t x = b & 0x7f;
    unsigned shift = 7;
    do {
        b = *p++;
        x |= (b & 0x7f) << shift;
        shift += 7;
    } while (b & 0x80);
    out = x;
    return p;
}

/** Why a checked decode rejected its input. */
enum class VarintStatus
{
    Ok,
    Truncated,   //!< continuation bit set at end of buffer
    Overlong,    //!< more than the maximum encoding length, or a
                 //!< non-canonical zero-padded tail byte
    Overflow,    //!< final byte carries bits beyond the output width
};

/** Outcome of a checked decode. */
struct VarintResult
{
    VarintStatus status = VarintStatus::Ok;
    std::size_t bytes = 0;   //!< consumed on Ok; 0 otherwise

    bool ok() const { return status == VarintStatus::Ok; }
};

/** @return human-readable name of a VarintStatus. */
inline const char *
to_string(VarintStatus s)
{
    switch (s) {
      case VarintStatus::Ok:        return "ok";
      case VarintStatus::Truncated: return "truncated varint";
      case VarintStatus::Overlong:  return "overlong varint";
      case VarintStatus::Overflow:  return "varint overflows 32/64 bits";
    }
    return "?";
}

/**
 * Checked decode of an untrusted 32-bit varint in [p, end).  Never
 * reads past `end`; rejects encodings longer than kMaxVarint32Bytes,
 * values wider than 32 bits, and non-canonical padded encodings (a
 * multi-byte encoding whose last byte is zero, e.g. 0x80 0x00 for 0).
 */
inline VarintResult
getVarint32(const std::uint8_t *p, const std::uint8_t *end,
            std::uint32_t &out)
{
    std::uint32_t x = 0;
    for (std::size_t i = 0; i < kMaxVarint32Bytes; i++) {
        if (p + i == end)
            return {VarintStatus::Truncated, 0};
        const std::uint8_t b = p[i];
        const std::uint32_t payload = b & 0x7f;
        // Byte 4 (the fifth) may only carry 32 - 4*7 = 4 payload bits.
        if (i == kMaxVarint32Bytes - 1 && payload > 0x0f)
            return {VarintStatus::Overflow, 0};
        x |= payload << (7 * i);
        if (!(b & 0x80)) {
            if (i > 0 && payload == 0)
                return {VarintStatus::Overlong, 0};
            out = x;
            return {VarintStatus::Ok, i + 1};
        }
    }
    return {VarintStatus::Overlong, 0};
}

/** Checked decode of an untrusted 64-bit varint in [p, end). */
inline VarintResult
getVarint64(const std::uint8_t *p, const std::uint8_t *end,
            std::uint64_t &out)
{
    std::uint64_t x = 0;
    for (std::size_t i = 0; i < kMaxVarint64Bytes; i++) {
        if (p + i == end)
            return {VarintStatus::Truncated, 0};
        const std::uint8_t b = p[i];
        const std::uint64_t payload = b & 0x7f;
        // Byte 9 (the tenth) may only carry 64 - 9*7 = 1 payload bit.
        if (i == kMaxVarint64Bytes - 1 && payload > 0x01)
            return {VarintStatus::Overflow, 0};
        x |= payload << (7 * i);
        if (!(b & 0x80)) {
            if (i > 0 && payload == 0)
                return {VarintStatus::Overlong, 0};
            out = x;
            return {VarintStatus::Ok, i + 1};
        }
    }
    return {VarintStatus::Overlong, 0};
}

/**
 * Append a sorted (non-decreasing) 32-bit id list as first-absolute +
 * deltas.  An empty list appends nothing — zero-degree vertices cost
 * zero bytes by construction.
 */
inline void
encodeDeltaList32(std::span<const std::uint32_t> sorted,
                  std::vector<std::uint8_t> &out)
{
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < sorted.size(); i++) {
        putVarint32(out, i == 0 ? sorted[0] : sorted[i] - prev);
        prev = sorted[i];
    }
}

/** Append a sorted 64-bit id list as first-absolute + deltas. */
inline void
encodeDeltaList64(std::span<const std::uint64_t> sorted,
                  std::vector<std::uint8_t> &out)
{
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < sorted.size(); i++) {
        putVarint64(out, i == 0 ? sorted[0] : sorted[i] - prev);
        prev = sorted[i];
    }
}

/**
 * Checked decode of `count` delta-encoded 32-bit ids into `out`
 * (resized).  @return Ok and total bytes consumed, or the first error.
 */
inline VarintResult
decodeDeltaList32(const std::uint8_t *p, const std::uint8_t *end,
                  std::size_t count, std::vector<std::uint32_t> &out)
{
    out.resize(count);
    std::size_t used = 0;
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < count; i++) {
        std::uint32_t d = 0;
        const VarintResult r = getVarint32(p + used, end, d);
        if (!r.ok())
            return r;
        used += r.bytes;
        // The delta chain must not wrap the 32-bit id space.
        if (i > 0 && d > ~prev)
            return {VarintStatus::Overflow, 0};
        prev = i == 0 ? d : prev + d;
        out[i] = prev;
    }
    return {VarintStatus::Ok, used};
}

} // namespace codec
} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_CODEC_HH
