/**
 * @file
 * Unit tests of the graph substrate: edge lists, CSR, generators, I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "graph/csr.hh"
#include "graph/datasets.hh"
#include "graph/edge_list.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "graph/stats.hh"
#include "support/logging.hh"

namespace graphabcd {
namespace {

TEST(EdgeList, AddAndCount)
{
    EdgeList el(4);
    el.addEdge(0, 1);
    el.addEdge(1, 2, 2.5f);
    EXPECT_EQ(el.numVertices(), 4u);
    EXPECT_EQ(el.numEdges(), 2u);
    EXPECT_FLOAT_EQ(el.edge(1).weight, 2.5f);
}

TEST(EdgeList, OutOfRangeEndpointPanics)
{
    EdgeList el(2);
    EXPECT_THROW(el.addEdge(0, 5), PanicError);
}

TEST(EdgeList, NormalizeSortsAndDedups)
{
    EdgeList el(3);
    el.addEdge(2, 0);
    el.addEdge(0, 1);
    el.addEdge(2, 0);   // duplicate
    el.normalize(true);
    ASSERT_EQ(el.numEdges(), 2u);
    EXPECT_EQ(el.edge(0).src, 0u);
    EXPECT_EQ(el.edge(1).src, 2u);
}

TEST(EdgeList, RemoveSelfLoops)
{
    EdgeList el(3);
    el.addEdge(1, 1);
    el.addEdge(0, 2);
    el.removeSelfLoops();
    ASSERT_EQ(el.numEdges(), 1u);
    EXPECT_EQ(el.edge(0).dst, 2u);
}

TEST(EdgeList, ReversedFlipsEveryEdge)
{
    EdgeList el(3);
    el.addEdge(0, 1, 3.0f);
    EdgeList rev = el.reversed();
    EXPECT_EQ(rev.edge(0).src, 1u);
    EXPECT_EQ(rev.edge(0).dst, 0u);
    EXPECT_FLOAT_EQ(rev.edge(0).weight, 3.0f);
}

TEST(EdgeList, SymmetrizedHasBothDirections)
{
    EdgeList el(3);
    el.addEdge(0, 1);
    el.addEdge(1, 0);   // already present both ways
    el.addEdge(1, 2);
    EdgeList sym = el.symmetrized();
    EXPECT_EQ(sym.numEdges(), 4u);   // (0,1),(1,0),(1,2),(2,1)
}

TEST(EdgeList, DegreesMatchHandCount)
{
    EdgeList el(4);
    el.addEdge(0, 1);
    el.addEdge(0, 2);
    el.addEdge(3, 2);
    auto outd = el.outDegrees();
    auto ind = el.inDegrees();
    EXPECT_EQ(outd[0], 2u);
    EXPECT_EQ(outd[3], 1u);
    EXPECT_EQ(ind[2], 2u);
    EXPECT_EQ(ind[0], 0u);
}

TEST(Csr, BySourceRowsAreOutNeighbors)
{
    EdgeList el(4);
    el.addEdge(1, 0, 5.0f);
    el.addEdge(1, 3, 6.0f);
    el.addEdge(2, 1);
    Csr out(el, Csr::Axis::BySource);
    EXPECT_EQ(out.degree(1), 2u);
    auto nbrs = out.neighbors(1);
    EXPECT_EQ(nbrs[0], 0u);
    EXPECT_EQ(nbrs[1], 3u);
    EXPECT_FLOAT_EQ(out.weights(1)[1], 6.0f);
    EXPECT_EQ(out.degree(0), 0u);
}

TEST(Csr, ByDestinationRowsAreInNeighbors)
{
    EdgeList el(4);
    el.addEdge(1, 0);
    el.addEdge(2, 0);
    Csr in(el, Csr::Axis::ByDestination);
    EXPECT_EQ(in.degree(0), 2u);
    EXPECT_EQ(in.neighbors(0)[0], 1u);
    EXPECT_EQ(in.neighbors(0)[1], 2u);
}

TEST(Csr, EdgeCountConserved)
{
    Rng rng(3);
    EdgeList el = generateErdosRenyi(100, 500, rng);
    Csr out(el, Csr::Axis::BySource);
    Csr in(el, Csr::Axis::ByDestination);
    EXPECT_EQ(out.numEdges(), 500u);
    EXPECT_EQ(in.numEdges(), 500u);
    std::uint64_t total = 0;
    for (VertexId v = 0; v < 100; v++)
        total += out.degree(v);
    EXPECT_EQ(total, 500u);
}

TEST(Generators, RmatShapeAndDeterminism)
{
    Rng rng1(42), rng2(42);
    EdgeList a = generateRmat(1000, 5000, rng1);
    EdgeList b = generateRmat(1000, 5000, rng2);
    EXPECT_EQ(a.numVertices(), 1000u);
    EXPECT_EQ(a.numEdges(), 5000u);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (EdgeId e = 0; e < a.numEdges(); e++)
        EXPECT_EQ(a.edge(e), b.edge(e));
}

TEST(Generators, RmatIsSkewed)
{
    Rng rng(42);
    EdgeList el = generateRmat(4096, 40960, rng);
    auto deg = el.inDegrees();
    auto max_deg = *std::max_element(deg.begin(), deg.end());
    double mean = 40960.0 / 4096.0;
    // A power-law graph has hubs far above the mean degree.
    EXPECT_GT(max_deg, mean * 10);
}

TEST(Generators, RmatExcludesSelfLoopsByDefault)
{
    Rng rng(5);
    EdgeList el = generateRmat(256, 2048, rng);
    for (const Edge &e : el.edges())
        EXPECT_NE(e.src, e.dst);
}

TEST(Generators, ChainAndCycle)
{
    EdgeList chain = generateChain(5);
    EXPECT_EQ(chain.numEdges(), 4u);
    EdgeList cycle = generateCycle(5);
    EXPECT_EQ(cycle.numEdges(), 5u);
    EXPECT_EQ(cycle.edge(4).src, 4u);
    EXPECT_EQ(cycle.edge(4).dst, 0u);
}

TEST(Generators, StarHubOutDegree)
{
    EdgeList star = generateStar(10);
    auto outd = star.outDegrees();
    EXPECT_EQ(outd[0], 9u);
    EXPECT_EQ(star.numEdges(), 9u);
}

TEST(Generators, Grid2dDegreesAndSymmetry)
{
    Rng rng(1);
    EdgeList grid = generateGrid2d(3, 4, rng);
    // 2 * (#horizontal + #vertical) = 2 * (3*3 + 2*4) = 34 edges.
    EXPECT_EQ(grid.numEdges(), 34u);
    auto outd = grid.outDegrees();
    auto ind = grid.inDegrees();
    for (VertexId v = 0; v < 12; v++)
        EXPECT_EQ(outd[v], ind[v]);
    EXPECT_EQ(outd[0], 2u);    // corner
    EXPECT_EQ(outd[5], 4u);    // interior
}

TEST(Generators, CompleteGraph)
{
    EdgeList k4 = generateComplete(4);
    EXPECT_EQ(k4.numEdges(), 12u);
}

TEST(Generators, RatingsAreBipartiteAndInRange)
{
    Rng rng(8);
    BipartiteGraph bg = generateRatings(50, 20, 1000, rng);
    EXPECT_EQ(bg.graph.numVertices(), 70u);
    EXPECT_EQ(bg.graph.numEdges(), 1000u);
    for (const Edge &e : bg.graph.edges()) {
        EXPECT_LT(e.src, 50u);              // user side
        EXPECT_GE(e.dst, 50u);              // item side
        EXPECT_GE(e.weight, 1.0f);
        EXPECT_LE(e.weight, 5.0f);
    }
}

TEST(Generators, RatingsHaveSkewedItemPopularity)
{
    Rng rng(9);
    BipartiteGraph bg = generateRatings(200, 500, 20000, rng);
    auto ind = bg.graph.inDegrees();
    std::vector<std::uint32_t> item_deg(ind.begin() + 200, ind.end());
    std::sort(item_deg.rbegin(), item_deg.rend());
    std::uint64_t top10 = std::accumulate(item_deg.begin(),
                                          item_deg.begin() + 50, 0ull);
    // Top 10% of items should hold well over 10% of ratings.
    EXPECT_GT(top10, 20000ull / 5);
}

TEST(Io, RoundTripPreservesGraph)
{
    Rng rng(4);
    EdgeList el = generateErdosRenyi(50, 200, rng, /*weighted=*/true);
    std::string path = std::filesystem::temp_directory_path() /
                       "abcd_io_test.el";
    saveEdgeList(el, path);
    EdgeList loaded = loadEdgeList(path, /*densify=*/false);
    ASSERT_EQ(loaded.numEdges(), el.numEdges());
    for (EdgeId e = 0; e < el.numEdges(); e++) {
        EXPECT_EQ(loaded.edge(e).src, el.edge(e).src);
        EXPECT_EQ(loaded.edge(e).dst, el.edge(e).dst);
        EXPECT_NEAR(loaded.edge(e).weight, el.edge(e).weight, 1e-4);
    }
    std::remove(path.c_str());
}

TEST(Io, DensifyRemapsSparseIds)
{
    std::string path = std::filesystem::temp_directory_path() /
                       "abcd_io_sparse.el";
    {
        FILE *f = std::fopen(path.c_str(), "w");
        std::fputs("# comment\n100 200\n200 300\n", f);
        std::fclose(f);
    }
    EdgeList el = loadEdgeList(path, /*densify=*/true);
    EXPECT_EQ(el.numVertices(), 3u);
    EXPECT_EQ(el.numEdges(), 2u);
    std::remove(path.c_str());
}

TEST(Io, BinaryRoundTripIsExact)
{
    Rng rng(44);
    EdgeList el = generateRmat(200, 1500, rng, {.weighted = true});
    std::string path = std::filesystem::temp_directory_path() /
                       "abcd_io_test.bin";
    saveEdgeListBinary(el, path);
    EdgeList loaded = loadEdgeListBinary(path);
    ASSERT_EQ(loaded.numVertices(), el.numVertices());
    ASSERT_EQ(loaded.numEdges(), el.numEdges());
    for (EdgeId e = 0; e < el.numEdges(); e++)
        EXPECT_EQ(loaded.edge(e), el.edge(e));
    std::remove(path.c_str());
}

TEST(Io, BinaryRejectsBadMagic)
{
    std::string path = std::filesystem::temp_directory_path() /
                       "abcd_io_bad.bin";
    {
        std::ofstream ofs(path, std::ios::binary);
        ofs << "not a graph at all, sorry";
    }
    EXPECT_THROW(loadEdgeListBinary(path), FatalError);
    std::remove(path.c_str());
}

TEST(Io, BinaryDetectsTruncation)
{
    Rng rng(45);
    EdgeList el = generateErdosRenyi(50, 400, rng);
    std::string path = std::filesystem::temp_directory_path() /
                       "abcd_io_trunc.bin";
    saveEdgeListBinary(el, path);
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) / 2);
    EXPECT_THROW(loadEdgeListBinary(path), FatalError);
    std::remove(path.c_str());
}

TEST(Io, MissingFileIsFatal)
{
    EXPECT_THROW(loadEdgeList("/nonexistent/nowhere.el"), FatalError);
}

TEST(Io, RejectsVertexIdsWiderThan32Bits)
{
    // Ids beyond VertexId used to be silently truncated, aliasing
    // distinct vertices; they must fail loudly, naming the line.
    std::string path = std::filesystem::temp_directory_path() /
                       "abcd_io_wide.el";
    {
        FILE *f = std::fopen(path.c_str(), "w");
        std::fputs("0 1\n1 2\n7 5000000000\n", f);
        std::fclose(f);
    }
    try {
        loadEdgeList(path, /*densify=*/true);
        FAIL() << "64-bit id was accepted";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("5000000000"), std::string::npos) << what;
        EXPECT_NE(what.find(":3"), std::string::npos)
            << "line number missing from: " << what;
    }
    std::remove(path.c_str());
}

TEST(Io, BinaryRejectsOversizedHeaderEdgeCount)
{
    // A corrupt header claiming more edges than the file holds must
    // fail before allocating, not OOM on a multi-exabyte vector.
    Rng rng(46);
    EdgeList el = generateErdosRenyi(20, 60, rng);
    std::string path = std::filesystem::temp_directory_path() /
                       "abcd_io_badcount.bin";
    saveEdgeListBinary(el, path);
    {
        // Overwrite the uint64 edge count at offset 12 (magic 4 +
        // version 4 + n 4) with a huge value.
        std::fstream fs(path,
                        std::ios::binary | std::ios::in | std::ios::out);
        fs.seekp(12);
        const std::uint64_t huge = ~std::uint64_t{0} / sizeof(Edge);
        fs.write(reinterpret_cast<const char *>(&huge), sizeof(huge));
    }
    EXPECT_THROW(loadEdgeListBinary(path), FatalError);
    std::remove(path.c_str());
}

TEST(Stats, HandComputedGraph)
{
    EdgeList el(5);
    el.addEdge(0, 1);
    el.addEdge(0, 2);
    el.addEdge(1, 2);
    el.addEdge(3, 3);   // self loop; vertex 4 isolated
    GraphStats s = computeGraphStats(el);
    EXPECT_EQ(s.numVertices, 5u);
    EXPECT_EQ(s.numEdges, 4u);
    EXPECT_EQ(s.maxOutDegree, 2u);
    EXPECT_EQ(s.maxInDegree, 2u);
    EXPECT_EQ(s.danglingVertices, 2u);   // 2 and 4
    EXPECT_EQ(s.isolatedVertices, 1u);   // 4
    EXPECT_DOUBLE_EQ(s.selfLoopFraction, 0.25);
    EXPECT_FALSE(s.toString().empty());
}

TEST(Stats, GiniOrdersRegularBelowSkewed)
{
    Rng rng(46);
    GraphStats ring = computeGraphStats(generateCycle(1000));
    GraphStats skewed =
        computeGraphStats(generateRmat(1024, 8192, rng));
    EXPECT_NEAR(ring.inDegreeGini, 0.0, 1e-9);   // perfectly regular
    EXPECT_GT(skewed.inDegreeGini, 0.4);         // hub concentration
}

TEST(Stats, EmptyGraphIsSafe)
{
    GraphStats s = computeGraphStats(EdgeList(0));
    EXPECT_EQ(s.numVertices, 0u);
    EXPECT_DOUBLE_EQ(s.inDegreeGini, 0.0);
}

TEST(Datasets, CatalogHasSevenPaperGraphs)
{
    EXPECT_EQ(datasetCatalog().size(), 7u);
    EXPECT_EQ(datasetInfo("lj").paperName, "LiveJournal");
    EXPECT_TRUE(datasetInfo("NF").bipartite);
    EXPECT_THROW(datasetInfo("XX"), FatalError);
}

TEST(Datasets, StandInsPreserveEdgeVertexRatio)
{
    Dataset wt = makeDataset("WT", /*scale=*/0.5, /*seed=*/1);
    const DatasetInfo &info = wt.info;
    double paper_ratio = static_cast<double>(info.paperEdges) /
                         static_cast<double>(info.paperVertices);
    double ours = static_cast<double>(wt.numEdges()) /
                  static_cast<double>(wt.numVertices());
    EXPECT_NEAR(ours, paper_ratio, paper_ratio * 0.1);
}

TEST(Datasets, BipartiteStandInHasUsersAndItems)
{
    Dataset sac = makeDataset("SAC", 0.25, 1);
    EXPECT_GT(sac.users, 0u);
    EXPECT_GT(sac.items, 0u);
    EXPECT_EQ(sac.numVertices(), sac.users + sac.items);
}

TEST(Datasets, DeterministicPerSeed)
{
    Dataset a = makeDataset("WT", 0.1, 99);
    Dataset b = makeDataset("WT", 0.1, 99);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (EdgeId e = 0; e < std::min<EdgeId>(a.numEdges(), 100); e++)
        EXPECT_EQ(a.graph.edge(e), b.graph.edge(e));
}

} // namespace
} // namespace graphabcd
