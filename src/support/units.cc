#include "support/units.hh"

#include <array>
#include <cstdio>

namespace graphabcd {

namespace {

std::string
formatWith(double value, const char *suffix)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3g %s", value, suffix);
    return buf;
}

} // namespace

std::string
formatBytes(double bytes)
{
    static constexpr std::array<const char *, 5> suffixes = {
        "B", "KiB", "MiB", "GiB", "TiB"};
    std::size_t idx = 0;
    while (bytes >= 1024.0 && idx + 1 < suffixes.size()) {
        bytes /= 1024.0;
        idx++;
    }
    return formatWith(bytes, suffixes[idx]);
}

std::string
formatBandwidth(double bytes_per_second)
{
    static constexpr std::array<const char *, 4> suffixes = {
        "B/s", "KB/s", "MB/s", "GB/s"};
    std::size_t idx = 0;
    while (bytes_per_second >= 1e3 && idx + 1 < suffixes.size()) {
        bytes_per_second /= 1e3;
        idx++;
    }
    return formatWith(bytes_per_second, suffixes[idx]);
}

std::string
formatCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    std::size_t lead = digits.size() % 3;
    if (lead == 0)
        lead = 3;
    for (std::size_t i = 0; i < digits.size(); i++) {
        if (i != 0 && (i - lead) % 3 == 0 && i >= lead)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
formatSeconds(double seconds)
{
    char buf[64];
    if (seconds < 1e-6)
        std::snprintf(buf, sizeof(buf), "%.3g ns", seconds * 1e9);
    else if (seconds < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3g us", seconds * 1e6);
    else if (seconds < 1.0)
        std::snprintf(buf, sizeof(buf), "%.3g ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.4g s", seconds);
    return buf;
}

} // namespace graphabcd
