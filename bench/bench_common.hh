/**
 * @file
 * Shared plumbing of the table/figure reproduction harnesses: dataset
 * loading with the standard flags, per-algorithm run wrappers for
 * GraphABCD (HARP simulator), GraphMat and the Graphicionado
 * projection, and uniform convergence criteria.
 *
 * Convergence criteria (matching Sec. V "run until convergence"):
 *  - PageRank: Eq. (3) residual below eps * ||x0|| (objective based);
 *  - SSSP: active-list quiescence (no distance changes);
 *  - CF: GraphMat runs to its own objective-discrepancy stop (RMSE
 *    slope < 0.1%/superstep); GraphABCD runs until it reaches the RMSE
 *    GraphMat stopped at (an equal-quality-or-better comparison).
 */

#ifndef GRAPHABCD_BENCH_COMMON_HH
#define GRAPHABCD_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "algorithms/cf.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/sssp.hh"
#include "baselines/graphmat/cpu_model.hh"
#include "baselines/graphmat/engine.hh"
#include "baselines/graphmat/programs.hh"
#include "graph/datasets.hh"
#include "graph/partition.hh"
#include "harp/graphicionado.hh"
#include "harp/system.hh"
#include "support/flags.hh"
#include "support/table.hh"
#include "support/units.hh"

namespace graphabcd {
namespace bench {

/** Latent dimensionality used by every CF experiment. */
constexpr std::uint32_t kCfDim = 16;

/** CF hyper-parameters shared by GraphABCD and GraphMat runs. */
constexpr double kCfLearningRate = 0.2;
constexpr double kCfLambda = 0.02;

/** Declare the flags every bench accepts. */
inline void
declareCommonFlags(Flags &flags)
{
    flags.declareDouble("scale", 1.0,
                        "dataset scale (1 = paper size / divisor)");
    flags.declareInt("seed", 42, "generator seed");
    flags.declare("csv", "", "also write the table as CSV to this path");
}

/** Load a dataset stand-in and announce its realised size. */
inline Dataset
loadDataset(const std::string &key, const Flags &flags)
{
    Dataset ds = makeDataset(key, flags.getDouble("scale"),
                             static_cast<std::uint64_t>(
                                 flags.getInt("seed")));
    std::fprintf(stderr,
                 "info: %s (%s): %s vertices, %s edges "
                 "(%.3g%% of paper size)\n",
                 ds.info.key.c_str(), ds.info.paperName.c_str(),
                 formatCount(ds.numVertices()).c_str(),
                 formatCount(ds.numEdges()).c_str(), ds.scale * 100.0);
    return ds;
}

/** Emit the table on stdout and optionally as CSV. */
inline void
emitTable(const Table &table, const Flags &flags)
{
    table.print(std::cout);
    const std::string &csv = flags.get("csv");
    if (!csv.empty()) {
        table.writeCsv(csv);
        std::fprintf(stderr, "info: wrote %s\n", csv.c_str());
    }
}

/** Outcome of one framework/algorithm/graph combination. */
struct RunResult
{
    double seconds = 0.0;
    double mtes = 0.0;
    double iterations = 0.0;   //!< epochs (GraphABCD) or supersteps
    bool converged = false;
    SimReport sim;             //!< filled for HARP runs only
};

/**
 * @return the highest out-degree vertex — the SSSP/BFS source used by
 * every bench.  Vertex 0 of an RMAT stand-in often sits in a tiny
 * component; the hub reliably reaches the giant component, matching
 * how the paper's evaluation sources behave on the real graphs.
 */
inline VertexId
hubVertex(const BlockPartition &g)
{
    VertexId best = 0;
    for (VertexId v = 1; v < g.numVertices(); v++) {
        if (g.outDegree(v) > g.outDegree(best))
            best = v;
    }
    return best;
}

/** hubVertex() for an un-partitioned edge list. */
inline VertexId
hubVertex(const EdgeList &el)
{
    auto deg = el.outDegrees();
    return static_cast<VertexId>(
        std::max_element(deg.begin(), deg.end()) - deg.begin());
}

/** PR quiescence tolerance: a small fraction of the uniform rank. */
inline double
prTolerance(VertexId n)
{
    return 0.01 / std::max<double>(n, 1.0);
}

// --------------------------------------------------------- GraphABCD

/** PageRank on the simulated HARP system. */
inline RunResult
abcdPagerank(const BlockPartition &g, EngineOptions opt, HarpConfig cfg)
{
    opt.tolerance = prTolerance(g.numVertices());
    HarpSystem<PageRankProgram> sys(g, PageRankProgram(0.85), opt, cfg);
    std::vector<double> x;
    RunResult out;
    out.sim = sys.run(x);
    out.seconds = out.sim.seconds;
    out.mtes = out.sim.mtes;
    out.iterations = out.sim.epochs;
    out.converged = out.sim.converged;
    return out;
}

/** SSSP from the hub vertex on the simulated HARP system. */
inline RunResult
abcdSssp(const BlockPartition &g, EngineOptions opt, HarpConfig cfg)
{
    opt.tolerance = 1e-9;
    HarpSystem<SsspProgram> sys(g, SsspProgram(hubVertex(g)), opt, cfg);
    std::vector<double> dist;
    RunResult out;
    out.sim = sys.run(dist);
    out.seconds = out.sim.seconds;
    out.mtes = out.sim.mtes;
    out.iterations = out.sim.epochs;
    out.converged = out.sim.converged;
    return out;
}

/** CF on the simulated HARP system until `target_rmse` is reached. */
inline RunResult
abcdCf(const BlockPartition &g, EngineOptions opt, HarpConfig cfg,
       double target_rmse, double max_epochs = 60.0)
{
    opt.tolerance = 1e-6;
    opt.maxEpochs = max_epochs;
    opt.traceInterval = 1.0;
    HarpSystem<CfProgram<kCfDim>> sys(
        g, CfProgram<kCfDim>(kCfLearningRate, kCfLambda), opt, cfg);
    std::vector<FeatureVec<kCfDim>> x;
    RunResult out;
    out.sim = sys.run(
        x, [&g, target_rmse](double,
                             const std::vector<FeatureVec<kCfDim>> &v) {
            return cfRmse<kCfDim>(g, v) <= target_rmse;
        });
    out.seconds = out.sim.seconds;
    out.mtes = out.sim.mtes;
    out.iterations = out.sim.epochs;
    out.converged = out.sim.converged;
    return out;
}

/**
 * Run the four GraphABCD configurations the paper evaluates (priority
 * and hybrid on/off) and return the fastest, like Table II does.
 */
template <typename RunFn>
RunResult
bestOfFourConfigs(EngineOptions base_opt, HarpConfig base_cfg,
                  RunFn &&run_one)
{
    RunResult best;
    bool first = true;
    for (Schedule sched : {Schedule::Cyclic, Schedule::Priority}) {
        for (bool hybrid : {false, true}) {
            EngineOptions opt = base_opt;
            opt.schedule = sched;
            HarpConfig cfg = base_cfg;
            cfg.hybrid = hybrid;
            RunResult r = run_one(opt, cfg);
            if (first || r.seconds < best.seconds) {
                best = r;
                first = false;
            }
        }
    }
    return best;
}

// ---------------------------------------------------------- GraphMat

/** GraphMat PageRank: functional run + CPU cost model. */
inline RunResult
graphmatPagerank(const EdgeList &el, graphmat::GraphMatReport *raw = nullptr)
{
    auto degs = el.outDegrees();
    graphmat::GraphMatEngine<graphmat::PageRankSpmv> engine(
        el, graphmat::PageRankSpmv(0.85, degs));
    std::vector<graphmat::PageRankSpmv::Value> x;
    auto report = engine.run(x, prTolerance(el.numVertices()));
    CpuTimeReport t = graphmatTime(report, el.numVertices(), 8);
    if (raw)
        *raw = report;
    return RunResult{t.seconds, t.mtes,
                     static_cast<double>(report.iterations),
                     report.converged, {}};
}

/** GraphMat SSSP: functional run + CPU cost model. */
inline RunResult
graphmatSssp(const EdgeList &el, graphmat::GraphMatReport *raw = nullptr)
{
    graphmat::GraphMatEngine<graphmat::SsspSpmv> engine(
        el, graphmat::SsspSpmv(hubVertex(el)));
    std::vector<double> dist;
    auto report = engine.run(dist, 1e-9);
    CpuTimeReport t = graphmatTime(report, el.numVertices(), 8);
    if (raw)
        *raw = report;
    return RunResult{t.seconds, t.mtes,
                     static_cast<double>(report.iterations),
                     report.converged, {}};
}

/**
 * GraphMat CF run to *its own* convergence: the paper's
 * objective-discrepancy criterion (Sec. II-B) — stop when the RMSE
 * improvement per superstep falls below 0.1% (after a short warmup;
 * CF has a flat start).  Like the paper's Fig. 5, GraphMat stops at a
 * worse RMSE than GraphABCD reaches, because Jacobi's descent flattens
 * earlier.
 * @param[out] final_rmse the RMSE it stops at — the GraphABCD target.
 */
inline RunResult
graphmatCf(const EdgeList &sym, const EdgeList &ratings,
           double *final_rmse,
           graphmat::GraphMatReport *raw = nullptr,
           std::uint32_t budget = 120)
{
    graphmat::GraphMatEngine<graphmat::CfSpmv<kCfDim>> engine(
        sym, graphmat::CfSpmv<kCfDim>(kCfLearningRate, kCfLambda));
    std::vector<std::array<float, kCfDim>> x;
    double prev = 1e30;
    double last = 0.0;
    auto report = engine.run(
        x, 1e-6, budget,
        [&](std::uint32_t iter, const auto &values) {
            double rmse = graphmat::cfSpmvRmse<kCfDim>(ratings, values);
            bool stop = iter > 10 && (prev - rmse) < 1e-3 * rmse;
            prev = rmse;
            last = rmse;
            return stop;
        });
    // GraphMat materialises per-edge messages; for CF those are the
    // double-precision gradient vectors (8H + 4 bytes), which is what
    // makes its measured CF throughput a fraction of its PR throughput
    // (paper Table II: 397 vs 1034 MTES on the same host).
    CpuTimeReport t =
        graphmatTime(report, sym.numVertices(), 8 * kCfDim + 4);
    if (final_rmse)
        *final_rmse = last;
    if (raw)
        *raw = report;
    return RunResult{t.seconds, t.mtes,
                     static_cast<double>(report.iterations),
                     report.converged, {}};
}

} // namespace bench
} // namespace graphabcd

#endif // GRAPHABCD_BENCH_COMMON_HH
