/**
 * @file
 * Reproduces paper Fig. 4: convergence rate (number of iterations,
 * normalized to the BSP baseline, lower is better) of PageRank and SSSP
 * under cyclic and priority scheduling, block sizes 8..32768, on the
 * PS, WT and LJ stand-ins.
 *
 * Expected shape (Sec. V-B): smaller block sizes converge 1.2-5x
 * faster than BSP; priority scheduling converges faster than cyclic,
 * most visibly at small block sizes.
 */

#include "bench_common.hh"

#include "core/engine.hh"

namespace graphabcd {
namespace {

using namespace bench;

/** Epochs until the PR residual stop (objective criterion). */
double
pagerankEpochs(const EdgeList &el, VertexId block_size, Schedule sched,
               ExecMode mode)
{
    BlockPartition g(el, block_size);
    EngineOptions opt;
    opt.blockSize = block_size;
    opt.schedule = sched;
    opt.mode = mode;
    opt.tolerance = prTolerance(el.numVertices()) * 0.01;
    opt.maxEpochs = 500.0;
    opt.traceInterval = 1.0;
    const double eps = 1e-4 / el.numVertices();
    SerialEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(
        x, nullptr, [&g, eps](double, const std::vector<double> &v) {
            return pagerankResidual(g, v, 0.85) < eps;
        });
    return report.epochs;
}

/** Epochs until SSSP quiescence. */
double
ssspEpochs(const EdgeList &el, VertexId block_size, Schedule sched,
           ExecMode mode)
{
    BlockPartition g(el, block_size);
    EngineOptions opt;
    opt.blockSize = block_size;
    opt.schedule = sched;
    opt.mode = mode;
    opt.tolerance = 1e-9;
    opt.maxEpochs = 500.0;
    SerialEngine<SsspProgram> engine(g, SsspProgram(hubVertex(g)), opt);
    std::vector<double> dist;
    return engine.run(dist).epochs;
}

int
benchMain(int argc, char **argv)
{
    Flags flags;
    declareCommonFlags(flags);
    flags.declare("graphs", "PS,WT,LJ", "comma-separated dataset keys");
    if (!flags.parse(argc, argv))
        return 0;

    const std::vector<VertexId> block_sizes = {8, 64, 512, 4096, 32768};

    Table table({"graph", "algorithm", "schedule", "block size",
                 "iterations (epochs)", "normalized to BSP"});

    std::string keys = flags.get("graphs");
    std::size_t pos = 0;
    while (pos < keys.size()) {
        auto comma = keys.find(',', pos);
        std::string key = keys.substr(pos, comma - pos);
        pos = comma == std::string::npos ? keys.size() : comma + 1;

        Dataset ds = loadDataset(key, flags);
        const EdgeList &el = ds.graph;

        for (const char *algo : {"PR", "SSSP"}) {
            auto run = [&](VertexId bs, Schedule sched, ExecMode mode) {
                return std::string(algo) == "PR"
                    ? pagerankEpochs(el, bs, sched, mode)
                    : ssspEpochs(el, bs, sched, mode);
            };
            const double bsp = run(el.numVertices(), Schedule::Cyclic,
                                   ExecMode::Bsp);
            for (Schedule sched :
                 {Schedule::Cyclic, Schedule::Priority}) {
                for (VertexId bs : block_sizes) {
                    if (bs >= el.numVertices())
                        continue;
                    double epochs = run(bs, sched, ExecMode::Async);
                    table.row()
                        .add(ds.info.key)
                        .add(algo)
                        .add(to_string(sched))
                        .add(static_cast<std::uint64_t>(bs))
                        .add(epochs, 4)
                        .add(epochs / bsp, 3);
                }
            }
            table.row()
                .add(ds.info.key)
                .add(algo)
                .add("bsp (baseline)")
                .add("|V|")
                .add(bsp, 4)
                .add(1.0, 3);
        }
    }

    emitTable(table, flags);
    std::fprintf(stderr,
                 "info: paper Fig. 4 shape: smaller blocks 1.2-5x fewer "
                 "iterations than BSP; priority <= cyclic.\n");
    return 0;
}

} // namespace
} // namespace graphabcd

int
main(int argc, char **argv)
{
    return graphabcd::benchMain(argc, argv);
}
