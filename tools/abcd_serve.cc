/**
 * @file
 * abcd_serve — the serve layer behind a line-oriented request protocol
 * on stdin/stdout, one request per line, one `OK ...` or `ERR ...`
 * reply per request.  An RPC transport later swaps the framing, not
 * the service.
 *
 *   LOAD <name> <dataset-key-or-file> [scale=F] [block-size=N]
 *        [undirected=0|1] [seed=N] [layout=plain|compressed]
 *        [reorder=none|hub]
 *   RUN <graph> <algo> [engine=serial|async|fragment|accum|sim]
 *       [tenant=NAME] [source=N] [priority=F] [timeout=F]
 *       [tolerance=F] [schedule=cyclic|priority|random|obim]
 *       [threads=N] [fragments=N] [max-epochs=F] [cached=0|1]
 *       [warm=0|1]
 *   STATUS <job-id>
 *   WAIT <job-id> [timeout-seconds]
 *   CANCEL <job-id>
 *   VALUE <job-id> <vertex>
 *   TENANTS               per-tenant QoS counters and gauges
 *   TRACE <file>          write the trace buffer as Chrome JSON
 *   METRICS               Prometheus text exposition of the registry
 *   CONV <job-id> [file]  the job's convergence curve as CSV
 *   DUMP <file>           write a flight-recorder snapshot (black box)
 *   GRAPHS | STATS | HELP | QUIT
 *
 * Debugging: --flight=PATH arms the flight recorder — fatal errors,
 * fatal signals, and watchdog stalls dump the black box (recent logs,
 * job table, metrics, trace rings) to PATH; DUMP <file> captures the
 * same snapshot on demand.  --stall-window=SECONDS starts the stall
 * watchdog (a Running job whose progress counters stay flat that long
 * is flagged), --stall-check its poll period, and --stall-cancel
 * escalates a flagged stall to cooperative cancellation.
 *
 * Multi-tenant QoS: --tenants=name:weight[:inflight[:queued]],...
 * configures per-tenant fair-share weights and quotas (e.g.
 * --tenants=gold:4,free:1:2:8), --default-weight the weight of
 * unlisted tenants, and --shed-deadline=0 disables admission-time
 * deadline shedding.  RUN tenant=NAME files the job in that tenant's
 * lane; omitted means the shared "default" lane.
 *
 * With --metrics-port=N the same exposition (plus /series and
 * /convergence) is served over loopback HTTP for scrapes, and
 * --sample-ms=N runs the background sampler so counters/gauges gain a
 * time dimension; --log-level/--log-json configure the structured
 * logger on stderr.
 *
 * STATS reports the service counters and, when the build carries the
 * observability layer (GRAPHABCD_OBS=ON, the default), dumps the whole
 * process-wide metrics registry — engine latency/staleness histograms,
 * scheduler churn, queue depths, HARP utilization gauges.
 *
 * Example session (see README "Serving mode"):
 *   > LOAD web WT scale=0.2
 *   OK graph web vertices=47800 edges=100472 blocks=94
 *   > RUN web pr engine=async
 *   OK job 1
 *   > WAIT 1
 *   OK job 1 state=done converged=1 cachehit=0 epochs=18.00 ...
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/datasets.hh"
#include "graph/io.hh"
#include "obs/log.hh"
#include "obs/metrics_server.hh"
#include "obs/obs.hh"
#include "serve/graph_registry.hh"
#include "serve/job_manager.hh"
#include "serve/runner.hh"
#include "support/flags.hh"

using namespace graphabcd;

namespace {

/** Split a line into whitespace-separated tokens. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::istringstream iss(line);
    std::vector<std::string> out;
    std::string tok;
    while (iss >> tok)
        out.push_back(tok);
    return out;
}

/** Parse trailing key=value tokens into a map; bare tokens rejected. */
bool
parseParams(const std::vector<std::string> &tokens, std::size_t first,
            std::map<std::string, std::string> &params)
{
    for (std::size_t i = first; i < tokens.size(); i++) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos || eq == 0)
            return false;
        params[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
    return true;
}

double
param(const std::map<std::string, std::string> &params,
      const std::string &key, double fallback)
{
    auto it = params.find(key);
    return it == params.end() ? fallback : std::stod(it->second);
}

std::string
param(const std::map<std::string, std::string> &params,
      const std::string &key, const std::string &fallback)
{
    auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
}

/** The REPL over one registry + one manager. */
class ServeShell
{
  public:
    ServeShell(GraphRegistry &registry, JobManager &manager,
               std::uint32_t default_fragments = 1)
        : registry_(registry), manager_(manager),
          defaultFragments_(default_fragments)
    {
    }

    /** @return false when the session should end. */
    bool
    handle(const std::string &line)
    {
        const auto tokens = tokenize(line);
        if (tokens.empty())
            return true;
        const std::string &cmd = tokens[0];
        if (cmd == "QUIT" || cmd == "EXIT")
            return false;
        try {
            if (cmd == "HELP")
                help();
            else if (cmd == "LOAD")
                load(tokens);
            else if (cmd == "RUN")
                run(tokens);
            else if (cmd == "STATUS")
                status(tokens);
            else if (cmd == "WAIT")
                wait(tokens);
            else if (cmd == "CANCEL")
                cancel(tokens);
            else if (cmd == "VALUE")
                value(tokens);
            else if (cmd == "GRAPHS")
                graphs();
            else if (cmd == "STATS")
                stats();
            else if (cmd == "TENANTS")
                tenants();
            else if (cmd == "TRACE")
                trace(tokens);
            else if (cmd == "METRICS")
                metrics();
            else if (cmd == "CONV")
                conv(tokens);
            else if (cmd == "DUMP")
                dump(tokens);
            else
                std::printf("ERR BadCommand unknown command '%s'\n",
                            cmd.c_str());
        } catch (const std::exception &e) {
            // Bad numeric arguments (stoull/stod) land here; one bad
            // request must never take the service down.
            std::printf("ERR BadCommand %s\n", e.what());
        }
        return true;
    }

  private:
    void
    help()
    {
        std::printf(
            "OK commands: LOAD RUN STATUS WAIT CANCEL VALUE GRAPHS "
            "STATS TENANTS TRACE METRICS CONV DUMP HELP QUIT\n");
    }

    void
    load(const std::vector<std::string> &tokens)
    {
        std::map<std::string, std::string> params;
        if (tokens.size() < 3 || !parseParams(tokens, 3, params)) {
            std::printf("ERR BadCommand usage: LOAD <name> "
                        "<dataset-or-file> [key=value...]\n");
            return;
        }
        const std::string &name = tokens[1];
        const std::string &src = tokens[2];
        try {
            EdgeList el;
            if (src.find('.') != std::string::npos ||
                src.find('/') != std::string::npos) {
                if (src.size() > 5 &&
                    src.compare(src.size() - 5, 5, ".abcz") == 0)
                    el = loadEdgeListPacked(src);
                else if (src.size() > 4 &&
                         src.compare(src.size() - 4, 4, ".bin") == 0)
                    el = loadEdgeListBinary(src);
                else
                    el = loadEdgeList(src);
            } else {
                el = makeDataset(src, param(params, "scale", 1.0),
                                 static_cast<std::uint64_t>(
                                     param(params, "seed", 42.0)))
                         .graph;
            }
            if (param(params, "undirected", 0.0) != 0.0)
                el = el.symmetrized();
            const auto block_size = static_cast<VertexId>(
                param(params, "block-size", 512.0));
            LayoutOptions lo;
            const std::string layout =
                param(params, "layout", std::string("plain"));
            const std::string reorder =
                param(params, "reorder", std::string("none"));
            if (auto l = parseGraphLayout(layout)) {
                lo.layout = *l;
            } else {
                std::printf("ERR BadCommand unknown layout '%s' "
                            "(plain|compressed)\n",
                            layout.c_str());
                return;
            }
            if (auto r = parseVertexReorder(reorder)) {
                lo.reorder = *r;
            } else {
                std::printf("ERR BadCommand unknown reorder '%s' "
                            "(none|hub)\n",
                            reorder.c_str());
                return;
            }
            auto g = registry_.add(name, el, block_size, lo);
            std::printf(
                "OK graph %s vertices=%u edges=%llu blocks=%u "
                "layout=%s reorder=%s\n",
                name.c_str(), g->numVertices(),
                static_cast<unsigned long long>(g->numEdges()),
                g->numBlocks(), to_string(g->layout()),
                to_string(g->reorder()));
        } catch (const std::exception &e) {
            std::printf("ERR LoadFailed %s\n", e.what());
        }
    }

    void
    run(const std::vector<std::string> &tokens)
    {
        std::map<std::string, std::string> params;
        if (tokens.size() < 3 || !parseParams(tokens, 3, params)) {
            std::printf("ERR BadCommand usage: RUN <graph> <algo> "
                        "[key=value...]\n");
            return;
        }
        JobRequest req;
        req.graph = tokens[1];
        req.algo = tokens[2];
        req.engine = param(params, "engine", std::string("serial"));
        req.tenant = param(params, "tenant", std::string());
        req.source =
            static_cast<VertexId>(param(params, "source", 0.0));
        req.priority = param(params, "priority", 0.0);
        req.timeoutSeconds = param(params, "timeout", 0.0);
        req.allowCached = param(params, "cached", 1.0) != 0.0;
        req.allowWarmStart = param(params, "warm", 1.0) != 0.0;
        req.options.tolerance = param(params, "tolerance", 1e-7);
        req.options.maxEpochs = param(params, "max-epochs", 10000.0);
        req.options.numThreads =
            static_cast<std::uint32_t>(param(params, "threads", 4.0));
        req.options.fragments = static_cast<std::uint32_t>(
            param(params, "fragments",
                  static_cast<double>(defaultFragments_)));
        const std::string sched =
            param(params, "schedule", std::string("cyclic"));
        req.options.schedule = sched == "priority" ? Schedule::Priority
            : sched == "random"                    ? Schedule::Random
            : sched == "obim"                      ? Schedule::Obim
                                                   : Schedule::Cyclic;

        JobManager::Submitted sub = manager_.submit(std::move(req));
        if (sub.ok())
            std::printf("OK job %llu\n",
                        static_cast<unsigned long long>(sub.id));
        else
            std::printf("ERR %s\n", to_string(sub.error));
    }

    void
    printStatus(const JobStatus &st)
    {
        std::printf(
            "OK job %llu state=%s tenant=%s converged=%d cachehit=%d "
            "warm=%d epochs=%.2f blocks=%llu edges=%llu scatters=%llu "
            "queued=%.3fs run=%.3fs%s%s\n",
            static_cast<unsigned long long>(st.id),
            to_string(st.state), st.tenant.c_str(),
            st.converged ? 1 : 0,
            st.cacheHit ? 1 : 0, st.warmStarted ? 1 : 0, st.epochs,
            static_cast<unsigned long long>(st.blockUpdates),
            static_cast<unsigned long long>(st.edgeTraversals),
            static_cast<unsigned long long>(st.scatterWrites),
            st.queuedSeconds, st.runSeconds,
            st.error.empty() ? "" : " error=",
            st.error.empty() ? "" : st.error.c_str());
    }

    bool
    parseId(const std::vector<std::string> &tokens, JobId &id)
    {
        if (tokens.size() < 2) {
            std::printf("ERR BadCommand missing job id\n");
            return false;
        }
        id = static_cast<JobId>(std::stoull(tokens[1]));
        return true;
    }

    void
    status(const std::vector<std::string> &tokens)
    {
        JobId id;
        if (!parseId(tokens, id))
            return;
        if (auto st = manager_.status(id))
            printStatus(*st);
        else
            std::printf("ERR NotFound no job %llu\n",
                        static_cast<unsigned long long>(id));
    }

    void
    wait(const std::vector<std::string> &tokens)
    {
        JobId id;
        if (!parseId(tokens, id))
            return;
        const double timeout =
            tokens.size() > 2 ? std::stod(tokens[2]) : -1.0;
        if (!manager_.wait(id, timeout)) {
            std::printf("ERR Timeout job %llu still running\n",
                        static_cast<unsigned long long>(id));
            return;
        }
        if (auto st = manager_.status(id))
            printStatus(*st);
        else
            std::printf("ERR NotFound no job %llu\n",
                        static_cast<unsigned long long>(id));
    }

    void
    cancel(const std::vector<std::string> &tokens)
    {
        JobId id;
        if (!parseId(tokens, id))
            return;
        if (manager_.cancel(id))
            std::printf("OK cancelling %llu\n",
                        static_cast<unsigned long long>(id));
        else
            std::printf("ERR NotFound job %llu unknown or terminal\n",
                        static_cast<unsigned long long>(id));
    }

    void
    value(const std::vector<std::string> &tokens)
    {
        JobId id;
        if (!parseId(tokens, id))
            return;
        if (tokens.size() < 3) {
            std::printf("ERR BadCommand usage: VALUE <job> <vertex>\n");
            return;
        }
        auto result = manager_.result(id);
        if (!result) {
            std::printf("ERR NotFound job %llu has no result\n",
                        static_cast<unsigned long long>(id));
            return;
        }
        const auto v =
            static_cast<std::size_t>(std::stoull(tokens[2]));
        if (v >= result->values.size()) {
            std::printf("ERR BadCommand vertex %zu out of range\n", v);
            return;
        }
        std::printf("OK value %zu %.10g\n", v, result->values[v]);
    }

    void
    graphs()
    {
        const auto infos = registry_.list();
        std::printf("OK %zu graphs\n", infos.size());
        for (const auto &info : infos) {
            std::printf("  %s vertices=%u edges=%llu blocks=%u "
                        "refs=%ld\n",
                        info.name.c_str(), info.vertices,
                        static_cast<unsigned long long>(info.edges),
                        info.blocks, info.useCount);
        }
    }

    void
    tenants()
    {
        const auto per_tenant = manager_.tenantStats();
        std::printf("OK %zu tenants\n", per_tenant.size());
        for (const auto &[tenant, t] : per_tenant) {
            std::printf(
                "  %s submitted=%llu completed=%llu rejected=%llu "
                "cancelled=%llu failed=%llu shed=%llu shedadm=%llu "
                "cachehits=%llu warmstarts=%llu queued=%zu "
                "running=%zu\n",
                tenant.c_str(),
                static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.rejected),
                static_cast<unsigned long long>(t.cancelled),
                static_cast<unsigned long long>(t.failed),
                static_cast<unsigned long long>(t.shed),
                static_cast<unsigned long long>(t.shedAdmission),
                static_cast<unsigned long long>(t.cacheHits),
                static_cast<unsigned long long>(t.warmStarts),
                t.queued, t.running);
        }
    }

    void
    stats()
    {
        const ServeStats s = manager_.stats();
        const ResultCache::Stats c = manager_.cache().stats();
        std::printf(
            "OK submitted=%llu rejected=%llu completed=%llu "
            "cancelled=%llu failed=%llu shed=%llu shedadm=%llu "
            "cachehits=%llu warmstarts=%llu queued=%zu running=%zu "
            "hitrate=%.2f\n",
            static_cast<unsigned long long>(s.submitted),
            static_cast<unsigned long long>(s.rejected),
            static_cast<unsigned long long>(s.completed),
            static_cast<unsigned long long>(s.cancelled),
            static_cast<unsigned long long>(s.failed),
            static_cast<unsigned long long>(s.shed),
            static_cast<unsigned long long>(s.shedAdmission),
            static_cast<unsigned long long>(s.cacheHits),
            static_cast<unsigned long long>(s.warmStarts),
            s.queueDepth, s.running, c.hitRate());
        // Process-wide metrics registry, one indented line per metric
        // (empty in a GRAPHABCD_OBS=OFF build).
        const std::string dump = obs::dumpMetrics();
        std::size_t pos = 0;
        while (pos < dump.size()) {
            std::size_t nl = dump.find('\n', pos);
            if (nl == std::string::npos)
                nl = dump.size();
            std::printf("  %.*s\n", static_cast<int>(nl - pos),
                        dump.c_str() + pos);
            pos = nl + 1;
        }
    }

    void
    metrics()
    {
        // Same body the HTTP /metrics route serves; empty when built
        // with GRAPHABCD_OBS=OFF (no registered metrics).
        std::string body, content_type;
        MetricsServer::handlePath("/metrics", &body, &content_type);
        std::printf("OK metrics bytes=%zu\n", body.size());
        std::fwrite(body.data(), 1, body.size(), stdout);
    }

    void
    conv(const std::vector<std::string> &tokens)
    {
        JobId id;
        if (!parseId(tokens, id))
            return;
        auto series = manager_.convergence(id);
        if (!series) {
            std::printf("ERR NotFound job %llu has no convergence "
                        "series%s\n",
                        static_cast<unsigned long long>(id),
                        obs::kEnabled
                            ? ""
                            : " (built with GRAPHABCD_OBS=OFF)");
            return;
        }
        const std::string csv = obs::convergenceCsv(*series);
        if (tokens.size() > 2) {
            std::ofstream out(tokens[2]);
            if (!out) {
                std::printf("ERR ConvFailed cannot write %s\n",
                            tokens[2].c_str());
                return;
            }
            out << csv;
            std::printf("OK convergence job %llu points=%zu file=%s\n",
                        static_cast<unsigned long long>(id),
                        series->size(), tokens[2].c_str());
            return;
        }
        std::printf("OK convergence job %llu points=%zu\n",
                    static_cast<unsigned long long>(id),
                    series->size());
        std::fwrite(csv.data(), 1, csv.size(), stdout);
    }

    void
    dump(const std::vector<std::string> &tokens)
    {
        if (tokens.size() < 2) {
            std::printf("ERR BadCommand usage: DUMP <file>\n");
            return;
        }
        if (!obs::flightDump(tokens[1], "DUMP verb")) {
            std::printf("ERR DumpFailed cannot write %s%s\n",
                        tokens[1].c_str(),
                        obs::kEnabled
                            ? ""
                            : " (built with GRAPHABCD_OBS=OFF)");
            return;
        }
        std::printf("OK flight %s\n", tokens[1].c_str());
    }

    void
    trace(const std::vector<std::string> &tokens)
    {
        if (tokens.size() < 2) {
            std::printf("ERR BadCommand usage: TRACE <file>\n");
            return;
        }
        const std::size_t events = obs::traceEventCount();
        if (!obs::writeTrace(tokens[1])) {
            std::printf("ERR TraceFailed cannot write %s%s\n",
                        tokens[1].c_str(),
                        obs::kEnabled
                            ? ""
                            : " (built with GRAPHABCD_OBS=OFF)");
            return;
        }
        std::printf("OK trace %s events=%zu\n", tokens[1].c_str(),
                    events);
    }

    GraphRegistry &registry_;
    JobManager &manager_;
    const std::uint32_t defaultFragments_;
};

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declareInt("workers", 2, "service worker threads");
    flags.declareInt("pool-threads", 0,
                     "engine worker pool size (0 = the process-wide "
                     "pool sized to the hardware)");
    flags.declareInt("fragments", 1,
                     "default shard count for engine=fragment runs "
                     "(RUN fragments=N overrides per job)");
    flags.declareInt("queue", 16, "admission queue capacity");
    flags.declareInt("cache", 64, "result cache entries");
    flags.declareDouble("ttl", 300.0, "result cache TTL seconds");
    flags.declare("tenants", "",
                  "per-tenant QoS spec "
                  "name:weight[:inflight[:queued]],... "
                  "(e.g. gold:4,free:1:2:8)");
    flags.declareDouble("default-weight", 1.0,
                        "fair-share weight of unlisted tenants");
    flags.declareBool("shed-deadline", true,
                      "shed jobs at admission when the estimated "
                      "queue wait alone would blow their deadline");
    flags.declareDouble("service-estimate", 0.0,
                        "seed for the per-job service-seconds "
                        "estimate the deadline shedder uses (0 = "
                        "learn from measured runs only)");
    flags.declareBool("echo", false, "echo commands (for transcripts)");
    flags.declareBool("trace", true,
                      "record trace events for the TRACE verb");
    flags.declare("flight", "",
                  "arm the flight recorder: dump the black box to this "
                  "path on fatal errors, fatal signals, and stalls");
    flags.declareDouble("stall-window", 0.0,
                        "flag a running job whose progress counters "
                        "stay flat this many seconds (0 = watchdog "
                        "off)");
    flags.declareDouble("stall-check", 0.25,
                        "stall watchdog poll period in seconds");
    flags.declareBool("stall-cancel", false,
                      "escalate a flagged stall to cooperative "
                      "cancellation");
    flags.declareInt("metrics-port", -1,
                     "serve /metrics on 127.0.0.1:PORT (0 = ephemeral, "
                     "-1 = disabled)");
    flags.declareInt("sample-ms", 0,
                     "background sampler interval in ms (0 = off)");
    flags.declare("log-level", "",
                  "debug|info|warn|error|off (default: "
                  "GRAPHABCD_LOG_LEVEL or info)");
    flags.declareBool("log-json", false,
                      "emit structured logs as JSON lines");
    if (!flags.parse(argc, argv))
        return 0;

    ServeConfig cfg;
    cfg.workers = static_cast<std::uint32_t>(flags.getInt("workers"));
    cfg.queueCapacity =
        static_cast<std::size_t>(flags.getInt("queue"));
    cfg.cacheCapacity =
        static_cast<std::size_t>(flags.getInt("cache"));
    cfg.cacheTtlSeconds = flags.getDouble("ttl");
    cfg.poolThreads =
        static_cast<std::uint32_t>(flags.getInt("pool-threads"));
    cfg.defaultQos.weight = flags.getDouble("default-weight");
    cfg.shedOnDeadline = flags.getBool("shed-deadline");
    cfg.initialServiceEstimateSeconds =
        flags.getDouble("service-estimate");
    cfg.stallWindowSeconds = flags.getDouble("stall-window");
    cfg.stallCheckSeconds = flags.getDouble("stall-check");
    cfg.cancelOnStall = flags.getBool("stall-cancel");
    if (!flags.get("tenants").empty()) {
        std::string spec_error;
        if (!parseTenantQosSpecs(flags.get("tenants"), &cfg.tenantQos,
                                 &spec_error)) {
            std::printf("ERR BadFlag %s\n", spec_error.c_str());
            return 1;
        }
    }

    obs::setTracingEnabled(flags.getBool("trace"));
    if (!flags.get("flight").empty()) {
        obs::flightArm(flags.get("flight"));
        obs::flightArmSignals();
    }
    if (!flags.get("log-level").empty())
        obs::Logger::global().setLevel(
            obs::parseLogLevel(flags.get("log-level").c_str()));
    if (flags.getBool("log-json"))
        obs::Logger::global().setJson(true);

    MetricsServer metrics_server;
    const std::int64_t metrics_port = flags.getInt("metrics-port");
    if (metrics_port >= 0) {
        std::string error;
        if (!metrics_server.start(
                static_cast<std::uint16_t>(metrics_port), &error)) {
            GRAPHABCD_LOG_ERROR("serve", "metrics server failed",
                                LOGF("error", error));
            std::printf("ERR MetricsPort %s\n", error.c_str());
            return 1;
        }
    }
    const std::int64_t sample_ms = flags.getInt("sample-ms");
    if (sample_ms > 0)
        obs::startSampler(static_cast<double>(sample_ms) / 1000.0);

    GraphRegistry registry;
    JobManager manager(registry, cfg);
    ServeShell shell(registry, manager,
                     static_cast<std::uint32_t>(
                         std::max<std::int64_t>(1,
                                                flags.getInt("fragments"))));
    const bool echo = flags.getBool("echo");

    if (metrics_server.running())
        std::printf("OK abcd_serve ready (workers=%u queue=%zu "
                    "cache=%zu metrics=127.0.0.1:%u)\n",
                    cfg.workers, cfg.queueCapacity, cfg.cacheCapacity,
                    metrics_server.port());
    else
        std::printf("OK abcd_serve ready (workers=%u queue=%zu "
                    "cache=%zu)\n",
                    cfg.workers, cfg.queueCapacity, cfg.cacheCapacity);
    std::string line;
    while (std::getline(std::cin, line)) {
        if (echo)
            std::printf("> %s\n", line.c_str());
        if (!shell.handle(line))
            break;
        std::fflush(stdout);
    }
    manager.shutdown();
    if (sample_ms > 0)
        obs::stopSampler();
    metrics_server.stop();
    std::printf("OK bye\n");
    return 0;
}
