file(REMOVE_RECURSE
  "CMakeFiles/fig8_pe_utilization.dir/fig8_pe_utilization.cc.o"
  "CMakeFiles/fig8_pe_utilization.dir/fig8_pe_utilization.cc.o.d"
  "fig8_pe_utilization"
  "fig8_pe_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_pe_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
