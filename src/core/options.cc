#include "core/options.hh"

namespace graphabcd {

const char *
to_string(Schedule schedule)
{
    switch (schedule) {
      case Schedule::Cyclic:
        return "cyclic";
      case Schedule::Priority:
        return "priority";
      case Schedule::Random:
        return "random";
      case Schedule::Obim:
        return "obim";
    }
    return "?";
}

const char *
to_string(ExecMode mode)
{
    switch (mode) {
      case ExecMode::Async:
        return "async";
      case ExecMode::Barrier:
        return "barrier";
      case ExecMode::Bsp:
        return "bsp";
    }
    return "?";
}

} // namespace graphabcd
