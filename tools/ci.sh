#!/usr/bin/env bash
# Tier-1 CI entry point: configure, build, and test under CMake presets.
# src/obs/ builds with -Werror, so any warning there fails the build.
# Usage:
#
#   tools/ci.sh            # default + asan + tsan + obsoff, in order
#   tools/ci.sh default    # release build + full ctest only
#   tools/ci.sh asan       # AddressSanitizer+UBSan build + ctest only
#   tools/ci.sh tsan       # ThreadSanitizer build + ctest only
#   tools/ci.sh obsoff     # GRAPHABCD_OBS=OFF build + ctest only
#                          # (proves instrumentation compiles out)
set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
    local preset="$1"

    echo "== configure (${preset}) =="
    cmake --preset "${preset}"

    echo "== build (${preset}) =="
    cmake --build --preset "${preset}" -j "$(nproc)"

    echo "== test (${preset}) =="
    ctest --preset "${preset}"

    # The fragment engine is the most concurrency-dense code in the
    # repo (per-fragment runners, SPSC delta rings, the four-counter
    # termination detector, cooperative cancel).  The default stress
    # iteration count keeps plain ctest fast; under TSan, rerun the
    # cancel-storm stress heavier so the race detector sees many
    # claim/flush/drain interleavings per CI run.
    # The varint/delta codec and the compressed-layout decode loops are
    # pointer-walking code over packed byte streams — exactly what ASan
    # is for.  Rerun the codec tests with the randomized round-trip
    # count cranked up so each CI run covers many adversarial streams.
    if [ "${preset}" = "asan" ]; then
        echo "== codec fuzz (${preset}) =="
        GRAPHABCD_CODEC_FUZZ_ITERS=2000 \
            "./build-asan/tests/abcd_tests" \
            --gtest_filter='Codec*'
    fi

    # The obs-off build must still compile and pass the compressed
    # layout paths (the bytes-moved tallies are plain atomics, not obs
    # instrumentation, so they work in both builds), and the tenant QoS
    # admission path (per-tenant gauges/histograms compile out but the
    # fair-share scheduling itself must not change).
    if [ "${preset}" = "obsoff" ]; then
        echo "== layout equivalence (${preset}) =="
        "./build-obsoff/tests/abcd_tests" \
            --gtest_filter='Layout*:Codec*:FairShareQueue.*:ServeQosStress.*'
    fi

    if [ "${preset}" = "tsan" ]; then
        echo "== fragment stress (${preset}) =="
        GRAPHABCD_FRAGMENT_STRESS_ITERS=24 \
            "./build-tsan/tests/abcd_tests" \
            --gtest_filter='FragmentStress.*'

        # Same treatment for the accumulative engine: its scatter hooks
        # push into the OBIM worklist concurrently (no control lock), so
        # the cancel storm is rerun heavier to cover many push/pop/drain
        # interleavings under the race detector.
        echo "== accum stress (${preset}) =="
        GRAPHABCD_ACCUM_STRESS_ITERS=24 \
            "./build-tsan/tests/abcd_tests" \
            --gtest_filter='AccumStress.*'

        # The serve layer's cancel/cache-hit/shed races are guarded by
        # finishJob's terminal CAS; rerun the multi-tenant storm heavier
        # so TSan sees many submit/cancel/pop/displace interleavings.
        echo "== serve qos stress (${preset}) =="
        GRAPHABCD_QOS_STRESS_ITERS=12 \
            "./build-tsan/tests/abcd_tests" \
            --gtest_filter='ServeQosStress.*'
    fi

    echo "== ${preset}: OK =="
}

if [ "$#" -ge 1 ]; then
    presets=("$@")
else
    presets=(default asan tsan obsoff)
fi

for preset in "${presets[@]}"; do
    run_preset "${preset}"
done

echo "== all presets OK: ${presets[*]} =="
