/**
 * @file
 * Functional + timing model of the PE's tagged dataflow reduction unit
 * (paper Sec. IV-C).
 *
 * GATHER is a reduction over in-coming edges.  Instead of serially
 * accumulating one partial sum per destination (which stalls a
 * multi-cycle reduction pipeline on the dependency), the unit tags each
 * operand with its destination index and pairs any two operands sharing
 * a tag, feeding them to the reduction pipeline out of order; results
 * merge back into the input stream.  An on-chip scratchpad holds the
 * unpaired operand of each tag.  Throughput is one operand per cycle
 * regardless of the reduction latency — the property this model
 * demonstrates and the unit tests verify.
 */

#ifndef GRAPHABCD_HARP_REDUCTION_HH
#define GRAPHABCD_HARP_REDUCTION_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "support/logging.hh"

namespace graphabcd {

/** Cycle accounting of one reduction stream. */
struct ReductionStats
{
    std::uint64_t operands = 0;     //!< operands entering the unit
    std::uint64_t reductions = 0;   //!< combine operations performed
    std::uint64_t cycles = 0;       //!< modelled completion cycle
    std::uint64_t peakScratchpad = 0; //!< max concurrently parked tags
};

/**
 * Tagged out-of-order reduction over a stream of (tag, value) operands.
 * @tparam T operand type (double for PR/SSSP, wide vectors for CF).
 */
template <typename T>
class TaggedReductionUnit
{
  public:
    using Combine = std::function<T(const T &, const T &)>;

    /**
     * @param combine associative & commutative combiner.
     * @param latency_cycles pipeline latency of one combine.
     */
    TaggedReductionUnit(Combine combine, std::uint32_t latency_cycles = 4)
        : combineFn(std::move(combine)), latency(latency_cycles)
    {
    }

    /**
     * Reduce a stream of (tag, value) pairs.
     * @param stream operands in arrival order (the edge slice order).
     * @param expected per-tag operand counts (in-degree of each vertex
     *        in the block); a tag is complete when its count is reached.
     * @param[out] stats optional cycle accounting.
     * @return tag -> fully reduced value.
     */
    std::unordered_map<std::uint32_t, T>
    reduce(const std::vector<std::pair<std::uint32_t, T>> &stream,
           const std::unordered_map<std::uint32_t, std::uint32_t>
               &expected,
           ReductionStats *stats = nullptr) const
    {
        // Functional result: out-of-order pairing of equal tags.  The
        // scratchpad parks the unpaired operand per tag; a pairing
        // consumes both and re-injects the combined operand, counted
        // with `remaining` so the last combine of a tag retires it.
        std::unordered_map<std::uint32_t, T> parked;
        std::unordered_map<std::uint32_t, std::uint32_t> remaining;
        std::unordered_map<std::uint32_t, T> done;

        ReductionStats local;
        std::uint64_t parked_now = 0;

        auto feed = [&](std::uint32_t tag, const T &value,
                        auto &&feed_ref) -> void {
            local.operands++;
            auto rem_it = remaining.find(tag);
            if (rem_it == remaining.end()) {
                auto exp_it = expected.find(tag);
                GRAPHABCD_ASSERT(exp_it != expected.end(),
                                 "operand with an unexpected tag");
                rem_it = remaining.emplace(tag, exp_it->second).first;
            }
            if (rem_it->second == 1) {
                // Single-operand tag (in-degree 1) or final survivor.
                done.emplace(tag, value);
                return;
            }
            auto park_it = parked.find(tag);
            if (park_it == parked.end()) {
                parked.emplace(tag, value);
                parked_now++;
                if (parked_now > local.peakScratchpad)
                    local.peakScratchpad = parked_now;
                return;
            }
            // Pair found: combine and re-inject; the pair collapses two
            // operands into one, so the tag's remaining count drops.
            T combined = combineFn(park_it->second, value);
            parked.erase(park_it);
            parked_now--;
            local.reductions++;
            rem_it->second--;
            feed_ref(tag, combined, feed_ref);
        };

        for (const auto &[tag, value] : stream)
            feed(tag, value, feed);

        GRAPHABCD_ASSERT(parked.empty(),
                         "operands left unpaired: expected counts wrong");

        // Cycle model: the unit accepts one operand per cycle; the
        // operand count above already includes re-injected partial
        // sums, and the pipeline drains `latency` cycles after the
        // last combine issues.
        local.cycles = local.operands + latency;
        if (stats)
            *stats = local;
        return done;
    }

  private:
    Combine combineFn;
    std::uint32_t latency;
};

} // namespace graphabcd

#endif // GRAPHABCD_HARP_REDUCTION_HH
