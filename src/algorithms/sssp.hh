/**
 * @file
 * Single-Source Shortest Path as a BCD vertex program.
 *
 * Objective (paper Sec. III-A discussion):
 *   F(x) = 1/2 sum_v (x_v - min_{u in in(v)} (x_u + w_uv))^2,
 * whose coordinate update is the label-correcting relaxation
 *   x_v = min(x_v, min_u (x_u + w_uv)).
 * GATHER's reduction is min — associative and commutative, so the tagged
 * dataflow reduction unit evaluates it out of order just like a sum.
 */

#ifndef GRAPHABCD_ALGORITHMS_SSSP_HH
#define GRAPHABCD_ALGORITHMS_SSSP_HH

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/vertex_program.hh"
#include "graph/partition.hh"

namespace graphabcd {

/** SSSP vertex program (label correcting). */
struct SsspProgram
{
    using Value = double;   //!< tentative distance from the source
    using Accum = double;   //!< min over in-coming relaxations

    VertexId source = 0;

    /** Finite stand-in for "unreached" that survives + weight. */
    static constexpr double unreachable = 1e18;

    explicit SsspProgram(VertexId src = 0) : source(src) {}

    Value
    init(VertexId v, const BlockPartition &) const
    {
        return v == source ? 0.0 : unreachable;
    }

    Accum identity() const { return unreachable; }

    Accum
    edgeTerm(const Value &, const Value &edge_value, float weight) const
    {
        return edge_value >= unreachable
            ? unreachable
            : edge_value + static_cast<double>(weight);
    }

    Accum combine(Accum a, Accum b) const { return std::min(a, b); }

    Value
    apply(VertexId, const Accum &acc, const Value &old,
          const BlockPartition &) const
    {
        return std::min(old, acc);
    }

    Value
    edgeValue(VertexId, const Value &value, const BlockPartition &) const
    {
        return value;
    }

    double delta(const Value &a, const Value &b) const
    {
        return std::abs(a - b);
    }
};

/**
 * Breadth-First Search expressed as unit-weight SSSP: the value is the
 * hop depth.  GraphABCD executes it label-correcting rather than
 * level-synchronous; the fixed point is the same BFS depth.
 */
struct BfsProgram : SsspProgram
{
    explicit BfsProgram(VertexId src = 0) : SsspProgram(src) {}

    Accum
    edgeTerm(const Value &, const Value &edge_value, float) const
    {
        return edge_value >= unreachable ? unreachable : edge_value + 1.0;
    }
};

/**
 * Connected Components via min-label propagation: every vertex adopts
 * the smallest vertex id reachable from it.  Run on a symmetrized graph.
 */
struct CcProgram
{
    using Value = double;   //!< current component label (a vertex id)
    using Accum = double;

    Value init(VertexId v, const BlockPartition &) const { return v; }

    Accum
    identity() const
    {
        return std::numeric_limits<double>::infinity();
    }

    Accum
    edgeTerm(const Value &, const Value &edge_value, float) const
    {
        return edge_value;
    }

    Accum combine(Accum a, Accum b) const { return std::min(a, b); }

    Value
    apply(VertexId, const Accum &acc, const Value &old,
          const BlockPartition &) const
    {
        return std::min(old, acc);
    }

    Value
    edgeValue(VertexId, const Value &value, const BlockPartition &) const
    {
        return value;
    }

    double delta(const Value &a, const Value &b) const
    {
        return std::abs(a - b);
    }
};

} // namespace graphabcd

#endif // GRAPHABCD_ALGORITHMS_SSSP_HH
