file(REMOVE_RECURSE
  "CMakeFiles/abcd_graphmat.dir/cpu_model.cc.o"
  "CMakeFiles/abcd_graphmat.dir/cpu_model.cc.o.d"
  "libabcd_graphmat.a"
  "libabcd_graphmat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcd_graphmat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
