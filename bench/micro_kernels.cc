/**
 * @file
 * Microarchitecture kernel benchmarks (google-benchmark): the runtime
 * queues, the tagged dataflow reduction versus a serial accumulator,
 * the GATHER-APPLY block kernel and partition construction.
 */

#include <benchmark/benchmark.h>

#include "algorithms/pagerank.hh"
#include "core/state.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "harp/reduction.hh"
#include "runtime/spsc_ring.hh"
#include "runtime/task_queue.hh"

namespace graphabcd {
namespace {

void
BM_TaskQueuePushPop(benchmark::State &state)
{
    TaskQueue<int> q(1024);
    for (auto _ : state) {
        q.tryPush(1);
        benchmark::DoNotOptimize(q.tryPop());
    }
}
BENCHMARK(BM_TaskQueuePushPop);

void
BM_SpscRingPushPop(benchmark::State &state)
{
    SpscRing<int> ring(1024);
    for (auto _ : state) {
        ring.tryPush(1);
        benchmark::DoNotOptimize(ring.tryPop());
    }
}
BENCHMARK(BM_SpscRingPushPop);

void
BM_TaggedReduction(benchmark::State &state)
{
    const auto tags = static_cast<std::uint32_t>(state.range(0));
    Rng rng(7);
    std::vector<std::pair<std::uint32_t, double>> stream;
    std::unordered_map<std::uint32_t, std::uint32_t> expected;
    for (int i = 0; i < 4096; i++) {
        auto tag = static_cast<std::uint32_t>(rng.nextBounded(tags));
        stream.emplace_back(tag, rng.nextDouble());
        expected[tag]++;
    }
    TaggedReductionUnit<double> unit(
        [](const double &a, const double &b) { return a + b; });
    for (auto _ : state) {
        auto result = unit.reduce(stream, expected);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_TaggedReduction)->Arg(16)->Arg(256);

void
BM_SerialReduction(benchmark::State &state)
{
    const auto tags = static_cast<std::uint32_t>(state.range(0));
    Rng rng(7);
    std::vector<std::pair<std::uint32_t, double>> stream;
    for (int i = 0; i < 4096; i++) {
        stream.emplace_back(
            static_cast<std::uint32_t>(rng.nextBounded(tags)),
            rng.nextDouble());
    }
    for (auto _ : state) {
        std::vector<double> acc(tags, 0.0);
        for (const auto &[tag, value] : stream)
            acc[tag] += value;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SerialReduction)->Arg(16)->Arg(256);

void
BM_PartitionBuild(benchmark::State &state)
{
    Rng rng(9);
    EdgeList el = generateRmat(1 << 14, 1 << 17, rng);
    for (auto _ : state) {
        BlockPartition g(el, 512);
        benchmark::DoNotOptimize(g.numBlocks());
    }
    state.SetItemsProcessed(state.iterations() * el.numEdges());
}
BENCHMARK(BM_PartitionBuild);

void
BM_GatherApplyBlock(benchmark::State &state)
{
    Rng rng(11);
    EdgeList el = generateRmat(1 << 14, 1 << 17, rng);
    BlockPartition g(el, 512);
    PageRankProgram prog;
    BcdState<PageRankProgram> st(g, prog);
    BlockId b = 0;
    for (auto _ : state) {
        auto update = st.processBlock(g, prog, b, 1e-9);
        benchmark::DoNotOptimize(update.l1Delta);
        b = (b + 1) % g.numBlocks();
    }
}
BENCHMARK(BM_GatherApplyBlock);

void
BM_ScatterCommitBlock(benchmark::State &state)
{
    Rng rng(13);
    EdgeList el = generateRmat(1 << 14, 1 << 17, rng);
    BlockPartition g(el, 512);
    PageRankProgram prog;
    BcdState<PageRankProgram> st(g, prog);
    BlockId b = 0;
    for (auto _ : state) {
        auto update = st.processBlock(g, prog, b, 1e-9);
        benchmark::DoNotOptimize(
            st.commitBlock(g, prog, update, 1e-9));
        b = (b + 1) % g.numBlocks();
    }
}
BENCHMARK(BM_ScatterCommitBlock);

} // namespace
} // namespace graphabcd

BENCHMARK_MAIN();
