#include "graph/io.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "support/logging.hh"

namespace graphabcd {

EdgeList
loadEdgeList(const std::string &path, bool densify)
{
    std::ifstream ifs(path);
    if (!ifs)
        fatal("cannot open edge list '", path, "'");

    std::vector<Edge> raw;
    std::uint64_t max_id = 0;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(ifs, line)) {
        line_no++;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream iss(line);
        std::uint64_t s, d;
        float w = 1.0f;
        if (!(iss >> s >> d))
            fatal("garbled edge at ", path, ":", line_no);
        // VertexId is 32-bit; a wider id must fail loudly here, not
        // silently alias a low vertex after truncation.
        constexpr std::uint64_t max_vertex =
            std::numeric_limits<VertexId>::max();
        if (s > max_vertex || d > max_vertex)
            fatal("vertex id ", std::max(s, d), " at ", path, ":",
                  line_no, " exceeds the 32-bit VertexId range ",
                  "(densify cannot help: ids are truncated before ",
                  "remapping)");
        iss >> w;   // optional third column
        raw.emplace_back(static_cast<VertexId>(s),
                         static_cast<VertexId>(d), w);
        max_id = std::max({max_id, s, d});
    }

    if (!densify) {
        // max_id fits VertexId (checked per line), but the vertex
        // *count* max_id + 1 may not.
        if (max_id == std::numeric_limits<VertexId>::max())
            fatal("'", path, "' needs ", max_id + 1,
                  " vertices, which overflows the 32-bit vertex count; "
                  "load with densify=true");
        EdgeList el(static_cast<VertexId>(max_id) + 1);
        for (const Edge &e : raw)
            el.addEdge(e.src, e.dst, e.weight);
        return el;
    }

    std::unordered_map<VertexId, VertexId> remap;
    remap.reserve(raw.size() * 2);
    auto intern = [&remap](VertexId v) {
        auto [it, fresh] =
            remap.emplace(v, static_cast<VertexId>(remap.size()));
        (void)fresh;
        return it->second;
    };
    for (Edge &e : raw) {
        e.src = intern(e.src);
        e.dst = intern(e.dst);
    }
    EdgeList el(static_cast<VertexId>(remap.size()));
    for (const Edge &e : raw)
        el.addEdge(e.src, e.dst, e.weight);
    return el;
}

namespace {

constexpr char binaryMagic[4] = {'A', 'B', 'C', 'D'};
constexpr std::uint32_t binaryVersion = 1;

} // namespace

void
saveEdgeListBinary(const EdgeList &el, const std::string &path)
{
    std::ofstream ofs(path, std::ios::binary);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    ofs.write(binaryMagic, sizeof(binaryMagic));
    const std::uint32_t version = binaryVersion;
    const std::uint32_t n = el.numVertices();
    const std::uint64_t m = el.numEdges();
    ofs.write(reinterpret_cast<const char *>(&version), sizeof(version));
    ofs.write(reinterpret_cast<const char *>(&n), sizeof(n));
    ofs.write(reinterpret_cast<const char *>(&m), sizeof(m));
    static_assert(sizeof(Edge) == 12, "Edge layout changed: bump the "
                                      "binary format version");
    ofs.write(reinterpret_cast<const char *>(el.edges().data()),
              static_cast<std::streamsize>(m * sizeof(Edge)));
    if (!ofs)
        fatal("short write to '", path, "'");
}

EdgeList
loadEdgeListBinary(const std::string &path)
{
    std::ifstream ifs(path, std::ios::binary);
    if (!ifs)
        fatal("cannot open binary edge list '", path, "'");
    char magic[4];
    std::uint32_t version = 0, n = 0;
    std::uint64_t m = 0;
    ifs.read(magic, sizeof(magic));
    ifs.read(reinterpret_cast<char *>(&version), sizeof(version));
    ifs.read(reinterpret_cast<char *>(&n), sizeof(n));
    ifs.read(reinterpret_cast<char *>(&m), sizeof(m));
    if (!ifs || std::memcmp(magic, binaryMagic, sizeof(magic)) != 0)
        fatal("'", path, "' is not a graphabcd binary edge list");
    if (version != binaryVersion)
        fatal("'", path, "' has format version ", version,
              ", expected ", binaryVersion);
    // Validate the edge count against the bytes actually present
    // before allocating: a corrupt or malicious header must fail
    // cleanly here, not OOM the process on the vector below.  The
    // division form avoids overflowing m * sizeof(Edge).
    const std::istream::pos_type data_pos = ifs.tellg();
    ifs.seekg(0, std::ios::end);
    const std::istream::pos_type end_pos = ifs.tellg();
    if (data_pos == std::istream::pos_type(-1) ||
        end_pos == std::istream::pos_type(-1) || end_pos < data_pos)
        fatal("cannot size '", path, "'");
    const std::uint64_t remaining =
        static_cast<std::uint64_t>(end_pos - data_pos);
    if (m > remaining / sizeof(Edge))
        fatal("'", path, "' header claims ", m, " edges but only ",
              remaining, " bytes (", remaining / sizeof(Edge),
              " edges) follow the header");
    ifs.seekg(data_pos);
    std::vector<Edge> edges(m);
    ifs.read(reinterpret_cast<char *>(edges.data()),
             static_cast<std::streamsize>(m * sizeof(Edge)));
    if (!ifs)
        fatal("'", path, "' is truncated");
    return EdgeList(n, std::move(edges));
}

void
saveEdgeList(const EdgeList &el, const std::string &path)
{
    std::ofstream ofs(path);
    if (!ofs)
        fatal("cannot open '", path, "' for writing");
    ofs << "# graphabcd edge list: " << el.numVertices() << " vertices, "
        << el.numEdges() << " edges\n";
    bool uniform = true;
    for (const Edge &e : el.edges()) {
        if (e.weight != 1.0f) {
            uniform = false;
            break;
        }
    }
    for (const Edge &e : el.edges()) {
        ofs << e.src << ' ' << e.dst;
        if (!uniform)
            ofs << ' ' << e.weight;
        ofs << '\n';
    }
}

} // namespace graphabcd
