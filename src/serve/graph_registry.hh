/**
 * @file
 * GraphRegistry — named, shared, immutable graphs for the serve layer.
 *
 * A production service cannot reload a multi-gigabyte graph per query.
 * GraphABCD's BlockPartition is immutable after construction (all
 * mutable run state lives in BcdState / the engines), so one in-memory
 * partition can back any number of concurrent jobs.  The registry maps
 * names to `shared_ptr<const BlockPartition>`: jobs hold a reference
 * for the duration of their run, and remove() only drops the registry's
 * own reference — in-flight jobs keep the graph alive until they
 * finish, so unloading is always safe.
 *
 * Each entry also carries a content-sampled fingerprint used as the
 * graph component of ResultCache keys: re-registering a *different*
 * graph under an old name changes the fingerprint, so stale cached
 * results can never be served for the new graph.
 */

#ifndef GRAPHABCD_SERVE_GRAPH_REGISTRY_HH
#define GRAPHABCD_SERVE_GRAPH_REGISTRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/edge_list.hh"
#include "graph/partition.hh"

namespace graphabcd {

/** Thread-safe name -> shared immutable BlockPartition map. */
class GraphRegistry
{
  public:
    /** Summary of one registered graph (for LIST-style introspection). */
    struct GraphInfo
    {
        std::string name;
        VertexId vertices = 0;
        EdgeId edges = 0;
        BlockId blocks = 0;
        VertexId blockSize = 0;
        std::uint64_t fingerprint = 0;
        long useCount = 0;   //!< outstanding handles incl. the registry's
    };

    /**
     * Partition `el` and register it under `name`, replacing any
     * previous binding (jobs running on the old graph keep their
     * handle).
     * @param lo physical layout / vertex-reorder options; both are
     *        mixed into the fingerprint so cached results never alias
     *        across layouts of the same graph.
     * @return the new shared partition.
     */
    std::shared_ptr<const BlockPartition>
    add(const std::string &name, const EdgeList &el, VertexId block_size,
        LayoutOptions lo = {});

    /** Register an already-built partition under `name`. */
    std::shared_ptr<const BlockPartition>
    add(const std::string &name,
        std::shared_ptr<const BlockPartition> graph);

    /** @return the partition bound to `name`, or nullptr. */
    std::shared_ptr<const BlockPartition> get(const std::string &name)
        const;

    /** @return the graph fingerprint of `name`, or 0 when absent. */
    std::uint64_t fingerprint(const std::string &name) const;

    /**
     * Drop the registry's reference to `name`.
     * @return whether the name was bound.
     */
    bool remove(const std::string &name);

    /** @return summaries of every registered graph, sorted by name. */
    std::vector<GraphInfo> list() const;

    /** @return number of registered graphs. */
    std::size_t size() const;

  private:
    struct Entry
    {
        std::shared_ptr<const BlockPartition> graph;
        std::uint64_t fingerprint = 0;
    };

    mutable std::mutex mtx;
    std::map<std::string, Entry> entries;
};

} // namespace graphabcd

#endif // GRAPHABCD_SERVE_GRAPH_REGISTRY_HH
