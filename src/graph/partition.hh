/**
 * @file
 * Destination-sliced block partition — GraphABCD's on-device layout.
 *
 * Per the paper (Fig. 1 and Sec. IV-A2): the vertex array is cut into
 * contiguous blocks (intervals) of `blockSize` vertices, and the adjacency
 * matrix is sliced into chunks by *destination* vertex.  In-coming edges of
 * the same vertex are contiguous in memory, so a PE streaming one block's
 * edge slice performs only sequential reads.  Out-going edge positions are
 * kept in a separate scatter index: SCATTER writes each updated vertex
 * value into those (random) positions.
 *
 * There is exactly one copy of the edges (paper footnote 4): the in-edge
 * CSC arrays.  The scatter index stores positions *into* those arrays.
 *
 * Two physical layouts (DESIGN.md §11):
 *
 *  - GraphLayout::Plain: 4-byte src/dst ids, f32 weights, 8-byte scatter
 *    positions — byte-identical to the historical layout.
 *  - GraphLayout::Compressed: per-vertex in-lists sorted by source and
 *    delta-varint encoded; weights demoted to a Unit (nothing stored) or
 *    U8 sidecar when values allow; destination ids narrowed to 16-bit
 *    in-block locals when every block spans ≤ 65536 vertices; scatter
 *    position lists delta-varint encoded.  Hot loops decode a block (or
 *    a vertex's scatter list) into caller-owned scratch; every decode
 *    charges a bytes-moved tally so bench/micro_kernels can report
 *    bytes/edge honestly and feed the ratio to the HARP Bus model.
 *
 * An optional hub-clustering VertexPermutation is applied to the edge
 * list before the boundaries are computed; engines then run entirely in
 * internal ids and callers translate at the API boundary (see
 * permutation.hh for the contract).
 */

#ifndef GRAPHABCD_GRAPH_PARTITION_HH
#define GRAPHABCD_GRAPH_PARTITION_HH

#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/codec.hh"
#include "graph/edge_list.hh"
#include "graph/layout.hh"
#include "graph/permutation.hh"
#include "graph/types.hh"

namespace graphabcd {

/** Decode buffer for one block's edge slice; reuse across calls. */
struct EdgeSliceScratch
{
    std::vector<VertexId> src;
    std::vector<float> wgt;
};

/**
 * One block's in-edge slice, positions [base, base + src.size()).
 * Spans point into the partition's arrays (plain layout, and weights
 * under WeightMode::Float32) or into the scratch the view was decoded
 * into; either way they are valid only until the scratch is reused.
 */
struct BlockEdgesView
{
    EdgeId base = 0;
    std::span<const VertexId> src;
    std::span<const float> wgt;

    EdgeId size() const { return static_cast<EdgeId>(src.size()); }
};

/** Decode buffer for one vertex's scatter list; reuse across calls. */
struct ScatterScratch
{
    std::vector<EdgeId> pos;
};

/** Bundle for call sites that both gather and scatter. */
struct LayoutScratch
{
    EdgeSliceScratch slice;
    ScatterScratch scatter;
};

/** Running bytes-moved tally, split by access pattern. */
struct BytesMoved
{
    std::uint64_t gather = 0;   //!< edge-slice streaming (GATHER)
    std::uint64_t scatter = 0;  //!< scatter-index reads (SCATTER)

    std::uint64_t total() const { return gather + scatter; }
};

/**
 * The blocked graph.  Immutable after construction; the mutable
 * edge-carried vertex values live in core::EdgeValues, parallel to the
 * edge arrays here.
 */
class BlockPartition
{
  public:
    BlockPartition() = default;

    /**
     * Build the partition with fixed vertex-count blocks.
     * @param el input edge list.
     * @param block_size vertices per block; |V| (or more) degenerates to
     *        a single block, i.e. full gradient descent / BSP.
     * @param lo physical layout and vertex-order options.
     */
    BlockPartition(const EdgeList &el, VertexId block_size,
                   LayoutOptions lo = {});

    /** Tag selecting the edge-balanced builder. */
    struct EdgeBalanced
    {
    };

    /**
     * Build the partition with *edge-balanced* blocks: contiguous
     * vertex ranges cut so each block's in-edge slice holds roughly
     * `target_edges_per_block` edges.  This evens out PE service times
     * on skewed graphs (the load-imbalance concern of Sec. IV-A3) at
     * the cost of variable block vertex counts.
     */
    BlockPartition(const EdgeList &el, EdgeId target_edges_per_block,
                   EdgeBalanced, LayoutOptions lo = {});

    VertexId numVertices() const { return nVertices; }
    EdgeId numEdges() const { return nEdges_; }

    GraphLayout layout() const { return layoutOpts_.layout; }
    VertexReorder reorder() const { return layoutOpts_.reorder; }

    bool compressed() const
    {
        return layoutOpts_.layout == GraphLayout::Compressed;
    }

    /** Original-id <-> internal-id mapping (identity for reorder=none). */
    const VertexPermutation &permutation() const { return perm_; }

    WeightMode weightMode() const { return weightMode_; }

    /** True when destination ids are stored as 16-bit block locals. */
    bool dstLocal16() const { return dstLocal16_; }

    /**
     * @return nominal vertices per block (the constructor argument for
     * fixed-size partitions; the mean block size for edge-balanced
     * ones).
     */
    VertexId blockSize() const { return blockSize_; }

    BlockId numBlocks() const { return nBlocks; }

    /** @return the block containing vertex v. */
    BlockId blockOf(VertexId v) const { return vertexBlock[v]; }

    /** @return first vertex of block b. */
    VertexId blockBegin(BlockId b) const { return blockBegins[b]; }

    /** @return one-past-last vertex of block b. */
    VertexId blockEnd(BlockId b) const { return blockBegins[b + 1]; }

    /** @return number of vertices in block b. */
    VertexId
    blockVertexCount(BlockId b) const
    {
        return blockEnd(b) - blockBegin(b);
    }

    /** @return index of the first in-edge of block b's edge slice. */
    EdgeId edgeBegin(BlockId b) const { return inOffsets[blockBegin(b)]; }

    /** @return one-past-last in-edge of block b's edge slice. */
    EdgeId edgeEnd(BlockId b) const { return inOffsets[blockEnd(b)]; }

    /** @return number of in-edges landing in block b. */
    EdgeId
    blockEdgeCount(BlockId b) const
    {
        return edgeEnd(b) - edgeBegin(b);
    }

    /** @return [begin, end) in-edge indices of vertex v. */
    EdgeId inEdgeBegin(VertexId v) const { return inOffsets[v]; }
    EdgeId inEdgeEnd(VertexId v) const { return inOffsets[v + 1]; }

    /**
     * @return source vertex of in-edge position e (CSC order).  O(1)
     * plain; a per-vertex stream decode when compressed — debug/sample
     * path only, hot loops use blockEdges()/forEachInEdge().
     */
    VertexId edgeSrc(EdgeId e) const;

    /**
     * @return destination vertex of in-edge position e.  O(1) except
     * under 16-bit local destinations, where the owning block is found
     * by binary search — use edgeDstAt() with a hint in loops.
     */
    VertexId edgeDst(EdgeId e) const;

    /** @return weight of in-edge position e; O(1) in every layout. */
    float
    edgeWeight(EdgeId e) const
    {
        switch (weightMode_) {
          case WeightMode::Unit:
            return 1.0f;
          case WeightMode::U8:
            return static_cast<float>(wgt8_[e]);
          case WeightMode::Float32:
            return edgeWeight_[e];
        }
        return 1.0f;
    }

    /**
     * Destination block of in-edge position e.  `hint` caches the last
     * answer: loops over ascending positions resolve in O(1) amortised
     * (positions within a block are contiguous).
     */
    BlockId
    dstBlockOfEdge(EdgeId e, BlockId &hint) const
    {
        if (hint < nBlocks && e >= blockEdgeStarts_[hint] &&
            e < blockEdgeStarts_[hint + 1])
            return hint;
        // Walk one block forward before falling back to binary search:
        // sorted scatter lists mostly advance to the adjacent slice.
        if (hint + 1 < nBlocks && e >= blockEdgeStarts_[hint + 1] &&
            e < blockEdgeStarts_[hint + 2])
            return hint = hint + 1;
        return hint = dstBlockSearch(e);
    }

    /** Destination vertex of position e, hint-accelerated. */
    VertexId
    edgeDstAt(EdgeId e, BlockId &hint) const
    {
        if (!dstLocal16_)
            return edgeDst_[e];
        const BlockId b = dstBlockOfEdge(e, hint);
        return blockBegin(b) + dst16_[e];
    }

    /**
     * Decode block b's edge slice.  Plain layout returns spans straight
     * into the partition arrays; compressed decodes into `scratch`.
     * Either way the gather bytes-moved tally is charged with the bytes
     * a PE would stream for this slice.  The view dies with the next
     * use of the same scratch.
     */
    BlockEdgesView blockEdges(BlockId b, EdgeSliceScratch &scratch) const;

    /**
     * Decode vertex v's scatter-position list (ascending CSC positions
     * of v's out-edges).  Plain layout returns a span into the scatter
     * index; compressed decodes into `scratch`.  Charges the scatter
     * bytes-moved tally.
     */
    std::span<const EdgeId> scatterList(VertexId v,
                                        ScatterScratch &scratch) const;

    /**
     * Visit v's in-edges as fn(position, src, weight), positions
     * ascending.  Works in every layout without scratch; meant for
     * setup and reference paths, so it does not charge bytes-moved.
     */
    template <typename Fn>
    void
    forEachInEdge(VertexId v, Fn &&fn) const
    {
        const EdgeId begin = inOffsets[v], end = inOffsets[v + 1];
        if (!compressed()) {
            for (EdgeId e = begin; e < end; e++)
                fn(e, edgeSrc_[e], edgeWeight_[e]);
            return;
        }
        const std::uint8_t *p = gatherStream_.data() + gatherOffsets_[v];
        VertexId src = 0;
        for (EdgeId e = begin; e < end; e++) {
            std::uint32_t d = 0;
            p = codec::decodeVarint32(p, d);
            src = e == begin ? d : src + d;
            fn(e, src, edgeWeight(e));
        }
    }

    /**
     * @return positions (into the in-edge arrays) of v's out-edges.
     * Plain layout only — compressed callers use scatterList().
     */
    std::span<const EdgeId>
    scatterPositions(VertexId v) const
    {
        assert(!compressed() &&
               "scatterPositions() is plain-layout only; use scatterList()");
        return {scatterPos.data() + scatterOffsets[v],
                scatterPos.data() + scatterOffsets[v + 1]};
    }

    /** @return out-degree of v. */
    std::uint32_t
    outDegree(VertexId v) const
    {
        return static_cast<std::uint32_t>(scatterOffsets[v + 1] -
                                          scatterOffsets[v]);
    }

    /** @return in-degree of v. */
    std::uint32_t
    inDegree(VertexId v) const
    {
        return static_cast<std::uint32_t>(inOffsets[v + 1] - inOffsets[v]);
    }

    /**
     * Set of destination blocks reachable from block b in one hop, i.e.
     * the blocks whose edge slices contain an edge sourced in b.  Used by
     * SCATTER to activate downstream blocks.
     */
    std::span<const BlockId>
    downstreamBlocks(BlockId b) const
    {
        return {downstream.data() + downstreamOffsets[b],
                downstream.data() + downstreamOffsets[b + 1]};
    }

    /**
     * Bytes a PE streams to process block b: the edge slice (topology
     * at this layout's density + one edge-carried value of
     * `value_bytes`) plus reading and writing the vertex value block.
     * Drives the simulator's DMA sizes.
     */
    std::uint64_t
    blockStreamBytes(BlockId b, std::uint32_t value_bytes) const
    {
        const std::uint64_t verts = blockVertexCount(b);
        if (!compressed()) {
            const std::uint64_t edge_rec =
                sizeof(VertexId) + sizeof(float) + value_bytes;
            return blockEdgeCount(b) * edge_rec +
                   2ULL * verts * value_bytes;
        }
        return gatherPackedBytes(b) +
               blockEdgeCount(b) * (sidecarBytesPerEdge() + value_bytes) +
               2ULL * verts * value_bytes;
    }

    /**
     * Topology bytes streamed per edge in GATHER for this layout
     * (source-id stream + weight sidecar; 8.0 for plain CSC).  This is
     * the measured ratio the HARP Bus model consumes via
     * HarpConfig::layoutBytesPerEdge.
     */
    double
    gatherBytesPerEdge() const
    {
        if (!compressed() || nEdges_ == 0)
            return static_cast<double>(sizeof(VertexId) + sizeof(float));
        return static_cast<double>(gatherStream_.size() +
                                   sidecarBytesPerEdge() * nEdges_) /
               static_cast<double>(nEdges_);
    }

    /** Scatter-index bytes per edge for this layout (8.0 for plain). */
    double
    scatterBytesPerEdge() const
    {
        if (!compressed() || nEdges_ == 0)
            return static_cast<double>(sizeof(EdgeId));
        return static_cast<double>(scatterStream_.size()) /
               static_cast<double>(nEdges_);
    }

    /** Snapshot of the bytes-moved tallies (relaxed reads). */
    BytesMoved
    bytesMoved() const
    {
        return {gatherBytesMoved_.load(std::memory_order_relaxed),
                scatterBytesMoved_.load(std::memory_order_relaxed)};
    }

    /** Zero the bytes-moved tallies (bench harness hook). */
    void
    resetBytesMoved() const
    {
        gatherBytesMoved_.store(0, std::memory_order_relaxed);
        scatterBytesMoved_.store(0, std::memory_order_relaxed);
    }

  private:
    /** Shared tail of both constructors: CSC, scatter, downstream. */
    void buildFromBoundaries(const EdgeList &el);

    /** Sort each vertex's in-list by source (compressed pre-pass). */
    void sortInLists();

    /** Build the varint streams and sidecars, then drop wide arrays. */
    void packCompressed();

    /** Binary search for the block owning in-edge position e. */
    BlockId dstBlockSearch(EdgeId e) const;

    /** Packed gather-stream bytes of block b's slice. */
    std::uint64_t
    gatherPackedBytes(BlockId b) const
    {
        return gatherOffsets_[blockEnd(b)] - gatherOffsets_[blockBegin(b)];
    }

    /** Sidecar bytes per edge for the active weight mode. */
    std::uint64_t
    sidecarBytesPerEdge() const
    {
        switch (weightMode_) {
          case WeightMode::Unit:    return 0;
          case WeightMode::U8:      return 1;
          case WeightMode::Float32: return sizeof(float);
        }
        return 0;
    }

    VertexId nVertices = 0;
    VertexId blockSize_ = 0;
    BlockId nBlocks = 0;
    EdgeId nEdges_ = 0;

    LayoutOptions layoutOpts_;
    VertexPermutation perm_;

    std::vector<VertexId> blockBegins;  //!< size numBlocks+1
    std::vector<BlockId> vertexBlock;   //!< size V, vertex -> block

    std::vector<EdgeId> inOffsets;        //!< size V+1, CSC row offsets
    std::vector<VertexId> edgeSrc_;       //!< size E, CSC order (plain)
    std::vector<VertexId> edgeDst_;       //!< size E (plain / !dst16)
    std::vector<float> edgeWeight_;       //!< size E (plain / Float32)

    std::vector<EdgeId> scatterOffsets;   //!< size V+1
    std::vector<EdgeId> scatterPos;       //!< size E, positions (plain)

    std::vector<EdgeId> downstreamOffsets; //!< size numBlocks+1
    std::vector<BlockId> downstream;       //!< concatenated block sets

    // Compressed-layout arrays (empty under GraphLayout::Plain).
    WeightMode weightMode_ = WeightMode::Float32;
    bool dstLocal16_ = false;
    std::vector<std::uint8_t> gatherStream_;   //!< delta-varint src lists
    std::vector<std::uint64_t> gatherOffsets_; //!< size V+1, byte offsets
    std::vector<std::uint8_t> scatterStream_;  //!< delta-varint positions
    std::vector<std::uint64_t> scatterByteOffsets_; //!< size V+1
    std::vector<std::uint16_t> dst16_;         //!< size E, in-block dst
    std::vector<std::uint8_t> wgt8_;           //!< size E under U8
    std::vector<EdgeId> blockEdgeStarts_;      //!< size numBlocks+1

    // Bytes-moved tallies; relaxed — a bench-time observability aid,
    // not a synchronisation point.  mutable so const hot paths charge
    // them; atomics make the class move-only, which is fine: partitions
    // are built in place and shared via shared_ptr.
    mutable std::atomic<std::uint64_t> gatherBytesMoved_{0};
    mutable std::atomic<std::uint64_t> scatterBytesMoved_{0};
};

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_PARTITION_HH
