#include "serve/graph_registry.hh"

#include "support/fingerprint.hh"

namespace graphabcd {

namespace {

/**
 * Content-sampled identity of a partition: name-independent sizes plus
 * up to 64 evenly spaced edge records.  Two different graphs colliding
 * requires equal vertex/edge/block counts *and* equal samples — good
 * enough to key a cache that only ever trades a miss for a collision.
 */
std::uint64_t
graphFingerprint(const std::string &name, const BlockPartition &g)
{
    Fingerprint fp;
    fp.mix(std::string_view(name));
    fp.mix(static_cast<std::uint64_t>(g.numVertices()));
    fp.mix(static_cast<std::uint64_t>(g.numEdges()));
    fp.mix(static_cast<std::uint64_t>(g.numBlocks()));
    fp.mix(static_cast<std::uint64_t>(g.blockSize()));
    // Physical layout changes nothing logical, but a hub reorder
    // changes the internal id space results are computed in — tag both
    // so cached results never alias across layouts of one graph.
    fp.mix(static_cast<std::uint64_t>(g.layout()));
    fp.mix(static_cast<std::uint64_t>(g.reorder()));
    const EdgeId n = g.numEdges();
    const EdgeId stride = std::max<EdgeId>(1, n / 64);
    for (EdgeId e = 0; e < n; e += stride) {
        fp.mix(static_cast<std::uint64_t>(g.edgeSrc(e)));
        fp.mix(static_cast<std::uint64_t>(g.edgeDst(e)));
        fp.mix(static_cast<double>(g.edgeWeight(e)));
    }
    return fp.value();
}

} // namespace

std::shared_ptr<const BlockPartition>
GraphRegistry::add(const std::string &name, const EdgeList &el,
                   VertexId block_size, LayoutOptions lo)
{
    // Build outside the lock: partitioning a large graph must not
    // stall lookups for running jobs.
    return add(name, std::make_shared<const BlockPartition>(el,
                                                            block_size,
                                                            lo));
}

std::shared_ptr<const BlockPartition>
GraphRegistry::add(const std::string &name,
                   std::shared_ptr<const BlockPartition> graph)
{
    Entry entry;
    entry.fingerprint = graphFingerprint(name, *graph);
    entry.graph = std::move(graph);
    std::lock_guard<std::mutex> lock(mtx);
    auto &slot = entries[name];
    slot = std::move(entry);
    return slot.graph;
}

std::shared_ptr<const BlockPartition>
GraphRegistry::get(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(name);
    return it == entries.end() ? nullptr : it->second.graph;
}

std::uint64_t
GraphRegistry::fingerprint(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mtx);
    auto it = entries.find(name);
    return it == entries.end() ? 0 : it->second.fingerprint;
}

bool
GraphRegistry::remove(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx);
    return entries.erase(name) > 0;
}

std::vector<GraphRegistry::GraphInfo>
GraphRegistry::list() const
{
    std::lock_guard<std::mutex> lock(mtx);
    std::vector<GraphInfo> out;
    out.reserve(entries.size());
    for (const auto &[name, entry] : entries) {
        GraphInfo info;
        info.name = name;
        info.vertices = entry.graph->numVertices();
        info.edges = entry.graph->numEdges();
        info.blocks = entry.graph->numBlocks();
        info.blockSize = entry.graph->blockSize();
        info.fingerprint = entry.fingerprint;
        info.useCount = entry.graph.use_count();
        out.push_back(std::move(info));
    }
    return out;
}

std::size_t
GraphRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return entries.size();
}

} // namespace graphabcd
