/**
 * @file
 * Command-line driver: run any supported algorithm on an edge-list file
 * or a named synthetic dataset, on the engine of your choice, and print
 * a result summary — the utility a downstream user reaches for first.
 *
 * Examples:
 *   abcd_cli --algo pr --dataset LJ --schedule priority
 *   abcd_cli --algo sssp --graph web.el --source 17 --engine async
 *   abcd_cli --algo cc --dataset WT --engine sim --pes 8
 *   abcd_cli --algo pr --dataset PS --engine accum --schedule obim
 *   abcd_cli --algo pr --graph web.el --dump ranks.txt
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string_view>

#include "algorithms/extras.hh"
#include "algorithms/label_propagation.hh"
#include "algorithms/pagerank.hh"
#include "algorithms/sssp.hh"
#include "core/accum_engine.hh"
#include "core/async_engine.hh"
#include "core/engine.hh"
#include "graph/datasets.hh"
#include "graph/io.hh"
#include "graph/stats.hh"
#include "harp/system.hh"
#include "support/flags.hh"
#include "support/units.hh"

using namespace graphabcd;

namespace {

struct CliOptions
{
    std::string engine;       //!< serial | async | accum | sim
    EngineOptions opt;
    HarpConfig harp;
    std::string dump;         //!< write per-vertex results here
};

/** Write per-vertex results to cli.dump when requested. */
template <typename Value>
void
dumpValues(const BlockPartition &g, const std::vector<Value> &values,
           const CliOptions &cli, const char *value_name)
{
    if (cli.dump.empty())
        return;
    std::ofstream ofs(cli.dump);
    if (!ofs)
        fatal("cannot open '", cli.dump, "'");
    ofs << "# vertex " << value_name << '\n';
    if constexpr (std::is_arithmetic_v<Value>) {
        // Un-permute so the dump is keyed by original vertex ids
        // regardless of --reorder (DESIGN.md §11).  cc/lp labels are
        // vertex ids themselves, so their values translate too.
        std::vector<Value> out =
            g.permutation().valuesToOriginal(values);
        const std::string_view name(value_name);
        if (name == "component" || name == "community") {
            for (Value &x : out) {
                const auto label = static_cast<VertexId>(x);
                if (label < g.numVertices())
                    x = static_cast<Value>(
                        g.permutation().toOriginal(label));
            }
        }
        for (VertexId v = 0; v < g.numVertices(); v++)
            ofs << v << ' ' << out[v] << '\n';
    }
    std::printf("wrote %u values to %s\n", g.numVertices(),
                cli.dump.c_str());
}

/** Run an accumulative-delta program and print the common summary. */
template <typename Program>
int
runAccumAlgorithm(const BlockPartition &g, Program program,
                  const CliOptions &cli, const char *value_name)
{
    std::vector<typename Program::Value> values;
    AccumEngine<Program> engine(g, std::move(program), cli.opt);
    EngineReport report = engine.run(values);
    std::printf("%s in %.2f epochs (wall %s)\n",
                report.converged ? "converged" : "stopped",
                report.epochs,
                formatSeconds(report.seconds).c_str());
    dumpValues(g, values, cli, value_name);
    return 0;
}

/** Run `program` on the chosen engine and print the common summary. */
template <typename Program>
int
runAlgorithm(const BlockPartition &g, Program program,
             const CliOptions &cli, const char *value_name)
{
    std::vector<typename Program::Value> values;
    double epochs = 0.0;
    double seconds = 0.0;
    bool converged = false;

    if (cli.engine == "serial") {
        SerialEngine<Program> engine(g, program, cli.opt);
        EngineReport report = engine.run(values);
        epochs = report.epochs;
        seconds = report.seconds;
        converged = report.converged;
    } else if (cli.engine == "async") {
        if constexpr (std::atomic<
                          typename Program::Value>::is_always_lock_free) {
            AsyncEngine<Program> engine(g, program, cli.opt);
            EngineReport report = engine.run(values);
            epochs = report.epochs;
            seconds = report.seconds;
            converged = report.converged;
        } else {
            fatal("--engine async needs a scalar-valued algorithm; "
                  "use serial or sim");
        }
    } else if (cli.engine == "sim") {
        HarpSystem<Program> sys(g, program, cli.opt, cli.harp);
        SimReport report = sys.run(values);
        epochs = report.epochs;
        seconds = report.seconds;
        converged = report.converged;
        std::printf("simulated: %s, %.0f MTES, PE util %.2f, "
                    "bus util %.2f\n",
                    formatSeconds(report.seconds).c_str(), report.mtes,
                    report.peUtilization, report.busUtilization);
    } else {
        fatal("unknown engine '", cli.engine,
              "' (serial | async | accum | sim)");
    }

    std::printf("%s in %.2f epochs (%s %s)\n",
                converged ? "converged" : "stopped", epochs,
                cli.engine == "sim" ? "simulated" : "wall",
                formatSeconds(seconds).c_str());

    dumpValues(g, values, cli, value_name);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags;
    flags.declare("algo", "pr",
                  "pr | ppr | sssp | bfs | cc | lp | kcore | color");
    flags.declare("graph", "",
                  "edge-list file (.el text, .bin, or packed .abcz)");
    flags.declare("dataset", "", "named stand-in (WT PS LJ TW ...)");
    flags.declareDouble("scale", 1.0, "dataset scale factor");
    flags.declare("engine", "serial", "serial | async | accum | sim");
    flags.declareInt("block-size", 512, "vertices per block");
    flags.declare("layout", "plain",
                  "physical layout: plain | compressed");
    flags.declare("reorder", "none", "vertex order: none | hub");
    flags.declare("schedule", "cyclic",
                  "cyclic | priority | random | obim");
    flags.declareInt("threads", 4, "async engine worker threads");
    flags.declareInt("pes", 16, "sim: FPGA PEs");
    flags.declareBool("hybrid", false, "sim: CPU gather-apply workers");
    flags.declareInt("source", -1,
                     "sssp/bfs/ppr source (-1 = max-degree hub)");
    flags.declareInt("k", 3, "kcore: the k");
    flags.declareDouble("tolerance", 1e-9, "activation threshold");
    flags.declareDouble("max-epochs", 10000, "epoch safety cap");
    flags.declare("dump", "", "write per-vertex results to this file");
    flags.declareBool("stats", false, "print graph statistics and exit");
    flags.declareInt("seed", 42, "dataset generator seed");
    if (!flags.parse(argc, argv))
        return 0;

    // ---------------------------------------------------------- graph
    EdgeList el;
    if (!flags.get("graph").empty()) {
        const std::string &path = flags.get("graph");
        if (path.size() > 5 &&
            path.compare(path.size() - 5, 5, ".abcz") == 0)
            el = loadEdgeListPacked(path);
        else if (path.size() > 4 &&
                 path.compare(path.size() - 4, 4, ".bin") == 0)
            el = loadEdgeListBinary(path);
        else
            el = loadEdgeList(path);
    } else if (!flags.get("dataset").empty()) {
        el = makeDataset(flags.get("dataset"), flags.getDouble("scale"),
                         static_cast<std::uint64_t>(flags.getInt("seed")))
                 .graph;
    } else {
        flags.usage(argv[0]);
        fatal("need --graph FILE or --dataset KEY");
    }

    const std::string algo = flags.get("algo");
    const bool undirected =
        algo == "cc" || algo == "lp" || algo == "kcore" ||
        algo == "color";
    if (undirected)
        el = el.symmetrized();
    std::printf("graph: %u vertices, %llu edges%s\n", el.numVertices(),
                static_cast<unsigned long long>(el.numEdges()),
                undirected ? " (symmetrized)" : "");
    if (flags.getBool("stats")) {
        std::printf("%s\n", computeGraphStats(el).toString().c_str());
        return 0;
    }

    CliOptions cli;
    cli.engine = flags.get("engine");
    cli.dump = flags.get("dump");
    cli.opt.blockSize =
        static_cast<VertexId>(flags.getInt("block-size"));
    cli.opt.tolerance = flags.getDouble("tolerance");
    cli.opt.maxEpochs = flags.getDouble("max-epochs");
    cli.opt.numThreads =
        static_cast<std::uint32_t>(flags.getInt("threads"));
    const std::string sched = flags.get("schedule");
    cli.opt.schedule = sched == "priority" ? Schedule::Priority
        : sched == "random"                ? Schedule::Random
        : sched == "obim"                  ? Schedule::Obim
                                           : Schedule::Cyclic;
    cli.harp.numPes = static_cast<std::uint32_t>(flags.getInt("pes"));
    cli.harp.hybrid = flags.getBool("hybrid");

    LayoutOptions lo;
    if (auto l = parseGraphLayout(flags.get("layout")))
        lo.layout = *l;
    else
        fatal("unknown --layout '", flags.get("layout"),
              "' (plain | compressed)");
    if (auto r = parseVertexReorder(flags.get("reorder")))
        lo.reorder = *r;
    else
        fatal("unknown --reorder '", flags.get("reorder"),
              "' (none | hub)");

    BlockPartition g(el, cli.opt.blockSize, lo);
    // The simulated DMA stream must reflect the built layout's
    // measured topology bytes per edge.
    cli.harp.layoutBytesPerEdge = g.gatherBytesPerEdge();
    if (lo.layout != GraphLayout::Plain ||
        lo.reorder != VertexReorder::None) {
        std::printf("layout: %s reorder=%s (%.2f topology B/edge)\n",
                    to_string(g.layout()), to_string(g.reorder()),
                    g.gatherBytesPerEdge());
    }

    VertexId source;
    if (flags.getInt("source") >= 0) {
        source = static_cast<VertexId>(flags.getInt("source"));
    } else {
        auto deg = el.outDegrees();
        source = static_cast<VertexId>(
            std::max_element(deg.begin(), deg.end()) - deg.begin());
    }
    // Engines run in internal (reordered) ids; --source and the
    // max-degree pick above are original ids (DESIGN.md §11).
    source = g.permutation().toInternal(source);

    if (cli.engine == "accum") {
        if (algo == "pr")
            return runAccumAlgorithm(g, PageRankAccumProgram(), cli,
                                     "rank");
        if (algo == "sssp")
            return runAccumAlgorithm(g, SsspAccumProgram(source), cli,
                                     "distance");
        if (algo == "bfs")
            return runAccumAlgorithm(g, BfsAccumProgram(source), cli,
                                     "depth");
        if (algo == "cc")
            return runAccumAlgorithm(g, CcAccumProgram(), cli,
                                     "component");
        fatal("--engine accum supports pr | sssp | bfs | cc");
    }
    if (algo == "pr")
        return runAlgorithm(g, PageRankProgram(), cli, "rank");
    if (algo == "ppr") {
        return runAlgorithm(g, PersonalizedPageRankProgram(source), cli,
                            "rank");
    }
    if (algo == "sssp")
        return runAlgorithm(g, SsspProgram(source), cli, "distance");
    if (algo == "bfs")
        return runAlgorithm(g, BfsProgram(source), cli, "depth");
    if (algo == "cc")
        return runAlgorithm(g, CcProgram(), cli, "component");
    if (algo == "lp") {
        return runAlgorithm(g, LabelPropagationProgram(), cli,
                            "community");
    }
    if (algo == "kcore") {
        return runAlgorithm(
            g,
            KCoreProgram(static_cast<std::uint32_t>(flags.getInt("k"))),
            cli, "in_core");
    }
    if (algo == "color")
        return runAlgorithm(g, ColoringProgram(), cli, "packed_color");
    fatal("unknown --algo '", algo, "'");
}
