/**
 * @file
 * Tests of the threaded asynchronous engine: the barrierless, lock-free
 * execution must reach the same fixed points as the serial engine and
 * the exact references, under every execution mode and thread count.
 */

#include <gtest/gtest.h>

#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "algorithms/sssp.hh"
#include "core/async_engine.hh"
#include "graph/generators.hh"

namespace graphabcd {
namespace {

struct AsyncCase
{
    std::uint32_t threads;
    ExecMode mode;
};

std::string
caseName(const testing::TestParamInfo<AsyncCase> &info)
{
    return std::string("t") + std::to_string(info.param.threads) + "_" +
           to_string(info.param.mode);
}

class AsyncSweep : public testing::TestWithParam<AsyncCase>
{
  protected:
    EngineOptions
    options() const
    {
        EngineOptions opt;
        opt.blockSize = 32;
        opt.numThreads = GetParam().threads;
        opt.mode = GetParam().mode;
        opt.tolerance = 1e-12;
        return opt;
    }
};

TEST_P(AsyncSweep, PageRankMatchesReference)
{
    Rng rng(51);
    EdgeList el = generateRmat(400, 3200, rng);
    EngineOptions opt = options();
    BlockPartition g(el, opt.blockSize);

    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_P(AsyncSweep, SsspMatchesDijkstra)
{
    Rng rng(52);
    EdgeList el = generateRmat(400, 3200, rng, {.weighted = true});
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);

    AsyncEngine<SsspProgram> engine(g, SsspProgram(0), opt);
    std::vector<double> dist;
    EngineReport report = engine.run(dist);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = dijkstraReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(dist[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_P(AsyncSweep, ConnectedComponentsMatchUnionFind)
{
    Rng rng(53);
    EdgeList el = generateErdosRenyi(300, 250, rng);
    EdgeList sym = el.symmetrized();
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(sym, opt.blockSize);

    AsyncEngine<CcProgram> engine(g, CcProgram(), opt);
    std::vector<double> labels;
    EngineReport report = engine.run(labels);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = ccReference(el);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(labels[v], ref[v]);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndModes, AsyncSweep,
    testing::Values(AsyncCase{1, ExecMode::Async},
                    AsyncCase{2, ExecMode::Async},
                    AsyncCase{4, ExecMode::Async},
                    AsyncCase{2, ExecMode::Barrier},
                    AsyncCase{2, ExecMode::Bsp},
                    AsyncCase{4, ExecMode::Bsp}),
    caseName);

TEST(AsyncEngine, PriorityScheduleWorksThreaded)
{
    Rng rng(54);
    EdgeList el = generateRmat(256, 2048, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 3;
    opt.schedule = Schedule::Priority;
    opt.tolerance = 1e-12;
    BlockPartition g(el, opt.blockSize);

    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);
    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-6);
}

TEST(AsyncEngine, RepeatedRunsAreStable)
{
    // Asynchronous interleavings differ between runs, but the fixed
    // point must not.
    Rng rng(55);
    EdgeList el = generateRmat(200, 1500, rng, {.weighted = true});
    EngineOptions opt;
    opt.blockSize = 8;
    opt.numThreads = 4;
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);
    std::vector<double> ref = dijkstraReference(el, 0);

    for (int run = 0; run < 5; run++) {
        AsyncEngine<SsspProgram> engine(g, SsspProgram(0), opt);
        std::vector<double> dist;
        engine.run(dist);
        for (VertexId v = 0; v < el.numVertices(); v++)
            EXPECT_NEAR(dist[v], ref[v], 1e-6);
    }
}

TEST(AsyncEngine, ReportsWorkCounters)
{
    Rng rng(56);
    EdgeList el = generateRmat(128, 1024, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 2;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_GT(report.blockUpdates, 0u);
    EXPECT_GT(report.edgeTraversals, 0u);
    EXPECT_GT(report.epochs, 0.0);
    EXPECT_GT(report.seconds, 0.0);
}

} // namespace
} // namespace graphabcd
