/**
 * @file
 * Unit tests of the HARP simulator building blocks: the bandwidth
 * resource, the event queue, the tagged reduction unit and the
 * Graphicionado projection.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "harp/bus.hh"
#include "harp/event_queue.hh"
#include "harp/graphicionado.hh"
#include "harp/reduction.hh"
#include "support/random.hh"

namespace graphabcd {
namespace {

TEST(Bus, TransfersSerialise)
{
    Bus bus(100.0);   // 100 B/s for easy arithmetic
    BusGrant a = bus.transfer(0.0, 50);   // 0.0 .. 0.5
    EXPECT_DOUBLE_EQ(a.start, 0.0);
    EXPECT_DOUBLE_EQ(a.end, 0.5);
    BusGrant b = bus.transfer(0.1, 100);  // queued behind a
    EXPECT_DOUBLE_EQ(b.start, 0.5);
    EXPECT_DOUBLE_EQ(b.end, 1.5);
    BusGrant c = bus.transfer(3.0, 100);  // idle gap before c
    EXPECT_DOUBLE_EQ(c.start, 3.0);
    EXPECT_DOUBLE_EQ(c.end, 4.0);
}

TEST(Bus, AccountsBusyTimeAndBytes)
{
    Bus bus(1000.0);
    bus.transfer(0.0, 500);
    bus.transfer(10.0, 500);
    EXPECT_DOUBLE_EQ(bus.busySeconds(), 1.0);
    EXPECT_EQ(bus.transferredBytes(), 1000u);
    EXPECT_NEAR(bus.utilization(20.0), 0.05, 1e-12);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(2.0, [&order] { order.push_back(2); });
    q.schedule(1.0, [&order] { order.push_back(1); });
    q.schedule(3.0, [&order] { order.push_back(3); });
    q.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; i++)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersMayScheduleMore)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] {
        fired++;
        q.schedule(q.now() + 1.0, [&] { fired++; });
    });
    q.runToCompletion();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, PastSchedulingPanics)
{
    EventQueue q;
    q.schedule(5.0, [&q] {
        EXPECT_THROW(q.schedule(1.0, [] {}), PanicError);
    });
    q.runToCompletion();
}

TEST(Reduction, MatchesSequentialSum)
{
    TaggedReductionUnit<double> unit(
        [](const double &a, const double &b) { return a + b; });

    Rng rng(81);
    std::vector<std::pair<std::uint32_t, double>> stream;
    std::unordered_map<std::uint32_t, std::uint32_t> expected;
    std::unordered_map<std::uint32_t, double> truth;
    for (int i = 0; i < 1000; i++) {
        auto tag = static_cast<std::uint32_t>(rng.nextBounded(37));
        double value = rng.nextDouble();
        stream.emplace_back(tag, value);
        expected[tag]++;
        truth[tag] += value;
    }
    // Shuffle: the unit must not care about arrival order.
    std::shuffle(stream.begin(), stream.end(), rng);

    ReductionStats stats;
    auto result = unit.reduce(stream, expected, &stats);
    ASSERT_EQ(result.size(), truth.size());
    for (const auto &[tag, value] : truth)
        EXPECT_NEAR(result.at(tag), value, 1e-9) << "tag " << tag;
}

TEST(Reduction, MinReductionWorks)
{
    TaggedReductionUnit<double> unit(
        [](const double &a, const double &b) { return std::min(a, b); });
    std::vector<std::pair<std::uint32_t, double>> stream{
        {0, 5.0}, {0, 2.0}, {1, 9.0}, {0, 7.0}};
    std::unordered_map<std::uint32_t, std::uint32_t> expected{{0, 3},
                                                              {1, 1}};
    auto result = unit.reduce(stream, expected);
    EXPECT_DOUBLE_EQ(result.at(0), 2.0);
    EXPECT_DOUBLE_EQ(result.at(1), 9.0);
}

TEST(Reduction, ThroughputIsOneOperandPerCycle)
{
    // n operands of one tag need n-1 combines; every combine re-injects
    // one operand, so cycles = (n + n-1) + latency — independent of the
    // combine latency showing up per-operand (the design's point).
    TaggedReductionUnit<double> unit(
        [](const double &a, const double &b) { return a + b; },
        /*latency_cycles=*/16);
    const std::uint32_t n = 64;
    std::vector<std::pair<std::uint32_t, double>> stream;
    for (std::uint32_t i = 0; i < n; i++)
        stream.emplace_back(0, 1.0);
    std::unordered_map<std::uint32_t, std::uint32_t> expected{{0, n}};
    ReductionStats stats;
    auto result = unit.reduce(stream, expected, &stats);
    EXPECT_DOUBLE_EQ(result.at(0), static_cast<double>(n));
    EXPECT_EQ(stats.reductions, n - 1);
    EXPECT_EQ(stats.cycles, (2ull * n - 1) + 16);
}

TEST(Reduction, ScratchpadPeakBoundedByTagCount)
{
    TaggedReductionUnit<double> unit(
        [](const double &a, const double &b) { return a + b; });
    std::vector<std::pair<std::uint32_t, double>> stream;
    std::unordered_map<std::uint32_t, std::uint32_t> expected;
    for (std::uint32_t tag = 0; tag < 10; tag++) {
        stream.emplace_back(tag, 1.0);
        stream.emplace_back(tag, 2.0);
        expected[tag] = 2;
    }
    ReductionStats stats;
    unit.reduce(stream, expected, &stats);
    EXPECT_LE(stats.peakScratchpad, 10u);
    EXPECT_GE(stats.peakScratchpad, 1u);
}

TEST(Graphicionado, BandwidthBoundScaling)
{
    graphmat::GraphMatReport run;
    run.iterations = 10;
    run.edgesProcessed = 10ull * 1000000;
    GraphicionadoConfig narrow;      // 12.8 GB/s (paper projection)
    GraphicionadoConfig wideCfg;
    wideCfg.bandwidth = 68e9;        // original design point
    auto projected = graphicionadoTime(run, 100000, 8, narrow);
    auto original = graphicionadoTime(run, 100000, 8, wideCfg);
    EXPECT_GT(projected.seconds, original.seconds * 2.0);
    EXPECT_GT(projected.mtes, 0.0);
}

TEST(Graphicionado, IterationsPassThrough)
{
    graphmat::GraphMatReport run;
    run.iterations = 28;
    run.edgesProcessed = 28ull * 68990000 / 48;
    auto r = graphicionadoTime(run, 4850000 / 48, 8);
    EXPECT_EQ(r.iterations, 28u);
    EXPECT_GT(r.seconds, 0.0);
}

} // namespace
} // namespace graphabcd
