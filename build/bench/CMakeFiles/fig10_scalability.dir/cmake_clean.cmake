file(REMOVE_RECURSE
  "CMakeFiles/fig10_scalability.dir/fig10_scalability.cc.o"
  "CMakeFiles/fig10_scalability.dir/fig10_scalability.cc.o.d"
  "fig10_scalability"
  "fig10_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
