#include "baselines/graphmat/cpu_model.hh"

#include <algorithm>

namespace graphabcd {

CpuTimeReport
graphmatTime(const graphmat::GraphMatReport &report,
             VertexId num_vertices, std::uint32_t value_bytes,
             const CpuModelConfig &cfg)
{
    const double bw = cfg.effectiveBandwidth();
    // SpMV edge streams (sequential) + per-superstep vertex sweeps
    // (sequential) + the random write of each applied destination.
    // Sparse-frontier (filtered) supersteps pay the locality penalty.
    const double edge_cost = cfg.edgeBytes(value_bytes) *
                             (report.filtered ? cfg.sparseEdgePenalty
                                              : 1.0);
    const double edge_bytes =
        static_cast<double>(report.edgesProcessed) * edge_cost;
    const double vertex_bytes =
        static_cast<double>(report.iterations) * num_vertices *
        cfg.vertexBytes(value_bytes);
    const double random_bytes =
        static_cast<double>(report.vertexUpdates) * value_bytes *
        cfg.randomPenalty;

    CpuTimeReport out;
    out.seconds = (edge_bytes + vertex_bytes + random_bytes) / bw +
                  report.iterations * cfg.barrierSeconds;
    if (out.seconds > 0.0) {
        out.mtes = static_cast<double>(report.edgesProcessed) /
                   out.seconds / 1e6;
    }
    return out;
}

CpuTimeReport
softwareAbcdTime(const EngineReport &report, VertexId num_vertices,
                 std::uint32_t value_bytes, const CpuModelConfig &cfg)
{
    (void)num_vertices;
    const double bw = cfg.effectiveBandwidth();
    // Fused kernel: sequential in-edge slice streams, then random
    // out-edge value writes (the pull-push SCATTER).
    const double edge_bytes =
        static_cast<double>(report.edgeTraversals) *
        cfg.edgeBytes(value_bytes);
    const double scatter_bytes =
        static_cast<double>(report.scatterWrites) * value_bytes *
        cfg.randomPenalty;
    // Inter-thread coordination per block hand-off (queue + activation).
    const double coordination =
        static_cast<double>(report.blockUpdates) * 2e-7;
    // The fused gather-apply-scatter kernel is reduction-bound well
    // below DRAM bandwidth (scalar dependent chains over irregular
    // segments) — the slower of the two bounds governs.
    const double compute_seconds =
        static_cast<double>(report.edgeTraversals) /
        (cfg.kernelEdgesPerSecPerThread * cfg.threads);

    CpuTimeReport out;
    out.seconds = std::max((edge_bytes + scatter_bytes) / bw,
                           compute_seconds) +
                  coordination;
    if (out.seconds > 0.0) {
        out.mtes = static_cast<double>(report.edgeTraversals) /
                   out.seconds / 1e6;
    }
    return out;
}

} // namespace graphabcd
