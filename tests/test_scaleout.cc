/**
 * @file
 * Tests of the distributed-accelerator extension: multiple simulated
 * FPGA devices, each with its own CPU link, fed by the one barrierless
 * scheduler — the scale-out the paper's asynchronous design enables
 * (Sec. I, IV-A3).
 */

#include <gtest/gtest.h>

#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "graph/generators.hh"
#include "harp/system.hh"

namespace graphabcd {
namespace {

SimReport
runPr(const BlockPartition &g, std::uint32_t accels,
      std::vector<double> &x)
{
    EngineOptions opt;
    opt.blockSize = g.blockSize();
    opt.tolerance = 1e-12;
    HarpConfig cfg;
    cfg.numAccelerators = accels;
    HarpSystem<PageRankProgram> sys(g, PageRankProgram(0.85), opt, cfg);
    return sys.run(x);
}

TEST(ScaleOut, ResultsStayCorrectWithMultipleAccelerators)
{
    Rng rng(121);
    EdgeList el = generateRmat(512, 4096, rng);
    BlockPartition g(el, 16);
    std::vector<double> ref = pagerankReference(el, 0.85);
    for (std::uint32_t accels : {1u, 2u, 4u}) {
        std::vector<double> x;
        SimReport report = runPr(g, accels, x);
        EXPECT_TRUE(report.converged) << accels << " accelerators";
        for (VertexId v = 0; v < el.numVertices(); v++)
            EXPECT_NEAR(x[v], ref[v], 1e-6);
    }
}

TEST(ScaleOut, MoreAcceleratorsMeanMoreAggregateBandwidth)
{
    // A bandwidth-bound workload must get faster with a second device
    // (each brings its own 12.8 GB/s link).
    Rng rng(122);
    EdgeList el = generateRmat(16384, 131072, rng);
    BlockPartition g(el, 64);   // 256 blocks: plenty to distribute
    std::vector<double> x;
    double t1 = runPr(g, 1, x).seconds;
    double t2 = runPr(g, 2, x).seconds;
    double t4 = runPr(g, 4, x).seconds;
    EXPECT_LT(t2, t1 * 0.85);
    EXPECT_LT(t4, t2 * 1.02);
}

TEST(ScaleOut, EpochCountStaysBoundedAcrossDevices)
{
    // Distribution must not blow up staleness: the |V|-normalised work
    // should stay within a modest factor of the single-device run.
    Rng rng(123);
    EdgeList el = generateRmat(8192, 65536, rng);
    BlockPartition g(el, 32);
    std::vector<double> x;
    double e1 = runPr(g, 1, x).epochs;
    double e4 = runPr(g, 4, x).epochs;
    EXPECT_LT(e4, e1 * 1.6);
}

TEST(ScaleOut, PeCountAggregatesAcrossDevices)
{
    Rng rng(124);
    EdgeList el = generateRmat(1024, 8192, rng);
    BlockPartition g(el, 32);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.tolerance = 1e-9;
    HarpConfig cfg;
    cfg.numAccelerators = 3;
    cfg.numPes = 4;
    HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt, cfg);
    std::vector<double> x;
    SimReport report = sys.run(x);
    EXPECT_EQ(report.fpgaTasks + report.cpuGatherTasks,
              report.blockUpdates);
    EXPECT_GT(report.peUtilization, 0.0);
    EXPECT_LE(report.peUtilization, 1.0);
}

TEST(Heterogeneous, MixedDevicesAllContribute)
{
    // One full-speed FPGA plus one weak embedded device: the result is
    // still correct and the pair beats the weak device alone.
    Rng rng(125);
    EdgeList el = generateRmat(8192, 65536, rng);
    BlockPartition g(el, 32);

    AcceleratorSpec fpga;   // prototype defaults
    AcceleratorSpec weak;
    weak.numPes = 4;
    weak.clockHz = 100e6;
    weak.busBandwidth = 3.2e9;

    auto run_with = [&](std::vector<AcceleratorSpec> devices,
                        std::vector<double> &x) {
        EngineOptions opt;
        opt.blockSize = 32;
        opt.tolerance = 1e-12;
        HarpConfig cfg;
        cfg.accelerators = std::move(devices);
        HarpSystem<PageRankProgram> sys(g, PageRankProgram(0.85), opt,
                                        cfg);
        return sys.run(x);
    };

    std::vector<double> x_weak, x_both;
    SimReport weak_only = run_with({weak}, x_weak);
    SimReport both = run_with({fpga, weak}, x_both);

    EXPECT_LT(both.seconds, weak_only.seconds);
    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x_both[v], ref[v], 1e-6);
}

TEST(Heterogeneous, ExplicitListOverridesUniformKnobs)
{
    Rng rng(126);
    EdgeList el = generateRmat(512, 4096, rng);
    BlockPartition g(el, 32);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.tolerance = 1e-9;
    HarpConfig cfg;
    cfg.numAccelerators = 7;   // must be ignored...
    AcceleratorSpec one;
    one.numPes = 2;
    cfg.accelerators = {one};  // ...in favour of this single device
    HarpSystem<PageRankProgram> sys(g, PageRankProgram(), opt, cfg);
    std::vector<double> x;
    SimReport report = sys.run(x);
    EXPECT_TRUE(report.converged);
    EXPECT_GT(report.fpgaTasks, 0u);
}

} // namespace
} // namespace graphabcd
