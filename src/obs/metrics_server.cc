#include "obs/metrics_server.hh"

#include <cerrno>
#include <cstring>
#include <sstream>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/convergence.hh"
#include "obs/log.hh"
#include "obs/prometheus.hh"
#include "obs/sampler.hh"

namespace graphabcd {

MetricsServer::~MetricsServer()
{
    stop();
}

bool
MetricsServer::start(std::uint16_t port, std::string *error)
{
    stop();

    auto fail = [&](const char *what) {
        if (error) {
            *error = std::string(what) + ": " + std::strerror(errno);
        }
        if (listenFd_ >= 0) {
            ::close(listenFd_);
            listenFd_ = -1;
        }
        return false;
    };

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return fail("socket");

    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind");
    if (::listen(listenFd_, 8) != 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    stopRequested_.store(false);
    running_.store(true);
    thread_ = std::thread([this] { loop(); });
    GRAPHABCD_LOG_INFO("obs", "metrics server listening",
                       LOGF("port", port_));
    return true;
}

void
MetricsServer::stop()
{
    if (!running_.load() && listenFd_ < 0)
        return;
    stopRequested_.store(true);
    if (thread_.joinable())
        thread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    running_.store(false);
    port_ = 0;
}

bool
MetricsServer::handlePath(const std::string &path, std::string *body,
                          std::string *content_type)
{
    if (path == "/metrics") {
        *body = prometheusText();
        *content_type = "text/plain; version=0.0.4; charset=utf-8";
        return true;
    }
    if (path == "/series") {
        *body = Sampler::global().csv();
        *content_type = "text/csv; charset=utf-8";
        return true;
    }
    if (path == "/convergence") {
        *body = ConvergenceRecorder::global().csv();
        *content_type = "text/csv; charset=utf-8";
        return true;
    }
    if (path == "/convergence.json") {
        *body = ConvergenceRecorder::global().json();
        *content_type = "application/json; charset=utf-8";
        return true;
    }
    return false;
}

namespace {

void
sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off,
                   MSG_NOSIGNAL);
        if (n <= 0)
            return;
        off += static_cast<std::size_t>(n);
    }
}

std::string
httpResponse(int status, const char *reason,
             const std::string &content_type, const std::string &body)
{
    std::ostringstream os;
    os << "HTTP/1.0 " << status << ' ' << reason << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    return os.str();
}

} // namespace

void
MetricsServer::serveClient(int fd)
{
    // Read until the end of the request head (or a sane cap); only the
    // request line matters, bodies are not supported.
    std::string req;
    char buf[2048];
    while (req.find("\r\n\r\n") == std::string::npos &&
           req.size() < 16384) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        req.append(buf, static_cast<std::size_t>(n));
    }

    std::istringstream line(req.substr(0, req.find("\r\n")));
    std::string method, target;
    line >> method >> target;
    // Scrapers may append a query string; route on the path alone.
    const std::string path = target.substr(0, target.find('?'));

    std::string body, type;
    if (method != "GET") {
        sendAll(fd, httpResponse(405, "Method Not Allowed",
                                 "text/plain",
                                 "only GET is supported\n"));
    } else if (handlePath(path, &body, &type)) {
        sendAll(fd, httpResponse(200, "OK", type, body));
    } else {
        sendAll(fd, httpResponse(
                        404, "Not Found", "text/plain",
                        "routes: /metrics /series /convergence "
                        "/convergence.json\n"));
    }
    ::close(fd);
}

void
MetricsServer::loop()
{
    while (!stopRequested_.load()) {
        pollfd pfd{listenFd_, POLLIN, 0};
        // The timeout bounds how long stop() waits for the thread.
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        serveClient(client);
    }
}

} // namespace graphabcd
