/**
 * @file
 * Additional GAS-paradigm algorithms beyond the paper's evaluation set,
 * demonstrating the generality the paper claims for the BCD view
 * (Sec. II-A lists the GAS family): Personalized PageRank, k-core
 * decomposition and greedy graph coloring.
 */

#ifndef GRAPHABCD_ALGORITHMS_EXTRAS_HH
#define GRAPHABCD_ALGORITHMS_EXTRAS_HH

#include <cmath>
#include <cstdint>

#include "algorithms/pagerank.hh"
#include "core/vertex_program.hh"
#include "graph/partition.hh"

namespace graphabcd {

/**
 * Personalized PageRank: teleportation returns to one source vertex
 * instead of the uniform vector, i.e. b = (1-alpha) * e_source in the
 * Eq. (3) objective.  Ranks measure proximity to the source.
 */
struct PersonalizedPageRankProgram : PageRankProgram
{
    VertexId source = 0;

    PersonalizedPageRankProgram(VertexId src, double damping = 0.85)
        : PageRankProgram(damping), source(src)
    {}

    Value
    init(VertexId v, const BlockPartition &) const
    {
        return v == source ? 1.0 : 0.0;
    }

    Value
    apply(VertexId v, const Accum &acc, const Value &,
          const BlockPartition &) const
    {
        const double teleport = v == source ? 1.0 - alpha : 0.0;
        return teleport + alpha * acc;
    }
};

/**
 * k-core membership: iteratively drop vertices with fewer than k
 * *surviving* neighbors; the fixed point marks exactly the k-core.
 * Value is 1.0 (alive) / 0.0 (peeled); the gather counts surviving
 * in-neighbors.  Monotone (vertices only ever die), so it converges
 * under any schedule.  Run on a symmetrized graph.
 */
struct KCoreProgram
{
    using Value = double;   //!< 1 = in the candidate core, 0 = peeled
    using Accum = double;   //!< count of surviving in-neighbors

    std::uint32_t k = 2;

    explicit KCoreProgram(std::uint32_t core_k) : k(core_k) {}

    Value init(VertexId, const BlockPartition &) const { return 1.0; }

    Accum identity() const { return 0.0; }

    Accum
    edgeTerm(const Value &, const Value &edge_value, float) const
    {
        return edge_value;
    }

    Accum combine(Accum a, Accum b) const { return a + b; }

    Value
    apply(VertexId, const Accum &acc, const Value &old,
          const BlockPartition &) const
    {
        // Once peeled, stay peeled (monotonicity).
        if (old == 0.0)
            return 0.0;
        return acc + 0.5 >= static_cast<double>(k) ? 1.0 : 0.0;
    }

    Value
    edgeValue(VertexId, const Value &value, const BlockPartition &) const
    {
        return value;
    }

    double delta(const Value &a, const Value &b) const
    {
        return std::abs(a - b);
    }
};

/**
 * Greedy graph coloring with id-based symmetry breaking (the
 * Jones-Plassmann flavour that terminates under Jacobi/block updates):
 * every vertex takes the smallest color not used by its *smaller-id*
 * neighbors, which converges to the deterministic sequential greedy
 * coloring under any fair schedule — including asynchronous ones.
 *
 * The per-vertex value packs (vertex id, color) so the GATHER stage can
 * compare ids; the accumulator is a 64-bit occupied-color mask, combined
 * with bitwise OR — associative, commutative, reduction-unit friendly.
 * Supports up to 63 colors; run on a symmetrized graph.
 */
struct ColoringProgram
{
    using Value = double;          //!< packs (id, color); see encode()
    using Accum = std::uint64_t;   //!< occupied-color bitmask

    /** Pack a vertex id and its color into one exact double. */
    static Value
    encode(VertexId id, std::uint32_t color)
    {
        // color * 2^32 + id < 2^38: exactly representable in a double.
        return static_cast<double>(color) * 4294967296.0 +
               static_cast<double>(id);
    }

    /** @return the color stored in a packed value. */
    static std::uint32_t
    colorOf(const Value &value)
    {
        return static_cast<std::uint32_t>(value / 4294967296.0);
    }

    /** @return the vertex id stored in a packed value. */
    static VertexId
    idOf(const Value &value)
    {
        return static_cast<VertexId>(
            value - static_cast<double>(colorOf(value)) * 4294967296.0);
    }

    Value
    init(VertexId v, const BlockPartition &) const
    {
        return encode(v, 0);
    }

    Accum identity() const { return 0; }

    Accum
    edgeTerm(const Value &dst_old, const Value &edge_value, float) const
    {
        // Only smaller-id neighbors constrain this vertex.
        if (idOf(edge_value) >= idOf(dst_old))
            return 0;
        std::uint32_t color = colorOf(edge_value);
        return color < 63 ? (1ULL << color) : 0;
    }

    Accum combine(Accum a, Accum b) const { return a | b; }

    Value
    apply(VertexId v, const Accum &acc, const Value &,
          const BlockPartition &) const
    {
        for (std::uint32_t c = 0; c < 63; c++) {
            if (!(acc & (1ULL << c)))
                return encode(v, c);
        }
        return encode(v, 63);   // overflow bucket (degeneracy > 63)
    }

    Value
    edgeValue(VertexId, const Value &value, const BlockPartition &) const
    {
        return value;
    }

    double delta(const Value &a, const Value &b) const
    {
        return std::abs(a - b);
    }
};

/**
 * @return number of edges whose endpoints share a color (0 for a
 * proper coloring); checker for ColoringProgram results.
 */
std::uint64_t coloringConflicts(const BlockPartition &g,
                                const std::vector<double> &colors);

/** @return number of vertices marked alive (KCoreProgram results). */
std::uint64_t kcoreSize(const std::vector<double> &alive);

/**
 * Exact k-core reference via repeated peeling on degree counts.
 * @return 1.0/0.0 per vertex, matching KCoreProgram's fixed point.
 */
std::vector<double> kcoreReference(const EdgeList &sym, std::uint32_t k);

} // namespace graphabcd

#endif // GRAPHABCD_ALGORITHMS_EXTRAS_HH
