#include "support/flags.hh"

#include <cstdio>
#include <cstdlib>

#include "support/logging.hh"

namespace graphabcd {

void
Flags::declare(const std::string &name, const std::string &default_value,
               const std::string &help)
{
    entries[name] = Entry{Kind::String, default_value, help};
    order.push_back(name);
}

void
Flags::declareInt(const std::string &name, std::int64_t default_value,
                  const std::string &help)
{
    entries[name] = Entry{Kind::Int, std::to_string(default_value), help};
    order.push_back(name);
}

void
Flags::declareDouble(const std::string &name, double default_value,
                     const std::string &help)
{
    entries[name] = Entry{Kind::Double, std::to_string(default_value), help};
    order.push_back(name);
}

void
Flags::declareBool(const std::string &name, bool default_value,
                   const std::string &help)
{
    entries[name] =
        Entry{Kind::Bool, default_value ? "true" : "false", help};
    order.push_back(name);
}

bool
Flags::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return false;
        }
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '", arg, "'");
        arg = arg.substr(2);

        std::string name, value;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            auto it = entries.find(name);
            if (it != entries.end() && it->second.kind == Kind::Bool) {
                value = "true";
            } else if (i + 1 < argc) {
                value = argv[++i];
            } else {
                fatal("flag --", name, " needs a value");
            }
        }

        auto it = entries.find(name);
        if (it == entries.end())
            fatal("unknown flag --", name);
        it->second.value = value;
    }
    return true;
}

const Flags::Entry &
Flags::lookup(const std::string &name, Kind kind) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        fatal("flag --", name, " was never declared");
    if (it->second.kind != kind)
        fatal("flag --", name, " accessed with the wrong type");
    return it->second;
}

const std::string &
Flags::get(const std::string &name) const
{
    return lookup(name, Kind::String).value;
}

std::int64_t
Flags::getInt(const std::string &name) const
{
    return std::strtoll(lookup(name, Kind::Int).value.c_str(), nullptr, 10);
}

double
Flags::getDouble(const std::string &name) const
{
    return std::strtod(lookup(name, Kind::Double).value.c_str(), nullptr);
}

bool
Flags::getBool(const std::string &name) const
{
    const std::string &v = lookup(name, Kind::Bool).value;
    return v == "true" || v == "1" || v == "yes" || v == "on";
}

void
Flags::usage(const std::string &program) const
{
    // Help is requested output, not diagnostics: it goes to stdout so
    // `tool --help | less` works; diagnostics ride the structured
    // logger (obs/log.hh) on stderr.
    std::printf("usage: %s [flags]\n", program.c_str());
    for (const auto &name : order) {
        const Entry &entry = entries.at(name);
        std::printf("  --%-24s %s (default: %s)\n", name.c_str(),
                    entry.help.c_str(), entry.value.c_str());
    }
}

} // namespace graphabcd
