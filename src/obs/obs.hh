/**
 * @file
 * obs:: — the facade instrumentation sites use.
 *
 * With GRAPHABCD_OBS_ENABLED=1 (the default, and the CMake option
 * GRAPHABCD_OBS), obs::counter/gauge/histogram resolve against the
 * process-wide MetricsRegistry and obs::Span records into the global
 * TraceRecorder.  With GRAPHABCD_OBS_ENABLED=0 every facade type is an
 * empty inline no-op, so instrumented code compiles to exactly the
 * uninstrumented hot loop — no clock reads, no atomics, no branches —
 * which is how bench/ numbers stay comparable across the flag.
 *
 * Call-site rules:
 *  - resolve metrics once per run (registration takes a mutex), record
 *    per block — never per edge;
 *  - wrap timed regions in obs::ScopedLatency / obs::Span so the
 *    disabled build also skips the clock reads;
 *  - use `if constexpr (obs::kEnabled)` around set-up work (e.g.
 *    stamping) whose only consumer is a metric.
 */

#ifndef GRAPHABCD_OBS_OBS_HH
#define GRAPHABCD_OBS_OBS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#ifndef GRAPHABCD_OBS_ENABLED
#define GRAPHABCD_OBS_ENABLED 1
#endif

// Self-gated headers (they carry their own OFF stubs): the causal span
// context and the stall watchdog surface exist in both build modes.
#include "obs/span.hh"
#include "obs/watchdog.hh"

#if GRAPHABCD_OBS_ENABLED
#include "obs/convergence.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/prometheus.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "support/timer.hh"
#endif

namespace graphabcd {
namespace obs {

#if GRAPHABCD_OBS_ENABLED

inline constexpr bool kEnabled = true;

using Counter = ::graphabcd::Counter;
using Gauge = ::graphabcd::Gauge;
using Histogram = ::graphabcd::Histogram;

inline Counter &
counter(const char *name)
{
    return MetricsRegistry::global().counter(name);
}

inline Gauge &
gauge(const char *name)
{
    return MetricsRegistry::global().gauge(name);
}

inline Histogram &
histogram(const char *name, std::vector<double> upper_bounds)
{
    return MetricsRegistry::global().histogram(name,
                                               std::move(upper_bounds));
}

/**
 * Causal span against the global TraceRecorder: child of the thread's
 * ambient context, exported with job/span/parent args (obs/span.hh).
 */
using Span = CausalSpan;

inline void
instant(const char *name)
{
    TraceRecorder::global().instant(name);
}

/** Instant event attributed to a specific span context. */
inline void
instantSpan(const char *name, const SpanContext &ctx)
{
    TraceRecorder::global().instant(name, ctx.job, ctx.span, ctx.parent);
}

/** Record a finished span with an explicit context and timestamps —
 *  for spans whose lifetime does not fit a C++ scope (queue wait,
 *  whole-job envelope). */
inline void
completeSpan(const char *name, double start_us, double dur_us,
             const SpanContext &ctx)
{
    TraceRecorder::global().complete(name, start_us, dur_us, ctx.job,
                                     ctx.span, ctx.parent);
}

/** @return whether the global recorder is currently recording. */
inline bool
tracingEnabled()
{
    return TraceRecorder::global().enabled();
}

/** @return the recorder's clock (manual span timing). */
inline double
traceNowMicros()
{
    return TraceRecorder::nowMicros();
}

/** Records elapsed microseconds into a histogram on scope exit. */
class ScopedLatency
{
  public:
    explicit ScopedLatency(Histogram &hist) : hist_(hist) {}
    ~ScopedLatency() { hist_.record(timer_.micros()); }

    ScopedLatency(const ScopedLatency &) = delete;
    ScopedLatency &operator=(const ScopedLatency &) = delete;

  private:
    Histogram &hist_;
    Timer timer_;
};

/** @return the whole registry rendered as text (STATS verb). */
inline std::string
dumpMetrics()
{
    return MetricsRegistry::global().dump();
}

/** Turn global trace recording on or off. */
inline void
setTracingEnabled(bool on)
{
    TraceRecorder::global().setEnabled(on);
}

/** @return buffered trace events across all threads. */
inline std::size_t
traceEventCount()
{
    return TraceRecorder::global().eventCount();
}

/** Export the global trace as Chrome trace_event JSON. */
inline bool
writeTrace(const std::string &path)
{
    return TraceRecorder::global().writeChromeTrace(path);
}

/** Record a span on a virtual trace track (simulated timelines). */
inline void
completeOnTrack(std::uint32_t track, const char *name, double start_us,
                double dur_us)
{
    TraceRecorder::global().completeOnTrack(track, name, start_us,
                                            dur_us);
}

using ConvergencePoint = ::graphabcd::ConvergencePoint;
using ConvergenceSeries = ::graphabcd::ConvergenceSeries;

/** Open a new series in the process-wide convergence recorder. */
inline std::shared_ptr<ConvergenceSeries>
beginConvergence(std::string label)
{
    return ConvergenceRecorder::global().begin(std::move(label));
}

/** One series as CSV (header row included). */
inline std::string
convergenceCsv(const ConvergenceSeries &series)
{
    return ConvergenceRecorder::csv(series);
}

/** Every retained series as CSV / JSON. */
inline std::string
convergenceCsv()
{
    return ConvergenceRecorder::global().csv();
}

inline std::string
convergenceJson()
{
    return ConvergenceRecorder::global().json();
}

/** The registry as Prometheus text exposition (METRICS verb). */
inline std::string
prometheusText()
{
    return ::graphabcd::prometheusText();
}

/** Start/stop the process-wide periodic sampler. */
inline void
startSampler(double interval_seconds)
{
    Sampler::global().start(interval_seconds);
}

inline void
stopSampler()
{
    Sampler::global().stop();
}

/** Sampler time series as CSV (/series endpoint). */
inline std::string
samplerCsv()
{
    return Sampler::global().csv();
}

/** Arm the flight recorder: default dump path + log tap + fatal hook. */
inline void
flightArm(std::string path)
{
    FlightRecorder::global().arm(std::move(path));
}

/** Install fatal-signal handlers that dump the armed flight recorder. */
inline void
flightArmSignals()
{
    FlightRecorder::global().armSignals();
}

/** Remove the flight recorder's tap/hook and forget the path. */
inline void
flightDisarm()
{
    FlightRecorder::global().disarm();
}

/** Dump the black box to an explicit path (works without arming). */
inline bool
flightDump(const std::string &path, const std::string &reason)
{
    return FlightRecorder::global().dump(path, reason);
}

/** Append a free-form note to the flight recorder's window. */
inline void
flightNote(const char *component, std::string text)
{
    FlightRecorder::global().note(component, std::move(text));
}

/** Register / remove a named JSON snapshot provider (see flight.hh). */
inline std::uint64_t
flightAddProvider(std::string name, std::function<std::string()> fn)
{
    return FlightRecorder::global().addProvider(std::move(name),
                                                std::move(fn));
}

inline void
flightRemoveProvider(std::uint64_t token)
{
    FlightRecorder::global().removeProvider(token);
}

#else // !GRAPHABCD_OBS_ENABLED

inline constexpr bool kEnabled = false;

// No-op doubles: same call surface, empty bodies, shared static
// instances.  The optimiser removes every call site.
struct Counter
{
    void add(std::uint64_t = 1) const {}
    std::uint64_t value() const { return 0; }
};

struct Gauge
{
    void set(double) const {}
    double value() const { return 0.0; }
};

struct Histogram
{
    void record(double) const {}
    void recordExemplar(double, std::uint64_t, std::uint64_t) const {}
};

inline Counter &
counter(const char *)
{
    static Counter c;
    return c;
}

inline Gauge &
gauge(const char *)
{
    static Gauge g;
    return g;
}

inline Histogram &
histogram(const char *, std::vector<double>)
{
    static Histogram h;
    return h;
}

using Span = CausalSpan;   // the span.hh no-op stub

inline void
instant(const char *)
{
}

inline void
instantSpan(const char *, const SpanContext &)
{
}

inline void
completeSpan(const char *, double, double, const SpanContext &)
{
}

inline constexpr bool
tracingEnabled()
{
    return false;
}

inline double
traceNowMicros()
{
    return 0.0;
}

struct ScopedLatency
{
    explicit ScopedLatency(Histogram &) {}
};

inline std::string
dumpMetrics()
{
    return {};
}

inline void
setTracingEnabled(bool)
{
}

inline std::size_t
traceEventCount()
{
    return 0;
}

inline bool
writeTrace(const std::string &)
{
    return false;
}

inline void
completeOnTrack(std::uint32_t, const char *, double, double)
{
}

/** Same field layout as the enabled ConvergencePoint, so code that
 *  builds one inside `if constexpr (obs::kEnabled)`-free sections
 *  still compiles (the values go nowhere). */
struct ConvergencePoint
{
    double epochs = 0.0;
    double residual = 0.0;
    std::uint64_t activeVertices = 0;
    std::uint64_t vertexUpdates = 0;
    std::uint64_t edgeTraversals = 0;
    double wallSeconds = 0.0;
    double simSeconds = 0.0;
};

struct ConvergenceSeries
{
    void record(const ConvergencePoint &) const {}
    void recordFinal(const ConvergencePoint &) const {}
    std::size_t size() const { return 0; }
    ConvergencePoint back() const { return {}; }
    std::string label() const { return {}; }
};

/** Always null when observability is compiled out. */
inline std::shared_ptr<ConvergenceSeries>
beginConvergence(std::string)
{
    return nullptr;
}

inline std::string
convergenceCsv(const ConvergenceSeries &)
{
    return {};
}

inline std::string
convergenceCsv()
{
    return {};
}

inline std::string
convergenceJson()
{
    return {};
}

inline std::string
prometheusText()
{
    return {};
}

inline void
startSampler(double)
{
}

inline void
stopSampler()
{
}

inline std::string
samplerCsv()
{
    return {};
}

inline void
flightArm(std::string)
{
}

inline void
flightArmSignals()
{
}

inline void
flightDisarm()
{
}

inline bool
flightDump(const std::string &, const std::string &)
{
    return false;
}

inline void
flightNote(const char *, std::string)
{
}

inline std::uint64_t
flightAddProvider(std::string, std::function<std::string()>)
{
    return 0;
}

inline void
flightRemoveProvider(std::uint64_t)
{
}

#endif // GRAPHABCD_OBS_ENABLED

/**
 * Make an externally supplied string (a tenant name) safe to embed in
 * a metric key: anything outside [A-Za-z0-9_.:-] becomes '_', the
 * result is truncated to 64 chars and never empty.  Without this, a
 * tenant named `evil"\n` would corrupt the Prometheus exposition the
 * key is later rendered into (prometheusName() re-sanitises for the
 * exposition charset, but spaces/quotes/newlines must die here so the
 * registry key itself — and the plain dump() output — stays one
 * token).  Distinct raw names may collide after sanitisation; QoS
 * accounting keys on the raw name, only the metrics alias.
 */
inline std::string
sanitizeMetricComponent(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == '-' || c == '.' || c == ':';
        out.push_back(ok ? c : '_');
    }
    if (out.empty())
        out = "_";
    if (out.size() > 64)
        out.resize(64);
    return out;
}

/** Shared bucket layouts, so dashboards can compare like with like. */
inline std::vector<double>
latencyBucketsUs()
{
    return {1,    2,    5,     10,    20,    50,    100,   200,
            500,  1000, 2000,  5000,  10000, 20000, 50000, 100000,
            200000, 500000, 1000000};
}

inline std::vector<double>
fanoutBuckets()
{
    return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096};
}

inline std::vector<double>
stalenessBuckets()
{
    return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256};
}

inline std::vector<double>
fractionBuckets()
{
    return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

inline std::vector<double>
ringDepthBuckets()
{
    return {0, 1, 2, 4, 8, 16, 64, 256, 1024, 4096, 16384, 65536};
}

/** Log-spaced |delta| magnitudes (residual-fold histograms). */
inline std::vector<double>
magnitudeBuckets()
{
    return {1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1.0, 1e2, 1e4, 1e6};
}

/** OBIM level indices (bucket-residency histograms, 0 = hottest). */
inline std::vector<double>
obimLevelBuckets()
{
    return {0, 1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 63};
}

} // namespace obs
} // namespace graphabcd

#endif // GRAPHABCD_OBS_OBS_HH
