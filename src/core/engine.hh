/**
 * @file
 * Serial BCD engine — the algorithmic reference for every execution mode.
 *
 * One engine covers the paper's whole design spectrum (Sec. III-B/C):
 *
 *  - block size n with Async/Barrier mode => block Gauss-Seidel: each
 *    block's SCATTER commits before the next block is picked (serially,
 *    Async and Barrier are identical — they differ only in *timing*,
 *    which the HARP simulator models);
 *  - mode Bsp => Jacobi: every active block is processed against a
 *    snapshot of the edge values and all commits land at the end of the
 *    superstep, which is exactly block size |V| in convergence terms;
 *  - schedule Cyclic / Priority / Random picks the block selection rule.
 *
 * This engine produces the convergence-rate results (Fig. 4, Table III,
 * Fig. 5); the timing results come from the HARP simulator and the
 * threaded engine, both of which reuse the same state transitions.
 */

#ifndef GRAPHABCD_CORE_ENGINE_HH
#define GRAPHABCD_CORE_ENGINE_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>
#include <vector>

#include "core/options.hh"
#include "core/scheduler.hh"
#include "core/state.hh"
#include "core/vertex_program.hh"
#include "graph/partition.hh"
#include "obs/obs.hh"
#include "support/timer.hh"

namespace graphabcd {

/**
 * Update budget in vertex updates, shared by the threaded engines.
 * maxEpochs * |V| is computed in double and can exceed the uint64
 * range, where the bare cast is UB; clamp to UINT64_MAX (and to 0 for
 * non-positive budgets).
 */
inline std::uint64_t
updateBudget(double max_epochs, double n)
{
    constexpr std::uint64_t kMax =
        std::numeric_limits<std::uint64_t>::max();
    const double budget = max_epochs * n;
    if (!(budget > 0.0))
        return 0;
    if (budget >= static_cast<double>(kMax))
        return kMax;
    return static_cast<std::uint64_t>(budget);
}

/** One sample of a convergence trace. */
struct TracePoint
{
    double epochs = 0.0;     //!< |V|-normalised vertex updates so far
    double blockDelta = 0.0; //!< L1 delta of the most recent update
};

/** Outcome and work accounting of an engine run. */
struct EngineReport
{
    double epochs = 0.0;          //!< vertexUpdates / |V|
    std::uint64_t blockUpdates = 0;
    std::uint64_t vertexUpdates = 0;
    std::uint64_t edgeTraversals = 0;
    std::uint64_t scatterWrites = 0;
    bool converged = false;       //!< quiescent before maxEpochs
    bool stopped = false;         //!< ended early by EngineOptions::stop
    double seconds = 0.0;         //!< host wall-clock (monotonic) of the run
    /**
     * L1 value delta accumulated over the last convergence sample
     * window (roughly one epoch).  0 at quiescence, and always 0 under
     * GRAPHABCD_OBS=OFF — residual accounting rides the observability
     * hooks so the uninstrumented hot loop stays byte-comparable.
     */
    double residual = 0.0;
    std::vector<TracePoint> trace;
};

/**
 * Single-threaded BCD engine over a partitioned graph.
 */
template <VertexProgram Program>
class SerialEngine
{
  public:
    using Value = typename Program::Value;

    /**
     * Observer called at every trace interval; receives the epoch count
     * and the current vertex values (e.g. to evaluate RMSE for Fig. 5).
     */
    using TraceFn =
        std::function<void(double epochs, const std::vector<Value> &)>;

    /**
     * Optional stopping rule, checked at every trace interval: return
     * true to end the run (converged).  This is how the paper's
     * objective-discrepancy convergence criterion (Sec. II-B) is
     * expressed — e.g. stop once the Eq. (3) residual or the CF RMSE
     * falls below a threshold.  Quiescence of the active list remains
     * the default criterion when no StopFn is given.
     */
    using StopFn =
        std::function<bool(double epochs, const std::vector<Value> &)>;

    /**
     * @param g partition whose block size should equal opt.blockSize
     *        (the engine trusts the partition).
     * @param p the vertex program (copied).
     * @param opt run options.
     */
    SerialEngine(const BlockPartition &g, Program p, EngineOptions opt)
        : graph(g), program(std::move(p)), options(opt)
    {
    }

    /**
     * Run to quiescence (or maxEpochs) mutating `state`.
     * @param trace_fn optional observer, invoked every
     *        options.traceInterval epochs when that is > 0.
     */
    EngineReport
    run(BcdState<Program> &state, const TraceFn &trace_fn = nullptr,
        const StopFn &stop_fn = nullptr)
    {
        if ((stop_fn || options.convergence) &&
            options.traceInterval <= 0.0)
            options.traceInterval = 1.0;
        return options.mode == ExecMode::Bsp
            ? runJacobi(state, trace_fn, stop_fn)
            : runGaussSeidel(state, trace_fn, stop_fn);
    }

    /** Convenience: fresh state, run, return (report, values). */
    EngineReport
    run(std::vector<Value> &out_values, const TraceFn &trace_fn = nullptr,
        const StopFn &stop_fn = nullptr)
    {
        BcdState<Program> state(graph, program);
        if constexpr (std::is_same_v<Value, double>) {
            if (options.warmStart &&
                options.warmStart->size() == graph.numVertices())
                state.setValues(graph, program, *options.warmStart);
        }
        EngineReport report = run(state, trace_fn, stop_fn);
        out_values = state.values();
        return report;
    }

  private:
    /** Publish live counters for serve-layer status snapshots. */
    void
    publishProgress(const EngineReport &report) const
    {
        if (options.progress) {
            options.progress->publish(report.vertexUpdates,
                                      report.blockUpdates,
                                      report.edgeTraversals,
                                      report.scatterWrites);
        }
    }
    /** Initial activation: every block at the same large priority. */
    void
    seedScheduler(BlockScheduler &sched) const
    {
        for (BlockId b = 0; b < graph.numBlocks(); b++)
            sched.activate(b, initialActivationPriority());
    }

    /**
     * Residual accumulator for one convergence sample window.  Only
     * mutated inside `if constexpr (obs::kEnabled)` sections, so the
     * OFF build's loop body is unchanged.
     */
    struct ConvWindow
    {
        double l1 = 0.0;            //!< sum of block l1Delta
        std::uint64_t active = 0;   //!< vertices moved > tol
    };

    /** Publish one sample into options.convergence and reset `win`. */
    void
    sampleConvergence(EngineReport &report, const Timer &timer,
                      ConvWindow &win, bool final)
    {
        if constexpr (obs::kEnabled) {
            report.residual = win.l1;
            if (options.convergence) {
                obs::ConvergencePoint p;
                p.epochs = report.epochs;
                p.residual = win.l1;
                p.activeVertices = win.active;
                p.vertexUpdates = report.vertexUpdates;
                p.edgeTraversals = report.edgeTraversals;
                p.wallSeconds = timer.seconds();
                if (final)
                    options.convergence->recordFinal(p);
                else
                    options.convergence->record(p);
            }
            win = ConvWindow{};
        }
    }

    /** @return true when the StopFn asks to end the run. */
    bool
    maybeTrace(EngineReport &report, const BcdState<Program> &state,
               const TraceFn &trace_fn, const StopFn &stop_fn,
               double &next_trace, double block_delta,
               const Timer &timer, ConvWindow &win)
    {
        if (options.traceInterval <= 0.0)
            return false;
        if (report.epochs + 1e-12 < next_trace)
            return false;
        next_trace += options.traceInterval;
        report.trace.push_back(TracePoint{report.epochs, block_delta});
        sampleConvergence(report, timer, win, false);
        if (trace_fn)
            trace_fn(report.epochs, state.values());
        return stop_fn && stop_fn(report.epochs, state.values());
    }

    EngineReport
    runGaussSeidel(BcdState<Program> &state, const TraceFn &trace_fn,
                   const StopFn &stop_fn)
    {
        Timer timer;
        // Root span of this engine run; under the serve layer it nests
        // into the submitting job's causal tree.
        obs::Span run_span("engine.serial.run");
        EngineReport report;
        const double n = std::max<double>(graph.numVertices(), 1.0);
        auto sched = makeScheduler(options.schedule, graph.numBlocks(),
                                   options.seed);
        seedScheduler(*sched);

        // Resolve metrics once per run; recording is per block.
        obs::Histogram &gasHist = obs::histogram(
            "engine.serial.block_gas_us", obs::latencyBucketsUs());
        obs::Histogram &fanoutHist = obs::histogram(
            "engine.serial.scatter_fanout", obs::fanoutBuckets());

        double next_trace = options.traceInterval;
        ConvWindow win;
        BlockUpdate<Value> update;
        while (auto b = sched->next()) {
            std::uint64_t block_scatter = 0;
            {
                obs::ScopedLatency lat(gasHist);
                update = state.processBlock(graph, program, *b,
                                            options.tolerance);
                block_scatter = state.commitBlock(
                    graph, program, update, options.tolerance,
                    [&sched](BlockId dst, double delta) {
                        sched->activate(dst, delta);
                    });
            }
            fanoutHist.record(static_cast<double>(block_scatter));
            report.scatterWrites += block_scatter;
            report.blockUpdates++;
            report.vertexUpdates += update.newValues.size();
            report.edgeTraversals += graph.blockEdgeCount(*b);
            report.epochs = static_cast<double>(report.vertexUpdates) / n;
            if constexpr (obs::kEnabled) {
                win.l1 += update.l1Delta;
                win.active += update.changed;
            }
            publishProgress(report);
            if (options.stop.stopRequested()) {
                report.stopped = true;
                break;
            }
            if (maybeTrace(report, state, trace_fn, stop_fn, next_trace,
                           update.l1Delta, timer, win)) {
                report.converged = true;
                report.seconds = timer.seconds();
                return report;
            }
            if (report.epochs >= options.maxEpochs)
                break;
        }
        sampleConvergence(report, timer, win, true);
        report.converged = sched->empty();
        report.seconds = timer.seconds();
        return report;
    }

    EngineReport
    runJacobi(BcdState<Program> &state, const TraceFn &trace_fn,
              const StopFn &stop_fn)
    {
        Timer timer;
        obs::Span run_span("engine.serial.run");
        EngineReport report;
        const double n = std::max<double>(graph.numVertices(), 1.0);
        auto sched = makeScheduler(options.schedule, graph.numBlocks(),
                                   options.seed);
        seedScheduler(*sched);

        double next_trace = options.traceInterval;
        ConvWindow win;
        std::vector<BlockId> wave;
        std::vector<BlockUpdate<Value>> updates;
        while (!sched->empty()) {
            // Drain the active set: this superstep's work list.
            wave.clear();
            while (auto b = sched->next())
                wave.push_back(*b);

            // GATHER-APPLY the whole wave against a frozen snapshot.
            updates.clear();
            updates.reserve(wave.size());
            for (BlockId b : wave) {
                updates.push_back(state.processBlock(graph, program, b,
                                                     options.tolerance));
            }

            // Global barrier: commit everything, then activate.
            double wave_delta = 0.0;
            for (const auto &update : updates) {
                report.scatterWrites += state.commitBlock(
                    graph, program, update, options.tolerance,
                    [&sched](BlockId dst, double delta) {
                        sched->activate(dst, delta);
                    });
                report.blockUpdates++;
                report.vertexUpdates += update.newValues.size();
                report.edgeTraversals += graph.blockEdgeCount(update.block);
                wave_delta += update.l1Delta;
                if constexpr (obs::kEnabled)
                    win.active += update.changed;
            }
            report.epochs = static_cast<double>(report.vertexUpdates) / n;
            if constexpr (obs::kEnabled)
                win.l1 += wave_delta;
            publishProgress(report);
            if (options.stop.stopRequested()) {
                report.stopped = true;
                break;
            }
            if (maybeTrace(report, state, trace_fn, stop_fn, next_trace,
                           wave_delta, timer, win)) {
                report.converged = true;
                report.seconds = timer.seconds();
                return report;
            }
            if (report.epochs >= options.maxEpochs)
                break;
        }
        sampleConvergence(report, timer, win, true);
        report.converged = sched->empty();
        report.seconds = timer.seconds();
        return report;
    }

    const BlockPartition &graph;
    Program program;
    EngineOptions options;
};

} // namespace graphabcd

#endif // GRAPHABCD_CORE_ENGINE_HH
