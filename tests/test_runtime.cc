/**
 * @file
 * Tests of the runtime substrate: task queue, SPSC ring, thread pool,
 * spin barrier.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/spsc_ring.hh"
#include "runtime/task_queue.hh"
#include "runtime/thread_pool.hh"

namespace graphabcd {
namespace {

TEST(TaskQueue, FifoOrderSingleThread)
{
    TaskQueue<int> q;
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.size(), 0u);
}

TEST(TaskQueue, TryOpsrespectCapacity)
{
    TaskQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));   // full
    EXPECT_EQ(q.tryPop(), 1);
    EXPECT_TRUE(q.tryPush(3));
}

TEST(TaskQueue, CloseDrainsThenEnds)
{
    TaskQueue<int> q;
    q.push(7);
    q.close();
    EXPECT_FALSE(q.push(8));       // rejected after close
    EXPECT_EQ(q.pop(), 7);         // drain
    EXPECT_EQ(q.pop(), std::nullopt);
    EXPECT_TRUE(q.isClosed());
}

TEST(TaskQueue, TryPopReportsEmptyVsDrained)
{
    TaskQueue<int> q;
    int out = 0;
    EXPECT_EQ(q.tryPop(out), PopStatus::Empty);   // open: retry later
    q.push(1);
    EXPECT_EQ(q.tryPop(out), PopStatus::Ok);
    EXPECT_EQ(out, 1);
    q.push(2);
    q.close();
    EXPECT_EQ(q.tryPop(out), PopStatus::Ok);      // backlog drains
    EXPECT_EQ(out, 2);
    EXPECT_EQ(q.tryPop(out), PopStatus::Drained); // terminal
    EXPECT_TRUE(q.isDrained());
}

TEST(TaskQueue, NonBlockingConsumerTerminatesAfterClose)
{
    // Regression: with only the optional-returning tryPop a polling
    // consumer cannot tell "empty for now" from "closed and drained"
    // and spins forever after close().
    TaskQueue<int> q(8);
    std::atomic<int> consumed{0};
    std::thread consumer([&] {
        int item;
        for (;;) {
            switch (q.tryPop(item)) {
              case PopStatus::Ok:
                consumed.fetch_add(1, std::memory_order_relaxed);
                break;
              case PopStatus::Empty:
                std::this_thread::yield();
                break;
              case PopStatus::Drained:
                return;
            }
        }
    });
    for (int i = 0; i < 100; i++)
        q.push(i);
    q.close();
    consumer.join();   // hangs forever without the tri-state
    EXPECT_EQ(consumed.load(), 100);
}

TEST(TaskQueue, MpmcConservesItems)
{
    TaskQueue<int> q(64);
    constexpr int producers = 3, consumers = 3, per_producer = 2000;
    std::atomic<long long> sum{0};
    std::atomic<int> popped{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < producers; p++) {
        threads.emplace_back([&q, p] {
            for (int i = 0; i < per_producer; i++)
                q.push(p * per_producer + i);
        });
    }
    for (int c = 0; c < consumers; c++) {
        threads.emplace_back([&] {
            while (auto v = q.pop()) {
                sum += *v;
                popped++;
            }
        });
    }
    for (int p = 0; p < producers; p++)
        threads[p].join();
    q.close();
    for (int c = 0; c < consumers; c++)
        threads[producers + c].join();

    const long long n = producers * per_producer;
    EXPECT_EQ(popped.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(SpscRing, FifoAndCapacity)
{
    SpscRing<int> ring(3);
    EXPECT_TRUE(ring.tryPush(1));
    EXPECT_TRUE(ring.tryPush(2));
    EXPECT_TRUE(ring.tryPush(3));
    EXPECT_FALSE(ring.tryPush(4));   // full
    EXPECT_EQ(ring.tryPop(), 1);
    EXPECT_TRUE(ring.tryPush(4));
    EXPECT_EQ(ring.tryPop(), 2);
    EXPECT_EQ(ring.tryPop(), 3);
    EXPECT_EQ(ring.tryPop(), 4);
    EXPECT_EQ(ring.tryPop(), std::nullopt);
}

TEST(SpscRing, BulkPushPopRespectsCapacity)
{
    SpscRing<int> ring(4);
    const int src[6] = {10, 11, 12, 13, 14, 15};
    int dst[6] = {};

    // pushN truncates at the capacity (one slot stays empty internally,
    // but all `capacity` usable slots must be writable).
    EXPECT_EQ(ring.pushN(src, 6), 4u);
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.pushN(src, 1), 0u);   // full

    EXPECT_EQ(ring.popN(dst, 6), 4u);
    for (int i = 0; i < 4; i++)
        EXPECT_EQ(dst[i], src[i]);
    EXPECT_EQ(ring.popN(dst, 1), 0u);   // empty
}

TEST(SpscRing, BulkWrapAroundKeepsFifoOrder)
{
    SpscRing<int> ring(5);
    int dst[5] = {};

    // Advance head/tail so subsequent bulk ops straddle the physical
    // end of the 6-slot internal buffer.
    for (int i = 0; i < 4; i++)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_EQ(ring.popN(dst, 4), 4u);

    const int src[5] = {100, 101, 102, 103, 104};
    EXPECT_EQ(ring.pushN(src, 5), 5u);   // wraps past the buffer end
    EXPECT_EQ(ring.size(), 5u);
    EXPECT_EQ(ring.popN(dst, 5), 5u);    // wraps on the pop side too
    for (int i = 0; i < 5; i++)
        EXPECT_EQ(dst[i], src[i]);
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BulkAndScalarOpsInterleave)
{
    SpscRing<int> ring(8);
    const int src[3] = {1, 2, 3};
    int dst[8] = {};

    EXPECT_EQ(ring.pushN(src, 3), 3u);
    EXPECT_TRUE(ring.tryPush(4));
    EXPECT_EQ(ring.tryPop(), 1);
    EXPECT_EQ(ring.popN(dst, 8), 3u);
    EXPECT_EQ(dst[0], 2);
    EXPECT_EQ(dst[1], 3);
    EXPECT_EQ(dst[2], 4);
}

TEST(SpscRing, BulkProducerConsumerStress)
{
    SpscRing<int> ring(64);
    constexpr int items = 200000;
    long long sum = 0;

    std::thread producer([&ring] {
        int batch[17];
        int next = 0;
        while (next < items) {
            int n = 0;
            while (n < 17 && next + n < items) {
                batch[n] = next + n;
                n++;
            }
            std::size_t pushed = 0;
            while (pushed < static_cast<std::size_t>(n)) {
                const std::size_t k =
                    ring.pushN(batch + pushed, n - pushed);
                if (k == 0)
                    std::this_thread::yield();
                pushed += k;
            }
            next += n;
        }
    });
    int batch[23];
    int received = 0;
    while (received < items) {
        const std::size_t k = ring.popN(batch, 23);
        if (k == 0) {
            std::this_thread::yield();
            continue;
        }
        for (std::size_t i = 0; i < k; i++) {
            EXPECT_EQ(batch[i], received + static_cast<int>(i));
            sum += batch[i];
        }
        received += static_cast<int>(k);
    }
    producer.join();
    EXPECT_EQ(sum, static_cast<long long>(items) * (items - 1) / 2);
}

TEST(SpscRing, ProducerConsumerStress)
{
    SpscRing<int> ring(16);
    constexpr int items = 100000;
    long long sum = 0;

    std::thread producer([&ring] {
        for (int i = 0; i < items;) {
            if (ring.tryPush(i))
                i++;
            else
                std::this_thread::yield();
        }
    });
    int received = 0;
    while (received < items) {
        if (auto v = ring.tryPop()) {
            sum += *v;
            received++;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_EQ(sum, static_cast<long long>(items) * (items - 1) / 2);
}

TEST(ThreadPool, RunsEverySubmittedClosure)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; i++)
        pool.submit([&count] { count++; });
    pool.drain();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, DrainIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { count++; });
    pool.drain();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { count++; });
    pool.submit([&count] { count++; });
    pool.drain();
    EXPECT_EQ(count.load(), 3);
}

TEST(SpinBarrier, SynchronisesPhases)
{
    constexpr int nthreads = 4, rounds = 50;
    SpinBarrier barrier(nthreads);
    std::atomic<int> phase_counter{0};
    std::atomic<bool> violation{false};

    auto worker = [&] {
        for (int r = 0; r < rounds; r++) {
            phase_counter++;
            barrier.arriveAndWait();
            // After the barrier every participant of round r has
            // incremented: the counter must be a multiple boundary.
            if (phase_counter.load() < (r + 1) * nthreads)
                violation = true;
            barrier.arriveAndWait();
        }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; t++)
        threads.emplace_back(worker);
    for (auto &t : threads)
        t.join();
    EXPECT_FALSE(violation.load());
    EXPECT_EQ(phase_counter.load(), nthreads * rounds);
}

} // namespace
} // namespace graphabcd
