/**
 * @file
 * Result record of a simulated GraphABCD run on the HARP platform.
 */

#ifndef GRAPHABCD_HARP_REPORT_HH
#define GRAPHABCD_HARP_REPORT_HH

#include <cstdint>

namespace graphabcd {

/** Timing, work and utilization counters of one HarpSystem::run(). */
struct SimReport
{
    // ----------------------------------------------------------- time
    double seconds = 0.0;        //!< simulated execution time
    double hostSeconds = 0.0;    //!< wall clock spent simulating

    // ----------------------------------------------------------- work
    double epochs = 0.0;         //!< vertexUpdates / |V|
    std::uint64_t blockUpdates = 0;
    std::uint64_t vertexUpdates = 0;
    std::uint64_t edgeTraversals = 0;
    std::uint64_t scatterWrites = 0;
    bool converged = false;
    bool stopped = false;        //!< ended early by EngineOptions::stop

    // ----------------------------------------------------- throughput
    double mtes = 0.0;           //!< million traversed edges / second

    // ----------------------------------------------------- utilization
    double peUtilization = 0.0;  //!< mean busy fraction of the FPGA PEs
    double busUtilization = 0.0; //!< CPU-FPGA link busy fraction
    double cpuUtilization = 0.0; //!< mean busy fraction of CPU threads

    // ---------------------------------------------------- memory traffic
    std::uint64_t busReadBytes = 0;   //!< FPGA-side sequential reads
    std::uint64_t busWriteBytes = 0;  //!< FPGA-side sequential writes
    std::uint64_t cpuRandomBytes = 0; //!< CPU-side random scatter bytes

    // --------------------------------------------------------- hybrid
    std::uint64_t fpgaTasks = 0;      //!< blocks processed on PEs
    std::uint64_t cpuGatherTasks = 0; //!< blocks processed on the CPU
};

} // namespace graphabcd

#endif // GRAPHABCD_HARP_REPORT_HH
