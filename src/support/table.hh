/**
 * @file
 * ASCII table and CSV rendering for benchmark harnesses.
 *
 * Every bench binary reproduces a paper table or figure; this class is the
 * single way they print rows so the output stays uniform and greppable.
 */

#ifndef GRAPHABCD_SUPPORT_TABLE_HH
#define GRAPHABCD_SUPPORT_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace graphabcd {

/**
 * A rectangular table with a header row.  Cells are strings; numeric
 * helpers format with sensible defaults.  Rendering right-aligns numeric-
 * looking cells and pads to the widest cell per column.
 */
class Table
{
  public:
    /** @param column_names header cells, fixes the column count. */
    explicit Table(std::vector<std::string> column_names);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &add(const std::string &cell);
    Table &add(const char *cell) { return add(std::string(cell)); }

    /** Append a floating-point cell with `precision` significant digits. */
    Table &add(double value, int precision = 4);

    /** Append an integer cell. */
    Table &add(std::uint64_t value);
    Table &add(int value) { return add(static_cast<std::uint64_t>(value)); }

    /** @return number of data rows so far. */
    std::size_t rows() const { return cells.size(); }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (RFC-4180 quoting for commas/quotes). */
    void printCsv(std::ostream &os) const;

    /** Write CSV to the given path; parent directory must exist. */
    void writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> cells;
};

} // namespace graphabcd

#endif // GRAPHABCD_SUPPORT_TABLE_HH
