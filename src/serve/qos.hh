/**
 * @file
 * Per-tenant QoS admission — the serve layer's multi-tenant front door.
 *
 * The single bounded priority heap (runtime/admission_queue.hh) treats
 * every submitter alike, so one chatty client fills the queue and
 * starves everyone else.  FairShareQueue replaces it with one FIFO
 * *lane per tenant* (each lane internally the same max-priority /
 * FIFO-within-class heap, so priority and deadline semantics are
 * preserved *within* a tenant) plus a virtual-time weighted-fair
 * picker across lanes:
 *
 *  - every lane carries a virtual clock `vtime` advanced by 1/weight
 *    per job served; pop() serves the eligible lane with the smallest
 *    vtime, so backlogged tenants receive service proportional to
 *    their configured weights no matter how unequal the offered load;
 *  - a lane activating from idle catches its clock up to the system
 *    virtual time, so sleeping does not bank credit;
 *  - per-tenant in-flight quotas (maxInFlight) make a lane ineligible
 *    while that many of its jobs are running, bounding any tenant's
 *    share of the worker pool (release() returns the slot);
 *  - deadline-aware shedding rejects at admission any job whose
 *    estimated queue wait alone (EWMA service time x jobs expected to
 *    be served first, over the worker count) would blow its deadline —
 *    the client fails fast instead of queueing doomed work;
 *  - under capacity pressure the *newest* work of the most over-share
 *    lane (largest queued/weight, counting the incoming job against
 *    its own lane) is shed first; when the submitting tenant is itself
 *    the (tied-)most over-share, nobody else should pay — the push
 *    reports Full and the flooder gets plain backpressure.
 *
 * Same close() semantics as AdmissionQueue: after close() pushes fail
 * and consumers drain the backlog (quotas ignored — shutdown skips
 * jobs anyway), then see std::nullopt.
 */

#ifndef GRAPHABCD_SERVE_QOS_HH
#define GRAPHABCD_SERVE_QOS_HH

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hh"
#include "runtime/task_queue.hh"   // PopStatus
#include "support/timer.hh"

namespace graphabcd {

/** Per-tenant fair-share parameters. */
struct TenantQos
{
    double weight = 1.0;          //!< fair-share weight (> 0)
    std::size_t maxInFlight = 0;  //!< concurrent running cap; 0 = none
    std::size_t maxQueued = 0;    //!< per-lane backlog cap; 0 = none
};

/** Sizing and policy of a FairShareQueue. */
struct QosConfig
{
    std::size_t capacity = 16;   //!< total backlog bound; 0 = unbounded
    std::uint32_t workers = 2;   //!< consumers (for the wait estimate)
    bool shedOnDeadline = true;  //!< admission-time deadline shedding

    /**
     * Seeds the EWMA of per-job service seconds used by the deadline
     * shed estimate.  0 disables shedding until the first completed
     * job reports a measurement (no evidence, no rejection).
     */
    double initialServiceSeconds = 0.0;

    TenantQos defaults;                      //!< unlisted tenants
    std::map<std::string, TenantQos> tenants; //!< per-tenant overrides
};

/** Outcome of FairShareQueue::tryPush for the *incoming* item. */
enum class AdmitOutcome
{
    Admitted,  //!< enqueued (possibly displacing another tenant's work)
    Full,      //!< backpressure: bounds hit while over share, or closed
    Shed,      //!< dropped for cause: the deadline is infeasible
};

/**
 * Parse a comma-separated tenant QoS spec of the form
 *   name:weight[:maxInFlight[:maxQueued]],...
 * e.g. "gold:4,free:1:2:8".  @return whether the spec parsed; on
 * failure *error names the offending clause and *out is untouched.
 */
bool parseTenantQosSpecs(const std::string &spec,
                         std::map<std::string, TenantQos> *out,
                         std::string *error = nullptr);

/**
 * Weighted-fair multi-lane admission queue (see file comment).
 * Blocking consumers, rejecting/shedding producers.
 */
template <typename T>
class FairShareQueue
{
  public:
    /** tryPush outcome plus any queued items displaced to make room. */
    struct Pushed
    {
        AdmitOutcome outcome = AdmitOutcome::Full;
        std::vector<T> shed;   //!< displaced victims (caller terminalises)
    };

    /** Point-in-time view of one lane (stats, TENANTS verb, tests). */
    struct LaneSnapshot
    {
        std::string tenant;
        std::size_t queued = 0;
        std::size_t running = 0;
        double weight = 1.0;
        double vtime = 0.0;
    };

    explicit FairShareQueue(QosConfig config)
        : cfg_(std::move(config)), ewmaService_(cfg_.initialServiceSeconds)
    {
    }

    FairShareQueue(const FairShareQueue &) = delete;
    FairShareQueue &operator=(const FairShareQueue &) = delete;

    /**
     * Admit an item into `tenant`'s lane, never blocking.
     * @param priority larger dequeues first within the lane.
     * @param deadline_at absolute monotonicSeconds() instant the job
     *        must have *started* by; 0 = no deadline.  Jobs whose
     *        estimated queue wait already overshoots it are Shed.
     */
    Pushed
    tryPush(T item, const std::string &tenant, double priority = 0.0,
            double deadline_at = 0.0)
    {
        Pushed out;
        {
            std::lock_guard<std::mutex> lock(mtx_);
            if (closed_)
                return out;   // Full: rejected like a saturated queue
            Lane &lane = laneForLocked(tenant);
            if (lane.qos.maxQueued != 0 &&
                lane.heap.size() >= lane.qos.maxQueued)
                return out;   // Full: per-tenant backlog bound
            if (cfg_.shedOnDeadline && deadline_at > 0.0 &&
                monotonicSeconds() + estimatedWaitLocked(lane) >=
                    deadline_at) {
                out.outcome = AdmitOutcome::Shed;
                return out;   // doomed: fail fast at admission
            }
            if (cfg_.capacity != 0 && totalQueued_ >= cfg_.capacity) {
                Lane *victim = shedVictimLocked(lane);
                if (!victim) {
                    // The submitter is itself the (tied-)most
                    // over-share tenant: plain backpressure, no other
                    // lane pays for its flood.
                    return out;   // Full
                }
                out.shed.push_back(removeNewestLocked(*victim));
            }
            // A lane activating from idle starts at the system virtual
            // time: no credit accrues while sleeping.
            if (lane.heap.empty())
                lane.vtime = std::max(lane.vtime, virtualNow_);
            Entry entry{priority, nextSeq_++, std::move(item), 0.0,
                        deadline_at};
            if constexpr (obs::kEnabled) {
                if (waitHist_)
                    entry.enqueuedAt = monotonicSeconds();
            }
            lane.heap.push_back(std::move(entry));
            std::push_heap(lane.heap.begin(), lane.heap.end());
            totalQueued_++;
            publishDepth();
            out.outcome = AdmitOutcome::Admitted;
        }
        notEmpty_.notify_one();
        return out;
    }

    /**
     * Block until an eligible lane has work or the queue is closed and
     * drained.  Serving increments the lane's in-flight count; the
     * caller must pair every successful pop with release(tenant).
     * @param tenant_out receives the served lane's tenant when non-null.
     */
    std::optional<T>
    pop(std::string *tenant_out = nullptr)
    {
        std::unique_lock<std::mutex> lock(mtx_);
        notEmpty_.wait(lock, [this] {
            return closed_ || pickLaneLocked() != lanes_.end();
        });
        auto it = pickLaneLocked();
        if (it == lanes_.end())
            return std::nullopt;   // closed and drained
        return serveLocked(it, tenant_out);
    }

    /** Non-blocking pop with closed-and-drained visibility. */
    PopStatus
    tryPop(T &out, std::string *tenant_out = nullptr)
    {
        std::lock_guard<std::mutex> lock(mtx_);
        auto it = pickLaneLocked();
        if (it == lanes_.end()) {
            if (closed_ && totalQueued_ == 0)
                return PopStatus::Drained;
            return PopStatus::Empty;
        }
        out = serveLocked(it, tenant_out);
        return PopStatus::Ok;
    }

    /** A running job of `tenant` finished: return its in-flight slot. */
    void
    release(const std::string &tenant)
    {
        {
            std::lock_guard<std::mutex> lock(mtx_);
            auto it = lanes_.find(tenant);
            if (it != lanes_.end() && it->second.running > 0)
                it->second.running--;
        }
        notEmpty_.notify_all();   // a quota-blocked lane may be eligible
    }

    /** Feed the deadline-shed estimate with a measured run duration. */
    void
    recordServiceSeconds(double seconds)
    {
        if (seconds < 0.0)
            return;
        std::lock_guard<std::mutex> lock(mtx_);
        ewmaService_ = ewmaService_ <= 0.0
                           ? seconds
                           : 0.8 * ewmaService_ + 0.2 * seconds;
    }

    /** Current EWMA of per-job service seconds (0 = no evidence yet). */
    double
    serviceEstimateSeconds() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return ewmaService_;
    }

    /** Estimated queue wait a new `tenant` job would see now. */
    double
    estimatedWaitSeconds(const std::string &tenant)
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return estimatedWaitLocked(laneForLocked(tenant));
    }

    /** Reject subsequent pushes; consumers drain then see nullopt. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mtx_);
            closed_ = true;
        }
        notEmpty_.notify_all();
    }

    /** @return total backlog across all lanes (racy, for stats only). */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return totalQueued_;
    }

    /** @return whether close() has been called. */
    bool
    isClosed() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        return closed_;
    }

    /** @return configured total capacity (0 = unbounded). */
    std::size_t capacity() const { return cfg_.capacity; }

    /** One snapshot row per lane ever seen, sorted by tenant. */
    std::vector<LaneSnapshot>
    lanes() const
    {
        std::lock_guard<std::mutex> lock(mtx_);
        std::vector<LaneSnapshot> out;
        out.reserve(lanes_.size());
        for (const auto &[tenant, lane] : lanes_) {
            out.push_back({tenant, lane.heap.size(), lane.running,
                           lane.qos.weight, lane.vtime});
        }
        return out;
    }

    /** Publish total backlog depth into `g` on every push/pop. */
    void
    attachDepthGauge(obs::Gauge *g)
    {
        std::lock_guard<std::mutex> lock(mtx_);
        depthGauge_ = g;
    }

    /** Record each item's queueing delay (microseconds) into `h`. */
    void
    attachWaitHistogram(obs::Histogram *h)
    {
        std::lock_guard<std::mutex> lock(mtx_);
        waitHist_ = h;
    }

  private:
    struct Entry
    {
        double priority;
        std::uint64_t seq;
        T item;
        double enqueuedAt;   //!< monotonicSeconds(); 0 when untimed
        double deadlineAt;   //!< absolute start-by instant; 0 = none

        bool
        operator<(const Entry &other) const
        {
            // Max-heap on priority; FIFO (smaller seq first) within a
            // priority class — identical to AdmissionQueue.
            if (priority != other.priority)
                return priority < other.priority;
            return seq > other.seq;
        }
    };

    struct Lane
    {
        TenantQos qos;
        std::vector<Entry> heap;   //!< std::*_heap managed
        std::size_t running = 0;   //!< popped, not yet release()d
        double vtime = 0.0;        //!< normalised service received
    };

    using LaneMap = std::map<std::string, Lane>;

    static double
    weightOf(const Lane &lane)
    {
        return std::max(lane.qos.weight, 1e-9);
    }

    Lane &
    laneForLocked(const std::string &tenant)
    {
        auto it = lanes_.find(tenant);
        if (it != lanes_.end())
            return it->second;
        Lane lane;
        auto cfg_it = cfg_.tenants.find(tenant);
        lane.qos =
            cfg_it != cfg_.tenants.end() ? cfg_it->second : cfg_.defaults;
        return lanes_.emplace(tenant, std::move(lane)).first->second;
    }

    bool
    eligibleLocked(const Lane &lane) const
    {
        if (lane.heap.empty())
            return false;
        // Quotas gate scheduling, not shutdown: a closed queue drains
        // regardless so workers can skip the cancelled backlog.
        if (!closed_ && lane.qos.maxInFlight != 0 &&
            lane.running >= lane.qos.maxInFlight)
            return false;
        return true;
    }

    /** The eligible lane with the smallest virtual time (ties: map
     *  order, deterministic); end() when none is eligible. */
    typename LaneMap::iterator
    pickLaneLocked()
    {
        auto best = lanes_.end();
        for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
            if (!eligibleLocked(it->second))
                continue;
            if (best == lanes_.end() ||
                it->second.vtime < best->second.vtime)
                best = it;
        }
        return best;
    }

    /** Serve the chosen lane's best entry (caller holds mtx_). */
    T
    serveLocked(typename LaneMap::iterator it, std::string *tenant_out)
    {
        Lane &lane = it->second;
        virtualNow_ = std::max(virtualNow_, lane.vtime);
        lane.vtime += 1.0 / weightOf(lane);
        std::pop_heap(lane.heap.begin(), lane.heap.end());
        Entry entry = std::move(lane.heap.back());
        lane.heap.pop_back();
        lane.running++;
        totalQueued_--;
        publishDepth();
        if constexpr (obs::kEnabled) {
            if (waitHist_ && entry.enqueuedAt > 0.0) {
                waitHist_->record(
                    (monotonicSeconds() - entry.enqueuedAt) * 1e6);
            }
        }
        if (tenant_out)
            *tenant_out = it->first;
        return std::move(entry.item);
    }

    /**
     * Expected queue wait of one more `lane` job: while its (q+1)
     * backlog drains, a fair picker interleaves other backlogged lanes
     * in proportion to total active weight, and `workers` consumers
     * drain in parallel.  Pure estimate — no evidence (ewma 0) means
     * no shedding.
     */
    double
    estimatedWaitLocked(const Lane &lane) const
    {
        if (ewmaService_ <= 0.0)
            return 0.0;
        double active_weight = weightOf(lane);
        for (const auto &[tenant, other] : lanes_) {
            if (&other != &lane && !other.heap.empty())
                active_weight += weightOf(other);
        }
        double ahead =
            std::ceil(static_cast<double>(lane.heap.size() + 1) *
                      active_weight / weightOf(lane)) -
            1.0;
        ahead = std::min(ahead, static_cast<double>(totalQueued_));
        return ahead * ewmaService_ /
               static_cast<double>(std::max(1u, cfg_.workers));
    }

    /**
     * The lane to displace work from when the queue is full: the one
     * with the largest normalised backlog (queued/weight), counting
     * the incoming job against its own lane.  Null when the incoming
     * lane is itself (tied-)worst — the caller then backpressures the
     * submitter instead of displacing anyone.
     */
    Lane *
    shedVictimLocked(const Lane &incoming)
    {
        const double incoming_load =
            static_cast<double>(incoming.heap.size() + 1) /
            weightOf(incoming);
        Lane *victim = nullptr;
        double worst = incoming_load;
        for (auto &[tenant, lane] : lanes_) {
            if (&lane == &incoming || lane.heap.empty())
                continue;
            const double load =
                static_cast<double>(lane.heap.size()) / weightOf(lane);
            if (load > worst) {
                worst = load;
                victim = &lane;
            }
        }
        return victim;
    }

    /** Remove and return the newest (latest-admitted) entry of `lane`. */
    T
    removeNewestLocked(Lane &lane)
    {
        auto newest = lane.heap.begin();
        for (auto it = lane.heap.begin(); it != lane.heap.end(); ++it) {
            if (it->seq > newest->seq)
                newest = it;
        }
        T item = std::move(newest->item);
        lane.heap.erase(newest);
        std::make_heap(lane.heap.begin(), lane.heap.end());
        totalQueued_--;
        publishDepth();
        return item;
    }

    void
    publishDepth()
    {
        if constexpr (obs::kEnabled) {
            if (depthGauge_)
                depthGauge_->set(static_cast<double>(totalQueued_));
        }
    }

    const QosConfig cfg_;
    mutable std::mutex mtx_;
    std::condition_variable notEmpty_;
    LaneMap lanes_;
    std::size_t totalQueued_ = 0;
    double virtualNow_ = 0.0;   //!< system virtual time (activation floor)
    double ewmaService_;        //!< EWMA of measured per-job run seconds
    std::uint64_t nextSeq_ = 0;
    bool closed_ = false;
    obs::Gauge *depthGauge_ = nullptr;
    obs::Histogram *waitHist_ = nullptr;
};

} // namespace graphabcd

#endif // GRAPHABCD_SERVE_QOS_HH
