/**
 * @file
 * Graph layout knobs: physical encoding and vertex order.
 *
 * These two options are orthogonal and combine freely:
 *
 *  - GraphLayout picks the physical encoding of the adjacency arrays
 *    (plain 4-byte ids vs. delta-varint streams + narrow sidecars);
 *  - VertexReorder picks the vertex id assignment the structures are
 *    built in (input order vs. hub-clustered by degree).
 *
 * Both plumb end to end: CLI flags (`--layout`, `--reorder`), serve
 *`LOAD ... layout= reorder=`, GraphRegistry fingerprints, and the
 * bytes/edge accounting that feeds the HARP bandwidth model.
 */

#ifndef GRAPHABCD_GRAPH_LAYOUT_HH
#define GRAPHABCD_GRAPH_LAYOUT_HH

#include <cstdint>
#include <optional>
#include <string_view>

namespace graphabcd {

/** Physical encoding of adjacency structures. */
enum class GraphLayout
{
    Plain,       //!< 4-byte ids, 8-byte scatter positions, f32 weights
    Compressed,  //!< delta-varint id/position streams, weight sidecar,
                 //!< 16-bit in-block destination ids where blocks allow
};

/** How edge weights are materialised in the compressed layout. */
enum class WeightMode : std::uint8_t
{
    Unit,     //!< every weight is 1.0f; nothing stored
    U8,       //!< integral weights in [0, 255]; one byte per edge
    Float32,  //!< arbitrary weights; the plain f32 array is kept
};

/** Vertex id assignment the structures are built in. */
enum class VertexReorder
{
    None,  //!< keep input ids
    Hub,   //!< hub-clustering: stable sort by descending degree bucket
};

/** Bundle passed to builders (BlockPartition, Csr, GraphRegistry). */
struct LayoutOptions
{
    GraphLayout layout = GraphLayout::Plain;
    VertexReorder reorder = VertexReorder::None;
};

/** @return canonical flag spelling of a GraphLayout. */
inline const char *
to_string(GraphLayout l)
{
    switch (l) {
      case GraphLayout::Plain:      return "plain";
      case GraphLayout::Compressed: return "compressed";
    }
    return "?";
}

/** @return canonical flag spelling of a VertexReorder. */
inline const char *
to_string(VertexReorder r)
{
    switch (r) {
      case VertexReorder::None: return "none";
      case VertexReorder::Hub:  return "hub";
    }
    return "?";
}

/** Parse a layout flag value; nullopt if unrecognized. */
inline std::optional<GraphLayout>
parseGraphLayout(std::string_view s)
{
    if (s == "plain")
        return GraphLayout::Plain;
    if (s == "compressed")
        return GraphLayout::Compressed;
    return std::nullopt;
}

/** Parse a reorder flag value; nullopt if unrecognized. */
inline std::optional<VertexReorder>
parseVertexReorder(std::string_view s)
{
    if (s == "none")
        return VertexReorder::None;
    if (s == "hub")
        return VertexReorder::Hub;
    return std::nullopt;
}

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_LAYOUT_HH
