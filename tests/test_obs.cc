/**
 * @file
 * Tests of the observability layer: histogram bucket/aggregation math,
 * registry behaviour, trace ring buffers and Chrome JSON export, and
 * the engine-level staleness measurement the bounded task queue is
 * supposed to guarantee (paper Sec. III-D).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "algorithms/pagerank.hh"
#include "core/async_engine.hh"
#include "graph/generators.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"

namespace graphabcd {
namespace {

// --------------------------------------------------------------- metrics

TEST(Histogram, BucketBoundariesAreUpperInclusive)
{
    // Bucket i counts bounds[i-1] < x <= bounds[i]; one implicit
    // overflow bucket catches everything above the last bound.
    Histogram h({1.0, 2.0, 4.0});
    for (double x : {0.5, 1.0, 1.5, 3.0, 100.0})
        h.record(x);

    const Histogram::Snapshot snap = h.snapshot();
    ASSERT_EQ(snap.counts.size(), 4u);
    EXPECT_EQ(snap.counts[0], 2u);   // 0.5 and 1.0 (<= 1)
    EXPECT_EQ(snap.counts[1], 1u);   // 1.5
    EXPECT_EQ(snap.counts[2], 1u);   // 3.0
    EXPECT_EQ(snap.counts[3], 1u);   // 100.0 overflows
    EXPECT_EQ(snap.count, 5u);
    EXPECT_DOUBLE_EQ(snap.sum, 106.0);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 100.0);
    EXPECT_DOUBLE_EQ(snap.mean(), 106.0 / 5.0);
}

TEST(Histogram, QuantileReturnsBucketUpperBoundOrMax)
{
    Histogram h({1.0, 2.0, 4.0});
    for (double x : {0.5, 1.0, 1.5, 3.0, 100.0})
        h.record(x);

    const Histogram::Snapshot snap = h.snapshot();
    // rank = q * (count - 1): ranks 0-1 land in bucket <=1, rank 2 in
    // bucket <=2, rank 3 in bucket <=4, rank 4 in the overflow bucket.
    EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.75), 4.0);
    EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);   // overflow -> max
}

TEST(Histogram, EmptySnapshotIsWellDefined)
{
    Histogram h({1.0, 10.0});
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_DOUBLE_EQ(snap.mean(), 0.0);
    EXPECT_DOUBLE_EQ(snap.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max, 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, ResetZeroesEverythingAndStaysUsable)
{
    Histogram h({1.0});
    h.record(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    h.record(0.5);
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_DOUBLE_EQ(snap.min, 0.5);
    EXPECT_DOUBLE_EQ(snap.max, 0.5);
}

TEST(Metrics, ConcurrentRecordingLosesNothing)
{
    Counter c;
    Histogram h({10.0, 100.0, 1000.0});
    constexpr int threads = 4, per_thread = 10000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; t++) {
        pool.emplace_back([&, t] {
            for (int i = 0; i < per_thread; i++) {
                c.add(1);
                h.record(static_cast<double>(t * per_thread + i));
            }
        });
    }
    for (auto &t : pool)
        t.join();

    EXPECT_EQ(c.value(), static_cast<std::uint64_t>(threads) * per_thread);
    const Histogram::Snapshot snap = h.snapshot();
    EXPECT_EQ(snap.count,
              static_cast<std::uint64_t>(threads) * per_thread);
    std::uint64_t bucket_total = 0;
    for (std::uint64_t n : snap.counts)
        bucket_total += n;
    EXPECT_EQ(bucket_total, snap.count);
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max,
                     static_cast<double>(threads * per_thread - 1));
}

TEST(MetricsRegistry, SameNameReturnsSameInstance)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("x");
    Counter &b = reg.counter("x");
    EXPECT_EQ(&a, &b);
    // Second registration keeps the original bucket layout.
    Histogram &h1 = reg.histogram("h", {1.0, 2.0});
    Histogram &h2 = reg.histogram("h", {99.0});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h1.snapshot().bounds.size(), 2u);
}

TEST(MetricsRegistry, DumpListsEveryMetricAndResetZeroes)
{
    MetricsRegistry reg;
    reg.counter("jobs.done").add(3);
    reg.gauge("queue.depth").set(7.0);
    reg.histogram("lat", {1.0, 10.0}).record(5.0);

    const std::string dump = reg.dump();
    EXPECT_NE(dump.find("counter jobs.done 3"), std::string::npos);
    EXPECT_NE(dump.find("gauge queue.depth 7"), std::string::npos);
    EXPECT_NE(dump.find("hist lat count=1"), std::string::npos);

    reg.reset();
    EXPECT_EQ(reg.counter("jobs.done").value(), 0u);
    EXPECT_DOUBLE_EQ(reg.gauge("queue.depth").value(), 0.0);
    EXPECT_EQ(reg.histogram("lat", {}).count(), 0u);
}

// ----------------------------------------------------------------- trace

TEST(TraceRecorder, DisabledRecorderRetainsNothing)
{
    TraceRecorder rec(8);
    rec.complete("x", 0.0, 1.0);
    rec.instant("y");
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceRecorder, RingWrapKeepsCapacityNewestEvents)
{
    TraceRecorder rec(8);
    rec.setEnabled(true);
    for (int i = 0; i < 20; i++)
        rec.complete("span", static_cast<double>(i), 1.0);
    EXPECT_EQ(rec.eventCount(), 8u);
    rec.clear();
    EXPECT_EQ(rec.eventCount(), 0u);
}

TEST(TraceRecorder, ChromeJsonExportIsLoadable)
{
    TraceRecorder rec(64);
    rec.setEnabled(true);
    rec.complete("gas", 10.0, 5.0);
    rec.instant("activated");
    {
        TraceSpan span(rec, "scoped");
    }
    EXPECT_EQ(rec.eventCount(), 3u);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"name\":\"gas\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
    // Instant events need a scope to load in Perfetto.
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
    // Balanced braces and closing bracket: crude well-formedness.
    EXPECT_NE(json.find("\n]}"), std::string::npos);
}

TEST(TraceRecorder, ThreadsGetDistinctRings)
{
    TraceRecorder rec(16);
    rec.setEnabled(true);
    std::thread t1([&] { rec.instant("a"); });
    std::thread t2([&] { rec.instant("b"); });
    t1.join();
    t2.join();
    EXPECT_EQ(rec.eventCount(), 2u);

    std::ostringstream os;
    rec.writeChromeTrace(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"name\":\"a\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"b\""), std::string::npos);
}

// ----------------------------------------------- engine instrumentation

#if GRAPHABCD_OBS_ENABLED

TEST(EngineObs, AsyncStalenessIsBoundedByQueueAndThreads)
{
    // The engine's dispatch FIFO holds participation * 4 stamped
    // items; an item's measured staleness (block updates committed
    // between FIFO entry and claim) can only come from items claimed
    // before it — at most a FIFO's worth plus the blocks in flight on
    // the participants.  This is the bounded-staleness condition of
    // paper Sec. III-D, measured rather than assumed.
    constexpr std::uint32_t threads = 4;
    obs::Histogram &stale = obs::histogram(
        "engine.async.staleness_blocks", obs::stalenessBuckets());
    stale.reset();

    Rng rng(61);
    EdgeList el = generateRmat(400, 3200, rng);
    EngineOptions opt;
    opt.blockSize = 16;   // plenty of blocks to keep the queue full
    opt.numThreads = threads;
    opt.tolerance = 1e-10;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);

    EXPECT_TRUE(report.converged);
    EXPECT_GT(stale.count(), 0u);
    EXPECT_LE(stale.max(), static_cast<double>(threads * 4 + threads));
}

TEST(EngineObs, AsyncRunRecordsLatencyFanoutAndSchedulerCounters)
{
    obs::Histogram &gas = obs::histogram("engine.async.block_gas_us",
                                         obs::latencyBucketsUs());
    obs::Histogram &fanout = obs::histogram(
        "engine.async.scatter_fanout", obs::fanoutBuckets());
    obs::Counter &activations = obs::counter("scheduler.activations");
    gas.reset();
    fanout.reset();
    activations.reset();

    Rng rng(62);
    EdgeList el = generateRmat(200, 1600, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 2;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);

    EXPECT_EQ(gas.count(), report.blockUpdates);
    EXPECT_EQ(fanout.count(), report.blockUpdates);
    EXPECT_GT(activations.value(), 0u);
}

#endif // GRAPHABCD_OBS_ENABLED

} // namespace
} // namespace graphabcd
