/**
 * @file
 * Process-wide work-stealing executor — the software analogue of the
 * paper's task-queue units (Fig. 2).
 *
 * GraphABCD's CPU and accelerator sides never synchronise through
 * barriers; they exchange block ids through bounded task queues and
 * every processing element pulls work whenever it is free (Sec. IV-A3).
 * The Executor gives the software engines the same substrate: a fixed
 * set of persistent workers (sized to the hardware, not to the number
 * of concurrent runs), one sharded run-queue per worker, and work
 * stealing so an idle worker drains a loaded shard instead of waiting.
 *
 * Multi-tenancy is the point.  Under the serve layer many engine runs
 * execute concurrently; if each run spawned its own `numThreads`
 * workers (the pre-Executor design), N concurrent jobs oversubscribed
 * the machine N-fold and throughput collapsed.  Instead every run
 * opens a Job handle with a *participation bound*: at most that many
 * of the job's tasks are released into the shards at once, the rest
 * wait in the job's backlog.  N concurrent jobs therefore share one
 * pool, each limited to its fair slice, and total thread count stays
 * `pool size + service workers` no matter the offered load.
 *
 * Tasks must be dependency-free among jobs (no task may block waiting
 * for another job's task): engines follow this by having the caller
 * thread participate in its own run, so a run always makes progress
 * even when every pool worker is busy elsewhere.
 */

#ifndef GRAPHABCD_RUNTIME_EXECUTOR_HH
#define GRAPHABCD_RUNTIME_EXECUTOR_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/span.hh"
#include "support/logging.hh"

namespace graphabcd {

/**
 * Fixed-size work-stealing thread pool with per-job admission bounds.
 * Create once and share: construction spawns the workers, destruction
 * drains every queued task and joins.
 */
class Executor
{
  public:
    /**
     * Per-run submission handle.  submit() enqueues a task under the
     * job's participation bound; wait() blocks until every submitted
     * task has finished (reusable: a drained job accepts new tasks).
     * Obtain via Executor::createJob(); must not outlive the Executor.
     */
    class Job : public std::enable_shared_from_this<Job>
    {
      public:
        /**
         * Enqueue a task.  At most the job's participation bound of
         * its tasks are released into the worker shards at once; the
         * surplus waits in the job backlog and is released as earlier
         * tasks of this job finish.
         */
        void submit(std::function<void()> fn);

        /**
         * Block until every task submitted so far has finished.  The
         * releasing worker's mutex handoff orders the tasks' writes
         * before the return, so wait() doubles as the join barrier of
         * a BSP wave.
         */
        void wait();

        /** @return tasks submitted but not yet finished (racy). */
        std::size_t pending() const;

      private:
        friend class Executor;

        Job(Executor &executor, std::uint32_t max_participation)
            : exec(executor), limit(std::max(1u, max_participation))
        {
        }

        Executor &exec;
        const std::uint32_t limit;   //!< max released tasks

        /** A backlogged task keeps the span context captured at
         *  submit() so causal attribution survives deferred release. */
        struct Pending
        {
            std::function<void()> fn;
            obs::SpanContext ctx;
        };

        mutable std::mutex mtx;
        std::condition_variable idleCv;
        std::deque<Pending> backlog;
        std::uint32_t released = 0;   //!< tasks in shards or running
        std::size_t unfinished = 0;   //!< backlog + released
    };

    /** Work-stealing counters (monotonic over the executor lifetime). */
    struct Stats
    {
        std::uint64_t executed = 0;   //!< tasks run to completion
        std::uint64_t steals = 0;     //!< tasks taken from a foreign shard
    };

    /**
     * @param num_workers persistent worker threads; 0 sizes the pool to
     *        std::thread::hardware_concurrency().
     */
    explicit Executor(std::uint32_t num_workers = 0);

    /** Drains every queued task, then joins the workers. */
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    /**
     * The process-wide pool, created on first use and sized to the
     * hardware.  Engines default to this so every run in the process —
     * standalone or behind the serve layer — shares one set of workers.
     */
    static const std::shared_ptr<Executor> &shared();

    /**
     * Open a submission handle.
     * @param max_participation most tasks of this job that may occupy
     *        workers simultaneously (clamped to >= 1).
     */
    std::shared_ptr<Job> createJob(std::uint32_t max_participation);

    /** @return worker count. */
    std::uint32_t size() const
    {
        return static_cast<std::uint32_t>(workers.size());
    }

    /** @return tasks sitting in the shards right now (racy gauge —
     *  the stall watchdog's diagnosis, not a synchronisation point). */
    std::size_t
    queueDepth() const
    {
        return queued.load(std::memory_order_relaxed);
    }

    /** @return work-stealing counters. */
    Stats stats() const;

  private:
    friend class Job;

    /** One released task: the closure, its accounting handle, and the
     *  submitter's span context (adopted by the running worker, so the
     *  task's trace events land in the submitting job's span tree). */
    struct Task
    {
        std::function<void()> fn;
        std::shared_ptr<Job> job;
        obs::SpanContext ctx;
    };

    /** A worker's run-queue.  Owner pops the front, thieves the back. */
    struct alignas(64) Shard
    {
        std::mutex mtx;
        std::deque<Task> queue;
    };

    void workerLoop(std::uint32_t self);
    void enqueue(Task task);
    void finishTask(const std::shared_ptr<Job> &job);
    bool tryTake(std::uint32_t self, Task &out, bool &stolen);

    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<std::thread> workers;
    std::atomic<std::size_t> queued{0};   //!< tasks sitting in shards
    std::atomic<std::uint64_t> rr{0};     //!< round-robin shard cursor
    std::atomic<std::uint64_t> nExecuted{0};
    std::atomic<std::uint64_t> nSteals{0};

    std::mutex sleepMtx;
    std::condition_variable sleepCv;
    bool stopping = false;   //!< guarded by sleepMtx
};

} // namespace graphabcd

#endif // GRAPHABCD_RUNTIME_EXECUTOR_HH
