/**
 * @file
 * Compressed sparse row adjacency, used by the GraphMat baseline and the
 * exact reference algorithms.
 */

#ifndef GRAPHABCD_GRAPH_CSR_HH
#define GRAPHABCD_GRAPH_CSR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hh"
#include "graph/types.hh"

namespace graphabcd {

/**
 * CSR adjacency: for each vertex, a contiguous span of (neighbor, weight)
 * pairs.  Build "by source" for out-adjacency or "by destination" for
 * in-adjacency (CSC).
 */
class Csr
{
  public:
    /** Which endpoint indexes the rows. */
    enum class Axis { BySource, ByDestination };

    Csr() = default;

    /**
     * Build from an edge list.
     * @param el input edges.
     * @param axis BySource => row v holds v's out-neighbors (dst ids);
     *             ByDestination => row v holds v's in-neighbors (src ids).
     */
    Csr(const EdgeList &el, Axis axis);

    VertexId numVertices() const { return nVertices; }
    EdgeId numEdges() const { return static_cast<EdgeId>(adj.size()); }

    /** @return neighbor ids of `row` (out- or in-, per the build axis). */
    std::span<const VertexId>
    neighbors(VertexId row) const
    {
        return {adj.data() + offsets[row],
                adj.data() + offsets[row + 1]};
    }

    /** @return weights parallel to neighbors(row). */
    std::span<const float>
    weights(VertexId row) const
    {
        return {wgt.data() + offsets[row], wgt.data() + offsets[row + 1]};
    }

    /** @return degree of the row (out- or in-, per the build axis). */
    std::uint32_t
    degree(VertexId row) const
    {
        return static_cast<std::uint32_t>(offsets[row + 1] - offsets[row]);
    }

    /** @return the row offsets array (size numVertices()+1). */
    const std::vector<EdgeId> &rowOffsets() const { return offsets; }

  private:
    VertexId nVertices = 0;
    std::vector<EdgeId> offsets;   //!< size nVertices+1
    std::vector<VertexId> adj;     //!< size numEdges
    std::vector<float> wgt;        //!< size numEdges
};

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_CSR_HH
