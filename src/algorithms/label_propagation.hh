/**
 * @file
 * Label Propagation for community detection, one of the GAS-paradigm
 * algorithms the paper lists (Sec. II-A), as a BCD vertex program.
 *
 * Every vertex adopts the most frequent label among its in-neighbors
 * (ties broken toward the smaller label, which also makes the update
 * deterministic).  The GATHER accumulator is a small label-count map;
 * merging maps is associative and commutative, so the tagged dataflow
 * reduction unit handles it like any other combine.  Run on a
 * symmetrized graph.
 */

#ifndef GRAPHABCD_ALGORITHMS_LABEL_PROPAGATION_HH
#define GRAPHABCD_ALGORITHMS_LABEL_PROPAGATION_HH

#include <cmath>
#include <cstdint>
#include <map>

#include "core/vertex_program.hh"
#include "graph/partition.hh"

namespace graphabcd {

/** Label propagation (synchronous-update flavour). */
struct LabelPropagationProgram
{
    using Value = double;   //!< current community label (a vertex id)

    /** Sparse label histogram; merged by addition. */
    struct Accum
    {
        std::map<std::uint32_t, std::uint32_t> counts;
    };

    Value init(VertexId v, const BlockPartition &) const { return v; }

    Accum identity() const { return {}; }

    Accum
    edgeTerm(const Value &, const Value &edge_value, float) const
    {
        Accum a;
        a.counts[static_cast<std::uint32_t>(edge_value)] = 1;
        return a;
    }

    Accum
    combine(Accum a, const Accum &b) const
    {
        for (const auto &[label, count] : b.counts)
            a.counts[label] += count;
        return a;
    }

    Value
    apply(VertexId, const Accum &acc, const Value &old,
          const BlockPartition &) const
    {
        if (acc.counts.empty())
            return old;
        std::uint32_t best_label = 0;
        std::uint32_t best_count = 0;
        // std::map iterates in ascending label order, so "first max"
        // is the smallest label among the most frequent — the
        // deterministic tie-break.
        for (const auto &[label, count] : acc.counts) {
            if (count > best_count) {
                best_label = label;
                best_count = count;
            }
        }
        // Keep the old label when it is tied for the maximum; without
        // this hysteresis two-vertex cycles oscillate forever.
        auto it = acc.counts.find(static_cast<std::uint32_t>(old));
        if (it != acc.counts.end() && it->second >= best_count)
            return old;
        return best_label;
    }

    Value
    edgeValue(VertexId, const Value &value, const BlockPartition &) const
    {
        return value;
    }

    double delta(const Value &a, const Value &b) const
    {
        return std::abs(a - b);
    }
};

} // namespace graphabcd

#endif // GRAPHABCD_ALGORITHMS_LABEL_PROPAGATION_HH
