/**
 * @file
 * Tests of the serve layer: admission queue ordering and backpressure,
 * stop tokens, result-cache LRU/TTL/fingerprinting, the graph
 * registry, and the JobManager end-to-end — concurrent jobs must match
 * direct engine runs, cancellation must not block other jobs, and a
 * saturated queue must reject instead of deadlock.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/stop_token.hh"
#include "graph/generators.hh"
#include "runtime/admission_queue.hh"
#include "algorithms/reference.hh"
#include "serve/graph_registry.hh"
#include "serve/job_manager.hh"
#include "serve/result_cache.hh"
#include "serve/runner.hh"
#include "support/fingerprint.hh"

namespace graphabcd {
namespace {

/** Poll `pred` every 2ms until it holds or `timeout_s` elapses. */
template <typename Pred>
bool
waitUntil(Pred pred, double timeout_s = 10.0)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

/** A request that never converges (negative tolerance) — cancel bait. */
JobRequest
endlessRequest(const std::string &graph)
{
    JobRequest req;
    req.graph = graph;
    req.algo = "pr";
    req.engine = "serial";
    req.options.tolerance = -1.0;   // residual >= 0 can never beat this
    req.options.maxEpochs = 1e9;
    req.allowCached = false;
    req.allowWarmStart = false;
    return req;
}

// ---------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueue, PriorityOrderFifoWithinClass)
{
    AdmissionQueue<int> q(8);
    ASSERT_TRUE(q.tryPush(1, 0.0));
    ASSERT_TRUE(q.tryPush(2, 5.0));
    ASSERT_TRUE(q.tryPush(3, 0.0));
    ASSERT_TRUE(q.tryPush(4, 5.0));
    EXPECT_EQ(q.pop(), 2);   // highest priority first...
    EXPECT_EQ(q.pop(), 4);   // ...FIFO among equals
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 3);
}

TEST(AdmissionQueue, RejectsWhenFullInsteadOfBlocking)
{
    AdmissionQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1, 0.0));
    EXPECT_TRUE(q.tryPush(2, 0.0));
    EXPECT_FALSE(q.tryPush(3, 9.0));   // full: rejected, not parked
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_TRUE(q.tryPush(3, 0.0));    // slot freed
}

TEST(AdmissionQueue, CloseDrainsBacklogThenSignalsShutdown)
{
    AdmissionQueue<int> q(4);
    ASSERT_TRUE(q.tryPush(7, 0.0));
    q.close();
    EXPECT_FALSE(q.tryPush(8, 0.0));
    EXPECT_EQ(q.pop(), 7);                  // backlog drains
    EXPECT_EQ(q.pop(), std::nullopt);       // then shutdown
    EXPECT_TRUE(q.isClosed());
}

// ---------------------------------------------------------------------
// StopToken

TEST(StopToken, DefaultTokenNeverFires)
{
    StopToken token;
    EXPECT_FALSE(token.stopPossible());
    EXPECT_FALSE(token.stopRequested());
}

TEST(StopToken, SourceFiresEveryToken)
{
    StopSource source;
    StopToken a = source.token();
    StopToken b = a;   // copies observe the same flag
    EXPECT_FALSE(a.stopRequested());
    source.requestStop();
    EXPECT_TRUE(a.stopRequested());
    EXPECT_TRUE(b.stopRequested());
}

TEST(StopToken, DeadlineFiresWithoutASource)
{
    StopToken token = StopToken().withDeadline(0.0);
    EXPECT_TRUE(token.stopPossible());
    EXPECT_TRUE(waitUntil([&] { return token.stopRequested(); }, 1.0));
    EXPECT_TRUE(token.deadlineExpired());
}

// ---------------------------------------------------------------------
// Fingerprints

TEST(Fingerprint, StringsAreLengthPrefixed)
{
    Fingerprint a, b;
    a.mix(std::string_view("ab"));
    a.mix(std::string_view("c"));
    b.mix(std::string_view("a"));
    b.mix(std::string_view("bc"));
    EXPECT_NE(a.value(), b.value());
}

TEST(Fingerprint, DifferentEngineOptionsDoNotAlias)
{
    JobRequest base;
    base.graph = "g";
    base.algo = "pr";

    JobRequest tol = base;
    tol.options.tolerance = 1e-3;
    JobRequest sched = base;
    sched.options.schedule = Schedule::Priority;
    JobRequest eng = base;
    eng.engine = "async";
    JobRequest frag = base;
    frag.options.fragments = 4;

    const std::uint64_t gfp = 0x1234;
    const std::uint64_t k0 = jobFingerprint(gfp, base);
    EXPECT_NE(k0, jobFingerprint(gfp, tol));
    EXPECT_NE(k0, jobFingerprint(gfp, sched));
    EXPECT_NE(k0, jobFingerprint(gfp, eng));
    EXPECT_NE(k0, jobFingerprint(gfp, frag));
    // ...but they all share one fixpoint family.
    const std::uint64_t f0 = jobFamilyFingerprint(gfp, base);
    EXPECT_EQ(f0, jobFamilyFingerprint(gfp, tol));
    EXPECT_EQ(f0, jobFamilyFingerprint(gfp, sched));
    EXPECT_EQ(f0, jobFamilyFingerprint(gfp, eng));
    EXPECT_EQ(f0, jobFamilyFingerprint(gfp, frag));
}

TEST(Fingerprint, AlgoSourceAndGraphSplitFamilies)
{
    JobRequest base;
    base.graph = "g";
    base.algo = "sssp";
    base.source = 0;
    JobRequest src = base;
    src.source = 7;
    JobRequest algo = base;
    algo.algo = "bfs";

    EXPECT_NE(jobFamilyFingerprint(1, base),
              jobFamilyFingerprint(1, src));
    EXPECT_NE(jobFamilyFingerprint(1, base),
              jobFamilyFingerprint(1, algo));
    EXPECT_NE(jobFamilyFingerprint(1, base),
              jobFamilyFingerprint(2, base));
}

TEST(Fingerprint, StraySourceDoesNotSplitSourcelessFamilies)
{
    // Regression: pr/cc/lp ignore JobRequest::source, but the family
    // fingerprint used to mix it anyway, so equivalent requests with
    // different stray sources landed in different cache families and
    // missed the ResultCache (and its warm-start path) for no reason.
    for (const char *algo : {"pr", "cc", "lp"}) {
        JobRequest a;
        a.graph = "g";
        a.algo = algo;
        a.source = 0;
        JobRequest b = a;
        b.source = 7;

        EXPECT_EQ(jobFamilyFingerprint(1, a), jobFamilyFingerprint(1, b))
            << algo;
        EXPECT_EQ(jobFingerprint(1, a), jobFingerprint(1, b)) << algo;
    }

    // The source-dependent algorithms must still split on it.
    for (const char *algo : {"sssp", "bfs", "ppr"}) {
        JobRequest a;
        a.graph = "g";
        a.algo = algo;
        a.source = 0;
        JobRequest b = a;
        b.source = 7;
        EXPECT_NE(jobFamilyFingerprint(1, a), jobFamilyFingerprint(1, b))
            << algo;
    }
}

// ---------------------------------------------------------------------
// ResultCache

std::shared_ptr<const JobResult>
makeResult(double v)
{
    auto r = std::make_shared<JobResult>();
    r->values = {v};
    return r;
}

TEST(ResultCache, EvictsLeastRecentlyUsed)
{
    ResultCache cache(3, 0.0);
    cache.put(1, makeResult(1));
    cache.put(2, makeResult(2));
    cache.put(3, makeResult(3));
    ASSERT_NE(cache.get(1), nullptr);   // 1 becomes most recent
    cache.put(4, makeResult(4));        // evicts 2, the LRU entry

    EXPECT_EQ(cache.get(2), nullptr);
    EXPECT_NE(cache.get(1), nullptr);
    EXPECT_NE(cache.get(3), nullptr);
    EXPECT_NE(cache.get(4), nullptr);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, TtlExpiresEntriesOnInjectedClock)
{
    double fake_now = 0.0;
    ResultCache cache(4, 10.0, [&fake_now] { return fake_now; });
    cache.put(1, makeResult(1));

    fake_now = 5.0;
    EXPECT_NE(cache.get(1), nullptr);   // get() does not refresh TTL

    fake_now = 10.0;
    EXPECT_EQ(cache.get(1), nullptr);   // expired at insertion + ttl
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().expirations, 1u);

    // put() on an existing key refreshes the TTL.
    fake_now = 20.0;
    cache.put(2, makeResult(2));
    fake_now = 25.0;
    cache.put(2, makeResult(2));
    fake_now = 34.0;
    EXPECT_NE(cache.get(2), nullptr);
}

TEST(ResultCache, PrefersExpiredVictimOverLruEntry)
{
    // Regression: eviction used to take the LRU tail unconditionally,
    // discarding a live entry while an expired one sat in the cache.
    double fake_now = 0.0;
    ResultCache cache(2, 10.0, [&fake_now] { return fake_now; });
    cache.put(1, makeResult(1));        // expires at t=10
    fake_now = 1.0;
    cache.put(2, makeResult(2));        // expires at t=11
    fake_now = 2.0;
    ASSERT_NE(cache.get(1), nullptr);   // 2 is now the LRU tail
    fake_now = 10.5;                    // 1 expired, 2 still live
    cache.put(3, makeResult(3));        // must evict dead 1, not live 2
    EXPECT_NE(cache.get(2), nullptr);
    EXPECT_NE(cache.get(3), nullptr);
    EXPECT_EQ(cache.get(1), nullptr);
    const ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.evictions, 0u);
    EXPECT_EQ(st.expirations, 1u);
}

TEST(ResultCache, ReplacementIsCountedSeparatelyFromInsertion)
{
    ResultCache cache(4, 0.0);
    cache.put(1, makeResult(1));
    cache.put(1, makeResult(2));   // same key: replaces, no growth
    const ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.insertions, 1u);
    EXPECT_EQ(st.replacements, 1u);
    EXPECT_EQ(cache.size(), 1u);
    auto r = cache.get(1);
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->values[0], 2.0);
}

TEST(ResultCache, ZeroCapacityDisablesCaching)
{
    ResultCache cache(0, 0.0);
    cache.put(1, makeResult(1));
    EXPECT_EQ(cache.get(1), nullptr);
    EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------
// GraphRegistry

TEST(GraphRegistry, AddGetRemoveAndList)
{
    Rng rng(71);
    GraphRegistry registry;
    auto g = registry.add("g", generateRmat(100, 600, rng), 32);
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(registry.get("g"), g);
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_NE(registry.fingerprint("g"), 0u);

    const auto infos = registry.list();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_EQ(infos[0].name, "g");
    EXPECT_EQ(infos[0].vertices, g->numVertices());

    EXPECT_TRUE(registry.remove("g"));
    EXPECT_EQ(registry.get("g"), nullptr);
    EXPECT_FALSE(registry.remove("g"));
    // In-flight holders keep the partition alive after remove().
    EXPECT_GT(g->numVertices(), 0u);
}

TEST(GraphRegistry, ReplacingAGraphChangesItsFingerprint)
{
    Rng rng(72);
    GraphRegistry registry;
    registry.add("g", generateRmat(100, 600, rng), 32);
    const std::uint64_t fp1 = registry.fingerprint("g");
    registry.add("g", generateRmat(120, 700, rng), 32);
    const std::uint64_t fp2 = registry.fingerprint("g");
    EXPECT_NE(fp1, fp2);
    EXPECT_EQ(registry.size(), 1u);
}

// ---------------------------------------------------------------------
// JobManager end-to-end

class ServeTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        Rng rng(73);
        web = generateRmat(250, 1800, rng, {.weighted = true});
        road = generateRmat(180, 1100, rng, {.weighted = true});
        registry.add("web", web, 32);
        registry.add("road", road, 32);
    }

    JobRequest
    request(const std::string &graph, const std::string &algo,
            const std::string &engine, VertexId source = 0)
    {
        JobRequest req;
        req.graph = graph;
        req.algo = algo;
        req.engine = engine;
        req.source = source;
        req.options.numThreads = 2;
        req.allowCached = false;
        req.allowWarmStart = false;
        return req;
    }

    EdgeList web, road;
    GraphRegistry registry;
};

TEST_F(ServeTest, ConcurrentJobsMatchDirectEngineRuns)
{
    // 9 jobs over 2 shared graphs, submitted from 9 client threads.
    const std::vector<JobRequest> reqs = {
        request("web", "pr", "serial"),
        request("web", "sssp", "serial", 0),
        request("web", "bfs", "serial", 3),
        request("web", "ppr", "serial", 5),
        request("web", "sssp", "async", 0),
        request("road", "pr", "serial"),
        request("road", "sssp", "serial", 1),
        request("road", "lp", "serial"),
        request("road", "bfs", "async", 2),
    };

    ServeConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = reqs.size();
    JobManager manager(registry, cfg);

    std::vector<JobId> ids(reqs.size(), 0);
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < reqs.size(); i++) {
        clients.emplace_back([&, i] {
            JobManager::Submitted sub = manager.submit(reqs[i]);
            ASSERT_TRUE(sub.ok()) << to_string(sub.error);
            ids[i] = sub.id;
            EXPECT_TRUE(manager.wait(sub.id, 60.0));
        });
    }
    for (auto &t : clients)
        t.join();

    for (std::size_t i = 0; i < reqs.size(); i++) {
        auto result = manager.result(ids[i]);
        ASSERT_NE(result, nullptr) << "job " << i;
        EXPECT_TRUE(result->report.converged) << "job " << i;

        // Direct run on the same partition, no service in between.
        auto g = registry.get(reqs[i].graph);
        JobRequest direct = reqs[i];
        direct.options.blockSize = g->blockSize();
        RunOutcome expected = runAnalyticsJob(*g, direct);
        ASSERT_TRUE(expected.ok()) << expected.error;
        ASSERT_EQ(result->values.size(), expected.values.size());
        const bool exact = reqs[i].engine == "serial";
        for (std::size_t v = 0; v < expected.values.size(); v++) {
            if (exact)
                EXPECT_DOUBLE_EQ(result->values[v], expected.values[v])
                    << "job " << i << " vertex " << v;
            else
                EXPECT_NEAR(result->values[v], expected.values[v], 1e-9)
                    << "job " << i << " vertex " << v;
        }
    }
    const ServeStats stats = manager.stats();
    EXPECT_EQ(stats.submitted, reqs.size());
    EXPECT_EQ(stats.completed, reqs.size());
    EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(ServeTest, AccumEngineJobsRunThroughTheServeLayer)
{
    ServeConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 4;
    JobManager manager(registry, cfg);

    JobRequest req = request("web", "pr", "accum");
    req.options.schedule = Schedule::Obim;
    req.options.tolerance = 1e-12;
    JobManager::Submitted sub = manager.submit(req);
    ASSERT_TRUE(sub.ok()) << to_string(sub.error);
    ASSERT_TRUE(manager.wait(sub.id, 60.0));

    auto result = manager.result(sub.id);
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->report.converged);
    std::vector<double> ref = pagerankReference(web, 0.85);
    ASSERT_EQ(result->values.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); v++)
        EXPECT_NEAR(result->values[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_F(ServeTest, AccumEngineRejectsAlgosWithoutADeltaForm)
{
    std::string why;
    EXPECT_TRUE(isRunnable(request("web", "pr", "accum"), &why)) << why;
    EXPECT_TRUE(isRunnable(request("web", "sssp", "accum"), &why))
        << why;
    EXPECT_TRUE(isRunnable(request("web", "bfs", "accum"), &why)) << why;
    EXPECT_TRUE(isRunnable(request("web", "cc", "accum"), &why)) << why;

    EXPECT_FALSE(isRunnable(request("web", "lp", "accum"), &why));
    EXPECT_NE(why.find("accumulative"), std::string::npos) << why;
    EXPECT_FALSE(isRunnable(request("web", "ppr", "accum"), &why));

    // The same algos stay runnable on the other engines.
    EXPECT_TRUE(isRunnable(request("web", "lp", "serial"), &why)) << why;

    // And the runner reports the unsupported combination as a job
    // error, not a crash.
    auto g = registry.get("web");
    RunOutcome out = runAnalyticsJob(*g, request("web", "lp", "accum"));
    EXPECT_FALSE(out.ok());
    EXPECT_NE(out.error.find("accumulative"), std::string::npos)
        << out.error;
}

TEST_F(ServeTest, FragmentEngineJobsRunThroughTheServeLayer)
{
    ServeConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 4;
    JobManager manager(registry, cfg);

    JobRequest req = request("web", "pr", "fragment");
    req.options.fragments = 3;
    req.options.tolerance = 1e-12;
    JobManager::Submitted sub = manager.submit(req);
    ASSERT_TRUE(sub.ok()) << to_string(sub.error);
    ASSERT_TRUE(manager.wait(sub.id, 60.0));

    auto result = manager.result(sub.id);
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->report.converged);
    std::vector<double> ref = pagerankReference(web, 0.85);
    ASSERT_EQ(result->values.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); v++)
        EXPECT_NEAR(result->values[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_F(ServeTest, RepeatedJobIsServedFromTheResultCache)
{
    JobManager manager(registry);
    JobRequest req = request("web", "pr", "serial");
    req.allowCached = true;

    JobManager::Submitted first = manager.submit(req);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(manager.wait(first.id, 60.0));
    ASSERT_NE(manager.result(first.id), nullptr);

    JobManager::Submitted second = manager.submit(req);
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(manager.wait(second.id, 60.0));

    auto st = manager.status(second.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_TRUE(st->cacheHit);
    EXPECT_EQ(st->state, JobState::Done);
    // Hit verified through the counters, and the result is shared.
    EXPECT_EQ(manager.stats().cacheHits, 1u);
    EXPECT_GE(manager.cache().stats().hits, 1u);
    EXPECT_EQ(manager.result(second.id).get(),
              manager.result(first.id).get());
}

TEST_F(ServeTest, FamilyMemberWarmStartsFromCachedFixpoint)
{
    JobManager manager(registry);
    JobRequest coarse = request("web", "pr", "serial");
    coarse.allowCached = true;
    coarse.allowWarmStart = true;
    coarse.options.tolerance = 1e-6;

    JobManager::Submitted first = manager.submit(coarse);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(manager.wait(first.id, 60.0));

    // Same fixpoint family, tighter tolerance: a different cache key,
    // so it runs — but seeded from the coarse fixpoint.
    JobRequest fine = coarse;
    fine.options.tolerance = 1e-10;
    JobManager::Submitted second = manager.submit(fine);
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(manager.wait(second.id, 60.0));

    auto st = manager.status(second.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Done);
    EXPECT_FALSE(st->cacheHit);
    EXPECT_TRUE(st->warmStarted);
    EXPECT_TRUE(st->converged);
    EXPECT_EQ(manager.stats().warmStarts, 1u);

    // The warm-started run still lands on the right fixpoint.
    auto warm = manager.result(second.id);
    auto g = registry.get("web");
    JobRequest direct = fine;
    direct.allowWarmStart = false;
    direct.options.blockSize = g->blockSize();
    RunOutcome expected = runAnalyticsJob(*g, direct);
    ASSERT_EQ(warm->values.size(), expected.values.size());
    for (std::size_t v = 0; v < expected.values.size(); v++)
        EXPECT_NEAR(warm->values[v], expected.values[v], 1e-8);
}

TEST_F(ServeTest, CancelMidRunReportsCancelledWithoutBlockingOthers)
{
    ServeConfig cfg;
    cfg.workers = 2;
    JobManager manager(registry, cfg);

    JobManager::Submitted endless = manager.submit(endlessRequest("web"));
    ASSERT_TRUE(endless.ok());
    // Wait until the engine is demonstrably running: live Progress
    // counters are visible through status() snapshots mid-run.
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(endless.id);
        return st && st->state == JobState::Running &&
               st->blockUpdates > 0;
    }));

    // The second worker keeps serving other jobs meanwhile.
    JobManager::Submitted quick =
        manager.submit(request("road", "pr", "serial"));
    ASSERT_TRUE(quick.ok());
    EXPECT_TRUE(manager.wait(quick.id, 60.0));
    EXPECT_EQ(manager.status(quick.id)->state, JobState::Done);

    EXPECT_TRUE(manager.cancel(endless.id));
    ASSERT_TRUE(manager.wait(endless.id, 10.0));
    auto st = manager.status(endless.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Cancelled);
    EXPECT_EQ(st->error, "cancelled");
    EXPECT_FALSE(st->converged);
    // A cancelled job has no result and cannot be cancelled again.
    EXPECT_EQ(manager.result(endless.id), nullptr);
    EXPECT_FALSE(manager.cancel(endless.id));
    EXPECT_EQ(manager.stats().cancelled, 1u);
}

TEST_F(ServeTest, ConcurrentCancelStormCountsEachJobExactlyOnce)
{
    // cancel() and the popping worker race to terminalise the same
    // Queued job; the CAS in finishJob must let exactly one side do
    // the bookkeeping.  Before the fix this storm double-counted
    // stats_.cancelled and double-wrote the error string.
    ServeConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = 64;
    JobManager manager(registry, cfg);

    constexpr std::size_t kJobs = 32;
    std::vector<JobId> ids;
    for (std::size_t i = 0; i < kJobs; i++) {
        JobManager::Submitted sub = manager.submit(
            endlessRequest(i % 2 ? "web" : "road"));
        ASSERT_TRUE(sub.ok());
        ids.push_back(sub.id);
    }

    // Several threads cancel every job concurrently, racing both the
    // workers (pop vs. cancel) and each other (cancel vs. cancel).
    std::vector<std::thread> stormers;
    for (int t = 0; t < 8; t++) {
        stormers.emplace_back([&manager, &ids] {
            for (JobId id : ids)
                manager.cancel(id);
        });
    }
    for (auto &t : stormers)
        t.join();

    for (JobId id : ids)
        ASSERT_TRUE(manager.wait(id, 30.0)) << "job " << id;
    const ServeStats stats = manager.stats();
    EXPECT_EQ(stats.submitted, kJobs);
    EXPECT_EQ(stats.cancelled, kJobs);
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_EQ(stats.failed, 0u);
    for (JobId id : ids) {
        auto st = manager.status(id);
        ASSERT_TRUE(st.has_value());
        EXPECT_EQ(st->state, JobState::Cancelled);
        EXPECT_TRUE(st->error == "cancelled" ||
                    st->error == "cancelled while queued")
            << "job " << id << ": '" << st->error << "'";
    }
}

TEST_F(ServeTest, DeadlineCancelsARunawayJob)
{
    JobManager manager(registry);
    JobRequest req = endlessRequest("web");
    req.timeoutSeconds = 0.05;
    JobManager::Submitted sub = manager.submit(req);
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(manager.wait(sub.id, 10.0));
    auto st = manager.status(sub.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Cancelled);
    EXPECT_NE(st->error.find("deadline"), std::string::npos)
        << st->error;
}

TEST_F(ServeTest, SaturatedQueueRejectsInsteadOfDeadlocking)
{
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 2;
    JobManager manager(registry, cfg);

    // Occupy the only worker...
    JobManager::Submitted blocker = manager.submit(endlessRequest("web"));
    ASSERT_TRUE(blocker.ok());
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(blocker.id);
        return st && st->state == JobState::Running;
    }));

    // ...fill the admission queue...
    JobManager::Submitted q1 = manager.submit(endlessRequest("road"));
    JobManager::Submitted q2 = manager.submit(endlessRequest("road"));
    ASSERT_TRUE(q1.ok());
    ASSERT_TRUE(q2.ok());

    // ...and the next submission bounces immediately.
    JobManager::Submitted over = manager.submit(endlessRequest("web"));
    EXPECT_FALSE(over.ok());
    EXPECT_EQ(over.error, SubmitError::QueueFull);
    EXPECT_EQ(manager.stats().rejected, 1u);

    // Queued jobs cancel without ever running; the service stays live.
    EXPECT_TRUE(manager.cancel(q1.id));
    EXPECT_TRUE(manager.cancel(q2.id));
    EXPECT_TRUE(manager.cancel(blocker.id));
    EXPECT_TRUE(manager.wait(blocker.id, 10.0));
    EXPECT_TRUE(manager.wait(q1.id, 10.0));
    EXPECT_TRUE(manager.wait(q2.id, 10.0));
    EXPECT_EQ(manager.status(q1.id)->state, JobState::Cancelled);

    // Cancelled queue entries are removed lazily (when a worker pops
    // and skips them), so a client may still see QueueFull briefly —
    // the documented client policy is to retry.
    JobManager::Submitted after;
    ASSERT_TRUE(waitUntil([&] {
        after = manager.submit(request("road", "pr", "serial"));
        return after.ok();
    }));
    EXPECT_TRUE(manager.wait(after.id, 60.0));
    EXPECT_EQ(manager.status(after.id)->state, JobState::Done);
}

TEST_F(ServeTest, RejectsUnknownGraphsAndBadRequests)
{
    JobManager manager(registry);
    EXPECT_EQ(manager.submit(request("nope", "pr", "serial")).error,
              SubmitError::UnknownGraph);
    EXPECT_EQ(manager.submit(request("web", "nope", "serial")).error,
              SubmitError::BadRequest);
    EXPECT_EQ(manager.submit(request("web", "pr", "nope")).error,
              SubmitError::BadRequest);

    manager.shutdown();
    EXPECT_EQ(manager.submit(request("web", "pr", "serial")).error,
              SubmitError::ShuttingDown);
}

TEST_F(ServeTest, ShutdownCancelsOutstandingJobs)
{
    ServeConfig cfg;
    cfg.workers = 1;
    JobManager manager(registry, cfg);
    JobManager::Submitted running = manager.submit(endlessRequest("web"));
    JobManager::Submitted queued = manager.submit(endlessRequest("road"));
    ASSERT_TRUE(running.ok());
    ASSERT_TRUE(queued.ok());
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(running.id);
        return st && st->state == JobState::Running;
    }));

    manager.shutdown();   // must terminate the endless engine run
    EXPECT_EQ(manager.status(running.id)->state, JobState::Cancelled);
    EXPECT_EQ(manager.status(queued.id)->state, JobState::Cancelled);
}

} // namespace
} // namespace graphabcd
