/**
 * @file
 * Vertex permutation for degree-aware reordering.
 *
 * Hub-clustering sorts vertices into descending log2-degree buckets
 * (stable within a bucket), packing the high-degree hubs of a skewed
 * graph into the first vertex blocks.  That concentrates the hot
 * vertex values in a few cache-resident blocks and shrinks the deltas
 * of sorted neighbor lists — the layout transformation GraphScale
 * identifies as first-order for bandwidth-bound traversal.
 *
 * Contract (DESIGN.md §11): engines run entirely in *internal*
 * (permuted) ids.  The permutation is applied exactly once, when the
 * EdgeList is remapped at partition build time, and un-applied exactly
 * once, at the API boundary (serve runner / CLI dump), so every id a
 * caller sends or receives is an original id.  On a uniform-degree
 * graph every vertex lands in the same bucket and the stable sort
 * leaves ids untouched — hubCluster detects that and returns identity.
 */

#ifndef GRAPHABCD_GRAPH_PERMUTATION_HH
#define GRAPHABCD_GRAPH_PERMUTATION_HH

#include <cassert>
#include <vector>

#include "graph/edge_list.hh"
#include "graph/types.hh"

namespace graphabcd {

/** Bijection between original and internal (layout) vertex ids. */
class VertexPermutation
{
  public:
    /** Identity over an empty id space. */
    VertexPermutation() = default;

    /**
     * Adopt a mapping original -> internal; must be a bijection on
     * [0, to_internal.size()).
     */
    explicit VertexPermutation(std::vector<VertexId> to_internal);

    /**
     * Build the hub-clustering permutation for `el`: bucket by
     * floor(log2(total degree + 1)), stable sort by descending bucket.
     * @return identity when the sort does not move any vertex.
     */
    static VertexPermutation hubCluster(const EdgeList &el);

    bool isIdentity() const { return identity_; }

    VertexId
    numVertices() const
    {
        return static_cast<VertexId>(toInternal_.size());
    }

    /** Original id -> internal id (identity when empty). */
    VertexId
    toInternal(VertexId original) const
    {
        return identity_ ? original : toInternal_[original];
    }

    /** Internal id -> original id (identity when empty). */
    VertexId
    toOriginal(VertexId internal) const
    {
        return identity_ ? internal : toOriginal_[internal];
    }

    /** @return `el` with both endpoints remapped to internal ids. */
    EdgeList apply(const EdgeList &el) const;

    /**
     * Re-key a per-vertex vector from internal to original ids:
     * result[orig] = internal_values[toInternal(orig)].
     */
    template <typename T>
    std::vector<T>
    valuesToOriginal(const std::vector<T> &internal_values) const
    {
        if (identity_)
            return internal_values;
        assert(internal_values.size() == toInternal_.size());
        std::vector<T> out(internal_values.size());
        for (VertexId v = 0; v < toInternal_.size(); v++)
            out[v] = internal_values[toInternal_[v]];
        return out;
    }

    /**
     * Re-key a per-vertex vector from original to internal ids:
     * result[internal] = original_values[toOriginal(internal)].
     */
    template <typename T>
    std::vector<T>
    valuesToInternal(const std::vector<T> &original_values) const
    {
        if (identity_)
            return original_values;
        assert(original_values.size() == toOriginal_.size());
        std::vector<T> out(original_values.size());
        for (VertexId v = 0; v < toOriginal_.size(); v++)
            out[v] = original_values[toOriginal_[v]];
        return out;
    }

  private:
    // Both empty iff identity_; kept in sync by the ctor.
    std::vector<VertexId> toInternal_;  //!< original -> internal
    std::vector<VertexId> toOriginal_;  //!< internal -> original
    bool identity_ = true;
};

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_PERMUTATION_HH
