#include "graph/datasets.hh"

#include <algorithm>
#include <cctype>

#include "graph/generators.hh"
#include "support/logging.hh"

namespace graphabcd {

const std::vector<DatasetInfo> &
datasetCatalog()
{
    static const std::vector<DatasetInfo> catalog = {
        // key, paper name, |V|, |E|, bipartite, users, items, divisor
        {"WT", "Wikipedia Talk", 2390000, 5020000, false, 0, 0, 8},
        {"PS", "Pokec", 1630000, 30620000, false, 0, 0, 24},
        {"LJ", "LiveJournal", 4850000, 68990000, false, 0, 0, 48},
        {"TW", "Twitter", 41650000, 1470000000, false, 0, 0, 768},
        {"SAC", "SAC18", 154000, 10000000, true, 105000, 49000, 8},
        {"MOL", "MovieLens", 337000, 27750000, true, 283000, 54000, 24},
        {"NF", "Netflix", 497000, 100480000, true, 480000, 17000, 64},
    };
    return catalog;
}

const DatasetInfo &
datasetInfo(const std::string &key)
{
    std::string upper = key;
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    for (const DatasetInfo &info : datasetCatalog()) {
        if (info.key == upper)
            return info;
    }
    fatal("unknown dataset '", key, "'; valid keys: WT PS LJ TW SAC MOL NF");
}

Dataset
makeDataset(const std::string &key, double scale, std::uint64_t seed)
{
    const DatasetInfo &info = datasetInfo(key);
    GRAPHABCD_ASSERT(scale > 0.0, "dataset scale must be positive");

    const double fraction = scale / static_cast<double>(info.divisor);
    Rng rng(seed ^ (std::hash<std::string>{}(info.key) | 1));

    Dataset ds;
    ds.info = info;
    ds.scale = fraction;

    auto scaled = [fraction](std::uint64_t paper_value) {
        auto v = static_cast<std::uint64_t>(
            static_cast<double>(paper_value) * fraction);
        return std::max<std::uint64_t>(v, 16);
    };

    if (!info.bipartite) {
        auto n = static_cast<VertexId>(scaled(info.paperVertices));
        EdgeId m = scaled(info.paperEdges);
        RmatOptions opts;
        opts.weighted = true;   // SSSP needs weights; PR ignores them
        ds.graph = generateRmat(n, m, rng, opts);
    } else {
        auto users = static_cast<VertexId>(scaled(info.paperUsers));
        auto items = static_cast<VertexId>(scaled(info.paperItems));
        EdgeId ratings = scaled(info.paperEdges);
        BipartiteGraph bg = generateRatings(users, items, ratings, rng);
        ds.graph = std::move(bg.graph);
        ds.users = bg.users;
        ds.items = bg.items;
    }
    return ds;
}

} // namespace graphabcd
