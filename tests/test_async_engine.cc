/**
 * @file
 * Tests of the threaded asynchronous engine: the barrierless, lock-free
 * execution must reach the same fixed points as the serial engine and
 * the exact references, under every execution mode and thread count.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "algorithms/pagerank.hh"
#include "algorithms/reference.hh"
#include "algorithms/sssp.hh"
#include "core/async_engine.hh"
#include "core/stop_token.hh"
#include "graph/generators.hh"

namespace graphabcd {
namespace {

struct AsyncCase
{
    std::uint32_t threads;
    ExecMode mode;
};

std::string
caseName(const testing::TestParamInfo<AsyncCase> &info)
{
    return std::string("t") + std::to_string(info.param.threads) + "_" +
           to_string(info.param.mode);
}

class AsyncSweep : public testing::TestWithParam<AsyncCase>
{
  protected:
    EngineOptions
    options() const
    {
        EngineOptions opt;
        opt.blockSize = 32;
        opt.numThreads = GetParam().threads;
        opt.mode = GetParam().mode;
        opt.tolerance = 1e-12;
        return opt;
    }
};

TEST_P(AsyncSweep, PageRankMatchesReference)
{
    Rng rng(51);
    EdgeList el = generateRmat(400, 3200, rng);
    EngineOptions opt = options();
    BlockPartition g(el, opt.blockSize);

    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_P(AsyncSweep, SsspMatchesDijkstra)
{
    Rng rng(52);
    EdgeList el = generateRmat(400, 3200, rng, {.weighted = true});
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);

    AsyncEngine<SsspProgram> engine(g, SsspProgram(0), opt);
    std::vector<double> dist;
    EngineReport report = engine.run(dist);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = dijkstraReference(el, 0);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(dist[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_P(AsyncSweep, ConnectedComponentsMatchUnionFind)
{
    Rng rng(53);
    EdgeList el = generateErdosRenyi(300, 250, rng);
    EdgeList sym = el.symmetrized();
    EngineOptions opt = options();
    opt.tolerance = 1e-9;
    BlockPartition g(sym, opt.blockSize);

    AsyncEngine<CcProgram> engine(g, CcProgram(), opt);
    std::vector<double> labels;
    EngineReport report = engine.run(labels);
    EXPECT_TRUE(report.converged);

    std::vector<double> ref = ccReference(el);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_DOUBLE_EQ(labels[v], ref[v]);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndModes, AsyncSweep,
    testing::Values(AsyncCase{1, ExecMode::Async},
                    AsyncCase{2, ExecMode::Async},
                    AsyncCase{4, ExecMode::Async},
                    AsyncCase{2, ExecMode::Barrier},
                    AsyncCase{2, ExecMode::Bsp},
                    AsyncCase{4, ExecMode::Bsp}),
    caseName);

TEST(AsyncEngine, PriorityScheduleWorksThreaded)
{
    Rng rng(54);
    EdgeList el = generateRmat(256, 2048, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 3;
    opt.schedule = Schedule::Priority;
    opt.tolerance = 1e-12;
    BlockPartition g(el, opt.blockSize);

    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);
    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        EXPECT_NEAR(x[v], ref[v], 1e-6);
}

TEST(AsyncEngine, RepeatedRunsAreStable)
{
    // Asynchronous interleavings differ between runs, but the fixed
    // point must not.
    Rng rng(55);
    EdgeList el = generateRmat(200, 1500, rng, {.weighted = true});
    EngineOptions opt;
    opt.blockSize = 8;
    opt.numThreads = 4;
    opt.tolerance = 1e-9;
    BlockPartition g(el, opt.blockSize);
    std::vector<double> ref = dijkstraReference(el, 0);

    for (int run = 0; run < 5; run++) {
        AsyncEngine<SsspProgram> engine(g, SsspProgram(0), opt);
        std::vector<double> dist;
        engine.run(dist);
        for (VertexId v = 0; v < el.numVertices(); v++)
            EXPECT_NEAR(dist[v], ref[v], 1e-6);
    }
}

/** Options for a run that can never converge (negative tolerance). */
EngineOptions
endlessOptions(ExecMode mode, std::uint32_t threads)
{
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = threads;
    opt.mode = mode;
    opt.tolerance = -1.0;   // residual >= 0 never beats this
    opt.maxEpochs = 1e9;
    return opt;
}

TEST(AsyncEngineStop, StopTokenTerminatesWorkersPromptly)
{
    Rng rng(57);
    EdgeList el = generateRmat(300, 2400, rng);
    for (ExecMode mode : {ExecMode::Async, ExecMode::Bsp}) {
        EngineOptions opt = endlessOptions(mode, 4);
        StopSource source;
        opt.stop = source.token();
        BlockPartition g(el, opt.blockSize);
        AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);

        std::thread canceller([&source] {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            source.requestStop();
        });
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<double> x;
        EngineReport report = engine.run(x);
        canceller.join();
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();

        // run() returned because the token fired, long before the
        // 1e9-epoch budget, and said so in the report.
        EXPECT_TRUE(report.stopped) << to_string(mode);
        EXPECT_FALSE(report.converged) << to_string(mode);
        EXPECT_LT(elapsed, 10.0) << to_string(mode);

        // State is consistent: a full-size, finite value vector.
        ASSERT_EQ(x.size(), el.numVertices());
        for (VertexId v = 0; v < el.numVertices(); v++)
            EXPECT_TRUE(std::isfinite(x[v])) << "vertex " << v;
    }
}

TEST(AsyncEngineStop, PreCancelledTokenStopsBeforeWork)
{
    Rng rng(58);
    EdgeList el = generateRmat(128, 1024, rng);
    EngineOptions opt = endlessOptions(ExecMode::Async, 2);
    StopSource source;
    source.requestStop();
    opt.stop = source.token();
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.stopped);
    EXPECT_FALSE(report.converged);
    EXPECT_EQ(x.size(), el.numVertices());
}

TEST(AsyncEngineStop, DeadlineAloneStopsTheRun)
{
    Rng rng(59);
    EdgeList el = generateRmat(200, 1600, rng);
    EngineOptions opt = endlessOptions(ExecMode::Async, 3);
    opt.stop = StopToken().withDeadline(0.05);
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.stopped);
    EXPECT_FALSE(report.converged);
}

TEST(AsyncEngineStop, StoppedRunPublishesProgress)
{
    Rng rng(60);
    EdgeList el = generateRmat(200, 1600, rng);
    EngineOptions opt = endlessOptions(ExecMode::Async, 2);
    StopSource source;
    opt.stop = source.token();
    auto progress = std::make_shared<Progress>();
    opt.progress = progress;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);

    std::thread canceller([&] {
        // Wait until the engine demonstrably did work, then stop it.
        while (progress->blockUpdates.load(std::memory_order_relaxed) <
               10)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        source.requestStop();
    });
    std::vector<double> x;
    EngineReport report = engine.run(x);
    canceller.join();
    EXPECT_TRUE(report.stopped);
    EXPECT_GE(progress->blockUpdates.load(std::memory_order_relaxed),
              10u);
    EXPECT_GT(progress->edgeTraversals.load(std::memory_order_relaxed),
              0u);
}

TEST(AsyncEngine, SinkHeavyGraphMatchesReference)
{
    // Regression for the processAndCommit scatter path: a graph where
    // most vertices are sinks (no out-edges, empty scatterPositions)
    // exercises the early-continue and the hoisted old-edge-value read
    // in both the fused commit (Async) and the wave commit (Bsp).
    EdgeList el(64);
    for (VertexId v = 1; v < 64; v++)
        el.addEdge(0, v);         // hub fans out; 1..63 are sinks
    el.addEdge(1, 0);             // one cycle so rank circulates
    el.addEdge(2, 0);

    std::vector<double> ref = pagerankReference(el, 0.85);
    for (ExecMode mode : {ExecMode::Async, ExecMode::Bsp}) {
        EngineOptions opt;
        opt.blockSize = 8;
        opt.numThreads = 2;
        opt.mode = mode;
        opt.tolerance = 1e-12;
        BlockPartition g(el, opt.blockSize);
        AsyncEngine<PageRankProgram> engine(g, PageRankProgram(0.85),
                                            opt);
        std::vector<double> x;
        EngineReport report = engine.run(x);
        EXPECT_TRUE(report.converged) << to_string(mode);
        for (VertexId v = 0; v < el.numVertices(); v++)
            EXPECT_NEAR(x[v], ref[v], 1e-6)
                << to_string(mode) << " vertex " << v;
    }
}

TEST(AsyncEngine, ReportsWorkCounters)
{
    Rng rng(56);
    EdgeList el = generateRmat(128, 1024, rng);
    EngineOptions opt;
    opt.blockSize = 16;
    opt.numThreads = 2;
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_GT(report.blockUpdates, 0u);
    EXPECT_GT(report.edgeTraversals, 0u);
    EXPECT_GT(report.epochs, 0.0);
    EXPECT_GT(report.seconds, 0.0);
}

TEST(AsyncEngine, HugeMaxEpochsDoesNotOverflowTheUpdateBudget)
{
    // maxEpochs * |V| beyond the uint64 range used to be cast straight
    // to uint64 (UB; in practice a 0 or garbage budget that ended runs
    // instantly).  It must clamp and run to convergence as usual.
    Rng rng(57);
    EdgeList el = generateRmat(256, 2048, rng);
    EngineOptions opt;
    opt.blockSize = 32;
    opt.numThreads = 2;
    opt.tolerance = 1e-10;
    opt.maxEpochs = 1e18;   // * |V| = 2.56e20 >> 2^64 ~ 1.8e19
    BlockPartition g(el, opt.blockSize);
    AsyncEngine<PageRankProgram> engine(g, PageRankProgram(0.85), opt);
    std::vector<double> x;
    EngineReport report = engine.run(x);
    EXPECT_TRUE(report.converged);
    EXPECT_GT(report.blockUpdates, 0u);

    std::vector<double> ref = pagerankReference(el, 0.85);
    for (VertexId v = 0; v < el.numVertices(); v++)
        ASSERT_NEAR(x[v], ref[v], 1e-6) << "vertex " << v;
}

} // namespace
} // namespace graphabcd
