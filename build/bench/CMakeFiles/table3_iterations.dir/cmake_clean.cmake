file(REMOVE_RECURSE
  "CMakeFiles/table3_iterations.dir/table3_iterations.cc.o"
  "CMakeFiles/table3_iterations.dir/table3_iterations.cc.o.d"
  "table3_iterations"
  "table3_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
