# Empty dependencies file for fig5_cf_rmse.
# This may be replaced when dependencies are built.
