# Empty compiler generated dependencies file for abcd_core.
# This may be replaced when dependencies are built.
