# Empty dependencies file for fig8_pe_utilization.
# This may be replaced when dependencies are built.
