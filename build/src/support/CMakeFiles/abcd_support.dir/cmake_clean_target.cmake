file(REMOVE_RECURSE
  "libabcd_support.a"
)
