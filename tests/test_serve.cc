/**
 * @file
 * Tests of the serve layer: admission queue ordering and backpressure,
 * the tenant-aware FairShareQueue (weighted interleave, quotas,
 * displacement shedding, deadline admission control), stop tokens and
 * halt-cause attribution, result-cache LRU/TTL/fingerprinting, the
 * graph registry, and the JobManager end-to-end — concurrent jobs must
 * match direct engine runs, cancellation must not block other jobs, a
 * saturated queue must reject instead of deadlock, and the
 * cancel-vs-finish races must keep every counter and result field
 * consistent.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>
#include <vector>

#include "core/stop_token.hh"
#include "graph/generators.hh"
#include "runtime/admission_queue.hh"
#include "algorithms/reference.hh"
#include "serve/graph_registry.hh"
#include "serve/job_manager.hh"
#include "serve/qos.hh"
#include "serve/result_cache.hh"
#include "serve/runner.hh"
#include "support/fingerprint.hh"
#include "support/timer.hh"

namespace graphabcd {
namespace {

/** Poll `pred` every 2ms until it holds or `timeout_s` elapses. */
template <typename Pred>
bool
waitUntil(Pred pred, double timeout_s = 10.0)
{
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_s));
    while (!pred()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
}

/** A request that never converges (negative tolerance) — cancel bait. */
JobRequest
endlessRequest(const std::string &graph)
{
    JobRequest req;
    req.graph = graph;
    req.algo = "pr";
    req.engine = "serial";
    req.options.tolerance = -1.0;   // residual >= 0 can never beat this
    req.options.maxEpochs = 1e9;
    req.allowCached = false;
    req.allowWarmStart = false;
    return req;
}

// ---------------------------------------------------------------------
// AdmissionQueue

TEST(AdmissionQueue, PriorityOrderFifoWithinClass)
{
    AdmissionQueue<int> q(8);
    ASSERT_TRUE(q.tryPush(1, 0.0));
    ASSERT_TRUE(q.tryPush(2, 5.0));
    ASSERT_TRUE(q.tryPush(3, 0.0));
    ASSERT_TRUE(q.tryPush(4, 5.0));
    EXPECT_EQ(q.pop(), 2);   // highest priority first...
    EXPECT_EQ(q.pop(), 4);   // ...FIFO among equals
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 3);
}

TEST(AdmissionQueue, RejectsWhenFullInsteadOfBlocking)
{
    AdmissionQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1, 0.0));
    EXPECT_TRUE(q.tryPush(2, 0.0));
    EXPECT_FALSE(q.tryPush(3, 9.0));   // full: rejected, not parked
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_TRUE(q.tryPush(3, 0.0));    // slot freed
}

TEST(AdmissionQueue, CloseDrainsBacklogThenSignalsShutdown)
{
    AdmissionQueue<int> q(4);
    ASSERT_TRUE(q.tryPush(7, 0.0));
    q.close();
    EXPECT_FALSE(q.tryPush(8, 0.0));
    EXPECT_EQ(q.pop(), 7);                  // backlog drains
    EXPECT_EQ(q.pop(), std::nullopt);       // then shutdown
    EXPECT_TRUE(q.isClosed());
}

// ---------------------------------------------------------------------
// FairShareQueue

TEST(FairShareQueue, WeightedInterleaveUnderBacklog)
{
    QosConfig cfg;
    cfg.capacity = 16;
    cfg.tenants["a"] = {3.0, 0, 0};
    cfg.tenants["b"] = {1.0, 0, 0};
    FairShareQueue<int> q(cfg);
    for (int v : {1, 2, 3, 4, 5, 6})
        ASSERT_EQ(q.tryPush(v, "a").outcome, AdmitOutcome::Admitted);
    for (int v : {101, 102})
        ASSERT_EQ(q.tryPush(v, "b").outcome, AdmitOutcome::Admitted);

    // Virtual time advances by 1/weight per serve, ties resolve in
    // tenant (map) order: a gets 3 services for every 1 of b.
    std::vector<int> order;
    std::string tenant;
    for (int i = 0; i < 8; i++) {
        auto item = q.pop(&tenant);
        ASSERT_TRUE(item.has_value());
        order.push_back(*item);
        q.release(tenant);
    }
    EXPECT_EQ(order, (std::vector<int>{1, 101, 2, 3, 4, 102, 5, 6}));
}

TEST(FairShareQueue, PriorityOrderFifoWithinLane)
{
    FairShareQueue<int> q(QosConfig{});
    ASSERT_EQ(q.tryPush(1, "t", 0.0).outcome, AdmitOutcome::Admitted);
    ASSERT_EQ(q.tryPush(2, "t", 5.0).outcome, AdmitOutcome::Admitted);
    ASSERT_EQ(q.tryPush(3, "t", 0.0).outcome, AdmitOutcome::Admitted);
    ASSERT_EQ(q.tryPush(4, "t", 5.0).outcome, AdmitOutcome::Admitted);
    // Same contract as AdmissionQueue, per lane: highest priority
    // first, FIFO among equals.
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 4);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 3);
}

TEST(FairShareQueue, InFlightQuotaGatesUntilRelease)
{
    QosConfig cfg;
    cfg.tenants["q"] = {1.0, /*maxInFlight=*/1, 0};
    FairShareQueue<int> q(cfg);
    ASSERT_EQ(q.tryPush(1, "q").outcome, AdmitOutcome::Admitted);
    ASSERT_EQ(q.tryPush(2, "q").outcome, AdmitOutcome::Admitted);

    int out = 0;
    EXPECT_EQ(q.tryPop(out), PopStatus::Ok);
    EXPECT_EQ(out, 1);
    // One job of "q" is in flight: the lane is ineligible even though
    // it has queued work.
    EXPECT_EQ(q.tryPop(out), PopStatus::Empty);
    q.release("q");
    EXPECT_EQ(q.tryPop(out), PopStatus::Ok);
    EXPECT_EQ(out, 2);
}

TEST(FairShareQueue, PerLaneBacklogBoundRejects)
{
    QosConfig cfg;
    cfg.capacity = 16;
    cfg.tenants["small"] = {1.0, 0, /*maxQueued=*/2};
    FairShareQueue<int> q(cfg);
    EXPECT_EQ(q.tryPush(1, "small").outcome, AdmitOutcome::Admitted);
    EXPECT_EQ(q.tryPush(2, "small").outcome, AdmitOutcome::Admitted);
    EXPECT_EQ(q.tryPush(3, "small").outcome, AdmitOutcome::Full);
    EXPECT_EQ(q.tryPush(4, "other").outcome, AdmitOutcome::Admitted);
    EXPECT_EQ(q.size(), 3u);
}

TEST(FairShareQueue, DisplacesNewestOfMostOverShareLane)
{
    QosConfig cfg;
    cfg.capacity = 4;
    FairShareQueue<int> q(cfg);
    for (int v : {1, 2, 3, 4})
        ASSERT_EQ(q.tryPush(v, "flood").outcome, AdmitOutcome::Admitted);

    // The queue is full, but the under-share tenant still gets in: the
    // flooder's *newest* entry is displaced and handed back.
    auto pushed = q.tryPush(9, "vip");
    EXPECT_EQ(pushed.outcome, AdmitOutcome::Admitted);
    ASSERT_EQ(pushed.shed.size(), 1u);
    EXPECT_EQ(pushed.shed[0], 4);
    EXPECT_EQ(q.size(), 4u);

    // The flooder itself is now the (tied-)most over-share lane, so
    // its own push gets plain backpressure — nobody else pays.
    auto again = q.tryPush(5, "flood");
    EXPECT_EQ(again.outcome, AdmitOutcome::Full);
    EXPECT_TRUE(again.shed.empty());
    EXPECT_EQ(q.size(), 4u);
}

TEST(FairShareQueue, DeadlineShedUsesServiceEstimate)
{
    QosConfig cfg;
    cfg.capacity = 0;   // unbounded: isolate the deadline policy
    cfg.workers = 1;
    cfg.initialServiceSeconds = 10.0;
    FairShareQueue<int> q(cfg);

    // First job: nothing is ahead of it, any deadline is feasible.
    ASSERT_EQ(q.tryPush(1, "a", 0.0, monotonicSeconds() + 0.5).outcome,
              AdmitOutcome::Admitted);
    // Second job: one ~10s job ahead, a 1s deadline is hopeless.
    EXPECT_EQ(q.tryPush(2, "a", 0.0, monotonicSeconds() + 1.0).outcome,
              AdmitOutcome::Shed);
    // ...but a 100s deadline clears the ~10s estimated wait.
    EXPECT_EQ(q.tryPush(3, "a", 0.0, monotonicSeconds() + 100.0).outcome,
              AdmitOutcome::Admitted);
    // No deadline means no shedding regardless of the estimate.
    EXPECT_EQ(q.tryPush(4, "a").outcome, AdmitOutcome::Admitted);
    EXPECT_DOUBLE_EQ(q.serviceEstimateSeconds(), 10.0);

    // With no evidence (EWMA seed 0) the policy never fires.
    QosConfig blind = cfg;
    blind.initialServiceSeconds = 0.0;
    FairShareQueue<int> q2(blind);
    ASSERT_EQ(q2.tryPush(1, "a").outcome, AdmitOutcome::Admitted);
    EXPECT_EQ(q2.tryPush(2, "a", 0.0, monotonicSeconds() + 1.0).outcome,
              AdmitOutcome::Admitted);
    // A measured run is evidence; the next doomed push sheds.
    q2.recordServiceSeconds(10.0);
    EXPECT_EQ(q2.tryPush(3, "a", 0.0, monotonicSeconds() + 1.0).outcome,
              AdmitOutcome::Shed);
}

TEST(FairShareQueue, CloseDrainsBacklogIgnoringQuota)
{
    QosConfig cfg;
    cfg.tenants["q"] = {1.0, /*maxInFlight=*/1, 0};
    FairShareQueue<int> q(cfg);
    ASSERT_EQ(q.tryPush(1, "q").outcome, AdmitOutcome::Admitted);
    ASSERT_EQ(q.tryPush(2, "q").outcome, AdmitOutcome::Admitted);

    int out = 0;
    ASSERT_EQ(q.tryPop(out), PopStatus::Ok);   // quota slot now taken
    q.close();
    EXPECT_EQ(q.tryPush(3, "q").outcome, AdmitOutcome::Full);
    // Shutdown drains regardless of the in-flight quota...
    EXPECT_EQ(q.tryPop(out), PopStatus::Ok);
    EXPECT_EQ(out, 2);
    // ...and then reports drained, exactly like AdmissionQueue.
    EXPECT_EQ(q.tryPop(out), PopStatus::Drained);
    EXPECT_EQ(q.pop(), std::nullopt);
    EXPECT_TRUE(q.isClosed());
}

TEST(FairShareQueue, ParsesTenantSpecs)
{
    std::map<std::string, TenantQos> out;
    std::string error;
    ASSERT_TRUE(parseTenantQosSpecs("gold:4,free:1:2:8", &out, &error))
        << error;
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out["gold"].weight, 4.0);
    EXPECT_EQ(out["gold"].maxInFlight, 0u);
    EXPECT_DOUBLE_EQ(out["free"].weight, 1.0);
    EXPECT_EQ(out["free"].maxInFlight, 2u);
    EXPECT_EQ(out["free"].maxQueued, 8u);

    for (const char *bad :
         {"noweight", "a:", "a:0", "a:-1", "a:1:z", "a:1:2:3:4", ":2"}) {
        std::map<std::string, TenantQos> untouched;
        std::string why;
        EXPECT_FALSE(parseTenantQosSpecs(bad, &untouched, &why)) << bad;
        EXPECT_TRUE(untouched.empty()) << bad;
        EXPECT_FALSE(why.empty()) << bad;
    }
}

// ---------------------------------------------------------------------
// StopToken

TEST(StopToken, DefaultTokenNeverFires)
{
    StopToken token;
    EXPECT_FALSE(token.stopPossible());
    EXPECT_FALSE(token.stopRequested());
}

TEST(StopToken, SourceFiresEveryToken)
{
    StopSource source;
    StopToken a = source.token();
    StopToken b = a;   // copies observe the same flag
    EXPECT_FALSE(a.stopRequested());
    source.requestStop();
    EXPECT_TRUE(a.stopRequested());
    EXPECT_TRUE(b.stopRequested());
}

TEST(StopToken, DeadlineFiresWithoutASource)
{
    StopToken token = StopToken().withDeadline(0.0);
    EXPECT_TRUE(token.stopPossible());
    EXPECT_TRUE(waitUntil([&] { return token.stopRequested(); }, 1.0));
    EXPECT_TRUE(token.deadlineExpired());
}

TEST(StopToken, RecordsFirstRequestInstantForAttribution)
{
    StopSource source;
    EXPECT_DOUBLE_EQ(source.requestStopAtSeconds(), 0.0);

    const double before = detail::steadyNowSeconds();
    source.requestStop();
    const double first = source.requestStopAtSeconds();
    EXPECT_GE(first, before);
    EXPECT_LE(first, detail::steadyNowSeconds());

    // requestStop() is sticky: later calls keep the first instant.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    source.requestStop();
    EXPECT_DOUBLE_EQ(source.requestStopAtSeconds(), first);

    // Both instants live on the same steady-clock scale, so a finisher
    // can order them: a far-future deadline lost to this cancel, an
    // already-expired one beat it.
    StopToken late = source.token().withDeadline(1000.0);
    EXPECT_GT(late.deadlineAtSeconds(), first);
    StopToken early = source.token().withDeadline(-1.0);
    EXPECT_LT(early.deadlineAtSeconds(), first);
    EXPECT_DOUBLE_EQ(StopToken().deadlineAtSeconds(), 0.0);
}

// ---------------------------------------------------------------------
// Fingerprints

TEST(Fingerprint, StringsAreLengthPrefixed)
{
    Fingerprint a, b;
    a.mix(std::string_view("ab"));
    a.mix(std::string_view("c"));
    b.mix(std::string_view("a"));
    b.mix(std::string_view("bc"));
    EXPECT_NE(a.value(), b.value());
}

TEST(Fingerprint, DifferentEngineOptionsDoNotAlias)
{
    JobRequest base;
    base.graph = "g";
    base.algo = "pr";

    JobRequest tol = base;
    tol.options.tolerance = 1e-3;
    JobRequest sched = base;
    sched.options.schedule = Schedule::Priority;
    JobRequest eng = base;
    eng.engine = "async";
    JobRequest frag = base;
    frag.options.fragments = 4;

    const std::uint64_t gfp = 0x1234;
    const std::uint64_t k0 = jobFingerprint(gfp, base);
    EXPECT_NE(k0, jobFingerprint(gfp, tol));
    EXPECT_NE(k0, jobFingerprint(gfp, sched));
    EXPECT_NE(k0, jobFingerprint(gfp, eng));
    EXPECT_NE(k0, jobFingerprint(gfp, frag));
    // ...but they all share one fixpoint family.
    const std::uint64_t f0 = jobFamilyFingerprint(gfp, base);
    EXPECT_EQ(f0, jobFamilyFingerprint(gfp, tol));
    EXPECT_EQ(f0, jobFamilyFingerprint(gfp, sched));
    EXPECT_EQ(f0, jobFamilyFingerprint(gfp, eng));
    EXPECT_EQ(f0, jobFamilyFingerprint(gfp, frag));
}

TEST(Fingerprint, AlgoSourceAndGraphSplitFamilies)
{
    JobRequest base;
    base.graph = "g";
    base.algo = "sssp";
    base.source = 0;
    JobRequest src = base;
    src.source = 7;
    JobRequest algo = base;
    algo.algo = "bfs";

    EXPECT_NE(jobFamilyFingerprint(1, base),
              jobFamilyFingerprint(1, src));
    EXPECT_NE(jobFamilyFingerprint(1, base),
              jobFamilyFingerprint(1, algo));
    EXPECT_NE(jobFamilyFingerprint(1, base),
              jobFamilyFingerprint(2, base));
}

TEST(Fingerprint, StraySourceDoesNotSplitSourcelessFamilies)
{
    // Regression: pr/cc/lp ignore JobRequest::source, but the family
    // fingerprint used to mix it anyway, so equivalent requests with
    // different stray sources landed in different cache families and
    // missed the ResultCache (and its warm-start path) for no reason.
    for (const char *algo : {"pr", "cc", "lp"}) {
        JobRequest a;
        a.graph = "g";
        a.algo = algo;
        a.source = 0;
        JobRequest b = a;
        b.source = 7;

        EXPECT_EQ(jobFamilyFingerprint(1, a), jobFamilyFingerprint(1, b))
            << algo;
        EXPECT_EQ(jobFingerprint(1, a), jobFingerprint(1, b)) << algo;
    }

    // The source-dependent algorithms must still split on it.
    for (const char *algo : {"sssp", "bfs", "ppr"}) {
        JobRequest a;
        a.graph = "g";
        a.algo = algo;
        a.source = 0;
        JobRequest b = a;
        b.source = 7;
        EXPECT_NE(jobFamilyFingerprint(1, a), jobFamilyFingerprint(1, b))
            << algo;
    }
}

// ---------------------------------------------------------------------
// ResultCache

std::shared_ptr<const JobResult>
makeResult(double v)
{
    auto r = std::make_shared<JobResult>();
    r->values = {v};
    return r;
}

TEST(ResultCache, EvictsLeastRecentlyUsed)
{
    ResultCache cache(3, 0.0);
    cache.put(1, makeResult(1));
    cache.put(2, makeResult(2));
    cache.put(3, makeResult(3));
    ASSERT_NE(cache.get(1), nullptr);   // 1 becomes most recent
    cache.put(4, makeResult(4));        // evicts 2, the LRU entry

    EXPECT_EQ(cache.get(2), nullptr);
    EXPECT_NE(cache.get(1), nullptr);
    EXPECT_NE(cache.get(3), nullptr);
    EXPECT_NE(cache.get(4), nullptr);
    EXPECT_EQ(cache.size(), 3u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, TtlExpiresEntriesOnInjectedClock)
{
    double fake_now = 0.0;
    ResultCache cache(4, 10.0, [&fake_now] { return fake_now; });
    cache.put(1, makeResult(1));

    fake_now = 5.0;
    EXPECT_NE(cache.get(1), nullptr);   // get() does not refresh TTL

    fake_now = 10.0;
    EXPECT_EQ(cache.get(1), nullptr);   // expired at insertion + ttl
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().expirations, 1u);

    // put() on an existing key refreshes the TTL.
    fake_now = 20.0;
    cache.put(2, makeResult(2));
    fake_now = 25.0;
    cache.put(2, makeResult(2));
    fake_now = 34.0;
    EXPECT_NE(cache.get(2), nullptr);
}

TEST(ResultCache, PrefersExpiredVictimOverLruEntry)
{
    // Regression: eviction used to take the LRU tail unconditionally,
    // discarding a live entry while an expired one sat in the cache.
    double fake_now = 0.0;
    ResultCache cache(2, 10.0, [&fake_now] { return fake_now; });
    cache.put(1, makeResult(1));        // expires at t=10
    fake_now = 1.0;
    cache.put(2, makeResult(2));        // expires at t=11
    fake_now = 2.0;
    ASSERT_NE(cache.get(1), nullptr);   // 2 is now the LRU tail
    fake_now = 10.5;                    // 1 expired, 2 still live
    cache.put(3, makeResult(3));        // must evict dead 1, not live 2
    EXPECT_NE(cache.get(2), nullptr);
    EXPECT_NE(cache.get(3), nullptr);
    EXPECT_EQ(cache.get(1), nullptr);
    const ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.evictions, 0u);
    EXPECT_EQ(st.expirations, 1u);
}

TEST(ResultCache, ReplacementIsCountedSeparatelyFromInsertion)
{
    ResultCache cache(4, 0.0);
    cache.put(1, makeResult(1));
    cache.put(1, makeResult(2));   // same key: replaces, no growth
    const ResultCache::Stats st = cache.stats();
    EXPECT_EQ(st.insertions, 1u);
    EXPECT_EQ(st.replacements, 1u);
    EXPECT_EQ(cache.size(), 1u);
    auto r = cache.get(1);
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->values[0], 2.0);
}

TEST(ResultCache, ZeroCapacityDisablesCaching)
{
    ResultCache cache(0, 0.0);
    cache.put(1, makeResult(1));
    EXPECT_EQ(cache.get(1), nullptr);
    EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------
// GraphRegistry

TEST(GraphRegistry, AddGetRemoveAndList)
{
    Rng rng(71);
    GraphRegistry registry;
    auto g = registry.add("g", generateRmat(100, 600, rng), 32);
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(registry.get("g"), g);
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_NE(registry.fingerprint("g"), 0u);

    const auto infos = registry.list();
    ASSERT_EQ(infos.size(), 1u);
    EXPECT_EQ(infos[0].name, "g");
    EXPECT_EQ(infos[0].vertices, g->numVertices());

    EXPECT_TRUE(registry.remove("g"));
    EXPECT_EQ(registry.get("g"), nullptr);
    EXPECT_FALSE(registry.remove("g"));
    // In-flight holders keep the partition alive after remove().
    EXPECT_GT(g->numVertices(), 0u);
}

TEST(GraphRegistry, ReplacingAGraphChangesItsFingerprint)
{
    Rng rng(72);
    GraphRegistry registry;
    registry.add("g", generateRmat(100, 600, rng), 32);
    const std::uint64_t fp1 = registry.fingerprint("g");
    registry.add("g", generateRmat(120, 700, rng), 32);
    const std::uint64_t fp2 = registry.fingerprint("g");
    EXPECT_NE(fp1, fp2);
    EXPECT_EQ(registry.size(), 1u);
}

// ---------------------------------------------------------------------
// JobManager end-to-end

class ServeTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        Rng rng(73);
        web = generateRmat(250, 1800, rng, {.weighted = true});
        road = generateRmat(180, 1100, rng, {.weighted = true});
        registry.add("web", web, 32);
        registry.add("road", road, 32);
    }

    JobRequest
    request(const std::string &graph, const std::string &algo,
            const std::string &engine, VertexId source = 0)
    {
        JobRequest req;
        req.graph = graph;
        req.algo = algo;
        req.engine = engine;
        req.source = source;
        req.options.numThreads = 2;
        req.allowCached = false;
        req.allowWarmStart = false;
        return req;
    }

    EdgeList web, road;
    GraphRegistry registry;
};

TEST_F(ServeTest, ConcurrentJobsMatchDirectEngineRuns)
{
    // 9 jobs over 2 shared graphs, submitted from 9 client threads.
    const std::vector<JobRequest> reqs = {
        request("web", "pr", "serial"),
        request("web", "sssp", "serial", 0),
        request("web", "bfs", "serial", 3),
        request("web", "ppr", "serial", 5),
        request("web", "sssp", "async", 0),
        request("road", "pr", "serial"),
        request("road", "sssp", "serial", 1),
        request("road", "lp", "serial"),
        request("road", "bfs", "async", 2),
    };

    ServeConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = reqs.size();
    JobManager manager(registry, cfg);

    std::vector<JobId> ids(reqs.size(), 0);
    std::vector<std::thread> clients;
    for (std::size_t i = 0; i < reqs.size(); i++) {
        clients.emplace_back([&, i] {
            JobManager::Submitted sub = manager.submit(reqs[i]);
            ASSERT_TRUE(sub.ok()) << to_string(sub.error);
            ids[i] = sub.id;
            EXPECT_TRUE(manager.wait(sub.id, 60.0));
        });
    }
    for (auto &t : clients)
        t.join();

    for (std::size_t i = 0; i < reqs.size(); i++) {
        auto result = manager.result(ids[i]);
        ASSERT_NE(result, nullptr) << "job " << i;
        EXPECT_TRUE(result->report.converged) << "job " << i;

        // Direct run on the same partition, no service in between.
        auto g = registry.get(reqs[i].graph);
        JobRequest direct = reqs[i];
        direct.options.blockSize = g->blockSize();
        RunOutcome expected = runAnalyticsJob(*g, direct);
        ASSERT_TRUE(expected.ok()) << expected.error;
        ASSERT_EQ(result->values.size(), expected.values.size());
        const bool exact = reqs[i].engine == "serial";
        for (std::size_t v = 0; v < expected.values.size(); v++) {
            if (exact)
                EXPECT_DOUBLE_EQ(result->values[v], expected.values[v])
                    << "job " << i << " vertex " << v;
            else
                EXPECT_NEAR(result->values[v], expected.values[v], 1e-9)
                    << "job " << i << " vertex " << v;
        }
    }
    const ServeStats stats = manager.stats();
    EXPECT_EQ(stats.submitted, reqs.size());
    EXPECT_EQ(stats.completed, reqs.size());
    EXPECT_EQ(stats.rejected, 0u);
}

TEST_F(ServeTest, AccumEngineJobsRunThroughTheServeLayer)
{
    ServeConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 4;
    JobManager manager(registry, cfg);

    JobRequest req = request("web", "pr", "accum");
    req.options.schedule = Schedule::Obim;
    req.options.tolerance = 1e-12;
    JobManager::Submitted sub = manager.submit(req);
    ASSERT_TRUE(sub.ok()) << to_string(sub.error);
    ASSERT_TRUE(manager.wait(sub.id, 60.0));

    auto result = manager.result(sub.id);
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->report.converged);
    std::vector<double> ref = pagerankReference(web, 0.85);
    ASSERT_EQ(result->values.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); v++)
        EXPECT_NEAR(result->values[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_F(ServeTest, AccumEngineRejectsAlgosWithoutADeltaForm)
{
    std::string why;
    EXPECT_TRUE(isRunnable(request("web", "pr", "accum"), &why)) << why;
    EXPECT_TRUE(isRunnable(request("web", "sssp", "accum"), &why))
        << why;
    EXPECT_TRUE(isRunnable(request("web", "bfs", "accum"), &why)) << why;
    EXPECT_TRUE(isRunnable(request("web", "cc", "accum"), &why)) << why;

    EXPECT_FALSE(isRunnable(request("web", "lp", "accum"), &why));
    EXPECT_NE(why.find("accumulative"), std::string::npos) << why;
    EXPECT_FALSE(isRunnable(request("web", "ppr", "accum"), &why));

    // The same algos stay runnable on the other engines.
    EXPECT_TRUE(isRunnable(request("web", "lp", "serial"), &why)) << why;

    // And the runner reports the unsupported combination as a job
    // error, not a crash.
    auto g = registry.get("web");
    RunOutcome out = runAnalyticsJob(*g, request("web", "lp", "accum"));
    EXPECT_FALSE(out.ok());
    EXPECT_NE(out.error.find("accumulative"), std::string::npos)
        << out.error;
}

TEST_F(ServeTest, FragmentEngineJobsRunThroughTheServeLayer)
{
    ServeConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 4;
    JobManager manager(registry, cfg);

    JobRequest req = request("web", "pr", "fragment");
    req.options.fragments = 3;
    req.options.tolerance = 1e-12;
    JobManager::Submitted sub = manager.submit(req);
    ASSERT_TRUE(sub.ok()) << to_string(sub.error);
    ASSERT_TRUE(manager.wait(sub.id, 60.0));

    auto result = manager.result(sub.id);
    ASSERT_NE(result, nullptr);
    EXPECT_TRUE(result->report.converged);
    std::vector<double> ref = pagerankReference(web, 0.85);
    ASSERT_EQ(result->values.size(), ref.size());
    for (std::size_t v = 0; v < ref.size(); v++)
        EXPECT_NEAR(result->values[v], ref[v], 1e-6) << "vertex " << v;
}

TEST_F(ServeTest, RepeatedJobIsServedFromTheResultCache)
{
    JobManager manager(registry);
    JobRequest req = request("web", "pr", "serial");
    req.allowCached = true;

    JobManager::Submitted first = manager.submit(req);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(manager.wait(first.id, 60.0));
    ASSERT_NE(manager.result(first.id), nullptr);

    JobManager::Submitted second = manager.submit(req);
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(manager.wait(second.id, 60.0));

    auto st = manager.status(second.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_TRUE(st->cacheHit);
    EXPECT_EQ(st->state, JobState::Done);
    // Hit verified through the counters, and the result is shared.
    EXPECT_EQ(manager.stats().cacheHits, 1u);
    EXPECT_GE(manager.cache().stats().hits, 1u);
    EXPECT_EQ(manager.result(second.id).get(),
              manager.result(first.id).get());
}

TEST_F(ServeTest, FamilyMemberWarmStartsFromCachedFixpoint)
{
    JobManager manager(registry);
    JobRequest coarse = request("web", "pr", "serial");
    coarse.allowCached = true;
    coarse.allowWarmStart = true;
    coarse.options.tolerance = 1e-6;

    JobManager::Submitted first = manager.submit(coarse);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(manager.wait(first.id, 60.0));

    // Same fixpoint family, tighter tolerance: a different cache key,
    // so it runs — but seeded from the coarse fixpoint.
    JobRequest fine = coarse;
    fine.options.tolerance = 1e-10;
    JobManager::Submitted second = manager.submit(fine);
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(manager.wait(second.id, 60.0));

    auto st = manager.status(second.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Done);
    EXPECT_FALSE(st->cacheHit);
    EXPECT_TRUE(st->warmStarted);
    EXPECT_TRUE(st->converged);
    EXPECT_EQ(manager.stats().warmStarts, 1u);

    // The warm-started run still lands on the right fixpoint.
    auto warm = manager.result(second.id);
    auto g = registry.get("web");
    JobRequest direct = fine;
    direct.allowWarmStart = false;
    direct.options.blockSize = g->blockSize();
    RunOutcome expected = runAnalyticsJob(*g, direct);
    ASSERT_EQ(warm->values.size(), expected.values.size());
    for (std::size_t v = 0; v < expected.values.size(); v++)
        EXPECT_NEAR(warm->values[v], expected.values[v], 1e-8);
}

TEST_F(ServeTest, CancelMidRunReportsCancelledWithoutBlockingOthers)
{
    ServeConfig cfg;
    cfg.workers = 2;
    JobManager manager(registry, cfg);

    JobManager::Submitted endless = manager.submit(endlessRequest("web"));
    ASSERT_TRUE(endless.ok());
    // Wait until the engine is demonstrably running: live Progress
    // counters are visible through status() snapshots mid-run.
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(endless.id);
        return st && st->state == JobState::Running &&
               st->blockUpdates > 0;
    }));

    // The second worker keeps serving other jobs meanwhile.
    JobManager::Submitted quick =
        manager.submit(request("road", "pr", "serial"));
    ASSERT_TRUE(quick.ok());
    EXPECT_TRUE(manager.wait(quick.id, 60.0));
    EXPECT_EQ(manager.status(quick.id)->state, JobState::Done);

    EXPECT_TRUE(manager.cancel(endless.id));
    ASSERT_TRUE(manager.wait(endless.id, 10.0));
    auto st = manager.status(endless.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Cancelled);
    EXPECT_EQ(st->error, "cancelled");
    EXPECT_FALSE(st->converged);
    // A cancelled job has no result and cannot be cancelled again.
    EXPECT_EQ(manager.result(endless.id), nullptr);
    EXPECT_FALSE(manager.cancel(endless.id));
    EXPECT_EQ(manager.stats().cancelled, 1u);
}

TEST_F(ServeTest, ConcurrentCancelStormCountsEachJobExactlyOnce)
{
    // cancel() and the popping worker race to terminalise the same
    // Queued job; the CAS in finishJob must let exactly one side do
    // the bookkeeping.  Before the fix this storm double-counted
    // stats_.cancelled and double-wrote the error string.
    ServeConfig cfg;
    cfg.workers = 4;
    cfg.queueCapacity = 64;
    JobManager manager(registry, cfg);

    constexpr std::size_t kJobs = 32;
    std::vector<JobId> ids;
    for (std::size_t i = 0; i < kJobs; i++) {
        JobManager::Submitted sub = manager.submit(
            endlessRequest(i % 2 ? "web" : "road"));
        ASSERT_TRUE(sub.ok());
        ids.push_back(sub.id);
    }

    // Several threads cancel every job concurrently, racing both the
    // workers (pop vs. cancel) and each other (cancel vs. cancel).
    std::vector<std::thread> stormers;
    for (int t = 0; t < 8; t++) {
        stormers.emplace_back([&manager, &ids] {
            for (JobId id : ids)
                manager.cancel(id);
        });
    }
    for (auto &t : stormers)
        t.join();

    for (JobId id : ids)
        ASSERT_TRUE(manager.wait(id, 30.0)) << "job " << id;
    const ServeStats stats = manager.stats();
    EXPECT_EQ(stats.submitted, kJobs);
    EXPECT_EQ(stats.cancelled, kJobs);
    EXPECT_EQ(stats.completed, 0u);
    EXPECT_EQ(stats.failed, 0u);
    for (JobId id : ids) {
        auto st = manager.status(id);
        ASSERT_TRUE(st.has_value());
        EXPECT_EQ(st->state, JobState::Cancelled);
        EXPECT_TRUE(st->error == "cancelled" ||
                    st->error == "cancelled while queued")
            << "job " << id << ": '" << st->error << "'";
    }
}

TEST_F(ServeTest, DeadlineCancelsARunawayJob)
{
    JobManager manager(registry);
    JobRequest req = endlessRequest("web");
    req.timeoutSeconds = 0.05;
    JobManager::Submitted sub = manager.submit(req);
    ASSERT_TRUE(sub.ok());
    ASSERT_TRUE(manager.wait(sub.id, 10.0));
    auto st = manager.status(sub.id);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(st->state, JobState::Cancelled);
    EXPECT_NE(st->error.find("deadline"), std::string::npos)
        << st->error;
}

TEST_F(ServeTest, SaturatedQueueRejectsInsteadOfDeadlocking)
{
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 2;
    JobManager manager(registry, cfg);

    // Occupy the only worker...
    JobManager::Submitted blocker = manager.submit(endlessRequest("web"));
    ASSERT_TRUE(blocker.ok());
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(blocker.id);
        return st && st->state == JobState::Running;
    }));

    // ...fill the admission queue...
    JobManager::Submitted q1 = manager.submit(endlessRequest("road"));
    JobManager::Submitted q2 = manager.submit(endlessRequest("road"));
    ASSERT_TRUE(q1.ok());
    ASSERT_TRUE(q2.ok());

    // ...and the next submission bounces immediately.
    JobManager::Submitted over = manager.submit(endlessRequest("web"));
    EXPECT_FALSE(over.ok());
    EXPECT_EQ(over.error, SubmitError::QueueFull);
    EXPECT_EQ(manager.stats().rejected, 1u);

    // Queued jobs cancel without ever running; the service stays live.
    EXPECT_TRUE(manager.cancel(q1.id));
    EXPECT_TRUE(manager.cancel(q2.id));
    EXPECT_TRUE(manager.cancel(blocker.id));
    EXPECT_TRUE(manager.wait(blocker.id, 10.0));
    EXPECT_TRUE(manager.wait(q1.id, 10.0));
    EXPECT_TRUE(manager.wait(q2.id, 10.0));
    EXPECT_EQ(manager.status(q1.id)->state, JobState::Cancelled);

    // Cancelled queue entries are removed lazily (when a worker pops
    // and skips them), so a client may still see QueueFull briefly —
    // the documented client policy is to retry.
    JobManager::Submitted after;
    ASSERT_TRUE(waitUntil([&] {
        after = manager.submit(request("road", "pr", "serial"));
        return after.ok();
    }));
    EXPECT_TRUE(manager.wait(after.id, 60.0));
    EXPECT_EQ(manager.status(after.id)->state, JobState::Done);
}

TEST_F(ServeTest, RejectsUnknownGraphsAndBadRequests)
{
    JobManager manager(registry);
    EXPECT_EQ(manager.submit(request("nope", "pr", "serial")).error,
              SubmitError::UnknownGraph);
    EXPECT_EQ(manager.submit(request("web", "nope", "serial")).error,
              SubmitError::BadRequest);
    EXPECT_EQ(manager.submit(request("web", "pr", "nope")).error,
              SubmitError::BadRequest);

    manager.shutdown();
    EXPECT_EQ(manager.submit(request("web", "pr", "serial")).error,
              SubmitError::ShuttingDown);
}

TEST_F(ServeTest, CacheHitVsCancelStormNeverLeaksResults)
{
    // Regression: runJob's pop-time cache re-check used to write
    // job->result and startedAt *before* attempting the Queued -> Done
    // CAS, so a concurrent cancel() that won the race left a populated
    // result (and a skewed wait metric) on a Cancelled job.  All
    // outcome writes now happen in finishJob's on_win hook, after the
    // CAS: a job is either Done with the cached result or Cancelled
    // with none — never a hybrid.
    ServeConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 64;
    JobManager manager(registry, cfg);

    // Occupy both workers so the cacheable jobs stay queued.
    JobManager::Submitted b1 = manager.submit(endlessRequest("web"));
    JobManager::Submitted b2 = manager.submit(endlessRequest("road"));
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(b2.ok());
    ASSERT_TRUE(waitUntil([&] {
        auto s1 = manager.status(b1.id);
        auto s2 = manager.status(b2.id);
        return s1 && s2 && s1->state == JobState::Running &&
               s2->state == JobState::Running;
    }));

    JobRequest req = request("web", "pr", "serial");
    req.allowCached = true;
    constexpr std::size_t kJobs = 24;
    std::vector<JobId> ids;
    for (std::size_t i = 0; i < kJobs; i++) {
        JobManager::Submitted sub = manager.submit(req);
        ASSERT_TRUE(sub.ok()) << to_string(sub.error);
        ids.push_back(sub.id);
    }

    // Inject the cache entry the queued jobs will re-check at pop time
    // (submit() stamps the partition's block size before fingerprinting).
    JobRequest keyed = req;
    keyed.options.blockSize = registry.get("web")->blockSize();
    auto fabricated = std::make_shared<JobResult>();
    fabricated->values = {3.14};
    fabricated->report.converged = true;
    manager.cache().put(jobFingerprint(registry.fingerprint("web"), keyed),
                        fabricated);

    // Release the workers and storm cancels at the same time: pops
    // racing towards Done-via-cache against cancels towards Cancelled.
    std::vector<std::thread> stormers;
    stormers.emplace_back([&] {
        manager.cancel(b1.id);
        manager.cancel(b2.id);
        for (auto it = ids.rbegin(); it != ids.rend(); ++it)
            manager.cancel(*it);
    });
    for (int t = 0; t < 3; t++) {
        stormers.emplace_back([&manager, &ids] {
            for (JobId id : ids)
                manager.cancel(id);
        });
    }
    for (auto &t : stormers)
        t.join();
    ASSERT_TRUE(manager.wait(b1.id, 30.0));
    ASSERT_TRUE(manager.wait(b2.id, 30.0));
    for (JobId id : ids)
        ASSERT_TRUE(manager.wait(id, 30.0)) << "job " << id;

    std::size_t done = 0, cancelled = 0;
    for (JobId id : ids) {
        auto st = manager.status(id);
        ASSERT_TRUE(st.has_value());
        if (st->state == JobState::Done) {
            done++;
            EXPECT_TRUE(st->cacheHit) << "job " << id;
            auto result = manager.result(id);
            ASSERT_NE(result, nullptr) << "job " << id;
            EXPECT_DOUBLE_EQ(result->values.at(0), 3.14);
            EXPECT_TRUE(st->error.empty()) << st->error;
            // Exactly-once startedAt: the wait/run accounting stays
            // monotonic even on the pop-time cache-hit path.
            EXPECT_GE(st->queuedSeconds, 0.0) << "job " << id;
            EXPECT_GE(st->runSeconds, 0.0) << "job " << id;
        } else {
            cancelled++;
            EXPECT_EQ(st->state, JobState::Cancelled) << "job " << id;
            EXPECT_EQ(manager.result(id), nullptr)
                << "cancelled job " << id << " kept a result";
            EXPECT_FALSE(st->cacheHit) << "job " << id;
        }
    }
    const ServeStats stats = manager.stats();
    EXPECT_EQ(done + cancelled, kJobs);
    EXPECT_EQ(stats.completed, done);
    EXPECT_EQ(stats.cacheHits, done);
    EXPECT_EQ(stats.cancelled, cancelled + 2);   // + the two blockers
}

TEST_F(ServeTest, QueuedDeadlineIsNotMisattributedAsCancel)
{
    // Regression: a queued job whose deadline had already expired used
    // to be reported as "cancelled" whenever a cancel() arrived before
    // the worker popped it — the halt cause was guessed from the stop
    // flag instead of from which instant came first.
    ServeConfig cfg;
    cfg.workers = 1;
    JobManager manager(registry, cfg);

    JobManager::Submitted blocker = manager.submit(endlessRequest("web"));
    ASSERT_TRUE(blocker.ok());
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(blocker.id);
        return st && st->state == JobState::Running;
    }));

    // Deadline first, cancel second: the deadline is the truth.
    JobRequest doomed = request("road", "pr", "serial");
    doomed.timeoutSeconds = 0.03;
    JobManager::Submitted d = manager.submit(doomed);
    ASSERT_TRUE(d.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    EXPECT_TRUE(manager.cancel(d.id));
    ASSERT_TRUE(manager.wait(d.id, 10.0));
    EXPECT_EQ(manager.status(d.id)->state, JobState::Cancelled);
    EXPECT_EQ(manager.status(d.id)->error,
              "deadline exceeded while queued");

    // Cancel first, deadline nowhere near: a plain user cancel.
    JobRequest roomy = request("road", "pr", "serial");
    roomy.timeoutSeconds = 100.0;
    JobManager::Submitted c = manager.submit(roomy);
    ASSERT_TRUE(c.ok());
    EXPECT_TRUE(manager.cancel(c.id));
    ASSERT_TRUE(manager.wait(c.id, 10.0));
    EXPECT_EQ(manager.status(c.id)->error, "cancelled while queued");

    manager.cancel(blocker.id);
}

TEST_F(ServeTest, TenantQuotaCapsConcurrencyWhileOthersProceed)
{
    ServeConfig cfg;
    cfg.workers = 2;
    cfg.queueCapacity = 8;
    cfg.tenantQos["capped"] = {1.0, /*maxInFlight=*/1, 0};
    JobManager manager(registry, cfg);

    JobRequest first = endlessRequest("web");
    first.tenant = "capped";
    JobManager::Submitted e1 = manager.submit(first);
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(e1.id);
        return st && st->state == JobState::Running;
    }));

    // The second capped job is admitted but must hold at Queued even
    // though a worker is idle: the tenant's in-flight quota is 1.
    JobRequest second = endlessRequest("road");
    second.tenant = "capped";
    JobManager::Submitted e2 = manager.submit(second);
    ASSERT_TRUE(e2.ok());

    // Another tenant sails past the held job on the free worker.
    JobRequest other = request("road", "pr", "serial");
    other.tenant = "other";
    JobManager::Submitted quick = manager.submit(other);
    ASSERT_TRUE(quick.ok());
    EXPECT_TRUE(manager.wait(quick.id, 60.0));
    EXPECT_EQ(manager.status(quick.id)->state, JobState::Done);
    EXPECT_EQ(manager.status(e2.id)->state, JobState::Queued);

    // Cancelling the runner frees the quota slot; the held job starts.
    EXPECT_TRUE(manager.cancel(e1.id));
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(e2.id);
        return st && st->state == JobState::Running;
    }));
    EXPECT_TRUE(manager.cancel(e2.id));
    ASSERT_TRUE(manager.wait(e2.id, 10.0));

    const auto tenants = manager.tenantStats();
    ASSERT_TRUE(tenants.count("capped"));
    ASSERT_TRUE(tenants.count("other"));
    EXPECT_EQ(tenants.at("capped").cancelled, 2u);
    EXPECT_EQ(tenants.at("other").completed, 1u);
}

TEST_F(ServeTest, PressureShedsFloodersNewestJobWithDistinctState)
{
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 2;
    JobManager manager(registry, cfg);

    JobRequest flood = endlessRequest("web");
    flood.tenant = "flood";
    JobManager::Submitted blocker = manager.submit(flood);
    ASSERT_TRUE(blocker.ok());
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(blocker.id);
        return st && st->state == JobState::Running;
    }));
    JobManager::Submitted f1 = manager.submit(flood);
    JobManager::Submitted f2 = manager.submit(flood);
    ASSERT_TRUE(f1.ok());
    ASSERT_TRUE(f2.ok());

    // The under-share tenant's submission displaces the flooder's
    // newest queued job, which fails fast with the distinct Shed state.
    JobRequest vip = request("road", "pr", "serial");
    vip.tenant = "vip";
    JobManager::Submitted v = manager.submit(vip);
    ASSERT_TRUE(v.ok()) << to_string(v.error);
    ASSERT_TRUE(manager.wait(f2.id, 10.0));
    auto shed = manager.status(f2.id);
    ASSERT_TRUE(shed.has_value());
    EXPECT_EQ(shed->state, JobState::Shed);
    EXPECT_NE(shed->error.find("shed"), std::string::npos) << shed->error;
    EXPECT_EQ(manager.result(f2.id), nullptr);
    EXPECT_EQ(manager.stats().shed, 1u);
    EXPECT_EQ(manager.tenantStats().at("flood").shed, 1u);

    // The flooder's own next push is plain backpressure, not a shed.
    JobManager::Submitted f3 = manager.submit(flood);
    EXPECT_FALSE(f3.ok());
    EXPECT_EQ(f3.error, SubmitError::QueueFull);

    manager.cancel(blocker.id);
    manager.cancel(f1.id);
    manager.cancel(v.id);
}

TEST_F(ServeTest, InfeasibleDeadlineIsShedAtAdmission)
{
    ServeConfig cfg;
    cfg.workers = 1;
    cfg.queueCapacity = 16;
    cfg.initialServiceEstimateSeconds = 10.0;   // seeded evidence
    JobManager manager(registry, cfg);

    JobManager::Submitted blocker = manager.submit(endlessRequest("web"));
    ASSERT_TRUE(blocker.ok());
    JobManager::Submitted queued = manager.submit(endlessRequest("road"));
    ASSERT_TRUE(queued.ok());

    // One ~10s job is queued ahead; a 50ms deadline cannot make it.
    JobRequest doomed = request("road", "pr", "serial");
    doomed.timeoutSeconds = 0.05;
    JobManager::Submitted shed = manager.submit(doomed);
    EXPECT_FALSE(shed.ok());
    EXPECT_EQ(shed.error, SubmitError::Shed);

    const ServeStats stats = manager.stats();
    EXPECT_EQ(stats.shedAdmission, 1u);
    EXPECT_EQ(stats.rejected, 1u);
    EXPECT_EQ(manager.tenantStats().at("default").shedAdmission, 1u);

    // The same request without a deadline is admitted fine.
    JobManager::Submitted ok = manager.submit(
        request("road", "pr", "serial"));
    EXPECT_TRUE(ok.ok()) << to_string(ok.error);

    manager.cancel(blocker.id);
    manager.cancel(queued.id);
    manager.cancel(ok.id);
}

TEST_F(ServeTest, WarmStartAndCacheCrossTenantBoundaries)
{
    // The tenant id buys scheduling fairness, not result isolation:
    // fingerprints deliberately exclude it, so one tenant's fixpoint
    // warm-starts (and exact results serve) every other tenant.
    JobManager manager(registry);
    std::uint64_t warm_starts = 0, cache_hits = 0;
    for (const char *algo : {"pr", "sssp"}) {
        JobRequest coarse = request("web", algo, "serial", 0);
        coarse.tenant = "alpha";
        coarse.allowCached = true;
        coarse.allowWarmStart = true;
        coarse.options.tolerance = 1e-6;
        JobManager::Submitted a = manager.submit(coarse);
        ASSERT_TRUE(a.ok()) << algo;
        ASSERT_TRUE(manager.wait(a.id, 60.0)) << algo;

        // A different tenant's tighter-tolerance run warm-starts from
        // alpha's fixpoint...
        JobRequest fine = coarse;
        fine.tenant = "beta";
        fine.options.tolerance = 1e-10;
        JobManager::Submitted b = manager.submit(fine);
        ASSERT_TRUE(b.ok()) << algo;
        ASSERT_TRUE(manager.wait(b.id, 60.0)) << algo;
        auto bst = manager.status(b.id);
        ASSERT_TRUE(bst.has_value());
        EXPECT_EQ(bst->state, JobState::Done) << algo;
        EXPECT_TRUE(bst->warmStarted) << algo;
        warm_starts++;

        // ...and a third tenant's identical submission is an exact
        // cross-tenant cache hit sharing beta's result object.
        JobRequest same = fine;
        same.tenant = "gamma";
        JobManager::Submitted c = manager.submit(same);
        ASSERT_TRUE(c.ok()) << algo;
        ASSERT_TRUE(manager.wait(c.id, 60.0)) << algo;
        EXPECT_TRUE(manager.status(c.id)->cacheHit) << algo;
        EXPECT_EQ(manager.result(c.id).get(), manager.result(b.id).get())
            << algo;
        cache_hits++;

        // The warm-started run still lands on the true fixpoint.
        auto g = registry.get("web");
        JobRequest direct = fine;
        direct.allowCached = false;
        direct.allowWarmStart = false;
        direct.options.blockSize = g->blockSize();
        RunOutcome expected = runAnalyticsJob(*g, direct);
        ASSERT_TRUE(expected.ok()) << expected.error;
        auto warm = manager.result(b.id);
        ASSERT_EQ(warm->values.size(), expected.values.size()) << algo;
        for (std::size_t vtx = 0; vtx < expected.values.size(); vtx++)
            EXPECT_NEAR(warm->values[vtx], expected.values[vtx], 1e-8)
                << algo << " vertex " << vtx;
    }
    EXPECT_EQ(manager.stats().warmStarts, warm_starts);
    EXPECT_EQ(manager.stats().cacheHits, cache_hits);
    EXPECT_EQ(manager.tenantStats().at("beta").warmStarts, warm_starts);
    EXPECT_EQ(manager.tenantStats().at("gamma").cacheHits, cache_hits);
}

// ---------------------------------------------------------------------
// Multi-tenant storm (scaled up in the tsan CI leg via
// GRAPHABCD_QOS_STRESS_ITERS, like the fragment/accum stress tests).

TEST(ServeQosStress, MultiTenantCancelShedStorm)
{
    int iters = 2;
    if (const char *env = std::getenv("GRAPHABCD_QOS_STRESS_ITERS"))
        iters = std::max(1, std::atoi(env));

    Rng rng(91);
    GraphRegistry registry;
    registry.add("g", generateRmat(120, 700, rng, {.weighted = true}),
                 32);

    for (int iter = 0; iter < iters; iter++) {
        ServeConfig cfg;
        cfg.workers = 2;
        cfg.queueCapacity = 8;
        cfg.maxRetainedJobs = 4096;
        cfg.tenantQos["gold"] = {4.0, 0, 0};
        cfg.tenantQos["free"] = {1.0, /*maxInFlight=*/1, /*maxQueued=*/4};
        JobManager manager(registry, cfg);

        std::mutex ids_mtx;
        std::vector<JobId> ids;
        std::atomic<bool> storm_done{false};

        auto client = [&](const std::string &tenant, unsigned seed) {
            std::mt19937 gen(seed);
            for (int i = 0; i < 40; i++) {
                JobRequest req;
                req.graph = "g";
                req.algo = "pr";
                req.engine = "serial";
                req.tenant = tenant;
                req.options.numThreads = 1;
                req.allowCached = false;
                req.allowWarmStart = false;
                switch (gen() % 4) {
                case 0:   // endless: cancel bait
                    req.options.tolerance = -1.0;
                    req.options.maxEpochs = 1e9;
                    break;
                case 1:   // doomed deadline: shed or deadline-cancel
                    req.timeoutSeconds = 0.001;
                    break;
                default:   // quick real job
                    break;
                }
                JobManager::Submitted sub = manager.submit(req);
                if (sub.ok()) {
                    std::lock_guard<std::mutex> lock(ids_mtx);
                    ids.push_back(sub.id);
                }
                if (gen() % 8 == 0) {
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(500));
                }
            }
        };
        std::vector<std::thread> clients;
        clients.emplace_back(client, "gold", 1000u + iter);
        clients.emplace_back(client, "gold", 2000u + iter);
        clients.emplace_back(client, "free", 3000u + iter);
        clients.emplace_back(client, "free", 4000u + iter);
        std::thread canceller([&] {
            std::mt19937 gen(5000u + iter);
            while (!storm_done.load(std::memory_order_acquire)) {
                JobId id = 0;
                {
                    std::lock_guard<std::mutex> lock(ids_mtx);
                    if (!ids.empty())
                        id = ids[gen() % ids.size()];
                }
                if (id != 0)
                    manager.cancel(id);
                std::this_thread::sleep_for(
                    std::chrono::microseconds(200));
            }
        });
        for (auto &t : clients)
            t.join();
        storm_done.store(true, std::memory_order_release);
        canceller.join();

        // Drain: cancel whatever is left, then wait for every admitted
        // job to reach a terminal state.
        for (JobId id : ids)
            manager.cancel(id);
        for (JobId id : ids)
            ASSERT_TRUE(manager.wait(id, 60.0)) << "job " << id;

        // Cancelled queue entries are removed lazily (workers pop and
        // skip them), so give the gauges a moment to drain to zero.
        EXPECT_TRUE(waitUntil([&] {
            const ServeStats st = manager.stats();
            return st.queueDepth == 0 && st.running == 0;
        })) << "iter " << iter;

        // Conservation: every submission is accounted for exactly once.
        const ServeStats s = manager.stats();
        EXPECT_EQ(s.submitted, s.rejected + s.completed + s.cancelled +
                                   s.failed + s.shed)
            << "iter " << iter;
        EXPECT_EQ(s.failed, 0u) << "iter " << iter;

        // The per-tenant slices sum to the global counters.
        TenantServeStats sum;
        for (const auto &[tenant, ts] : manager.tenantStats()) {
            sum.submitted += ts.submitted;
            sum.rejected += ts.rejected;
            sum.completed += ts.completed;
            sum.cancelled += ts.cancelled;
            sum.failed += ts.failed;
            sum.shed += ts.shed;
            sum.shedAdmission += ts.shedAdmission;
            sum.cacheHits += ts.cacheHits;
            sum.warmStarts += ts.warmStarts;
            EXPECT_EQ(ts.queued, 0u) << tenant << " iter " << iter;
            EXPECT_EQ(ts.running, 0u) << tenant << " iter " << iter;
        }
        EXPECT_EQ(sum.submitted, s.submitted) << "iter " << iter;
        EXPECT_EQ(sum.rejected, s.rejected) << "iter " << iter;
        EXPECT_EQ(sum.completed, s.completed) << "iter " << iter;
        EXPECT_EQ(sum.cancelled, s.cancelled) << "iter " << iter;
        EXPECT_EQ(sum.failed, s.failed) << "iter " << iter;
        EXPECT_EQ(sum.shed, s.shed) << "iter " << iter;
        EXPECT_EQ(sum.shedAdmission, s.shedAdmission) << "iter " << iter;
        EXPECT_EQ(sum.cacheHits, s.cacheHits) << "iter " << iter;
        EXPECT_EQ(sum.warmStarts, s.warmStarts) << "iter " << iter;
    }
}

TEST_F(ServeTest, ShutdownCancelsOutstandingJobs)
{
    ServeConfig cfg;
    cfg.workers = 1;
    JobManager manager(registry, cfg);
    JobManager::Submitted running = manager.submit(endlessRequest("web"));
    JobManager::Submitted queued = manager.submit(endlessRequest("road"));
    ASSERT_TRUE(running.ok());
    ASSERT_TRUE(queued.ok());
    ASSERT_TRUE(waitUntil([&] {
        auto st = manager.status(running.id);
        return st && st->state == JobState::Running;
    }));

    manager.shutdown();   // must terminate the endless engine run
    EXPECT_EQ(manager.status(running.id)->state, JobState::Cancelled);
    EXPECT_EQ(manager.status(queued.id)->state, JobState::Cancelled);
}

} // namespace
} // namespace graphabcd
