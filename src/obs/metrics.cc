#include "obs/metrics.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/logging.hh"

namespace graphabcd {

// ------------------------------------------------------------ Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
    GRAPHABCD_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
                     "histogram bounds must ascend");
}

std::size_t
Histogram::bucketIndex(double x) const
{
    // First bucket whose upper bound admits x; the overflow bucket
    // (index bounds_.size()) catches everything beyond the last bound.
    return static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), x) -
        bounds_.begin());
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.bounds = bounds_;
    snap.counts.reserve(buckets_.size());
    for (const auto &b : buckets_)
        snap.counts.push_back(b.load(std::memory_order_relaxed));
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    if (snap.count > 0) {
        snap.min = min_.load(std::memory_order_relaxed);
        snap.max = max_.load(std::memory_order_relaxed);
    }
    {
        std::lock_guard<std::mutex> lock(exemplarMtx_);
        snap.hasExemplar = hasExemplar_;
        snap.exemplarValue = exemplarValue_;
        snap.exemplarJob = exemplarJob_;
        snap.exemplarSpan = exemplarSpan_;
    }
    return snap;
}

double
Histogram::Snapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); i++) {
        seen += counts[i];
        if (seen > rank)
            return i < bounds.size() ? bounds[i] : max;
    }
    return max;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(exemplarMtx_);
    hasExemplar_ = false;
    exemplarValue_ = 0.0;
    exemplarJob_ = 0;
    exemplarSpan_ = 0;
}

// ------------------------------------------------------- MetricsRegistry

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry instance;
    return instance;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           std::vector<double> upper_bounds)
{
    std::lock_guard<std::mutex> lock(mtx_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(std::move(upper_bounds));
    return *slot;
}

std::string
MetricsRegistry::dump() const
{
    std::ostringstream os;
    std::lock_guard<std::mutex> lock(mtx_);
    for (const auto &[name, c] : counters_)
        os << "counter " << name << " " << c->value() << "\n";
    for (const auto &[name, g] : gauges_)
        os << "gauge " << name << " " << g->value() << "\n";
    for (const auto &[name, h] : histograms_) {
        const Histogram::Snapshot snap = h->snapshot();
        os << "hist " << name << " count=" << snap.count
           << " sum=" << snap.sum << " mean=" << snap.mean()
           << " min=" << snap.min << " max=" << snap.max
           << " p50=" << snap.quantile(0.5)
           << " p99=" << snap.quantile(0.99);
        if (snap.hasExemplar) {
            os << " ex=" << snap.exemplarValue
               << " ex_job=" << snap.exemplarJob
               << " ex_span=" << snap.exemplarSpan;
        }
        os << "\n";
    }
    return os.str();
}

MetricsSnapshot
MetricsRegistry::snapshotAll() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mtx_);
    snap.counters.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto &[name, g] : gauges_)
        snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto &[name, h] : histograms_)
        snap.histograms.emplace_back(name, h->snapshot());
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mtx_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

} // namespace graphabcd
