file(REMOVE_RECURSE
  "CMakeFiles/abcd_core.dir/options.cc.o"
  "CMakeFiles/abcd_core.dir/options.cc.o.d"
  "CMakeFiles/abcd_core.dir/scheduler.cc.o"
  "CMakeFiles/abcd_core.dir/scheduler.cc.o.d"
  "libabcd_core.a"
  "libabcd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
