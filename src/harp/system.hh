/**
 * @file
 * Execution-driven discrete-event simulator of the GraphABCD prototype
 * on the HARPv2 CPU-FPGA platform (paper Fig. 2 and Sec. IV-C).
 *
 * The simulated pipeline follows the paper's eleven execution steps:
 * the software Scheduler picks active blocks and pushes their ids into
 * the Accelerator Task Queue (bounded — which bounds staleness); an
 * idle PE dequeues a task, the customized DMA streams the block's
 * vertex values and in-edge slice over the shared CPU-FPGA link
 * (sequential reads by construction of the BlockPartition), the
 * GATHER-APPLY pipeline reduces it, the new vertex block is written
 * back and the block id flows through the CPU Task Queue to a SCATTER
 * thread, which copies the updated values onto the out-going edges
 * (random CPU-side writes), refreshes block priorities and the active
 * list, and lets the Scheduler dispatch further work.
 *
 * The simulation is *execution-driven*: GATHER reads whatever edge
 * values are committed at the simulated dispatch instant, and SCATTER
 * commits at the simulated completion instant, so asynchronous stale
 * reads — and their effect on convergence — are real, not modelled.
 * ExecMode::Barrier serialises one block end-to-end at a time (the
 * paper's 'Barrier' baseline); ExecMode::Bsp runs Jacobi supersteps
 * with a global barrier (the 'BSP' baseline).  Hybrid execution adds
 * CPU-side GATHER-APPLY workers fed from the same task queue.
 */

#ifndef GRAPHABCD_HARP_SYSTEM_HH
#define GRAPHABCD_HARP_SYSTEM_HH

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/options.hh"
#include "core/scheduler.hh"
#include "core/state.hh"
#include "core/vertex_program.hh"
#include "fragment/topology.hh"
#include "graph/partition.hh"
#include "harp/bus.hh"
#include "harp/config.hh"
#include "harp/event_queue.hh"
#include "harp/report.hh"
#include "obs/obs.hh"
#include "support/timer.hh"

namespace graphabcd {

/**
 * The whole-system simulator.  One instance per run.
 */
template <VertexProgram Program>
class HarpSystem
{
  public:
    using Value = typename Program::Value;
    using StopFn =
        std::function<bool(double epochs, const std::vector<Value> &)>;

    HarpSystem(const BlockPartition &g, Program p, EngineOptions eopt,
               HarpConfig hcfg)
        : graph(g), program(std::move(p)), engineOpt(eopt), cfg(hcfg),
          devices(cfg.deviceList())
    {
        for (const AcceleratorSpec &spec : devices) {
            buses.emplace_back(spec.busBandwidth);
            for (std::uint32_t i = 0; i < spec.numPes; i++) {
                peDevice.push_back(
                    static_cast<std::uint32_t>(buses.size() - 1));
            }
        }
        if (cfg.fragmentAffinity && devices.size() > 1) {
            // One fragment per device, same edge-balanced cut as the
            // software FragmentEngine.
            affinity.emplace(
                g, static_cast<std::uint32_t>(devices.size()));
        }
    }

    /** @return total PE count across all accelerator devices. */
    std::uint32_t
    totalPes() const
    {
        return static_cast<std::uint32_t>(peDevice.size());
    }

    /**
     * Simulate until quiescence, StopFn convergence, or maxEpochs.
     * @param out_values receives the final vertex values.
     */
    SimReport
    run(std::vector<Value> &out_values, const StopFn &stop_fn = nullptr)
    {
        wallTimer.start();
        state = std::make_unique<BcdState<Program>>(graph, program);
        if constexpr (std::is_same_v<Value, double>) {
            if (engineOpt.warmStart &&
                engineOpt.warmStart->size() == graph.numVertices()) {
                state->setValues(graph, program, *engineOpt.warmStart);
            }
        }
        sched = makeScheduler(engineOpt.schedule, graph.numBlocks(),
                              engineOpt.seed);
        for (BlockId b = 0; b < graph.numBlocks(); b++)
            sched->activate(b, initialActivationPriority());

        peFreeAt.assign(totalPes(), 0.0);
        peBusy.assign(totalPes(), 0.0);
        cpuFreeAt.assign(cfg.cpuThreads, 0.0);
        cpuBusy.assign(cfg.cpuThreads, 0.0);
        stopFn = stop_fn;
        nextTrace = engineOpt.traceInterval > 0.0
            ? engineOpt.traceInterval
            : 1.0;
        nextConvSample = convInterval();

        if (engineOpt.mode == ExecMode::Bsp)
            startWave();
        else
            events.schedule(0.0, [this] { trySchedule(); });

        events.runToCompletion();
        recordConvergence(/*final=*/true);

        const double horizon = endTime;
        report.seconds = horizon;
        report.hostSeconds = wallTimer.seconds();
        report.epochs = static_cast<double>(report.vertexUpdates) /
                        std::max<double>(graph.numVertices(), 1.0);
        report.stopped = cancelled;
        report.converged = !cancelled && (stopped || sched->empty());
        if (horizon > 0.0) {
            report.mtes = static_cast<double>(report.edgeTraversals) /
                          horizon / 1e6;
            double pe_busy = 0.0;
            for (double b : peBusy)
                pe_busy += b;
            report.peUtilization =
                pe_busy / (static_cast<double>(totalPes()) * horizon);
            double cpu_busy = 0.0;
            for (double b : cpuBusy)
                cpu_busy += b;
            report.cpuUtilization =
                cpu_busy /
                (static_cast<double>(cfg.cpuThreads) * horizon);
            double bus_util = 0.0;
            for (const Bus &bus : buses)
                bus_util += bus.utilization(horizon);
            report.busUtilization = bus_util / buses.size();
            if constexpr (obs::kEnabled) {
                obs::gauge("harp.pe_utilization")
                    .set(report.peUtilization);
                obs::gauge("harp.cpu_utilization")
                    .set(report.cpuUtilization);
                obs::gauge("harp.bus_utilization")
                    .set(report.busUtilization);
                obs::Histogram &peHist = obs::histogram(
                    "harp.pe_busy_fraction", obs::fractionBuckets());
                for (double b : peBusy)
                    peHist.record(b / horizon);
                obs::counter("harp.bus_read_bytes")
                    .add(report.busReadBytes);
                obs::counter("harp.bus_write_bytes")
                    .add(report.busWriteBytes);
                obs::counter("harp.affinity_hits").add(affinityHits);
                obs::counter("harp.affinity_misses")
                    .add(affinityMisses);
            }
        }
        out_values = state->values();
        return report;
    }

  private:
    /** A block task travelling through the system. */
    struct Task
    {
        BlockId block = invalidBlock;
        BlockUpdate<Value> update;   //!< filled by GATHER-APPLY
        bool onCpu = false;          //!< hybrid: processed by a CPU worker
    };

    // ------------------------------------------------------ scheduler

    /**
     * Dispatch window: the queue bound is also relative to the block
     * count, so staleness stays a small fraction of the graph — the
     * bounded-delay condition asynchronous BCD needs (Sec. III-D).
     */
    std::size_t
    dispatchWindow() const
    {
        // Enough in-flight tasks to feed every execution unit plus a
        // queue's worth of lookahead...
        std::size_t want = cfg.accelQueueDepth + totalPes();
        if (cfg.hybrid)
            want += cfg.cpuThreads;
        // ...but never more than a quarter of the graph's blocks, so
        // staleness stays a bounded fraction and convergence tracks
        // Gauss-Seidel.
        const std::size_t rel =
            std::max<std::size_t>(2, graph.numBlocks() / 4);
        return std::min<std::size_t>(want, rel);
    }

    /** Paper step 2: fill the accelerator task queue with active blocks. */
    void
    trySchedule()
    {
        if (checkCancelled() || stopped)
            return;
        std::size_t window = dispatchWindow();
        if (engineOpt.mode == ExecMode::Barrier) {
            // 'Barrier' baseline: a memory barrier after every group of
            // concurrently processed blocks — dispatch one PE-wide wave
            // and wait for all of it to commit before the next.
            if (inflight > 0)
                return;
            window = std::min<std::size_t>(window, totalPes());
        }
        bool pushed = false;
        // Bound the *total* number of in-flight tasks (queued, on a PE,
        // or awaiting SCATTER): that is the update-propagation delay
        // asynchronous BCD requires to be bounded.  Bounding only the
        // accelerator queue would let un-scattered blocks pile up
        // behind a slow CPU side and staleness grow without limit.
        while (inflight < window &&
               (engineOpt.mode != ExecMode::Barrier ||
                inflight < totalPes())) {
            if (maxedOut())
                break;
            auto b = sched->next();
            if (!b)
                break;
            inflight++;
            accelQueue.push_back(*b);
            pushed = true;
        }
        if (pushed) {
            const double t = events.now() + cfg.dispatchLatencySec;
            events.schedule(t, [this] { tryStartPe(); });
            if (cfg.hybrid)
                events.schedule(t, [this] { tryStartCpu(); });
        }
    }

    bool
    maxedOut() const
    {
        return static_cast<double>(report.vertexUpdates) >=
               engineOpt.maxEpochs *
                   std::max<double>(graph.numVertices(), 1.0);
    }

    // ------------------------------------------------------ FPGA PEs

    /** Paper steps 3-6: an idle PE processes one queued block. */
    void
    tryStartPe()
    {
        const double now = events.now();
        while (!accelQueue.empty()) {
            std::int32_t pe = -1;
            for (std::uint32_t i = 0; i < totalPes(); i++) {
                if (peFreeAt[i] <= now + 1e-15) {
                    pe = static_cast<std::int32_t>(i);
                    break;
                }
            }
            if (pe < 0)
                return;
            // Each accelerator device owns its own CPU link.
            const std::uint32_t dev =
                peDevice[static_cast<std::uint32_t>(pe)];
            Bus &bus = buses[dev];
            const AcceleratorSpec &spec = devices[dev];
            // With fragment affinity, prefer a queued block homed on
            // this PE's device; take the head otherwise, so affinity
            // reorders but never starves (work-conserving).
            auto pick = accelQueue.begin();
            if (affinity) {
                for (auto it = accelQueue.begin();
                     it != accelQueue.end(); ++it) {
                    if (affinity->fragmentOfBlock(*it) == dev) {
                        pick = it;
                        break;
                    }
                }
                if (affinity->fragmentOfBlock(*pick) == dev)
                    affinityHits++;
                else
                    affinityMisses++;
            }
            BlockId b = *pick;
            accelQueue.erase(pick);

            // Functional GATHER-APPLY at dispatch time: the PE sees the
            // edge values committed so far (asynchronous staleness).
            Task task;
            task.block = b;
            task.update = state->processBlock(graph, program, b,
                                              engineOpt.tolerance);

            // Timing: DMA in (edge slice + vertex block), compute,
            // write-back of the new vertex block.
            const auto vbytes =
                static_cast<std::uint32_t>(sizeof(Value));
            const std::uint64_t in_bytes = static_cast<std::uint64_t>(
                static_cast<double>(graph.blockEdgeCount(b)) *
                    cfg.edgeRecordBytes(vbytes)) +
                graph.blockVertexCount(b) * vbytes;
            const std::uint64_t out_bytes =
                graph.blockVertexCount(b) * vbytes;

            BusGrant rd = bus.transfer(now + cfg.dmaLatencySec, in_bytes);
            const double compute_done =
                std::max(rd.end,
                         now + cfg.dmaLatencySec +
                             spec.computeSeconds(graph.blockEdgeCount(b),
                                                 cfg.pePipelineDepth));
            BusGrant wr = bus.transfer(compute_done, out_bytes);

            report.busReadBytes += in_bytes;
            report.busWriteBytes += out_bytes;
            report.fpgaTasks++;
            // Utilization counts pipeline-active time only: a PE
            // stalled waiting for the bus is occupied but not utilized
            // (this is what collapses in the paper's Fig. 8 when the
            // link saturates past 8 PEs).
            peBusy[pe] += spec.computeSeconds(graph.blockEdgeCount(b),
                                              cfg.pePipelineDepth);
            peFreeAt[pe] = wr.end;
            // Simulated FPGA timeline: one span per task on the PE's
            // virtual track (simulated-time microseconds), so Perfetto
            // shows busy/idle gaps next to the CPU scatter spans.
            obs::completeOnTrack(static_cast<std::uint32_t>(pe),
                                 "harp.pe.task", now * 1e6,
                                 (wr.end - now) * 1e6);

            // Paper step 7: hand the finished block to the CPU queue.
            events.schedule(wr.end, [this, task = std::move(task)]() {
                cpuQueue.push_back(task);
                tryStartCpu();
            });
            events.schedule(wr.end, [this] { tryStartPe(); });
        }
    }

    // ------------------------------------------------------ CPU side

    /** Paper steps 8-11 (and hybrid GATHER-APPLY when enabled). */
    void
    tryStartCpu()
    {
        const double now = events.now();
        for (;;) {
            std::int32_t worker = -1;
            for (std::uint32_t i = 0; i < cfg.cpuThreads; i++) {
                if (cpuFreeAt[i] <= now + 1e-15) {
                    worker = static_cast<std::int32_t>(i);
                    break;
                }
            }
            if (worker < 0)
                return;

            if (!cpuQueue.empty()) {
                Task task = std::move(cpuQueue.front());
                cpuQueue.pop_front();
                startScatter(worker, std::move(task), now);
                continue;
            }
            // Hybrid execution: an otherwise-idle CPU thread takes a
            // GATHER-APPLY task when every PE is busy with a backlog.
            if (cfg.hybrid && !accelQueue.empty() && allPesBusy(now)) {
                BlockId b = accelQueue.front();
                accelQueue.pop_front();
                startCpuGather(worker, b, now);
                continue;
            }
            return;
        }
    }

    bool
    allPesBusy(double now) const
    {
        for (double t : peFreeAt) {
            if (t <= now + 1e-15)
                return false;
        }
        return true;
    }

    /** SCATTER one finished block on CPU worker `w`. */
    void
    startScatter(std::int32_t w, Task task, double now)
    {
        // Random out-edge writes of every changed vertex.
        const auto vbytes = static_cast<std::uint32_t>(sizeof(Value));
        std::uint64_t write_bytes = 0;
        const VertexId begin = graph.blockBegin(task.block);
        for (std::size_t i = 0; i < task.update.deltas.size(); i++) {
            if (task.update.deltas[i] > engineOpt.tolerance) {
                write_bytes +=
                    static_cast<std::uint64_t>(graph.outDegree(
                        begin + static_cast<VertexId>(i))) *
                    vbytes;
            }
        }
        const double service =
            cfg.scatterOverheadSec +
            static_cast<double>(write_bytes) * cfg.scatterRandomPenalty /
                cfg.cpuThreadBytesPerSec;
        const double done = now + service;
        cpuBusy[w] += service;
        cpuFreeAt[w] = done;
        report.cpuRandomBytes += write_bytes;
        obs::completeOnTrack(cpuTrack(w), "harp.cpu.scatter", now * 1e6,
                             service * 1e6);

        events.schedule(done, [this, task = std::move(task)]() {
            commitTask(task);
        });
        events.schedule(done, [this] { tryStartCpu(); });
    }

    /** Hybrid: GATHER-APPLY on a CPU worker, then queue its SCATTER. */
    void
    startCpuGather(std::int32_t w, BlockId b, double now)
    {
        Task task;
        task.block = b;
        task.onCpu = true;
        task.update =
            state->processBlock(graph, program, b, engineOpt.tolerance);

        const double service =
            static_cast<double>(graph.blockEdgeCount(b)) /
            cfg.cpuGatherEdgesPerSec;
        const double done = now + service;
        cpuBusy[w] += service;
        cpuFreeAt[w] = done;
        report.cpuGatherTasks++;
        obs::completeOnTrack(cpuTrack(w), "harp.cpu.gather", now * 1e6,
                             service * 1e6);

        events.schedule(done, [this, task = std::move(task)]() {
            cpuQueue.push_back(task);
            tryStartCpu();
        });
    }

    /** Functional commit at simulated SCATTER completion time. */
    void
    commitTask(const Task &task)
    {
        const double now = events.now();
        if (engineOpt.mode == ExecMode::Bsp) {
            // Jacobi: park the update until the wave barrier.
            waveDone.push_back(task);
            inflight--;
            report.blockUpdates++;
            report.vertexUpdates += task.update.newValues.size();
            report.edgeTraversals += graph.blockEdgeCount(task.block);
            endTime = std::max(endTime, now);
            if (inflight == 0)
                finishWave();
            return;
        }

        report.scatterWrites += state->commitBlock(
            graph, program, task.update, engineOpt.tolerance,
            [this](BlockId dst, double delta) {
                sched->activate(dst, delta);
            });
        report.blockUpdates++;
        report.vertexUpdates += task.update.newValues.size();
        report.edgeTraversals += graph.blockEdgeCount(task.block);
        inflight--;
        endTime = std::max(endTime, now);
        if constexpr (obs::kEnabled) {
            winL1 += task.update.l1Delta;
            winActive += task.update.changed;
        }
        recordConvergence(/*final=*/false);
        if (engineOpt.progress) {
            engineOpt.progress->publish(report.vertexUpdates,
                                        report.blockUpdates,
                                        report.edgeTraversals,
                                        report.scatterWrites);
        }
        checkStop();
        if (engineOpt.mode == ExecMode::Barrier) {
            // The wave's memory barrier: dispatching resumes only after
            // the fence completes.
            if (inflight == 0) {
                const double fence_done = now + cfg.barrierSeconds;
                endTime = std::max(endTime, fence_done);
                events.schedule(fence_done, [this] { trySchedule(); });
            }
        } else {
            trySchedule();
        }
    }

    // ------------------------------------------------------ BSP waves

    /** Dispatch one Jacobi superstep: every active block at once. */
    void
    startWave()
    {
        if (checkCancelled() || stopped || maxedOut())
            return;
        bool any = false;
        while (auto b = sched->next()) {
            inflight++;
            accelQueue.push_back(*b);
            any = true;
        }
        if (!any)
            return;
        const double t = events.now() + cfg.dispatchLatencySec;
        events.schedule(t, [this] { tryStartPe(); });
        if (cfg.hybrid)
            events.schedule(t, [this] { tryStartCpu(); });
    }

    /** Global barrier: commit the whole wave, then start the next. */
    void
    finishWave()
    {
        const double barrier_done = events.now() + cfg.barrierSeconds;
        endTime = std::max(endTime, barrier_done);
        for (const Task &task : waveDone) {
            report.scatterWrites += state->commitBlock(
                graph, program, task.update, engineOpt.tolerance,
                [this](BlockId dst, double delta) {
                    sched->activate(dst, delta);
                });
            if constexpr (obs::kEnabled) {
                winL1 += task.update.l1Delta;
                winActive += task.update.changed;
            }
        }
        waveDone.clear();
        recordConvergence(/*final=*/false);
        checkStop();
        if (!stopped) {
            events.schedule(barrier_done, [this] { startWave(); });
        }
    }

    // -------------------------------------------------- observability

    double
    convInterval() const
    {
        return engineOpt.traceInterval > 0.0 ? engineOpt.traceInterval
                                             : 1.0;
    }

    /**
     * Publish one convergence sample (simulated + wall time) and keep
     * the harp.pe_utilization gauge live while the simulation runs, so
     * the periodic Sampler sees utilization evolve instead of only the
     * end-of-run scalar.  Rides the per-block commit path; compiled
     * out with the rest of the obs layer.
     */
    void
    recordConvergence(bool final)
    {
        if constexpr (obs::kEnabled) {
            const double epochs =
                static_cast<double>(report.vertexUpdates) /
                std::max<double>(graph.numVertices(), 1.0);
            if (!final) {
                if (epochs + 1e-12 < nextConvSample)
                    return;
                nextConvSample = epochs + convInterval();
            }
            const double now = events.now();
            if (now > 0.0) {
                double busy = 0.0;
                for (double b : peBusy)
                    busy += b;
                obs::gauge("harp.pe_utilization")
                    .set(busy /
                         (static_cast<double>(totalPes()) * now));
            }
            if (engineOpt.convergence) {
                obs::ConvergencePoint pt;
                pt.epochs = epochs;
                pt.residual = winL1;
                pt.activeVertices = winActive;
                pt.vertexUpdates = report.vertexUpdates;
                pt.edgeTraversals = report.edgeTraversals;
                pt.wallSeconds = wallTimer.seconds();
                pt.simSeconds = now;
                if (final)
                    engineOpt.convergence->recordFinal(pt);
                else
                    engineOpt.convergence->record(pt);
            }
            winL1 = 0.0;
            winActive = 0;
        }
    }

    /** Track layout of the simulated timeline: PEs first, CPU workers
     *  after.  Timestamps on these tracks are simulated microseconds. */
    std::uint32_t
    cpuTrack(std::int32_t worker) const
    {
        return totalPes() + static_cast<std::uint32_t>(worker);
    }

    // ---------------------------------------------------- termination

    /**
     * Poll the serve-layer stop token (cancellation / deadline).  Once
     * it fires no further work is dispatched; in-flight events drain
     * and the event loop winds down.
     */
    bool
    checkCancelled()
    {
        if (!cancelled && engineOpt.stop.stopRequested())
            cancelled = true;
        return cancelled;
    }

    void
    checkStop()
    {
        if (!stopFn)
            return;
        const double epochs =
            static_cast<double>(report.vertexUpdates) /
            std::max<double>(graph.numVertices(), 1.0);
        if (epochs + 1e-12 < nextTrace)
            return;
        nextTrace += engineOpt.traceInterval > 0.0
            ? engineOpt.traceInterval
            : 1.0;
        if (stopFn(epochs, state->values()))
            stopped = true;
    }

    // --------------------------------------------------------- members

    const BlockPartition &graph;
    Program program;
    EngineOptions engineOpt;
    HarpConfig cfg;
    std::vector<AcceleratorSpec> devices;
    std::vector<std::uint32_t> peDevice;   //!< PE index -> device index
    std::optional<FragmentTopology> affinity;   //!< device homing cut
    std::uint64_t affinityHits = 0;    //!< PE took a home-fragment block
    std::uint64_t affinityMisses = 0;  //!< PE fell back to the head

    std::unique_ptr<BcdState<Program>> state;
    std::unique_ptr<BlockScheduler> sched;
    EventQueue events;
    std::vector<Bus> buses;   //!< one CPU link per accelerator

    std::vector<double> peFreeAt;
    std::vector<double> peBusy;
    std::vector<double> cpuFreeAt;
    std::vector<double> cpuBusy;

    std::deque<BlockId> accelQueue;
    std::deque<Task> cpuQueue;
    std::vector<Task> waveDone;

    std::uint64_t inflight = 0;
    double endTime = 0.0;
    Timer wallTimer;
    double winL1 = 0.0;          //!< convergence window accumulators:
    std::uint64_t winActive = 0; //!< touched only when obs is enabled
    double nextConvSample = 1.0;
    bool stopped = false;      //!< StopFn convergence fired
    bool cancelled = false;    //!< EngineOptions::stop fired
    double nextTrace = 1.0;
    StopFn stopFn;

    SimReport report;
};

} // namespace graphabcd

#endif // GRAPHABCD_HARP_SYSTEM_HH
