/**
 * @file
 * Named synthetic stand-ins for the paper's evaluation graphs (Table I).
 *
 * The original datasets (WikiTalk, Pokec, LiveJournal, Twitter, SAC18,
 * MovieLens, Netflix) are not redistributable here, so each is replaced
 * by a generator-backed equivalent that preserves the properties the
 * evaluation depends on: the |E|/|V| ratio, power-law degree skew for the
 * social graphs (RMAT) and Zipf item popularity for the rating graphs.
 * Sizes default to 1/divisor of the paper's to fit a laptop; pass a
 * larger `scale` to approach the original sizes.
 */

#ifndef GRAPHABCD_GRAPH_DATASETS_HH
#define GRAPHABCD_GRAPH_DATASETS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.hh"

namespace graphabcd {

/** Catalog entry describing one paper dataset and its stand-in. */
struct DatasetInfo
{
    std::string key;          //!< short name used on the command line
    std::string paperName;    //!< name used in the paper's Table I
    std::uint64_t paperVertices;
    std::uint64_t paperEdges;
    bool bipartite;           //!< rating graph (CF) vs social graph
    std::uint64_t paperUsers; //!< bipartite only
    std::uint64_t paperItems; //!< bipartite only
    std::uint64_t divisor;    //!< default shrink factor at scale = 1
};

/** @return the seven Table I datasets in paper order. */
const std::vector<DatasetInfo> &datasetCatalog();

/** @return catalog entry for `key`; fatal() when unknown. */
const DatasetInfo &datasetInfo(const std::string &key);

/** A materialised dataset. */
struct Dataset
{
    DatasetInfo info;
    EdgeList graph;       //!< directed, weighted (weights in [1, 16])
    VertexId users = 0;   //!< bipartite only
    VertexId items = 0;   //!< bipartite only
    double scale = 1.0;   //!< realised fraction of the paper size

    VertexId numVertices() const { return graph.numVertices(); }
    EdgeId numEdges() const { return graph.numEdges(); }
};

/**
 * Materialise the stand-in for a Table I graph.
 * @param key one of "WT", "PS", "LJ", "TW", "SAC", "MOL", "NF"
 *        (case-insensitive).
 * @param scale multiplies the default (paper / divisor) size; scale ==
 *        divisor reproduces the paper's node/edge counts.
 * @param seed generator seed; equal seeds give identical graphs.
 */
Dataset makeDataset(const std::string &key, double scale = 1.0,
                    std::uint64_t seed = 42);

} // namespace graphabcd

#endif // GRAPHABCD_GRAPH_DATASETS_HH
